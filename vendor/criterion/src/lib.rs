//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Runs each benchmark closure for a short, adaptive number of
//! iterations and prints the mean wall-clock time per iteration. No
//! statistical analysis, baselines, or plots — just enough for
//! `cargo bench` to run offline and produce grep-able numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Target measurement budget per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.default_sample_size(), f);
        self
    }

    fn default_sample_size(&self) -> usize {
        10
    }
}

/// A named collection of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples to collect.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `self.name/name`.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// Finishes the group (no-op in the stand-in).
    pub fn finish(self) {}
}

fn run_benchmark<F>(name: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration pass: find out how long one closure invocation takes.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    // Scale the real pass so samples * iters fits the budget.
    let budget_per_sample = MEASURE_BUDGET / samples.max(1) as u32;
    let iters = (budget_per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    let mut total_iters = 0u64;
    for _ in 0..samples {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let mean = bencher.elapsed / iters.max(1) as u32;
        best = best.min(mean);
        total += bencher.elapsed;
        total_iters += bencher.iters;
    }
    let mean = if total_iters > 0 {
        total / total_iters as u32
    } else {
        Duration::ZERO
    };
    println!(
        "bench {name:<48} mean {:>12.3?}/iter  best {:>12.3?}/iter  ({samples} samples x {iters} iters)",
        mean, best
    );
}

/// Passed to every benchmark closure; measures the hot loop.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Prevents the optimizer from discarding a value (re-export of
/// `std::hint::black_box` for API compatibility).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a single runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench` (and possibly filters);
            // the stand-in runs everything and ignores the arguments.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        c.bench_function("direct", |b| b.iter(|| black_box(21u64 * 2)));
    }
}
