//! Case generation and execution.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The random generator handed to strategies.
pub type TestRng = StdRng;

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic property-test executor (no shrinking).
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
    seed: u64,
}

impl TestRunner {
    /// Creates a runner seeded from `PROPTEST_SEED` (or a fixed
    /// default), so failures reproduce across invocations.
    pub fn new(config: ProptestConfig) -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5eed_cafe_f00d_d00d);
        TestRunner {
            config,
            rng: TestRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this runner was constructed with. Failure output
    /// embeds it so any run is replayable via `PROPTEST_SEED`.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Runs `test` on `config.cases` sampled inputs, reporting the
    /// failing input (unshrunk) on panic.
    pub fn run<S, F>(&mut self, strategy: S, mut test: F)
    where
        S: Strategy,
        S::Value: std::fmt::Debug,
        F: FnMut(S::Value),
    {
        for case in 0..self.config.cases {
            let value = strategy.sample(&mut self.rng);
            let rendered = format!("{value:?}");
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                test(value);
            }));
            if let Err(payload) = outcome {
                eprintln!(
                    "proptest stand-in: case {}/{} failed for input {} (no shrinking); \
                     replay with PROPTEST_SEED={}",
                    case + 1,
                    self.config.cases,
                    rendered,
                    self.seed
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}
