//! The [`Strategy`] trait and its core combinators.

use crate::test_runner::TestRng;
use rand::RngExt;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real proptest, strategies here sample directly (no value
/// trees, hence no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
}
