//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Provides the subset of the proptest API this workspace uses:
//!
//! * the [`macro@proptest`] macro (with `#![proptest_config(..)]`
//!   support) expanding each property into a `#[test]`;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`];
//! * the [`strategy::Strategy`] trait with `prop_map`, implemented for
//!   numeric ranges, tuples, [`collection::vec`], [`bool::ANY`], and
//!   [`strategy::Just`];
//! * [`test_runner::ProptestConfig`] and a deterministic
//!   [`test_runner::TestRunner`].
//!
//! Differences from the real crate: cases are drawn from a fixed
//! deterministic seed (override with the `PROPTEST_SEED` environment
//! variable), and failing inputs are reported but **not shrunk**.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;

pub mod collection;

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// Strategy yielding `true` / `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.random::<bool>()
        }
    }
}

pub mod test_runner;

/// The glob-importable API surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a property holds for the current case (stand-in: plain
/// `assert!`, which fails the whole test on the first violation).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Equality assertion for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Inequality assertion for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        // Bind first so negation applies to a plain bool; negating the
        // comparison expression directly would trip
        // clippy::neg_cmp_op_on_partial_ord in callers comparing
        // floats.
        let holds: bool = $cond;
        if !holds {
            return;
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { .. }`
/// item expands to a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`macro@proptest`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( cfg = ($cfg:expr);
      $( $(#[$meta:meta])*
         fn $name:ident ( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new($cfg);
                runner.run(( $( $strat, )+ ), |( $( $arg, )+ )| $body);
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 0.0..10.0f64, k in 1usize..5) {
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!((1..5).contains(&k));
        }

        #[test]
        fn assume_skips_cases(x in -5.0..5.0f64) {
            prop_assume!(x >= 0.0);
            prop_assert!(x >= 0.0);
        }

        #[test]
        fn vec_and_map_compose(
            v in crate::collection::vec(0u32..100, 2..6),
            flag in crate::bool::ANY,
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 100));
            let _ = flag;
        }

        #[test]
        fn prop_map_transforms(doubled in (0u32..50).prop_map(|x| x * 2)) {
            prop_assert!(doubled % 2 == 0);
            prop_assert!(doubled < 100);
        }
    }

    #[test]
    fn runner_is_deterministic() {
        let mut a = Vec::new();
        let mut runner = TestRunner::new(ProptestConfig::with_cases(10));
        runner.run((0u64..1000,), |(x,)| a.push(x));
        let mut b = Vec::new();
        let mut runner = TestRunner::new(ProptestConfig::with_cases(10));
        runner.run((0u64..1000,), |(x,)| b.push(x));
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
    }
}
