//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngExt;

/// Size specification for collection strategies: a fixed size, a
/// half-open range, or an inclusive range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty collection size range");
        SizeRange { lo, hi: hi + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with lengths drawn from a [`SizeRange`].
#[derive(Debug, Clone, Copy)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.random_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Yields vectors whose elements come from `element` and whose lengths
/// come from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
