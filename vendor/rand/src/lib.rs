//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements exactly the API surface this workspace uses: the
//! [`Rng`] core trait, the [`RngExt`] convenience extension
//! (`random`, `random_range`, `random_bool`), [`SeedableRng`] with
//! `seed_from_u64`, and [`rngs::StdRng`] — a xoshiro256++ generator
//! seeded through SplitMix64.
//!
//! Streams are **not** compatible with the real `rand::rngs::StdRng`
//! (ChaCha12), but they are deterministic, high-quality, and fast,
//! which is all the simulator's reproducibility story requires.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random 64-bit words.
///
/// All convenience sampling lives on [`RngExt`], which is blanket
/// implemented for every `Rng`.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (high half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their whole domain via
/// [`RngExt::random`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 63) == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types supporting uniform sampling from a sub-range via
/// [`RngExt::random_range`].
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_in<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: Rng + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let lo = low as i128;
                let hi = high as i128;
                let span = hi - lo + i128::from(inclusive);
                assert!(span > 0, "cannot sample from an empty range");
                // Lemire-style widening multiply: unbiased enough for
                // simulation use (bias < 2^-64 per draw).
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as i128;
                (lo + draw) as Self
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: Rng + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(low < high || (_inclusive && low == high),
                    "cannot sample from an empty range");
                let u = <$t as Standard>::from_rng(rng);
                low + u * (high - low)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range shapes accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_in(rng, lo, hi, true)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draws a value uniformly over `T`'s whole domain
    /// (`[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded internally).
    fn seed_from_u64(state: u64) -> Self;
}

/// The concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator: xoshiro256++, seeded by
    /// running SplitMix64 over the 64-bit seed (the reference seeding
    /// procedure recommended by the xoshiro authors).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.random::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let k: usize = rng.random_range(0..5);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..500 {
            let x: f64 = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let y: f64 = rng.random_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&y));
            let k: i32 = rng.random_range(1..4);
            assert!((1..4).contains(&k));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate} far from 0.3");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: u32 = rng.random_range(5..5);
    }
}
