//! Node placement and the nearest-FBS association rule.
//!
//! "Assume each CR user knows the nearest FBS and is associated with
//! it" (Section IV-B). Users outside every FBS's coverage can only be
//! served by the MBS on the common channel.

use crate::geometry::Point;
use crate::interference::InterferenceGraph;
use crate::node::{CrUser, Fbs, FbsId, UserId};

/// A deployed femtocell CR network: MBS, FBSs, users, and the derived
/// association and interference structures.
///
/// # Examples
///
/// ```
/// use fcr_net::topology::Topology;
/// use fcr_net::node::{CrUser, Fbs, FbsId};
/// use fcr_net::geometry::Point;
///
/// let topo = Topology::new(
///     Point::ORIGIN,
///     vec![Fbs::new(Point::new(-50.0, 0.0), 30.0), Fbs::new(Point::new(50.0, 0.0), 30.0)],
///     vec![CrUser::new(Point::new(-45.0, 5.0)), CrUser::new(Point::new(48.0, -3.0))],
/// );
/// assert_eq!(topo.association(fcr_net::node::UserId(0)), Some(FbsId(0)));
/// assert_eq!(topo.association(fcr_net::node::UserId(1)), Some(FbsId(1)));
/// assert!(topo.interference_graph().edges().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    mbs_position: Point,
    fbss: Vec<Fbs>,
    users: Vec<CrUser>,
    association: Vec<Option<FbsId>>,
}

impl Topology {
    /// Builds a topology and computes the nearest-covering-FBS
    /// association for every user.
    pub fn new(mbs_position: Point, fbss: Vec<Fbs>, users: Vec<CrUser>) -> Self {
        let association = users
            .iter()
            .map(|u| {
                fbss.iter()
                    .enumerate()
                    .filter(|(_, f)| f.covers(u.position()))
                    .min_by(|(_, a), (_, b)| {
                        let da = a.position().distance(u.position());
                        let db = b.position().distance(u.position());
                        da.partial_cmp(&db).expect("distances are not NaN")
                    })
                    .map(|(i, _)| FbsId(i))
            })
            .collect();
        Self {
            mbs_position,
            fbss,
            users,
            association,
        }
    }

    /// MBS position.
    pub fn mbs_position(&self) -> Point {
        self.mbs_position
    }

    /// Number of FBSs (`N`).
    pub fn num_fbss(&self) -> usize {
        self.fbss.len()
    }

    /// Number of CR users (`K`).
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// All FBSs in id order.
    pub fn fbss(&self) -> &[Fbs] {
        &self.fbss
    }

    /// All users in id order.
    pub fn users(&self) -> &[CrUser] {
        &self.users
    }

    /// One FBS record.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn fbs(&self, id: FbsId) -> &Fbs {
        &self.fbss[id.0]
    }

    /// One user record.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn user(&self, id: UserId) -> &CrUser {
        &self.users[id.0]
    }

    /// The FBS user `id` is associated with, or `None` when the user is
    /// outside all femtocell coverage (MBS-only).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn association(&self, id: UserId) -> Option<FbsId> {
        self.association[id.0]
    }

    /// The user set `U_i` of FBS `i`.
    pub fn users_of(&self, fbs: FbsId) -> Vec<UserId> {
        self.association
            .iter()
            .enumerate()
            .filter(|(_, a)| **a == Some(fbs))
            .map(|(j, _)| UserId(j))
            .collect()
    }

    /// Distance from user `id` to the MBS.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn distance_to_mbs(&self, id: UserId) -> f64 {
        self.users[id.0].position().distance(self.mbs_position)
    }

    /// Distance from user `id` to FBS `fbs`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn distance_to_fbs(&self, id: UserId, fbs: FbsId) -> f64 {
        self.users[id.0]
            .position()
            .distance(self.fbss[fbs.0].position())
    }

    /// Derives the interference graph from coverage overlaps: FBSs whose
    /// disks overlap cannot reuse a channel (Definition 1 applied to
    /// Fig. 1's geometry). This is the *protocol* interference model.
    pub fn interference_graph(&self) -> InterferenceGraph {
        let mut edges = Vec::new();
        for i in 0..self.fbss.len() {
            for j in (i + 1)..self.fbss.len() {
                if self.fbss[i].overlaps(&self.fbss[j]) {
                    edges.push((FbsId(i), FbsId(j)));
                }
            }
        }
        InterferenceGraph::new(self.fbss.len(), &edges)
    }

    /// Derives the interference graph from the *physical* model: FBSs
    /// `i` and `j` interfere when the power FBS `i` would land at the
    /// cell edge of FBS `j` (its nearest point to `i`) is within
    /// `margin_db` of the serving power there — i.e. co-channel
    /// transmission would push a cell-edge user's carrier-to-
    /// interference ratio below the margin.
    ///
    /// `path_loss_db(distance_m)` is the propagation model (e.g.
    /// `fcr_spectrum::fading::PathLoss::loss_db`), assumed common to
    /// both links; transmit powers are assumed equal across FBSs, so
    /// only the geometry matters.
    ///
    /// # Panics
    ///
    /// Panics if `margin_db` is negative.
    pub fn interference_graph_physical(
        &self,
        path_loss_db: impl Fn(f64) -> f64,
        margin_db: f64,
    ) -> InterferenceGraph {
        assert!(margin_db >= 0.0, "C/I margin must be nonnegative");
        let mut edges = Vec::new();
        for i in 0..self.fbss.len() {
            for j in (i + 1)..self.fbss.len() {
                let d = self.fbss[i].position().distance(self.fbss[j].position());
                // Worst-case victim: a user at the edge of cell j on the
                // segment toward i (and symmetrically for cell i).
                let edge_ij = (d - self.fbss[j].coverage_radius()).max(0.0);
                let edge_ji = (d - self.fbss[i].coverage_radius()).max(0.0);
                let ci_at_j = path_loss_db(edge_ij) - path_loss_db(self.fbss[j].coverage_radius());
                let ci_at_i = path_loss_db(edge_ji) - path_loss_db(self.fbss[i].coverage_radius());
                if ci_at_j < margin_db || ci_at_i < margin_db {
                    edges.push((FbsId(i), FbsId(j)));
                }
            }
        }
        InterferenceGraph::new(self.fbss.len(), &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cell_topology() -> Topology {
        Topology::new(
            Point::ORIGIN,
            vec![
                Fbs::new(Point::new(-50.0, 0.0), 30.0),
                Fbs::new(Point::new(50.0, 0.0), 30.0),
            ],
            vec![
                CrUser::new(Point::new(-45.0, 5.0)),
                CrUser::new(Point::new(48.0, -3.0)),
                CrUser::new(Point::new(0.0, 200.0)), // out of all coverage
            ],
        )
    }

    #[test]
    fn association_picks_nearest_covering_fbs() {
        let t = two_cell_topology();
        assert_eq!(t.association(UserId(0)), Some(FbsId(0)));
        assert_eq!(t.association(UserId(1)), Some(FbsId(1)));
        assert_eq!(t.association(UserId(2)), None, "uncovered user is MBS-only");
    }

    #[test]
    fn users_of_partitions_covered_users() {
        let t = two_cell_topology();
        assert_eq!(t.users_of(FbsId(0)), vec![UserId(0)]);
        assert_eq!(t.users_of(FbsId(1)), vec![UserId(1)]);
        let covered: usize = (0..t.num_fbss()).map(|i| t.users_of(FbsId(i)).len()).sum();
        assert_eq!(covered, 2);
    }

    #[test]
    fn overlapping_user_goes_to_nearest() {
        let t = Topology::new(
            Point::ORIGIN,
            vec![
                Fbs::new(Point::new(-10.0, 0.0), 30.0),
                Fbs::new(Point::new(10.0, 0.0), 30.0),
            ],
            vec![CrUser::new(Point::new(3.0, 0.0))], // covered by both, nearer FBS 1
        );
        assert_eq!(t.association(UserId(0)), Some(FbsId(1)));
    }

    #[test]
    fn distances() {
        let t = two_cell_topology();
        assert!((t.distance_to_mbs(UserId(2)) - 200.0).abs() < 1e-9);
        assert!((t.distance_to_fbs(UserId(0), FbsId(0)) - 50f64.hypot(0.0) + 50.0).abs() < 10.0);
        assert!(t.distance_to_fbs(UserId(0), FbsId(0)) < t.distance_to_fbs(UserId(0), FbsId(1)));
    }

    #[test]
    fn interference_graph_from_overlaps() {
        // Far apart: no edges.
        let t = two_cell_topology();
        assert!(t.interference_graph().edges().is_empty());

        // Overlapping pair: one edge.
        let t2 = Topology::new(
            Point::ORIGIN,
            vec![
                Fbs::new(Point::new(0.0, 0.0), 30.0),
                Fbs::new(Point::new(40.0, 0.0), 30.0),
            ],
            vec![],
        );
        let g = t2.interference_graph();
        assert_eq!(g.edges(), vec![(FbsId(0), FbsId(1))]);
    }

    #[test]
    fn physical_interference_model_tracks_distance() {
        // Simple log-distance loss: 37 + 30·log10(d), clamped at 1 m.
        let pl = |d: f64| 37.0 + 30.0 * d.max(1.0).log10();
        let build = |gap: f64| {
            Topology::new(
                Point::ORIGIN,
                vec![
                    Fbs::new(Point::new(0.0, 0.0), 20.0),
                    Fbs::new(Point::new(gap, 0.0), 20.0),
                ],
                vec![],
            )
        };
        // Far apart: the interferer is much weaker than the server at the
        // cell edge — no edge at a 10 dB margin.
        let far = build(300.0).interference_graph_physical(pl, 10.0);
        assert!(far.edges().is_empty());
        // Close: cell-edge users see strong co-channel power — edge.
        let near = build(50.0).interference_graph_physical(pl, 10.0);
        assert_eq!(near.edges(), vec![(FbsId(0), FbsId(1))]);
        // A zero margin only flags overlapping-or-touching cells.
        let zero = build(300.0).interference_graph_physical(pl, 0.0);
        assert!(zero.edges().is_empty());
    }

    #[test]
    fn physical_model_is_at_least_as_strict_as_protocol_on_overlap() {
        // Overlapping disks ⇒ a victim can sit arbitrarily close to the
        // interferer ⇒ the physical model must also flag the pair for
        // any positive margin.
        let pl = |d: f64| 37.0 + 30.0 * d.max(1.0).log10();
        let t = Topology::new(
            Point::ORIGIN,
            vec![
                Fbs::new(Point::new(0.0, 0.0), 30.0),
                Fbs::new(Point::new(40.0, 0.0), 30.0),
            ],
            vec![],
        );
        assert_eq!(t.interference_graph().edges().len(), 1, "protocol model");
        let physical = t.interference_graph_physical(pl, 6.0);
        assert_eq!(physical.edges().len(), 1, "physical model agrees");
    }

    #[test]
    #[should_panic(expected = "margin")]
    fn negative_margin_panics() {
        let t = two_cell_topology();
        let _ = t.interference_graph_physical(|d| d, -1.0);
    }

    #[test]
    fn counts_and_accessors() {
        let t = two_cell_topology();
        assert_eq!(t.num_fbss(), 2);
        assert_eq!(t.num_users(), 3);
        assert_eq!(t.mbs_position(), Point::ORIGIN);
        assert_eq!(t.fbss().len(), 2);
        assert_eq!(t.users().len(), 3);
        assert_eq!(t.fbs(FbsId(0)).coverage_radius(), 30.0);
        assert_eq!(t.user(UserId(2)).position(), Point::new(0.0, 200.0));
    }
}
