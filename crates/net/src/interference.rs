//! The interference graph of Definition 1, and the combinatorics the
//! greedy bound (Theorem 2) and the exhaustive allocator need.
//!
//! "An interference graph `G_I = (V_I, E_I)` is an undirected graph
//! where each vertex represents an FBS and each edge indicates
//! interference between the two end FBSs." FBSs joined by an edge
//! cannot use the same licensed channel in the same slot (Lemma 4).

use crate::node::FbsId;
use std::fmt;

/// An undirected interference graph over `N` FBSs.
///
/// # Examples
///
/// The paper's Fig. 2 (derived from Fig. 1): FBSs 1 and 2 isolated,
/// an edge between FBSs 3 and 4 (0-indexed here):
///
/// ```
/// use fcr_net::interference::InterferenceGraph;
/// use fcr_net::node::FbsId;
///
/// let g = InterferenceGraph::new(4, &[(FbsId(2), FbsId(3))]);
/// assert_eq!(g.max_degree(), 1);
/// assert!(g.are_adjacent(FbsId(2), FbsId(3)));
/// assert!(!g.are_adjacent(FbsId(0), FbsId(1)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterferenceGraph {
    n: usize,
    adjacency: Vec<Vec<bool>>,
}

impl InterferenceGraph {
    /// Builds a graph on `n` vertices with the given undirected edges.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is out of range or a self-loop is
    /// given (an FBS cannot interfere with itself).
    pub fn new(n: usize, edges: &[(FbsId, FbsId)]) -> Self {
        let mut adjacency = vec![vec![false; n]; n];
        for &(a, b) in edges {
            assert!(a.0 < n && b.0 < n, "edge ({a}, {b}) out of range for n={n}");
            assert_ne!(a, b, "self-loop at {a}");
            adjacency[a.0][b.0] = true;
            adjacency[b.0][a.0] = true;
        }
        Self { n, adjacency }
    }

    /// A graph with no edges (the non-interfering case of Section IV-B,
    /// where `D_max = 0` and the distributed algorithm is optimal).
    pub fn edgeless(n: usize) -> Self {
        Self::new(n, &[])
    }

    /// Number of vertices (FBSs).
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Returns `true` if `a` and `b` interfere.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn are_adjacent(&self, a: FbsId, b: FbsId) -> bool {
        self.adjacency[a.0][b.0]
    }

    /// The interference neighborhood `R(i)` of Lemma 4.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn neighbors(&self, i: FbsId) -> Vec<FbsId> {
        self.adjacency[i.0]
            .iter()
            .enumerate()
            .filter(|(_, &adj)| adj)
            .map(|(j, _)| FbsId(j))
            .collect()
    }

    /// Degree of vertex `i`: the `D(l)` of Lemma 8.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn degree(&self, i: FbsId) -> usize {
        self.adjacency[i.0].iter().filter(|&&adj| adj).count()
    }

    /// `D_max`, the maximum vertex degree — the constant in Theorem 2's
    /// bound `Q(greedy) ≥ Q(opt)/(1 + D_max)`.
    pub fn max_degree(&self) -> usize {
        (0..self.n)
            .map(|i| self.degree(FbsId(i)))
            .max()
            .unwrap_or(0)
    }

    /// All undirected edges, each reported once with the smaller id
    /// first.
    pub fn edges(&self) -> Vec<(FbsId, FbsId)> {
        let mut out = Vec::new();
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if self.adjacency[i][j] {
                    out.push((FbsId(i), FbsId(j)));
                }
            }
        }
        out
    }

    /// Checks Lemma 4 over a per-channel assignment: `holders[m]` lists
    /// the FBSs using channel `m`. Returns `true` iff no two adjacent
    /// FBSs share a channel.
    pub fn is_conflict_free(&self, holders: &[Vec<FbsId>]) -> bool {
        holders.iter().all(|fbss| {
            for (idx, &a) in fbss.iter().enumerate() {
                for &b in &fbss[idx + 1..] {
                    if self.are_adjacent(a, b) {
                        return false;
                    }
                }
            }
            true
        })
    }

    /// Returns `true` if `set` is an independent set.
    pub fn is_independent(&self, set: &[FbsId]) -> bool {
        for (idx, &a) in set.iter().enumerate() {
            for &b in &set[idx + 1..] {
                if self.are_adjacent(a, b) {
                    return false;
                }
            }
        }
        true
    }

    /// Greedy vertex coloring in id order: assigns each FBS the
    /// smallest color not used by an already-colored neighbor.
    ///
    /// Color classes are independent sets, so a coloring is a legal
    /// way to pre-partition channels among FBSs (all FBSs of one color
    /// may share a channel). Uses at most `D_max + 1` colors — the same
    /// quantity that appears in Theorem 2's bound.
    pub fn greedy_coloring(&self) -> Vec<usize> {
        let mut colors = vec![usize::MAX; self.n];
        for v in 0..self.n {
            let mut used = vec![false; self.n + 1];
            for u in 0..v {
                if self.adjacency[v][u] {
                    used[colors[u]] = true;
                }
            }
            colors[v] = (0..).find(|c| !used[*c]).expect("some color free");
        }
        colors
    }

    /// Number of colors a greedy coloring uses (an upper bound on the
    /// chromatic number, itself at most `D_max + 1`).
    pub fn greedy_chromatic_number(&self) -> usize {
        self.greedy_coloring()
            .iter()
            .map(|c| c + 1)
            .max()
            .unwrap_or(0)
    }

    /// Enumerates all **maximal** independent sets.
    ///
    /// Because awarding a channel to more FBSs never hurts the
    /// allocation objective (channel counts only enter through
    /// `G_i = Σ c_{i,m} P^A_m ≥ 0`), the exhaustive optimal channel
    /// allocator only needs to consider assigning each channel to a
    /// maximal independent set. Exponential in `N`; intended for the
    /// small validation instances (`N ≤ 16`).
    ///
    /// # Panics
    ///
    /// Panics if `N > 24` to guard against accidental blow-up.
    pub fn maximal_independent_sets(&self) -> Vec<Vec<FbsId>> {
        assert!(
            self.n <= 24,
            "maximal IS enumeration is exponential; n={} too large",
            self.n
        );
        let mut result = Vec::new();
        for mask in 0u32..(1u32 << self.n) {
            let set: Vec<FbsId> = (0..self.n)
                .filter(|i| mask & (1 << i) != 0)
                .map(FbsId)
                .collect();
            if set.is_empty() || !self.is_independent(&set) {
                continue;
            }
            // Maximal: no vertex outside the set can be added.
            let maximal = (0..self.n)
                .all(|v| mask & (1 << v) != 0 || set.iter().any(|&u| self.adjacency[u.0][v]));
            if maximal {
                result.push(set);
            }
        }
        result
    }
}

impl fmt::Display for InterferenceGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "InterferenceGraph(n={}, edges={:?})",
            self.n,
            self.edges()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The Fig. 5 simulation graph: FBS1—FBS2—FBS3 (a path).
    fn fig5() -> InterferenceGraph {
        InterferenceGraph::new(3, &[(FbsId(0), FbsId(1)), (FbsId(1), FbsId(2))])
    }

    #[test]
    fn fig2_graph_properties() {
        let g = InterferenceGraph::new(4, &[(FbsId(2), FbsId(3))]);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.max_degree(), 1);
        assert_eq!(g.degree(FbsId(0)), 0);
        assert_eq!(g.degree(FbsId(3)), 1);
        assert_eq!(g.neighbors(FbsId(2)), vec![FbsId(3)]);
        assert_eq!(g.edges(), vec![(FbsId(2), FbsId(3))]);
    }

    #[test]
    fn fig5_graph_properties() {
        let g = fig5();
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.degree(FbsId(1)), 2);
        assert!(g.are_adjacent(FbsId(0), FbsId(1)));
        assert!(!g.are_adjacent(FbsId(0), FbsId(2)));
    }

    #[test]
    fn edgeless_graph_has_dmax_zero() {
        let g = InterferenceGraph::edgeless(5);
        assert_eq!(g.max_degree(), 0);
        assert!(g.edges().is_empty());
        // All 5 FBSs can share every channel (Section IV-B).
        let all: Vec<FbsId> = (0..5).map(FbsId).collect();
        assert!(g.is_independent(&all));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let _ = InterferenceGraph::new(2, &[(FbsId(0), FbsId(5))]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let _ = InterferenceGraph::new(2, &[(FbsId(1), FbsId(1))]);
    }

    #[test]
    fn conflict_checking_lemma4() {
        let g = fig5();
        // Channel 0 to FBS 0 and 2 (non-adjacent): fine.
        assert!(g.is_conflict_free(&[vec![FbsId(0), FbsId(2)]]));
        // Channel 0 to FBS 0 and 1 (adjacent): conflict.
        assert!(!g.is_conflict_free(&[vec![FbsId(0), FbsId(1)]]));
        // Different channels can repeat FBSs freely.
        assert!(g.is_conflict_free(&[vec![FbsId(0)], vec![FbsId(1)], vec![FbsId(0), FbsId(2)]]));
        assert!(g.is_conflict_free(&[]));
    }

    #[test]
    fn maximal_independent_sets_of_path3() {
        let g = fig5();
        let mut sets = g.maximal_independent_sets();
        for s in &mut sets {
            s.sort_unstable();
        }
        sets.sort();
        // Path 0—1—2: maximal ISs are {1} and {0, 2}.
        assert_eq!(sets, vec![vec![FbsId(0), FbsId(2)], vec![FbsId(1)]]);
    }

    #[test]
    fn maximal_independent_sets_of_edgeless() {
        let g = InterferenceGraph::edgeless(3);
        let sets = g.maximal_independent_sets();
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].len(), 3, "only the full set is maximal");
    }

    #[test]
    fn maximal_independent_sets_of_triangle() {
        let g = InterferenceGraph::new(
            3,
            &[
                (FbsId(0), FbsId(1)),
                (FbsId(1), FbsId(2)),
                (FbsId(0), FbsId(2)),
            ],
        );
        let sets = g.maximal_independent_sets();
        assert_eq!(sets.len(), 3, "each singleton is maximal in a triangle");
        assert!(sets.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn display_mentions_edges() {
        let g = fig5();
        assert!(format!("{g}").contains("n=3"));
    }

    #[test]
    fn coloring_of_known_graphs() {
        // Path 0—1—2: 2 colors (0, 1, 0).
        assert_eq!(fig5().greedy_coloring(), vec![0, 1, 0]);
        assert_eq!(fig5().greedy_chromatic_number(), 2);
        // Edgeless: everyone color 0.
        let e = InterferenceGraph::edgeless(4);
        assert_eq!(e.greedy_coloring(), vec![0; 4]);
        assert_eq!(e.greedy_chromatic_number(), 1);
        // Triangle: 3 colors.
        let t = InterferenceGraph::new(
            3,
            &[
                (FbsId(0), FbsId(1)),
                (FbsId(1), FbsId(2)),
                (FbsId(0), FbsId(2)),
            ],
        );
        assert_eq!(t.greedy_chromatic_number(), 3);
        // Empty graph edge case.
        assert_eq!(InterferenceGraph::edgeless(0).greedy_chromatic_number(), 0);
    }

    proptest! {
        #[test]
        fn random_graphs_have_consistent_degrees(
            n in 1usize..8,
            edge_bits in proptest::collection::vec(proptest::bool::ANY, 28),
        ) {
            let mut edges = Vec::new();
            let mut k = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    if edge_bits[k % edge_bits.len()] {
                        edges.push((FbsId(i), FbsId(j)));
                    }
                    k += 1;
                }
            }
            let g = InterferenceGraph::new(n, &edges);
            // Handshake lemma.
            let degree_sum: usize = (0..n).map(|i| g.degree(FbsId(i))).sum();
            prop_assert_eq!(degree_sum, 2 * g.edges().len());
            prop_assert!(g.max_degree() <= n.saturating_sub(1));

            // Greedy coloring is proper and within the Brooks-style
            // bound D_max + 1.
            let colors = g.greedy_coloring();
            for (a, b) in g.edges() {
                prop_assert_ne!(colors[a.0], colors[b.0], "improper coloring");
            }
            prop_assert!(g.greedy_chromatic_number() <= g.max_degree() + 1);

            // Every maximal IS is independent and maximal.
            for set in g.maximal_independent_sets() {
                prop_assert!(g.is_independent(&set));
                for v in 0..n {
                    if !set.contains(&FbsId(v)) {
                        let mut extended = set.clone();
                        extended.push(FbsId(v));
                        prop_assert!(!g.is_independent(&extended),
                            "set {:?} not maximal: can add {v}", set);
                    }
                }
            }
        }
    }
}
