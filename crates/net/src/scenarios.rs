//! Canonical deployment scenarios from the paper's figures, plus a
//! random-topology generator for stress tests.

use crate::geometry::Point;
use crate::node::{CrUser, Fbs};
use crate::topology::Topology;
use rand::{Rng, RngExt};

/// Scenario A (Section V-A): a single FBS serving `num_users` CR users
/// inside its coverage, with the MBS at the area center.
///
/// # Examples
///
/// ```
/// use fcr_net::scenarios::single_fbs;
///
/// let topo = single_fbs(3);
/// assert_eq!(topo.num_fbss(), 1);
/// assert_eq!(topo.num_users(), 3);
/// assert_eq!(topo.interference_graph().max_degree(), 0);
/// ```
pub fn single_fbs(num_users: usize) -> Topology {
    let fbs_center = Point::new(80.0, 0.0);
    let users = ring_of_users(fbs_center, 12.0, num_users);
    Topology::new(Point::ORIGIN, vec![Fbs::new(fbs_center, 30.0)], users)
}

/// Scenario B (Section V-B / Fig. 5): three FBSs in a line where FBS 1–2
/// and FBS 2–3 coverages overlap but 1–3 do not — the path interference
/// graph of Fig. 5 — with `users_per_fbs` users around each FBS.
pub fn paper_fig5_with_users(users_per_fbs: usize) -> Topology {
    let centers = [
        Point::new(-45.0, 0.0),
        Point::new(0.0, 0.0),
        Point::new(45.0, 0.0),
    ];
    let mut users = Vec::new();
    for c in centers {
        users.extend(ring_of_users(c, 10.0, users_per_fbs));
    }
    Topology::new(
        Point::new(0.0, 120.0),
        centers.iter().map(|&c| Fbs::new(c, 28.0)).collect(),
        users,
    )
}

/// Scenario B with the paper's three users per FBS.
pub fn paper_fig5() -> Topology {
    paper_fig5_with_users(3)
}

/// The illustrative Fig. 1 layout: four FBSs, where only FBSs 3 and 4
/// (0-indexed: 2 and 3) overlap, reproducing the Fig. 2 interference
/// graph.
pub fn paper_fig1(users_per_fbs: usize) -> Topology {
    let centers = [
        Point::new(-100.0, 60.0),
        Point::new(100.0, 60.0),
        Point::new(-20.0, -60.0),
        Point::new(20.0, -60.0),
    ];
    let mut users = Vec::new();
    for c in centers {
        users.extend(ring_of_users(c, 10.0, users_per_fbs));
    }
    Topology::new(
        Point::ORIGIN,
        centers.iter().map(|&c| Fbs::new(c, 28.0)).collect(),
        users,
    )
}

/// Uniformly random deployment inside a square of the given side:
/// `num_fbss` femtocells of radius `coverage`, each with
/// `users_per_fbs` users placed uniformly inside its disk.
pub fn random_topology<R: Rng + ?Sized>(
    num_fbss: usize,
    users_per_fbs: usize,
    side: f64,
    coverage: f64,
    rng: &mut R,
) -> Topology {
    assert!(
        side > 0.0 && coverage > 0.0,
        "side and coverage must be positive"
    );
    let mut fbss = Vec::with_capacity(num_fbss);
    let mut users = Vec::new();
    for _ in 0..num_fbss {
        let c = Point::new(
            rng.random_range(-side / 2.0..side / 2.0),
            rng.random_range(-side / 2.0..side / 2.0),
        );
        fbss.push(Fbs::new(c, coverage));
        for _ in 0..users_per_fbs {
            // Uniform in the disk via rejection-free polar sampling.
            let r = coverage * 0.9 * rng.random::<f64>().sqrt();
            let theta = rng.random_range(0.0..std::f64::consts::TAU);
            users.push(CrUser::new(Point::new(
                c.x + r * theta.cos(),
                c.y + r * theta.sin(),
            )));
        }
    }
    Topology::new(Point::ORIGIN, fbss, users)
}

/// Places `n` users evenly on a circle of radius `r` around `center`.
fn ring_of_users(center: Point, r: f64, n: usize) -> Vec<CrUser> {
    (0..n)
        .map(|k| {
            let theta = std::f64::consts::TAU * k as f64 / n.max(1) as f64;
            CrUser::new(Point::new(
                center.x + r * theta.cos(),
                center.y + r * theta.sin(),
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{FbsId, UserId};
    use fcr_stats::rng::SeedSequence;

    #[test]
    fn single_fbs_covers_all_users() {
        let t = single_fbs(3);
        for j in 0..3 {
            assert_eq!(t.association(UserId(j)), Some(FbsId(0)), "user {j}");
        }
        assert_eq!(t.interference_graph().max_degree(), 0);
    }

    #[test]
    fn fig5_builds_the_path_graph() {
        let t = paper_fig5();
        let g = t.interference_graph();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(
            g.edges(),
            vec![(FbsId(0), FbsId(1)), (FbsId(1), FbsId(2))],
            "1–2 and 2–3 overlap, 1–3 does not (Fig. 5)"
        );
        assert_eq!(g.max_degree(), 2);
        // Three users per FBS, all associated with their own FBS.
        for i in 0..3 {
            assert_eq!(t.users_of(FbsId(i)).len(), 3, "fbs {i}");
        }
    }

    #[test]
    fn fig1_reproduces_fig2_interference_graph() {
        let t = paper_fig1(2);
        let g = t.interference_graph();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.edges(), vec![(FbsId(2), FbsId(3))]);
        assert_eq!(g.max_degree(), 1);
        assert_eq!(t.num_users(), 8);
    }

    #[test]
    fn random_topology_is_deterministic_and_covered() {
        let mut rng = SeedSequence::new(1).stream("topo", 0);
        let t = random_topology(4, 3, 300.0, 30.0, &mut rng);
        assert_eq!(t.num_fbss(), 4);
        assert_eq!(t.num_users(), 12);
        // Every user was placed strictly inside some FBS disk, so all
        // users are associated.
        for j in 0..t.num_users() {
            assert!(t.association(UserId(j)).is_some(), "user {j} uncovered");
        }
        let mut rng2 = SeedSequence::new(1).stream("topo", 0);
        let t2 = random_topology(4, 3, 300.0, 30.0, &mut rng2);
        assert_eq!(t, t2);
    }

    #[test]
    fn ring_distributes_users() {
        let users = ring_of_users(Point::ORIGIN, 10.0, 4);
        assert_eq!(users.len(), 4);
        for u in &users {
            assert!((u.position().distance(Point::ORIGIN) - 10.0).abs() < 1e-9);
        }
    }
}
