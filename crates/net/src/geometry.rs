//! Planar geometry for node placement.

use std::fmt;

/// A point in the deployment plane, in metres.
///
/// # Examples
///
/// ```
/// use fcr_net::geometry::Point;
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// x coordinate in metres.
    pub x: f64,
    /// y coordinate in metres.
    pub y: f64,
}

impl Point {
    /// The origin.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Squared distance (avoids the square root for comparisons).
    pub fn distance_squared(&self, other: Point) -> f64 {
        (self.x - other.x).powi(2) + (self.y - other.y).powi(2)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pythagorean_distance() {
        assert_eq!(Point::new(0.0, 0.0).distance(Point::new(3.0, 4.0)), 5.0);
        assert_eq!(Point::ORIGIN.distance(Point::ORIGIN), 0.0);
    }

    #[test]
    fn squared_distance_consistent() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert!((a.distance_squared(b) - a.distance(b).powi(2)).abs() < 1e-12);
    }

    #[test]
    fn conversions_and_display() {
        let p: Point = (2.0, 3.0).into();
        assert_eq!(p, Point::new(2.0, 3.0));
        assert_eq!(format!("{p}"), "(2.0, 3.0)");
    }

    proptest! {
        #[test]
        fn distance_is_symmetric(
            x1 in -1e3..1e3f64, y1 in -1e3..1e3f64,
            x2 in -1e3..1e3f64, y2 in -1e3..1e3f64,
        ) {
            let a = Point::new(x1, y1);
            let b = Point::new(x2, y2);
            prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-9);
        }

        #[test]
        fn triangle_inequality(
            x1 in -1e3..1e3f64, y1 in -1e3..1e3f64,
            x2 in -1e3..1e3f64, y2 in -1e3..1e3f64,
            x3 in -1e3..1e3f64, y3 in -1e3..1e3f64,
        ) {
            let a = Point::new(x1, y1);
            let b = Point::new(x2, y2);
            let c = Point::new(x3, y3);
            prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
        }
    }
}
