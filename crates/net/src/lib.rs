//! Femtocell network-topology substrate.
//!
//! The paper's network (Fig. 1) has one macro base station (MBS) on the
//! common channel, `N` femto base stations (FBS) with finite coverage
//! disks, and `K` CR users each associated with the nearest FBS that
//! covers it. Overlapping FBS coverages induce an **interference graph**
//! (Definition 1): vertices are FBSs, edges connect FBSs that cannot
//! reuse the same licensed channel simultaneously.
//!
//! Modules:
//!
//! * [`geometry`] — planar points and distances;
//! * [`node`] — typed identifiers and node records for the MBS, FBSs,
//!   and CR users;
//! * [`topology`] — placement plus the nearest-FBS association rule;
//! * [`interference`] — the interference graph, its degrees (which set
//!   the Theorem-2 bound `1/(1+D_max)`), conflict checking (Lemma 4),
//!   and maximal-independent-set enumeration used by the exhaustive
//!   optimal channel allocator;
//! * [`scenarios`] — the canonical topologies of the paper's evaluation
//!   (single FBS; the Fig. 5 three-FBS path; the Fig. 1 four-FBS
//!   layout) and a random-topology generator.
//!
//! # Examples
//!
//! ```
//! use fcr_net::scenarios;
//!
//! let scenario = scenarios::paper_fig5();
//! let graph = scenario.interference_graph();
//! assert_eq!(graph.num_vertices(), 3);
//! assert_eq!(graph.max_degree(), 2); // FBS 2 interferes with both ends
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod geometry;
pub mod interference;
pub mod node;
pub mod scenarios;
pub mod topology;

pub use geometry::Point;
pub use interference::InterferenceGraph;
pub use node::{BaseStation, CrUser, Fbs, FbsId, UserId};
pub use topology::Topology;
