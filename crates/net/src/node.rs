//! Typed node identifiers and records.

use crate::geometry::Point;
use std::fmt;

/// Identifier of a femto base station, `0..N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FbsId(pub usize);

impl fmt::Display for FbsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fbs{}", self.0)
    }
}

/// Identifier of a CR user, `0..K`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UserId(pub usize);

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "user{}", self.0)
    }
}

/// The base station serving a user in a given slot: the MBS on the
/// common channel, or an FBS on licensed channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaseStation {
    /// The macro base station (common channel, index 0 in the paper).
    Mbs,
    /// A femto base station (licensed channels).
    Fbs(FbsId),
}

impl fmt::Display for BaseStation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseStation::Mbs => write!(f, "mbs"),
            BaseStation::Fbs(id) => write!(f, "{id}"),
        }
    }
}

/// A femto base station: position and coverage radius.
///
/// # Examples
///
/// ```
/// use fcr_net::node::Fbs;
/// use fcr_net::geometry::Point;
///
/// let fbs = Fbs::new(Point::new(0.0, 0.0), 30.0);
/// assert!(fbs.covers(Point::new(20.0, 0.0)));
/// assert!(!fbs.covers(Point::new(40.0, 0.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fbs {
    position: Point,
    coverage_radius: f64,
}

impl Fbs {
    /// Creates an FBS at `position` with the given coverage radius in
    /// metres.
    ///
    /// # Panics
    ///
    /// Panics if `coverage_radius` is not strictly positive.
    pub fn new(position: Point, coverage_radius: f64) -> Self {
        assert!(
            coverage_radius > 0.0 && coverage_radius.is_finite(),
            "coverage radius must be positive, got {coverage_radius}"
        );
        Self {
            position,
            coverage_radius,
        }
    }

    /// The FBS position.
    pub fn position(&self) -> Point {
        self.position
    }

    /// The coverage radius in metres.
    pub fn coverage_radius(&self) -> f64 {
        self.coverage_radius
    }

    /// Returns `true` if `p` lies within coverage.
    pub fn covers(&self, p: Point) -> bool {
        self.position.distance(p) <= self.coverage_radius
    }

    /// Returns `true` if this FBS's coverage disk overlaps `other`'s —
    /// the condition that puts an edge between them in the interference
    /// graph.
    pub fn overlaps(&self, other: &Fbs) -> bool {
        self.position.distance(other.position) < self.coverage_radius + other.coverage_radius
    }
}

/// A CR user: a position in the plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrUser {
    position: Point,
}

impl CrUser {
    /// Creates a user at `position`.
    pub fn new(position: Point) -> Self {
        Self { position }
    }

    /// The user position.
    pub fn position(&self) -> Point {
        self.position
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display() {
        assert_eq!(format!("{}", FbsId(2)), "fbs2");
        assert_eq!(format!("{}", UserId(5)), "user5");
        assert_eq!(format!("{}", BaseStation::Mbs), "mbs");
        assert_eq!(format!("{}", BaseStation::Fbs(FbsId(1))), "fbs1");
    }

    #[test]
    fn coverage_test_is_inclusive_at_boundary() {
        let fbs = Fbs::new(Point::ORIGIN, 10.0);
        assert!(fbs.covers(Point::new(10.0, 0.0)));
        assert!(!fbs.covers(Point::new(10.0001, 0.0)));
        assert_eq!(fbs.coverage_radius(), 10.0);
        assert_eq!(fbs.position(), Point::ORIGIN);
    }

    #[test]
    fn overlap_is_strict_at_tangency() {
        let a = Fbs::new(Point::ORIGIN, 10.0);
        let b = Fbs::new(Point::new(20.0, 0.0), 10.0);
        // Exactly tangent disks do not overlap (no shared interior).
        assert!(!a.overlaps(&b));
        let c = Fbs::new(Point::new(19.9, 0.0), 10.0);
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&a), "overlap is symmetric");
    }

    #[test]
    #[should_panic(expected = "coverage radius")]
    fn zero_radius_panics() {
        let _ = Fbs::new(Point::ORIGIN, 0.0);
    }

    #[test]
    fn user_accessors() {
        let u = CrUser::new(Point::new(1.0, 2.0));
        assert_eq!(u.position(), Point::new(1.0, 2.0));
    }
}
