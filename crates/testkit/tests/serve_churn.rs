//! Churn storms through the always-on service under the standard
//! chaos corpus: seeded worker panics, execution delays, and resize
//! storms must not cost the service a single session or byte —
//! exact accounting, zero loss, zero double-accounting, and outputs
//! bit-identical to the batch path.
//!
//! Seeds come from `PROPTEST_SEED` when set (CI's randomized pass) so
//! the storms re-randomize per run; every assertion message carries
//! the case seed for replay.

use fcr_sim::config::SimConfig;
use fcr_sim::{Scenario, Scheme};
use fcr_testkit::faults::{install_quiet_hook, standard_cases};
use fcr_testkit::seeds::case_seed;
use fcr_testkit::serve_storm::verify_serve_under_faults;
use fcr_testkit::CI_SEED;

fn base_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(CI_SEED)
}

#[test]
fn churn_storms_preserve_accounting_and_bit_identity() {
    install_quiet_hook();
    let cfg = SimConfig {
        gops: 4,
        deadline: 4,
        num_channels: 4,
        ..SimConfig::default()
    };
    let scenario = Scenario::single_fbs(&cfg);
    let sessions = 6u64;
    let seed = case_seed("serve-churn", base_seed());

    let mut names = Vec::new();
    for case in standard_cases(seed) {
        let v = verify_serve_under_faults(&case, &cfg, &scenario, Scheme::Proposed, seed, sessions);
        assert!(
            v.report.total_injected() > 0,
            "case {} fired no faults",
            case.name
        );
        assert_eq!(
            v.admitted,
            v.completed + v.retired,
            "case {}: admissions not conserved",
            case.name
        );
        assert!(
            v.admitted > sessions,
            "case {}: churn must re-admit replacements ({} admitted)",
            case.name,
            v.admitted
        );
        assert_eq!(
            v.outputs_verified, v.completed,
            "case {}: every completed session must be verified",
            case.name
        );
        assert!(
            v.outputs_verified > 0,
            "case {}: storm completed nothing — nothing was verified",
            case.name
        );
        names.push(v.case_name);
    }
    assert_eq!(
        names,
        vec!["panic-storm", "delay-storm", "resize-storm", "mixed-chaos"]
    );
}
