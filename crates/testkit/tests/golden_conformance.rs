//! Golden-trace conformance for the paper-figure scenarios.
//!
//! Each golden is rendered twice in a row *and* under two different
//! shard policies before being compared to the stored file — so the
//! suite simultaneously proves (a) the renderer is byte-stable, (b)
//! sharding never perturbs numbers, and (c) the numbers match the
//! reviewed goldens.
//!
//! To refresh after an intentional change:
//!
//! ```text
//! FCR_REGEN_GOLDENS=1 cargo test -p fcr-testkit --test golden_conformance
//! git diff crates/testkit/goldens   # review, then commit
//! ```

use fcr_runtime::ShardPolicy;
use fcr_testkit::golden::{
    check_or_regen, fig3_golden, fig3_packet_golden, fig4_golden, fig6_golden,
};

fn assert_conformant(name: &str, render: impl Fn(ShardPolicy) -> String) {
    let first = render(ShardPolicy::WholeRun);
    let second = render(ShardPolicy::WholeRun);
    assert_eq!(
        first, second,
        "golden {name}: two consecutive renders differ — renderer is not byte-stable"
    );
    let resharded = render(ShardPolicy::Windows(3));
    assert_eq!(
        first, resharded,
        "golden {name}: WholeRun vs Windows(3) renders differ — sharding perturbs numbers"
    );
    assert!(!first.is_empty(), "golden {name} rendered empty");
    assert!(
        first
            .lines()
            .all(|l| l.starts_with('{') && l.ends_with('}')),
        "golden {name} contains a non-JSONL line"
    );
    check_or_regen(name, &first).unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn fig3_fluid_trace_is_conformant() {
    assert_conformant("fig3", fig3_golden);
}

#[test]
fn fig3_packet_trace_is_conformant() {
    assert_conformant("fig3_packet", fig3_packet_golden);
}

#[test]
fn fig4_sensing_grid_is_conformant() {
    assert_conformant("fig4", fig4_golden);
}

#[test]
fn fig6_interfering_scenario_is_conformant() {
    assert_conformant("fig6", fig6_golden);
}

/// Every shipped scenario pack gets the same treatment as the paper
/// figures: its canonical trace (batch results + churn schedule) must
/// be byte-stable across consecutive renders and across WholeRun vs
/// Windows(3) sharding, and must match the stored
/// `goldens/pack_<name>.jsonl`.
#[test]
fn every_shipped_pack_trace_is_conformant() {
    for pack in fcr_scenario::shipped::shipped() {
        assert_conformant(&format!("pack_{}", pack.name), |shards| {
            fcr_scenario::render_trace(&pack, shards)
        });
    }
}
