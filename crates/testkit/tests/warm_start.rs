//! Warm-start and incremental-greedy properties (DESIGN §15).
//!
//! The massive-N path reuses work across slots two ways: the dual
//! solve resumes the previous slot's prices λ and step-schedule
//! position τ, and the greedy caches per-candidate `Q` evaluations
//! across steps. Neither shortcut may change *what* is computed —
//! warm solves must land where cold solves land on every perturbed
//! channel state the generator emits, and the cached greedy must stay
//! inside the same 2× deviation-6 slack the cold greedy is held to by
//! `properties.rs`.

use fcr_core::dual::DualSolver;
use fcr_core::{bounds, ExhaustiveAllocator, GreedyAllocator, WaterfillingSolver};
use fcr_sim::massive::{generate_problem, perturb_problem, MassiveConfig, MassiveDriver};
use fcr_testkit::generators::arb_interfering_problem;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Warm-started and cold-started dual solves agree within dual
    /// tolerance on perturbed channel states: after anchoring a
    /// lineage on slot 0, the perturbed slot 1 solved warm must match
    /// a from-scratch cold solve of the *same* slot problem — same
    /// feasibility, same objective up to the `O(s)`-truncation slack
    /// the polish pass leaves — while never iterating longer.
    #[test]
    fn warm_and_cold_dual_solves_agree_on_perturbed_states(
        seed in 0u64..512,
        num_fbss in 4usize..20,
        magnitude in 1e-5f64..3e-3,
    ) {
        let cfg = MassiveConfig {
            num_fbss,
            cluster_size: 3,
            ..MassiveConfig::default()
        };
        let slot0 = generate_problem(&cfg, seed);
        let mut driver = MassiveDriver::new(cfg);
        driver.solve_slot_serial(&slot0);

        let slot1 = perturb_problem(&slot0, seed ^ 0x5eed, magnitude);
        let warm = driver.solve_slot_serial(&slot1);
        prop_assert_eq!(
            (driver.state().cold_solves(), driver.state().warm_solves()),
            (1, 1)
        );

        let slot_problem = slot1.problem_for(&warm.assignment);
        let cold = DualSolver::new(cfg.dual_for(num_fbss)).solve(&slot_problem);

        prop_assert!(slot_problem.is_feasible(warm.solution.allocation(), 1e-6));
        let scale = cold.objective().abs().max(1.0);
        prop_assert!(
            (warm.solution.objective() - cold.objective()).abs() <= 1e-4 * scale,
            "warm objective {} vs cold {} at N={} magnitude={}",
            warm.solution.objective(),
            cold.objective(),
            num_fbss,
            magnitude
        );
        prop_assert!(
            warm.solution.iterations() <= cold.iterations(),
            "warm start iterated longer ({} vs {}) than cold",
            warm.solution.iterations(),
            cold.iterations()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The incremental `Q` cache never violates the bounds the cold
    /// greedy is held to: Theorem 2 and eq. (23) with the same 2×
    /// re-optimization slack as `properties.rs`, optimality against
    /// the exhaustive allocator, and agreement with the cold sweep
    /// within that slack. A stale cache entry surviving a deviation-6
    /// invalidation would surface here as a bound violation.
    #[test]
    fn incremental_greedy_stays_inside_the_deviation6_slack(
        problem in arb_interfering_problem(),
    ) {
        let solver = WaterfillingSolver::exact_up_to(3);
        let incremental = GreedyAllocator::with_solver(solver)
            .incremental(true)
            .allocate(&problem);
        let cold = GreedyAllocator::with_solver(solver).allocate(&problem);
        let opt = ExhaustiveAllocator::with_solver(solver).allocate(&problem);
        let d_max = problem.graph().max_degree();

        prop_assert!(incremental.q_value() <= opt.q_value() + 1e-9);

        let slack = 0.15 * opt.gain().max(0.0);
        prop_assert!(
            bounds::satisfies_theorem2(incremental.gain(), opt.gain(), d_max, slack),
            "incremental greedy broke Theorem 2 beyond the slack: {} vs optimal {} at D_max {}",
            incremental.gain(),
            opt.gain(),
            d_max
        );
        prop_assert!(
            incremental.upper_bound() >= opt.q_value() - 0.30 * opt.gain().max(0.0),
            "incremental eq.-(23) bound {} below exhaustive optimum {}",
            incremental.upper_bound(),
            opt.q_value()
        );
        // The cache may at worst re-order near-tie picks; it must not
        // cost more than the measured deviation-6 slack vs the cold
        // sweep (they are byte-identical on almost every instance).
        prop_assert!(
            incremental.q_value() >= cold.q_value() - slack - 1e-9,
            "incremental {} fell beyond the slack under the cold sweep {}",
            incremental.q_value(),
            cold.q_value()
        );
        prop_assert_eq!(incremental.assignment().num_channels(), cold.assignment().num_channels());
    }
}
