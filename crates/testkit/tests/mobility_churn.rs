//! Property suite for mobility/handover churn: sessions are conserved
//! across handovers, the serve accounting identity (with the
//! handed-over term) holds on every transition, and FBS→MBS handovers
//! free and acquire budget units *exactly*.
//!
//! Seeds come from `PROPTEST_SEED` when set (CI's randomized pass);
//! every assertion message carries the case seed for replay.

use fcr_runtime::{Runtime, RuntimeConfig};
use fcr_scenario::{
    ArrivalSpec, ChurnDriver, ChurnSchedule, ChurnSpec, MobilitySpec, Pack, PuBurstSpec,
    TopologySpec,
};
use fcr_serve::{HandoverKind, HandoverOutcome, ServeConfig, Service};
use fcr_testkit::seeds::{case_seed, CI_SEED};
use std::sync::Arc;

fn base_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(CI_SEED)
}

/// A smoke-scale churn pack derived from `seed`, guaranteed to carry
/// mobility and churn sections.
fn churn_pack(seed: u64) -> Pack {
    let mut pack = Pack::generate(seed);
    pack.topology = TopologySpec::PaperFig5 { users_per_fbs: 2 };
    pack.channel.gops = Some(1);
    pack.channel.deadline = Some(2);
    pack.channel.num_channels = Some(2);
    pack.runs = 1;
    // Steps of 12 m against fig-5's 28 m cells make all three
    // handover kinds common within a 25-slot horizon.
    pack.mobility = Some(MobilitySpec {
        step_m: 12.0,
        hysteresis_m: 2.0,
    });
    pack.churn = Some(ChurnSpec {
        slots: 25,
        arrivals: ArrivalSpec::Poisson { rate_per_slot: 0.7 },
        mean_hold_slots: 10.0,
        mbs_budget: 6.0,
        max_sessions: 32,
        pu_bursts: Some(PuBurstSpec {
            bursts: 2,
            mean_duration_slots: 5.0,
            utilization_boost: 0.1,
        }),
    });
    pack.validate().expect("churn pack valid");
    pack
}

fn small_service(budget: f64) -> Service {
    Service::new(
        ServeConfig {
            mbs_budget: budget,
            ..ServeConfig::default()
        },
        Arc::new(Runtime::with_config(RuntimeConfig {
            workers: 2,
            ..RuntimeConfig::default()
        })),
    )
}

/// Sessions are conserved through arbitrary churn + handover replay:
/// everyone who arrives is admitted or rejected; everyone admitted is
/// eventually retired, completed, or shed; the ledger drains to zero.
/// The extended accounting identity is asserted *inside* the service
/// on every admit/handover/retire/step this replay performs.
#[test]
fn sessions_are_conserved_across_mobility_churn() {
    for case in 0..3u64 {
        let seed = case_seed("mobility-churn", base_seed() ^ case);
        let pack = churn_pack(seed);
        let handovers_scheduled = ChurnSchedule::generate(&pack)
            .events
            .iter()
            .filter(|e| matches!(e.kind, fcr_scenario::ChurnEventKind::Handover { .. }))
            .count();
        assert!(
            handovers_scheduled > 0,
            "seed {seed}: churn pack scheduled no handovers — weaken nothing, fix the pack"
        );
        let service = small_service(pack.churn.expect("churn").mbs_budget);
        let report = ChurnDriver::run(&pack, &service);
        let snap = service.snapshot();
        assert_eq!(
            report.arrivals,
            report.admitted + report.rejected_admissions,
            "seed {seed}: every arrival is admitted or rejected"
        );
        assert_eq!(
            snap.admitted,
            snap.completed + snap.retired + snap.shed,
            "seed {seed}: admitted sessions all reach a terminal state"
        );
        assert_eq!(snap.active, 0, "seed {seed}: no session leaks past quiesce");
        assert_eq!(
            snap.mbs_in_use, 0.0,
            "seed {seed}: the budget ledger drains to zero"
        );
        assert_eq!(
            report.handovers_attempted,
            report.handovers_completed + report.handovers_rejected,
            "seed {seed}: every attempted handover resolves"
        );
        assert_eq!(
            snap.handovers_fbs_fbs + snap.handovers_fbs_mbs + snap.handovers_mbs_fbs,
            report.handovers_completed,
            "seed {seed}: service counters agree with the driver"
        );
    }
}

/// Schedule-level conservation: each ordinal arrives exactly once and
/// retires exactly once, strictly later — under every generated seed.
#[test]
fn schedules_conserve_sessions_for_every_seed() {
    use fcr_scenario::ChurnEventKind;
    use std::collections::HashMap;
    for case in 0..8u64 {
        let seed = case_seed("churn-schedule", base_seed() ^ case);
        let pack = churn_pack(seed);
        let schedule = ChurnSchedule::generate(&pack);
        assert_eq!(
            schedule,
            ChurnSchedule::generate(&pack),
            "seed {seed}: schedule not a pure function of the pack"
        );
        let mut arrive: HashMap<u64, u64> = HashMap::new();
        let mut retire: HashMap<u64, u64> = HashMap::new();
        for e in &schedule.events {
            match e.kind {
                ChurnEventKind::Arrive { .. } => {
                    assert!(
                        arrive.insert(e.ordinal, e.slot).is_none(),
                        "seed {seed}: ordinal {} arrives twice",
                        e.ordinal
                    );
                }
                ChurnEventKind::Retire => {
                    assert!(
                        retire.insert(e.ordinal, e.slot).is_none(),
                        "seed {seed}: ordinal {} retires twice",
                        e.ordinal
                    );
                }
                ChurnEventKind::Handover { .. } => {}
            }
        }
        assert_eq!(
            arrive.len() as u64,
            schedule.sessions,
            "seed {seed}: session count mismatch"
        );
        assert_eq!(
            retire.len(),
            arrive.len(),
            "seed {seed}: arrivals and retires must pair up"
        );
        for (ordinal, at) in &arrive {
            assert!(
                retire[ordinal] > *at,
                "seed {seed}: ordinal {ordinal} retires at or before arrival"
            );
        }
    }
}

/// The FBS→MBS ledger swap is *exact* in integer budget units: after
/// the handover the in-use ledger equals the macro claim to the unit,
/// and the return trip restores the femto claim to the unit.
#[test]
fn budget_units_swap_exactly_on_macro_handover() {
    let seed = case_seed("budget-swap", base_seed());
    let pack = churn_pack(seed);
    let scenario = Arc::new(pack.scenario());
    let spec = pack.session_spec(&scenario, 0);
    let femto_claim = Service::estimate_demand(&spec);
    let macro_demand =
        ChurnDriver::handover_demand(&pack, &scenario, 0, HandoverKind::FbsToMbs, 1.0);
    let service = small_service(femto_claim + macro_demand + 1.0);
    let id = spec_admit(&service, spec);

    let before = service.snapshot().mbs_in_use;
    let HandoverOutcome::Completed {
        old_demand,
        new_demand,
    } = service.handover(id, macro_demand, HandoverKind::FbsToMbs)
    else {
        panic!("seed {seed}: macro fallback must fit the constructed budget");
    };
    let after = service.snapshot().mbs_in_use;
    // Unit-exact: freed exactly the old claim, acquired exactly the
    // new one — both as the service quantized them.
    assert_eq!(
        before, old_demand,
        "seed {seed}: old claim echoes the ledger"
    );
    assert_eq!(
        after, new_demand,
        "seed {seed}: ledger holds exactly the new claim"
    );
    assert_eq!(service.session_demand(id), Some(new_demand), "seed {seed}");

    // The return trip restores the femto claim to the unit.
    assert!(service
        .handover(id, femto_claim, HandoverKind::MbsToFbs)
        .completed());
    assert_eq!(
        service.snapshot().mbs_in_use,
        before,
        "seed {seed}: round trip must restore the original ledger value"
    );
    service.retire(id);
    service.quiesce(10_000);
    assert_eq!(service.snapshot().mbs_in_use, 0.0, "seed {seed}");
}

fn spec_admit(service: &Service, spec: fcr_serve::SessionSpec) -> fcr_serve::SessionId {
    match service.admit(spec) {
        fcr_serve::AdmitOutcome::Admitted(id) => id,
        fcr_serve::AdmitOutcome::Rejected(r) => panic!("admission rejected: {r}"),
    }
}

/// Handovers on the live service never change what a session computes:
/// after a churn replay every completed session's outputs are
/// bit-identical to the batch path with the same spec.
///
/// Retire events are *skipped* in this replay — slot steps run far
/// faster than pool jobs, so honouring them would retire everything
/// before any window lands and leave nothing to compare. With sessions
/// living to completion, every scheduled handover still lands on a
/// live session.
#[test]
fn handed_over_outputs_stay_bit_identical_to_batch() {
    let seed = case_seed("churn-bit-identity", base_seed());
    let pack = churn_pack(seed);
    let service = small_service(pack.churn.expect("churn").mbs_budget);
    let schedule = ChurnSchedule::generate(&pack);
    let scenario = Arc::new(pack.scenario());
    // Replay manually so we keep the completed outputs (ChurnDriver
    // drains them into counters only).
    let mut ids = std::collections::HashMap::new();
    let mut specs = std::collections::HashMap::new();
    let mut cursor = 0usize;
    let mut handovers = 0u64;
    let slots = pack.churn.expect("churn").slots;
    for slot in 0..=slots {
        while cursor < schedule.events.len() && schedule.events[cursor].slot == slot {
            let e = schedule.events[cursor];
            cursor += 1;
            match e.kind {
                fcr_scenario::ChurnEventKind::Arrive { during_pu_burst } => {
                    let spec = ChurnDriver::spec_for(&pack, &scenario, e.ordinal, during_pu_burst);
                    if let fcr_serve::AdmitOutcome::Admitted(id) = service.admit(spec.clone()) {
                        ids.insert(e.ordinal, id);
                        specs.insert(id.0, spec);
                    }
                }
                fcr_scenario::ChurnEventKind::Handover {
                    kind,
                    demand_factor,
                    ..
                } => {
                    if let Some(&id) = ids.get(&e.ordinal) {
                        let demand = ChurnDriver::handover_demand(
                            &pack,
                            &scenario,
                            e.ordinal,
                            kind,
                            demand_factor,
                        );
                        if service.handover(id, demand, kind).completed() {
                            handovers += 1;
                        }
                    }
                }
                fcr_scenario::ChurnEventKind::Retire => {}
            }
        }
        service.step();
    }
    service.quiesce(100_000);
    let completed = service.take_completed();
    assert!(
        !completed.is_empty(),
        "seed {seed}: churn replay completed no sessions"
    );
    assert!(
        handovers > 0,
        "seed {seed}: no handover landed on a live session"
    );
    for done in completed {
        let spec = &specs[&done.id.0];
        let batch = fcr_sim::SimSession::new((*spec.scenario).clone())
            .config(spec.config)
            .seed(spec.seed)
            .runs(spec.base_runs)
            .run(spec.scheme);
        for (run, output) in done
            .outputs
            .iter()
            .take(spec.base_runs as usize)
            .enumerate()
        {
            let served = output
                .as_ref()
                .unwrap_or_else(|| panic!("seed {seed}: base run {run} missing"));
            assert_eq!(
                served.result.per_user_psnr,
                batch.results()[run].per_user_psnr,
                "seed {seed}: session {} run {run} diverged from batch",
                done.id.0
            );
        }
    }
}
