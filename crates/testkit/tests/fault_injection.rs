//! Deterministic fault-injection suites: under seeded worker panics,
//! execution delays, and resize storms the sharded runtime must lose
//! nothing, duplicate nothing, and reproduce the clean pool's PSNRs
//! bit for bit — on both engines.
//!
//! Seeds come from `PROPTEST_SEED` when set (CI's randomized pass) so
//! the chaos corpus itself re-randomizes per run, and every assertion
//! message carries the case seed for replay.

use fcr_runtime::{FaultEvent, FaultKind, FaultPlan, Runtime, RuntimeConfig};
use fcr_sim::{config::SimConfig, Scenario, Scheme, SimSession};
use fcr_testkit::faults::{standard_cases, verify_fluid_under_faults, verify_packet_under_faults};
use fcr_testkit::seeds::case_seed;
use fcr_testkit::CI_SEED;
use std::sync::Arc;

/// 3 runs × 4 GOPs = 12 window jobs per engine — exactly the span the
/// standard `FaultSpec` draws fault positions from, so every planned
/// fault fires (`pending == 0` is asserted by the harness).
fn workload() -> (SimConfig, Scenario, u64) {
    let cfg = SimConfig {
        gops: 4,
        deadline: 4,
        num_channels: 4,
        ..SimConfig::default()
    };
    let scenario = Scenario::single_fbs(&cfg);
    (cfg, scenario, 3)
}

fn base_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(CI_SEED)
}

#[test]
fn fluid_results_are_invariant_under_every_standard_storm() {
    let (cfg, scenario, runs) = workload();
    let seed = case_seed("fault-fluid", base_seed());
    let mut names = Vec::new();
    for case in standard_cases(seed) {
        let verdict =
            verify_fluid_under_faults(&case, &cfg, &scenario, Scheme::Proposed, seed, runs);
        // The harness proved invariance; additionally require that the
        // storm actually did something.
        assert!(
            verdict.report.total_injected() > 0,
            "case {} fired no faults",
            case.name
        );
        names.push(verdict.case_name);
    }
    assert_eq!(
        names,
        vec!["panic-storm", "delay-storm", "resize-storm", "mixed-chaos"]
    );
}

#[test]
fn packet_results_are_invariant_under_every_standard_storm() {
    let (cfg, scenario, runs) = workload();
    let seed = case_seed("fault-packet", base_seed());
    for case in standard_cases(seed) {
        let verdict =
            verify_packet_under_faults(&case, &cfg, &scenario, Scheme::Proposed, seed, runs);
        assert!(
            verdict.report.total_injected() > 0,
            "case {} fired no faults",
            case.name
        );
        assert_eq!(verdict.jobs_completed, verdict.user_jobs);
        assert_eq!(verdict.jobs_failed, verdict.report.panics_injected);
    }
}

#[test]
fn heuristic_schemes_share_the_invariance_contract() {
    // The contract is about the *runtime*, not the allocator: spot-check
    // a second scheme under the mixed storm on both engines.
    let (cfg, scenario, runs) = workload();
    let seed = case_seed("fault-heuristic", base_seed());
    let case = standard_cases(seed).pop().expect("mixed-chaos");
    verify_fluid_under_faults(&case, &cfg, &scenario, Scheme::Heuristic1, seed, runs);
    verify_packet_under_faults(&case, &cfg, &scenario, Scheme::Heuristic1, seed, runs);
}

#[test]
fn hand_built_plans_fire_at_exact_submission_indices() {
    // A panic before submission 0 and a resize to 1 worker before
    // submission 2: the session must still complete every window.
    let (cfg, scenario, runs) = workload();
    let plan = FaultPlan::new(&[
        FaultEvent {
            at: 0,
            kind: FaultKind::WorkerPanic,
        },
        FaultEvent {
            at: 2,
            kind: FaultKind::Resize(1),
        },
        FaultEvent {
            at: 5,
            kind: FaultKind::Resize(4),
        },
    ]);
    let runtime = Arc::new(Runtime::with_faults(
        RuntimeConfig {
            workers: 2,
            queue_capacity: 64,
            min_workers: 1,
            max_workers: 4,
            ..RuntimeConfig::default()
        },
        plan,
    ));
    let baseline = SimSession::new(scenario.clone())
        .config(cfg)
        .seed(99)
        .runs(runs)
        .run(Scheme::Proposed)
        .results();
    let faulted = SimSession::new(scenario)
        .config(cfg)
        .seed(99)
        .runs(runs)
        .on_runtime(Arc::clone(&runtime))
        .run(Scheme::Proposed)
        .results();
    assert_eq!(baseline, faulted);
    let report = runtime.fault_report().expect("plan installed");
    assert_eq!(report.panics_injected, 1);
    assert_eq!(report.resizes_injected, 2);
    assert_eq!(report.pending, 0);
}

#[test]
fn clean_runtimes_report_no_fault_plan() {
    let runtime = Runtime::with_config(RuntimeConfig {
        workers: 1,
        ..RuntimeConfig::default()
    });
    assert!(runtime.fault_report().is_none());
}
