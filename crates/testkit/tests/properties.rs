//! Property suites over generated scenarios: the paper's invariants
//! must hold on *every* random-but-valid input, not just the Section-V
//! operating points.
//!
//! All suites draw from the deterministic vendored proptest runner;
//! a failing case prints its `PROPTEST_SEED` for exact replay.

use fcr_core::{
    bounds, kkt, DualConfig, DualSolver, ExhaustiveAllocator, GreedyAllocator, WaterfillingSolver,
};
use fcr_runtime::ShardPolicy;
use fcr_sim::{Scenario, Scheme, SimSession, TraceMode};
use fcr_spectrum::AccessPolicy;
use fcr_telemetry::GreedyRecord;
use fcr_testkit::generators::{
    arb_interfering_problem, arb_sensing_point, arb_sim_config, arb_slot_problem, SENSING_GRID,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Eq. (7): under the collision-bounded access rule the expected
    /// collision probability never exceeds γ, at any posterior and any
    /// γ the generator emits.
    #[test]
    fn access_rule_respects_the_collision_budget(
        gamma in 0.05..0.45f64,
        p in 0.0..=1.0f64,
        (eps, delta) in arb_sensing_point(),
    ) {
        let policy = AccessPolicy::new(gamma).expect("valid gamma");
        let q = policy.access_probability(p);
        prop_assert!((0.0..=1.0).contains(&q));
        prop_assert!(policy.expected_collision(p) <= gamma + 1e-12);
        // The sensing point only shifts *which* posteriors occur, never
        // the budget; spot-check the paper grid too.
        let _ = (eps, delta);
        for &(e, d) in SENSING_GRID {
            prop_assert!(e + d < 1.0);
        }
    }

    /// Tables I/II: on random small instances the dual solution is
    /// primal-feasible (Σ time shares ≤ 1 per base station) and, when
    /// converged, consistent with the KKT conditions at its prices.
    #[test]
    fn dual_solutions_are_feasible_and_kkt_consistent(problem in arb_slot_problem()) {
        let solution = DualSolver::new(DualConfig::default()).solve(&problem);
        prop_assert!(
            problem.is_feasible(solution.allocation(), 1e-6),
            "dual allocation violates the time-share simplex"
        );
        let report = kkt::verify(&problem, solution.allocation(), solution.lambda());
        if solution.converged() {
            prop_assert!(
                report.worst() < 0.35,
                "converged solve far from KKT: worst residual {}",
                report.worst()
            );
        }
        // The reported objective must match re-evaluating the primal.
        let direct = problem.objective(solution.allocation());
        prop_assert!((direct - solution.objective()).abs() <= 1e-9 * direct.abs().max(1.0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Table III vs brute force on random ≤3-FBS graphs: the greedy
    /// gain satisfies Theorem 2's floor *and* the eq.-(23) per-run
    /// bound — up to the measured re-optimization slack of DESIGN §7,
    /// deviation 6 — and the telemetry bookkeeping agrees with both.
    #[test]
    fn greedy_matches_the_paper_bounds_against_exhaustive(
        problem in arb_interfering_problem(),
    ) {
        // Score every assignment with the exact-mode solver (≤3 users
        // ⇒ ≤8 exact water-fills per evaluation) so no assertion below
        // hinges on the heuristic mode search.
        let solver = WaterfillingSolver::exact_up_to(3);
        let greedy = GreedyAllocator::with_solver(solver).allocate(&problem);
        let opt = ExhaustiveAllocator::with_solver(solver).allocate(&problem);
        let d_max = problem.graph().max_degree();

        // Exhaustive enumerates every maximal-independent-set
        // assignment — including the greedy's, whose per-channel holder
        // sets are maximal — and scores each with the same exact
        // solver, so greedy ≤ opt is deterministic, not approximate.
        prop_assert!(greedy.q_value() <= opt.q_value() + 1e-9);

        // The paper proves Theorem 2 and eq. (23) assuming channel
        // increments are submodular. This repo's Q re-solves the whole
        // mode/share program at every assignment (DESIGN §7,
        // deviation 6), and the shared MBS budget couples FBSs: a user
        // offloading to one femtocell frees macrocell budget, which can
        // *raise* a later channel's marginal value — a mildly
        // supermodular effect outside the proofs of Lemmas 5–8.
        // Measured over 300 k generated instances (see the
        // `noise_sweep` example) the worst overshoot is 7.5 %
        // (Theorem 2) and 15 % (eq. 23) of the optimal gain, so the
        // suite asserts the paper bounds with twice that slack; the
        // pinned Section-V instances satisfy them exactly (fcr-core's
        // own tests).
        let t2_slack = 0.15 * opt.gain().max(0.0);
        prop_assert!(
            bounds::satisfies_theorem2(greedy.gain(), opt.gain(), d_max, t2_slack),
            "Theorem 2 violated beyond the re-optimization slack: greedy {} vs optimal {} at D_max {}",
            greedy.gain(),
            opt.gain(),
            d_max
        );
        // Eq. (23): the per-run bound dominates the true optimum.
        prop_assert!(
            greedy.upper_bound() >= opt.q_value() - 0.30 * opt.gain().max(0.0),
            "eq. (23) bound {} below exhaustive optimum {} beyond the re-optimization slack",
            greedy.upper_bound(),
            opt.q_value()
        );

        // The same numbers, through the telemetry record the engine
        // emits for every slot (see fcr-core::greedy).
        let steps = greedy.steps();
        let record = GreedyRecord {
            steps: steps.len(),
            gain: steps.iter().map(|s| s.delta).sum(),
            upper_bound_gain: bounds::per_run_upper_bound(
                &steps.iter().map(|s| (s.delta, s.degree)).collect::<Vec<_>>(),
            ),
            gap_terms: steps.iter().map(|s| s.degree as f64 * s.delta).collect(),
        };
        prop_assert!(record.gap() >= -1e-12, "negative eq.-(23) slack");
        prop_assert!(
            record.optimality_ratio() >= bounds::worst_case_fraction(d_max) - 1e-9,
            "optimality ratio {} under the Theorem-2 floor {}",
            record.optimality_ratio(),
            bounds::worst_case_fraction(d_max)
        );
        prop_assert!(
            (record.upper_bound_gain - (record.gain + record.gap())).abs() <= 1e-9,
            "eq.-(23) bookkeeping drifted"
        );
    }
}

proptest! {
    // Whole-session cases are expensive; a handful per run suffices
    // because the generator re-randomizes every CI pass.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// End to end on generated configs: posteriors stay probabilities,
    /// expected availability stays below the channel count, PSNRs stay
    /// finite and nonnegative, and the sharded session is
    /// bit-deterministic — rerunning and resharding both reproduce the
    /// exact same numbers.
    #[test]
    fn generated_scenarios_uphold_the_pipeline_invariants(cfg in arb_sim_config()) {
        let scenario = Scenario::single_fbs(&cfg);
        let session = SimSession::new(scenario.clone())
            .config(cfg)
            .seed(0xabad1dea)
            .runs(2)
            .shards(ShardPolicy::WholeRun)
            .trace(TraceMode::Slots);
        let first = session.run(Scheme::Proposed);

        for trace in first.traces() {
            for rec in trace.records() {
                for &p in &rec.posteriors {
                    prop_assert!((0.0..=1.0).contains(&p), "posterior {p} outside [0,1]");
                }
                prop_assert!(rec.expected_available <= cfg.num_channels as f64 + 1e-9);
                prop_assert!(rec.collisions <= cfg.num_channels);
            }
        }
        for r in first.results() {
            for &psnr in &r.per_user_psnr {
                prop_assert!(psnr.is_finite() && psnr >= 0.0);
            }
            prop_assert!((0.0..=1.0).contains(&r.collision_rate));
        }

        // Determinism: same seed, same numbers — bit for bit — under a
        // different shard policy and a fresh session.
        let resharded = SimSession::new(scenario)
            .config(cfg)
            .seed(0xabad1dea)
            .runs(2)
            .shards(ShardPolicy::Windows(2))
            .trace(TraceMode::Slots)
            .run(Scheme::Proposed);
        prop_assert_eq!(first.results(), resharded.results());
    }
}
