//! Pack-level conformance: the shipped `scenarios/*.json` files are
//! byte-exact canonical renderings of their Rust definitions, the
//! paper packs are bit-identical to the hand-written constructors on
//! both engines, parsing round-trips byte-stably for arbitrary
//! generated packs, and malformed packs fail with pointed field-path
//! errors.
//!
//! To refresh the shipped files after an intentional schema or pack
//! change:
//!
//! ```text
//! FCR_REGEN_GOLDENS=1 cargo test -p fcr-testkit --test pack_conformance
//! git diff scenarios/   # review, then commit
//! ```

use fcr_runtime::ShardPolicy;
use fcr_scenario::shipped::{scenarios_dir, shipped};
use fcr_scenario::{Pack, PackError};
use fcr_sim::config::SimConfig;
use fcr_sim::{Scenario, Scheme, SimSession};
use fcr_testkit::generators::arb_scenario_pack;
use proptest::prelude::*;

/// The shipped pack files are the canonical renderings of the Rust
/// definitions — byte for byte. `FCR_REGEN_GOLDENS=1` rewrites them.
#[test]
fn shipped_pack_files_match_their_definitions_byte_for_byte() {
    let dir = scenarios_dir();
    for pack in shipped() {
        let path = dir.join(format!("{}.json", pack.name));
        let canonical = pack.to_json();
        if std::env::var_os("FCR_REGEN_GOLDENS").is_some() {
            std::fs::create_dir_all(&dir).expect("create scenarios dir");
            std::fs::write(&path, &canonical).expect("write shipped pack");
            continue;
        }
        let stored = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "shipped pack {path:?} unreadable ({e}); regenerate with \
                 `FCR_REGEN_GOLDENS=1 cargo test -p fcr-testkit --test pack_conformance`"
            )
        });
        assert_eq!(
            stored, canonical,
            "{} drifted from its Rust definition; regenerate with \
             `FCR_REGEN_GOLDENS=1 cargo test -p fcr-testkit --test pack_conformance` \
             and review the diff",
            pack.name
        );
        let parsed = Pack::from_json(&stored).expect("shipped pack parses");
        assert_eq!(parsed, pack, "{} file parses to its definition", pack.name);
    }
}

/// The three paper packs build *exactly* the scenarios the Rust
/// constructors build, and produce bit-identical results on both the
/// fluid and the packet engine.
#[test]
fn paper_packs_are_bit_identical_to_constructors_on_both_engines() {
    type Constructor = fn(&SimConfig) -> Scenario;
    let cases: [(&str, Constructor); 3] = [
        ("single_fbs", Scenario::single_fbs),
        ("paper_fig1", Scenario::fig1),
        ("paper_fig5", Scenario::interfering_fig5),
    ];
    let packs = shipped();
    for (name, constructor) in cases {
        let pack = packs
            .iter()
            .find(|p| p.name == name)
            .unwrap_or_else(|| panic!("shipped pack {name} missing"));
        let cfg = pack.sim_config();
        let from_pack = pack.scenario();
        let from_rust = constructor(&cfg);
        assert_eq!(
            from_pack, from_rust,
            "{name}: scenario construction differs"
        );

        // Fluid engine: identical inputs must mean identical outputs.
        let run = |scenario: Scenario| {
            SimSession::new(scenario)
                .config(cfg)
                .seed(pack.seed)
                .runs(1)
                .run(Scheme::Proposed)
                .results()
        };
        assert_eq!(
            run(pack.scenario()),
            run(constructor(&cfg)),
            "{name}: fluid engine outputs differ"
        );

        // Packet engine: same check on the packet-level path.
        let run_packet = |scenario: Scenario| {
            SimSession::new(scenario)
                .config(cfg)
                .seed(pack.seed)
                .runs(1)
                .run_packet(Scheme::Proposed)
        };
        assert_eq!(
            run_packet(pack.scenario()).results(),
            run_packet(constructor(&cfg)).results(),
            "{name}: packet engine outputs differ"
        );
    }
}

/// The error table: every malformed fixture fails at exactly the
/// documented field path.
#[test]
fn malformed_packs_fail_with_pointed_field_paths() {
    let valid = fcr_scenario::shipped::mobility_churn().to_json();
    let cases: &[(&str, &str, &str)] = &[
        // (mutation from the valid pack, expected path, message excerpt)
        ("\"seed\": 20110611,", "\"seed\": -3,", "seed"),
        ("\"runs\": 1,", "\"runs\": true,", "runs"),
        (
            "\"kind\": \"paper_fig5\",",
            "\"kind\": \"octagon\",",
            "topology.kind",
        ),
        (
            "\"users_per_fbs\": 2",
            "\"users_per_fbs\": 2.5",
            "topology.users_per_fbs",
        ),
        ("\"gops\": 2", "\"gops\": 0", "channel"),
        ("\"deadline\": 4,", "\"deadlines\": 4,", "channel.deadlines"),
        (
            "\"sequences\": [\"bus\", \"mobile\", \"harbor\"],",
            "\"sequences\": [\"bus\", \"akiyo\"],",
            "traffic.sequences[1]",
        ),
        ("\"step_m\": 6,", "\"step_m\": -1,", "mobility.step_m"),
        (
            "\"rate_per_slot\": 0.6",
            "\"rate_per_slot\": \"fast\"",
            "churn.arrivals.rate_per_slot",
        ),
        (
            "\"mbs_budget\": 4,",
            "\"mbs_budget\": 0,",
            "churn.mbs_budget",
        ),
        (
            "\"schemes\": [\"proposed\"],",
            "\"schemes\": [\"optimal\"],",
            "schemes[0]",
        ),
        (
            "\"slots\": 40,",
            "\"slots\": 40, \"flux\": 1,",
            "churn.flux",
        ),
    ];
    for (needle, replacement, want_path) in cases {
        assert!(
            valid.contains(needle),
            "fixture mutation {needle:?} not found in the valid pack"
        );
        let broken = valid.replacen(needle, replacement, 1);
        let err: PackError =
            Pack::from_json(&broken).expect_err(&format!("mutation {replacement:?} must fail"));
        assert_eq!(
            err.path, *want_path,
            "mutation {replacement:?}: error at `{}` ({}), wanted `{want_path}`",
            err.path, err.message
        );
    }
    // And a whole-document syntax error names no field.
    let err = Pack::from_json("{ not json").expect_err("syntax error");
    assert_eq!(err.path, "");
}

/// Missing required fields name themselves.
#[test]
fn missing_required_fields_name_themselves() {
    let valid = fcr_scenario::shipped::single_fbs().to_json();
    for (line, want_path) in [
        ("\"name\": \"single_fbs\",\n", "name"),
        ("\"seed\": 20110611,\n", "seed"),
        ("\"base_runs\": 1,\n", "traffic.base_runs"),
    ] {
        assert!(valid.contains(line), "fixture line {line:?} missing");
        let broken = valid.replacen(line, "", 1);
        let err = Pack::from_json(&broken).expect_err("must fail");
        assert_eq!(err.path, want_path);
        assert!(
            err.message.contains("missing required field"),
            "unexpected message: {err}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fuzzing the parse/serialize pair: every generated pack
    /// round-trips exactly, and its canonical form is a fixed point.
    #[test]
    fn generated_packs_round_trip_byte_stably(pack in arb_scenario_pack()) {
        prop_assert!(pack.validate().is_ok());
        let text = pack.to_json();
        let back = Pack::from_json(&text)
            .unwrap_or_else(|e| panic!("reparse of {} failed: {e}", pack.name));
        prop_assert_eq!(&back, &pack, "parse(to_json(pack)) != pack");
        prop_assert_eq!(back.to_json(), text, "canonical form is not a fixed point");
    }

    /// Every generated pack builds a scenario whose batch results are
    /// bit-identical under serial and sharded execution.
    #[test]
    fn generated_packs_are_shard_invariant(pack in arb_scenario_pack()) {
        let run = |shards: ShardPolicy| {
            pack.session()
                .shards(shards)
                .run(pack.schemes[0])
                .results()
        };
        prop_assert_eq!(
            run(ShardPolicy::WholeRun),
            run(ShardPolicy::Windows(3)),
            "shard policy changed pack results"
        );
    }
}
