//! Measures the re-optimization slack on Theorem 2 and eq. (23)
//! (DESIGN §7, deviation 6): how far greedy-vs-exhaustive can
//! overshoot the paper's bounds, as a fraction of the optimal gain,
//! when `Q` re-solves the whole mode/share program per assignment.
//! Inner solves are exact (`WaterfillingSolver::exact_up_to`), so
//! every reported deficit is a property of the model, not solver
//! noise. The worst figures over 300 000 instances sized the slack
//! asserted by the `properties` suite.
//!
//! ```text
//! cargo run --release -p fcr-testkit --example noise_sweep -- 30000 3
//! ```

use fcr_core::{bounds, ExhaustiveAllocator, GreedyAllocator, WaterfillingSolver};
use fcr_testkit::generators::arb_interfering_problem;
use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;
use rand::SeedableRng;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000);
    let seed: u64 = std::env::args()
        .nth(2)
        .and_then(|v| v.parse().ok())
        .unwrap_or(424_242);
    let strat = arb_interfering_problem();
    let mut rng = TestRng::seed_from_u64(seed);
    let mut worst_t2 = f64::MIN;
    let mut worst_eq23 = f64::MIN;
    let mut worst_beats = f64::MIN;
    let mut min_gain = f64::MAX;
    let mut gains = Vec::new();
    for _ in 0..n {
        let p = strat.sample(&mut rng);
        let solver = WaterfillingSolver::exact_up_to(3);
        let g = GreedyAllocator::with_solver(solver).allocate(&p);
        let o = ExhaustiveAllocator::with_solver(solver).allocate(&p);
        let d = p.graph().max_degree();
        let q = o.gain().abs().max(1e-12);
        worst_t2 = worst_t2.max((o.gain() * bounds::worst_case_fraction(d) - g.gain()) / q);
        worst_eq23 = worst_eq23.max((o.q_value() - g.upper_bound()) / q);
        worst_beats = worst_beats.max((g.q_value() - o.q_value()) / q);
        min_gain = min_gain.min(o.gain());
        gains.push(o.gain());
    }
    gains.sort_by(f64::total_cmp);
    println!("instances: {n} (seed {seed})");
    println!("worst relative theorem2 deficit: {worst_t2:.3e}");
    println!("worst relative eq23 deficit:     {worst_eq23:.3e}");
    println!("worst relative greedy>opt:       {worst_beats:.3e}");
    println!(
        "opt gain: min {min_gain:.3e} p10 {:.3e} median {:.3e}",
        gains[n / 10],
        gains[n / 2]
    );
}
