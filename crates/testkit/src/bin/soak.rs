//! Bounded fault-injection soak: loops the chaos harness under fresh
//! seeds for a wall-clock budget and fails loudly (with the replay
//! seed) on the first invariance violation.
//!
//! ```text
//! cargo run --release -p fcr-testkit --bin soak -- --seconds 30 [--seed N]
//! ```
//!
//! Each iteration derives a base seed from the iteration counter,
//! expands the standard chaos corpus (panic / delay / resize / mixed
//! storms), and verifies the full fault-invariance contract on both
//! engines. CI runs this for 30 s as a smoke test; longer budgets are
//! an overnight chaos run.

use fcr_sim::config::SimConfig;
use fcr_sim::{Scenario, Scheme};
use fcr_testkit::faults::{standard_cases, verify_fluid_under_faults, verify_packet_under_faults};
use fcr_testkit::seeds::case_seed;
use std::time::{Duration, Instant};

fn parse_args() -> (Duration, u64) {
    let mut seconds = 30u64;
    let mut seed = fcr_testkit::CI_SEED;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seconds" => {
                seconds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seconds expects an integer"));
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed expects an integer"));
            }
            "--help" | "-h" => {
                eprintln!("usage: soak [--seconds N] [--seed N]");
                std::process::exit(0);
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }
    (Duration::from_secs(seconds), seed)
}

fn die(msg: &str) -> ! {
    eprintln!("soak: {msg}");
    std::process::exit(2);
}

/// Keeps the default panic hook for *real* panics but silences the
/// injected chaos panics, which would otherwise flood stderr with
/// thousands of expected backtraces.
fn install_quiet_hook() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg_is_chaos = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.contains("injected chaos panic"))
            .or_else(|| {
                info.payload()
                    .downcast_ref::<String>()
                    .map(|s| s.contains("injected chaos panic"))
            })
            .unwrap_or(false);
        if !msg_is_chaos {
            default_hook(info);
        }
    }));
}

fn main() {
    install_quiet_hook();
    let (budget, base) = parse_args();
    let cfg = SimConfig {
        gops: 4,
        deadline: 4,
        num_channels: 4,
        ..SimConfig::default()
    };
    let scenario = Scenario::single_fbs(&cfg);
    let runs = 3u64; // 3 runs x 4 GOPs = 12 window jobs, matching FaultSpec::jobs.

    let start = Instant::now();
    let mut iterations = 0u64;
    let mut faults_fired = 0u64;
    println!(
        "soak: base seed {base}, budget {}s, workload {} window jobs/engine/case",
        budget.as_secs(),
        runs * u64::from(cfg.gops),
    );
    while start.elapsed() < budget {
        let iter_seed = case_seed("soak", base.wrapping_add(iterations));
        for case in standard_cases(iter_seed) {
            let v = verify_fluid_under_faults(
                &case,
                &cfg,
                &scenario,
                Scheme::Proposed,
                iter_seed,
                runs,
            );
            faults_fired += v.report.total_injected();
            let v = verify_packet_under_faults(
                &case,
                &cfg,
                &scenario,
                Scheme::Proposed,
                iter_seed,
                runs,
            );
            faults_fired += v.report.total_injected();
        }
        iterations += 1;
        if iterations.is_multiple_of(5) {
            println!(
                "soak: {iterations} iterations, {faults_fired} faults fired, {:.1}s elapsed",
                start.elapsed().as_secs_f64()
            );
        }
    }
    assert!(iterations > 0, "soak budget too small to run one iteration");
    println!(
        "soak: PASS — {iterations} iterations, {faults_fired} faults fired, all invariants held \
         (replay any case with --seed {base})"
    );
}
