//! Bounded chaos soak, rebased onto `fcr-serve`: loops churn storms
//! through the always-on service on faulted pools under fresh seeds
//! for a wall-clock budget, and fails loudly (with the replay seed)
//! on the first invariance violation.
//!
//! ```text
//! cargo run --release -p fcr-testkit --bin soak -- --seconds 30 [--seed N]
//! ```
//!
//! Each iteration derives a base seed from the iteration counter,
//! expands the standard chaos corpus (panic / delay / resize / mixed
//! storms), and drives every case through
//! [`fcr_testkit::serve_storm::verify_serve_under_faults`] — session
//! churn, exact accounting, panic containment, and bit-identity of
//! served outputs with the batch path. The packet engine (which has
//! no serve path) keeps its batch fault-invariance check per
//! iteration. CI runs this for 30 s as a smoke test; longer budgets
//! are an overnight chaos run.

use fcr_sim::config::SimConfig;
use fcr_sim::{Scenario, Scheme};
use fcr_testkit::faults::{install_quiet_hook, standard_cases, verify_packet_under_faults};
use fcr_testkit::seeds::case_seed;
use fcr_testkit::serve_storm::verify_serve_under_faults;
use std::time::{Duration, Instant};

fn parse_args() -> (Duration, u64) {
    let mut seconds = 30u64;
    let mut seed = fcr_testkit::CI_SEED;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seconds" => {
                seconds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seconds expects an integer"));
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed expects an integer"));
            }
            "--help" | "-h" => {
                eprintln!("usage: soak [--seconds N] [--seed N]");
                std::process::exit(0);
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }
    (Duration::from_secs(seconds), seed)
}

fn die(msg: &str) -> ! {
    eprintln!("soak: {msg}");
    std::process::exit(2);
}

fn main() {
    install_quiet_hook();
    let (budget, base) = parse_args();
    let cfg = SimConfig {
        gops: 4,
        deadline: 4,
        num_channels: 4,
        ..SimConfig::default()
    };
    let scenario = Scenario::single_fbs(&cfg);
    let sessions = 6u64; // initial serve population per storm
    let packet_runs = 3u64; // 3 runs x 4 GOPs = 12 jobs, matching FaultSpec::jobs

    let start = Instant::now();
    let mut iterations = 0u64;
    let mut faults_fired = 0u64;
    let mut sessions_served = 0u64;
    let mut outputs_verified = 0u64;
    println!(
        "soak: base seed {base}, budget {}s, {} sessions/storm through fcr-serve",
        budget.as_secs(),
        sessions,
    );
    while start.elapsed() < budget {
        let iter_seed = case_seed("soak", base.wrapping_add(iterations));
        for case in standard_cases(iter_seed) {
            let v = verify_serve_under_faults(
                &case,
                &cfg,
                &scenario,
                Scheme::Proposed,
                iter_seed,
                sessions,
            );
            faults_fired += v.report.total_injected();
            sessions_served += v.admitted;
            outputs_verified += v.outputs_verified;
            let v = verify_packet_under_faults(
                &case,
                &cfg,
                &scenario,
                Scheme::Proposed,
                iter_seed,
                packet_runs,
            );
            faults_fired += v.report.total_injected();
        }
        iterations += 1;
        if iterations.is_multiple_of(5) {
            println!(
                "soak: {iterations} iterations, {faults_fired} faults fired, \
                 {sessions_served} sessions churned, {:.1}s elapsed",
                start.elapsed().as_secs_f64()
            );
        }
    }
    assert!(iterations > 0, "soak budget too small to run one iteration");
    println!(
        "soak: PASS — {iterations} iterations, {faults_fired} faults fired, \
         {sessions_served} sessions churned ({outputs_verified} outputs verified \
         bit-identical), all invariants held (replay any case with --seed {base})"
    );
}
