//! Test harnesses for the fcr workspace: property-based scenario
//! generation, deterministic fault injection, and golden-trace
//! conformance.
//!
//! The workspace's unit tests pin down each crate in isolation; this
//! crate owns the *cross-crate* guarantees that only hold when the
//! whole pipeline — sensing → fusion → access → allocation →
//! transmission — runs together on the sharded worker pool:
//!
//! * [`generators`] — proptest strategies producing random **but
//!   valid** domain objects: simulation configs, (ε, δ) sensing
//!   points, interference graphs on ≤ 3 FBSs, MGS rate–distortion
//!   curves, and small interfering allocation problems. Every
//!   generated value satisfies its type's own validation, so property
//!   suites exercise invariants, not constructor errors.
//! * [`faults`] — seeded [`fcr_runtime::FaultPlan`] scenarios (worker
//!   panics, execution delays, resize storms) plus the harness that
//!   proves the paper's numbers are *fault-invariant*: a faulted pool
//!   must lose no jobs, duplicate no jobs, and reproduce the
//!   uninjected PSNRs bit for bit, on both the fluid and the
//!   packet-level engine.
//! * [`golden`] — canonical JSONL renderings of the fig-3/4/6
//!   scenarios with a check-or-regenerate workflow
//!   (`FCR_REGEN_GOLDENS=1`), so any drift in simulated numbers is a
//!   reviewed diff, not a silent change.
//! * [`seeds`] — the pinned CI seed and the splitmix64 stream used to
//!   derive per-case seeds, so every failure line can be replayed.
//! * [`serve_storm`] — the serve-path counterpart of [`faults`]:
//!   churn storms through [`fcr_serve::Service`] on a faulted pool,
//!   proving exact session accounting, panic containment, and
//!   bit-identity of served outputs with the batch path.
//!
//! The `soak` binary (`cargo run -p fcr-testkit --bin soak --
//! --seconds 30`) loops both chaos harnesses under fresh seeds for a
//! bounded wall-clock budget — the CI smoke version of an overnight
//! chaos run.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod faults;
pub mod generators;
pub mod golden;
pub mod seeds;
pub mod serve_storm;

pub use faults::{install_quiet_hook, standard_cases, FaultCase, FaultVerdict};
pub use golden::{check_or_regen, GoldenStatus};
pub use seeds::{splitmix64, CI_SEED};
pub use serve_storm::{verify_serve_under_faults, ServeStormVerdict};
