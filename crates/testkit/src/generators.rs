//! Proptest strategies that produce random **but valid** domain
//! objects.
//!
//! Every strategy here upholds the constructor contracts of the type
//! it generates (probabilities in `[0, 1]`, ε + δ < 1, positive
//! weights, FBS indices inside the interference graph, …), so the
//! property suites that consume them test *paper invariants* — never
//! "the constructor rejected garbage". Ranges are chosen to bracket
//! the paper's Section-V operating points and then some.

use fcr_core::{InterferingProblem, SlotProblem, UserState};
use fcr_net::{FbsId, InterferenceGraph};
use fcr_sim::config::SimConfig;
use fcr_video::{MgsRateModel, Psnr};
use proptest::prelude::*;

/// (ε, δ) sensing operating points: the three the paper plots in
/// Figs. 3–4 first, then harsher and milder corners. Every pair keeps
/// ε + δ < 1, i.e. the sensor stays informative.
pub const SENSING_GRID: &[(f64, f64)] = &[
    (0.3, 0.3),
    (0.2, 0.48),
    (0.48, 0.2),
    (0.1, 0.1),
    (0.05, 0.45),
    (0.45, 0.05),
    (0.25, 0.25),
];

/// Draws one (false-alarm ε, miss-detection δ) pair from
/// [`SENSING_GRID`].
pub fn arb_sensing_point() -> impl Strategy<Value = (f64, f64)> {
    (0usize..SENSING_GRID.len()).prop_map(|i| SENSING_GRID[i])
}

/// Random small-but-valid [`SimConfig`]s: 2–6 licensed channels,
/// Markov dynamics away from the absorbing corners, γ in the paper's
/// collision-tolerance band, (ε, δ) from [`SENSING_GRID`], and short
/// horizons (1–3 GOPs) so property suites stay fast.
///
/// Everything generated satisfies `SimConfig::validate`.
pub fn arb_sim_config() -> impl Strategy<Value = SimConfig> {
    (
        (2usize..=6, 0.05..0.9f64, 0.05..0.9f64, 0.05..0.45f64),
        (0usize..SENSING_GRID.len(), 2u32..=5, 1u32..=3),
    )
        .prop_map(
            |((num_channels, p01, p10, gamma), (grid, deadline, gops))| {
                let (epsilon, delta) = SENSING_GRID[grid];
                SimConfig {
                    num_channels,
                    p01,
                    p10,
                    gamma,
                    epsilon,
                    delta,
                    deadline,
                    gops,
                    ..SimConfig::default()
                }
            },
        )
}

/// Random interference graphs on 2–3 FBSs (the exhaustive-search
/// regime): each of the `(i, j)` pairs is an edge with probability ½.
pub fn arb_interference_graph() -> impl Strategy<Value = InterferenceGraph> {
    (
        2usize..=3,
        proptest::bool::ANY,
        proptest::bool::ANY,
        proptest::bool::ANY,
    )
        .prop_map(|(n, e01, e02, e12)| {
            let mut edges = Vec::new();
            for (on, a, b) in [(e01, 0, 1), (e02, 0, 2), (e12, 1, 2)] {
                if on && a < n && b < n {
                    edges.push((FbsId(a), FbsId(b)));
                }
            }
            InterferenceGraph::new(n, &edges)
        })
}

/// Random MGS rate–distortion curves bracketing Table IV: full-quality
/// PSNR α in 28–38 dB, R-D slope β in 4–40 dB/Mbps.
pub fn arb_rd_curve() -> impl Strategy<Value = MgsRateModel> {
    (28.0..38.0f64, 4.0..40.0f64).prop_map(|(alpha, beta)| {
        MgsRateModel::new(Psnr::new(alpha).expect("alpha nonnegative"), beta)
            .expect("generated R-D curve valid")
    })
}

/// One random user's raw parameters: `(w, s_mbs, s_fbs)`.
///
/// The femtocell link is always strictly better than the macrocell
/// link (`s_fbs ≥ s_mbs + 0.15`) — the operating regime of Section II,
/// where offloading onto a leased channel actually pays. Without that
/// separation a generated instance can make FBS channels worthless, in
/// which case every allocation gain collapses into the inner solver's
/// noise floor and the Theorem-2 / eq.-(23) comparisons measure noise
/// rather than the paper's bounds.
fn arb_user_params() -> impl Strategy<Value = (f64, f64, f64)> {
    (25.0..35.0f64, 0.2..0.65f64, 0.15..0.3f64)
        .prop_map(|(w, s_mbs, uplift)| (w, s_mbs, (s_mbs + uplift).min(0.95)))
}

/// Random interfering channel-allocation problems small enough for
/// [`fcr_core::ExhaustiveAllocator`]: a 2–3-FBS graph from
/// [`arb_interference_graph`], one user per FBS, and 2–4 available
/// channels with availability weights in `[0.4, 0.95)`.
pub fn arb_interfering_problem() -> impl Strategy<Value = InterferingProblem> {
    (
        arb_interference_graph(),
        (arb_user_params(), arb_user_params(), arb_user_params()),
        proptest::collection::vec(0.4..0.95f64, 2..=4),
    )
        .prop_map(|(graph, (u0, u1, u2), weights)| {
            let users: Vec<UserState> = [u0, u1, u2]
                .iter()
                .take(graph.num_vertices())
                .enumerate()
                .map(|(i, &(w, s_mbs, s_fbs))| {
                    UserState::new(w, FbsId(i), 0.72, 0.72, s_mbs, s_fbs)
                        .expect("generated user valid")
                })
                .collect();
            InterferingProblem::new(users, graph, weights).expect("generated problem valid")
        })
}

/// Random single-slot time-share problems for the dual/KKT
/// cross-checks: 1–4 users over 1–2 FBSs, rates in `[0.1, 1.5)` Mb/s
/// per slot, success probabilities in `[0.1, 1.0)`, and expected
/// idle-channel counts `g` in `[0.2, 6.0)`.
pub fn arb_slot_problem() -> impl Strategy<Value = SlotProblem> {
    let user = || {
        (
            (20.0..45.0f64, 0.1..1.5f64, 0.1..1.5f64),
            (0.1..1.0f64, 0.1..1.0f64, proptest::bool::ANY),
        )
    };
    (
        (user(), user(), user(), user()),
        1usize..=4,
        1usize..=2,
        (0.2..6.0f64, 0.2..6.0f64),
    )
        .prop_map(|(users, count, num_fbss, (g0, g1))| {
            let raw = [users.0, users.1, users.2, users.3];
            let users: Vec<UserState> = raw
                .iter()
                .take(count)
                .map(|&((w, r_mbs, r_fbs), (s_mbs, s_fbs, second))| {
                    let fbs = if num_fbss == 2 && second { 1 } else { 0 };
                    UserState::new(w, FbsId(fbs), r_mbs, r_fbs, s_mbs, s_fbs)
                        .expect("generated user valid")
                })
                .collect();
            let g = [g0, g1][..num_fbss].to_vec();
            SlotProblem::new(users, g).expect("generated slot problem valid")
        })
}

/// Random **valid** scenario packs, driven through
/// [`fcr_scenario::Pack::generate`] so every case is identified by the
/// single `u64` seed proptest prints on failure — replay with
/// `Pack::generate(seed)` or `fcr-experiments scenario --generate <seed>`.
pub fn arb_scenario_pack() -> impl Strategy<Value = fcr_scenario::Pack> {
    (0u64..u64::from(u32::MAX)).prop_map(fcr_scenario::Pack::generate)
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn sensing_points_keep_the_sensor_informative((eps, delta) in arb_sensing_point()) {
            prop_assert!(eps + delta < 1.0);
            prop_assert!(eps > 0.0 && delta > 0.0);
        }

        #[test]
        fn generated_configs_validate(cfg in arb_sim_config()) {
            prop_assert!(cfg.validate().is_ok(), "invalid config: {:?}", cfg.validate());
        }

        #[test]
        fn generated_graphs_have_bounded_degree(graph in arb_interference_graph()) {
            prop_assert!(graph.num_vertices() >= 2 && graph.num_vertices() <= 3);
            prop_assert!(graph.max_degree() < graph.num_vertices());
        }

        #[test]
        fn generated_rd_curves_are_monotone_and_invertible(
            model in arb_rd_curve(),
            r in 0.0..4.0f64,
        ) {
            // Eq. (9): quality grows linearly in rate above the base α…
            let lo = model.psnr(fcr_video::Mbps::new(r).unwrap());
            let hi = model.psnr(fcr_video::Mbps::new(r + 0.5).unwrap());
            prop_assert!(hi.db() > lo.db());
            prop_assert!(lo.db() >= model.alpha().db());
            // …and rate_for inverts it exactly (up to rounding).
            let back = model.rate_for(lo).value();
            prop_assert!((back - r).abs() <= 1e-9 * r.max(1.0));
        }

        #[test]
        fn generated_problems_admit_their_constructors(
            p in arb_interfering_problem(),
            sp in arb_slot_problem(),
        ) {
            prop_assert!(p.num_fbss() >= 2);
            prop_assert!(p.num_channels() >= 2);
            // The Section-II offload regime: leased FBS channels beat
            // the macrocell link for every generated user.
            for u in p.users() {
                prop_assert!(u.success_fbs() >= u.success_mbs() + 0.15 - 1e-12);
            }
            prop_assert!(sp.num_users() >= 1);
        }
    }
}
