//! Serve-path chaos harness: churn storms through
//! [`fcr_serve::Service`] on a faulted pool.
//!
//! The batch harness ([`crate::faults`]) proves the *engine's* numbers
//! are fault-invariant. This module proves the same for the always-on
//! service: under seeded worker panics, execution delays, and resize
//! storms, a `Service` with live session churn (admissions,
//! mid-flight retirements, replacement admissions) must
//!
//! * keep the accounting identity exact — `admitted == completed +
//!   retired + shed`, with nothing lost and nothing double-counted;
//! * finish with `pending == 0` and an empty active set;
//! * contain every injected panic (failed pool jobs equal injected
//!   chaos panics, one for one — window jobs never fail);
//! * deliver every completed session's outputs **bit-identical** to
//!   the batch [`fcr_sim::SimSession`] path with the same seed.
//!
//! Every assertion message carries the case name and seed for replay.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use fcr_runtime::{FaultReport, Runtime};
use fcr_serve::{AdmitOutcome, ServeConfig, Service, SessionId, SessionSpec};
use fcr_sim::{config::SimConfig, Scenario, Scheme, SimSession};

use crate::faults::FaultCase;
use crate::seeds::splitmix64;

/// What the serve-path chaos run observed.
#[derive(Debug, Clone)]
pub struct ServeStormVerdict {
    /// The case that ran.
    pub case_name: &'static str,
    /// Its seed (replay key).
    pub seed: u64,
    /// The fault plan's own accounting after the run.
    pub report: FaultReport,
    /// Sessions admitted over the storm (initial population plus
    /// churn replacements).
    pub admitted: u64,
    /// Sessions that ran to completion.
    pub completed: u64,
    /// Sessions retired mid-flight by the churn schedule.
    pub retired: u64,
    /// Completed sessions whose outputs were verified bit-identical
    /// to the batch path.
    pub outputs_verified: u64,
}

macro_rules! storm_assert {
    ($case:expr, $cond:expr, $($msg:tt)+) => {
        assert!(
            $cond,
            "[serve storm {} seed {:#x}] {}",
            $case.name,
            $case.seed,
            format!($($msg)+),
        )
    };
}

/// Waits until the faulted pool has accounted for every accepted job
/// (chaos jobs submitted alongside the service's windows included).
fn drain_pool(case: &FaultCase, runtime: &Runtime) {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let m = runtime.metrics().snapshot();
        if m.queue_depth == 0
            && m.jobs_in_flight == 0
            && m.jobs_submitted == m.jobs_completed + m.jobs_failed
        {
            return;
        }
        storm_assert!(
            case,
            std::time::Instant::now() < deadline,
            "faulted pool failed to drain: {m:?}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Runs a churn storm through a [`Service`] on `case`'s faulted pool
/// and asserts the serve-path invariance contract.
///
/// `sessions` is the initial population; roughly a third of it is
/// retired mid-flight and replaced, so total admissions exceed it.
/// Each session runs one base and one enhancement run of `cfg` under
/// `scheme`, seeded from `master_seed` so the whole storm replays.
pub fn verify_serve_under_faults(
    case: &FaultCase,
    cfg: &SimConfig,
    scenario: &Scenario,
    scheme: Scheme,
    master_seed: u64,
    sessions: u64,
) -> ServeStormVerdict {
    let runtime = Arc::new(case.runtime());
    let service = Service::new(
        ServeConfig {
            // Ample budget and no shedding horizon: the storm must be
            // deterministic in *what* completes (the ladder's timing-
            // dependent shedding is exercised by the serve crate's own
            // tests), chaotic only in *how* it executes.
            mbs_budget: sessions as f64 * 4.0 + 4.0,
            max_sessions: sessions as usize * 4 + 4,
            shed_after: u64::MAX / 2,
            completed_buffer: sessions as usize * 4 + 4,
            ..ServeConfig::default()
        },
        Arc::clone(&runtime),
    );
    let scenario = Arc::new(scenario.clone());
    let spec = |seed: u64| {
        SessionSpec::new(Arc::clone(&scenario), *cfg)
            .scheme(scheme)
            .seed(seed)
            .base_runs(1)
            .enhancement_runs(1)
    };

    // Initial population, one splitmix64-derived seed per session.
    let mut session_seed: BTreeMap<SessionId, u64> = BTreeMap::new();
    let mut admit = |service: &Service, i: u64| -> SessionId {
        let mut state = master_seed ^ (0xA5A5_0000 + i);
        let seed = splitmix64(&mut state);
        match service.admit(spec(seed)) {
            AdmitOutcome::Admitted(id) => {
                session_seed.insert(id, seed);
                id
            }
            AdmitOutcome::Rejected(reason) => {
                panic!(
                    "[serve storm {} seed {:#x}] admission rejected: {reason}",
                    case.name, case.seed
                )
            }
        }
    };
    let initial: Vec<SessionId> = (0..sessions).map(|i| admit(&service, i)).collect();

    // Let the first windows ship, then churn: retire every third
    // session mid-flight (those already completed return false and
    // stay completed) and admit one replacement per retirement.
    for _ in 0..3 {
        service.step();
    }
    let mut retired_now = 0u64;
    for (i, id) in initial.iter().enumerate() {
        if i % 3 == 0 && service.retire(*id) {
            retired_now += 1;
            admit(&service, sessions + retired_now);
        }
    }
    service.quiesce(100_000);
    let done = service.take_completed();
    drain_pool(case, &runtime);

    // --- Service-side accounting. ---
    let snap = service.snapshot();
    storm_assert!(case, snap.accounting_holds(), "accounting identity broken");
    storm_assert!(
        case,
        snap.active == 0 && snap.pending == 0 && snap.draining == 0,
        "service not quiescent: active {} pending {} draining {}",
        snap.active,
        snap.pending,
        snap.draining
    );
    storm_assert!(case, snap.shed == 0, "{} sessions shed", snap.shed);
    storm_assert!(
        case,
        snap.admitted == snap.completed + snap.retired,
        "session lost or double-counted: {} admitted vs {} completed + {} retired",
        snap.admitted,
        snap.completed,
        snap.retired
    );
    storm_assert!(
        case,
        done.len() as u64 == snap.completed && snap.completed_dropped == 0,
        "completed outputs lost: {} buffered vs {} counted ({} dropped)",
        done.len(),
        snap.completed,
        snap.completed_dropped
    );

    // --- Pool-side containment. ---
    let report = runtime
        .fault_report()
        .expect("faulted runtime reports its plan");
    let m = runtime.metrics().snapshot();
    storm_assert!(
        case,
        m.jobs_failed == report.panics_injected,
        "containment leak: {} failed jobs vs {} injected panics",
        m.jobs_failed,
        report.panics_injected
    );
    storm_assert!(
        case,
        snap.windows_retried == 0,
        "chaos panics must be contained, not charged to windows ({} retried)",
        snap.windows_retried
    );
    storm_assert!(
        case,
        report.pending == 0,
        "{} planned faults never fired (size the storm to the workload)",
        report.pending
    );

    // --- Bit-identity of every completed session vs. the batch path. ---
    let mut outputs_verified = 0u64;
    for session in &done {
        let seed = session_seed[&session.id];
        storm_assert!(
            case,
            !session.degraded,
            "session {:?} degraded under an ample config",
            session.id
        );
        let batch = SimSession::new((*scenario).clone())
            .config(*cfg)
            .seed(seed)
            .runs(2)
            .run(scheme);
        storm_assert!(
            case,
            session.outputs.len() == 2,
            "session {:?} returned {} runs, expected 2",
            session.id,
            session.outputs.len()
        );
        for (r, output) in session.outputs.iter().enumerate() {
            let served = output.as_ref().unwrap_or_else(|| {
                panic!(
                    "[serve storm {} seed {:#x}] session {:?} run {r} missing",
                    case.name, case.seed, session.id
                )
            });
            let direct = batch.outcomes()[r].as_ref().expect("batch run ok");
            storm_assert!(
                case,
                served.result == direct.result,
                "session {:?} run {r} diverged from the batch path",
                session.id
            );
        }
        outputs_verified += 1;
    }

    ServeStormVerdict {
        case_name: case.name,
        seed: case.seed,
        report,
        admitted: snap.admitted,
        completed: snap.completed,
        retired: snap.retired,
        outputs_verified,
    }
}
