//! Deterministic fault-injection harness.
//!
//! A [`FaultCase`] names a seeded [`FaultPlan`] scenario (worker
//! panics, execution delays, resize storms, or all three). The
//! verifiers run one simulation twice — once on the process-wide
//! clean pool, once on a dedicated faulted [`Runtime`] — and prove
//! the paper's numbers are *fault-invariant*:
//!
//! * **no job loss**: every submitted window job completes;
//! * **no duplication**: completions equal user submissions exactly;
//! * **containment**: the only failed jobs are the injected chaos
//!   panics, counted one for one;
//! * **bit-identical results**: per-run results and the PSNR sum
//!   match the clean pool bit for bit.
//!
//! Every panic message carries the case name and seed, so a red run
//! replays exactly.

use std::sync::Arc;
use std::time::Duration;

use fcr_runtime::{FaultPlan, FaultReport, FaultSpec, Runtime, RuntimeConfig, ShardPolicy};
use fcr_sim::{config::SimConfig, Scenario, Scheme, SimSession};

/// One named, seeded fault scenario.
#[derive(Debug, Clone)]
pub struct FaultCase {
    /// Human-readable scenario name (appears in failure messages).
    pub name: &'static str,
    /// Seed expanded into the concrete fault schedule.
    pub seed: u64,
    /// Shape of the schedule (how many of each fault, over how many
    /// jobs).
    pub spec: FaultSpec,
}

impl FaultCase {
    /// Expands this case into a concrete [`FaultPlan`].
    pub fn plan(&self) -> FaultPlan {
        FaultPlan::seeded(self.seed, &self.spec)
    }

    /// A fresh dedicated runtime with this case's plan installed:
    /// 2 workers, elastic in `1..=4` so resize storms have room.
    pub fn runtime(&self) -> Runtime {
        let config = RuntimeConfig {
            workers: 2,
            queue_capacity: 64,
            min_workers: 1,
            max_workers: 4,
            shard: ShardPolicy::Auto,
            autoscale: None,
        };
        Runtime::with_faults(config, self.plan())
    }
}

/// The standard chaos corpus: three single-fault storms plus a mixed
/// plan, all derived from `base_seed` so a whole suite replays from
/// one number.
pub fn standard_cases(base_seed: u64) -> Vec<FaultCase> {
    let over = |panics, delays, resizes| FaultSpec {
        jobs: 12,
        panics,
        delays,
        max_delay: Duration::from_millis(2),
        resizes,
        worker_bounds: (1, 4),
    };
    vec![
        FaultCase {
            name: "panic-storm",
            seed: base_seed ^ 0x01,
            spec: over(4, 0, 0),
        },
        FaultCase {
            name: "delay-storm",
            seed: base_seed ^ 0x02,
            spec: over(0, 6, 0),
        },
        FaultCase {
            name: "resize-storm",
            seed: base_seed ^ 0x03,
            spec: over(0, 0, 5),
        },
        FaultCase {
            name: "mixed-chaos",
            seed: base_seed ^ 0x04,
            spec: over(3, 3, 2),
        },
    ]
}

/// Keeps the default panic hook for *real* panics but silences the
/// injected chaos panics, which would otherwise flood stderr with
/// thousands of expected backtraces. Idempotent enough for test use:
/// installing it twice only nests the filter.
pub fn install_quiet_hook() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg_is_chaos = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.contains("injected chaos panic"))
            .or_else(|| {
                info.payload()
                    .downcast_ref::<String>()
                    .map(|s| s.contains("injected chaos panic"))
            })
            .unwrap_or(false);
        if !msg_is_chaos {
            default_hook(info);
        }
    }));
}

/// What a verifier observed on the faulted pool.
#[derive(Debug, Clone)]
pub struct FaultVerdict {
    /// The case that ran.
    pub case_name: &'static str,
    /// Its seed (replay key).
    pub seed: u64,
    /// The plan's own accounting after the run.
    pub report: FaultReport,
    /// User window jobs the session submitted.
    pub user_jobs: u64,
    /// Jobs the faulted pool completed.
    pub jobs_completed: u64,
    /// Jobs the faulted pool contained a panic from.
    pub jobs_failed: u64,
}

fn psnr_sum_bits(psnrs: impl Iterator<Item = f64>) -> u64 {
    let sum: f64 = psnrs.sum();
    sum.to_bits()
}

macro_rules! case_assert {
    ($case:expr, $cond:expr, $($msg:tt)+) => {
        assert!(
            $cond,
            "[fault case {} seed {:#x}] {}",
            $case.name,
            $case.seed,
            format!($($msg)+),
        )
    };
}

/// Waits until every accepted job has been accounted for (completed
/// or contained): sessions only join *their* handles, so an injected
/// chaos job submitted near the end may still be in flight when the
/// session returns.
fn drain(runtime: &Runtime) {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let m = runtime.metrics().snapshot();
        if m.queue_depth == 0
            && m.jobs_in_flight == 0
            && m.jobs_submitted == m.jobs_completed + m.jobs_failed
        {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "faulted pool failed to drain: {m:?}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn verify_invariants(
    case: &FaultCase,
    runtime: &Runtime,
    user_jobs: u64,
    baseline_bits: u64,
    injected_bits: u64,
    results_equal: bool,
) -> FaultVerdict {
    drain(runtime);
    let report = runtime
        .fault_report()
        .expect("faulted runtime reports its plan");
    let m = runtime.metrics().snapshot();
    case_assert!(
        case,
        results_equal,
        "per-run results diverged from the clean pool"
    );
    case_assert!(
        case,
        injected_bits == baseline_bits,
        "PSNR sum not bit-identical: clean {baseline_bits:#x} vs faulted {injected_bits:#x}"
    );
    case_assert!(
        case,
        m.jobs_failed == report.panics_injected,
        "containment leak: {} failed jobs vs {} injected panics",
        m.jobs_failed,
        report.panics_injected
    );
    case_assert!(
        case,
        m.jobs_submitted == user_jobs + report.panics_injected,
        "submission accounting: {} submitted vs {} user + {} chaos",
        m.jobs_submitted,
        user_jobs,
        report.panics_injected
    );
    case_assert!(
        case,
        m.jobs_completed == user_jobs,
        "job loss or duplication: {} completed vs {} submitted windows",
        m.jobs_completed,
        user_jobs
    );
    case_assert!(
        case,
        m.queue_depth == 0 && m.jobs_in_flight == 0,
        "pool not quiescent after session: depth {} in-flight {}",
        m.queue_depth,
        m.jobs_in_flight
    );
    case_assert!(
        case,
        report.pending == 0,
        "{} planned faults never fired (size the spec to the workload)",
        report.pending
    );
    FaultVerdict {
        case_name: case.name,
        seed: case.seed,
        report,
        user_jobs,
        jobs_completed: m.jobs_completed,
        jobs_failed: m.jobs_failed,
    }
}

/// Runs `scheme` on the fluid engine with and without `case`'s faults
/// and asserts the invariance contract. Shards one GOP per window so
/// the workload (and thus the fault schedule coverage) is independent
/// of pool width.
pub fn verify_fluid_under_faults(
    case: &FaultCase,
    cfg: &SimConfig,
    scenario: &Scenario,
    scheme: Scheme,
    master_seed: u64,
    runs: u64,
) -> FaultVerdict {
    let base = SimSession::new(scenario.clone())
        .config(*cfg)
        .seed(master_seed)
        .runs(runs)
        .shards(ShardPolicy::Windows(1));
    let baseline = base.run(scheme).results();

    let runtime = Arc::new(case.runtime());
    let injected = SimSession::new(scenario.clone())
        .config(*cfg)
        .seed(master_seed)
        .runs(runs)
        .shards(ShardPolicy::Windows(1))
        .on_runtime(Arc::clone(&runtime))
        .run(scheme)
        .results();

    verify_invariants(
        case,
        &runtime,
        runs * u64::from(cfg.gops),
        psnr_sum_bits(
            baseline
                .iter()
                .flat_map(|r| r.per_user_psnr.iter().copied()),
        ),
        psnr_sum_bits(
            injected
                .iter()
                .flat_map(|r| r.per_user_psnr.iter().copied()),
        ),
        injected == baseline,
    )
}

/// Packet-engine counterpart of [`verify_fluid_under_faults`]: same
/// invariance contract on the NAL-unit-granular engine.
pub fn verify_packet_under_faults(
    case: &FaultCase,
    cfg: &SimConfig,
    scenario: &Scenario,
    scheme: Scheme,
    master_seed: u64,
    runs: u64,
) -> FaultVerdict {
    let base = SimSession::new(scenario.clone())
        .config(*cfg)
        .seed(master_seed)
        .runs(runs)
        .shards(ShardPolicy::Windows(1));
    let baseline = base.run_packet(scheme).results();

    let runtime = Arc::new(case.runtime());
    let injected = SimSession::new(scenario.clone())
        .config(*cfg)
        .seed(master_seed)
        .runs(runs)
        .shards(ShardPolicy::Windows(1))
        .on_runtime(Arc::clone(&runtime))
        .run_packet(scheme)
        .results();

    verify_invariants(
        case,
        &runtime,
        runs * u64::from(cfg.gops),
        psnr_sum_bits(
            baseline
                .iter()
                .flat_map(|r| r.per_user_psnr.iter().copied()),
        ),
        psnr_sum_bits(
            injected
                .iter()
                .flat_map(|r| r.per_user_psnr.iter().copied()),
        ),
        injected == baseline,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_standard_corpus_is_replayable_and_distinct() {
        let a = standard_cases(7);
        let b = standard_cases(7);
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.plan().report(), y.plan().report());
        }
        let seeds: std::collections::BTreeSet<u64> = a.iter().map(|c| c.seed).collect();
        assert_eq!(seeds.len(), 4, "cases must not share seeds");
    }

    #[test]
    fn each_storm_actually_schedules_its_fault_kind() {
        let cases = standard_cases(11);
        let pending: Vec<u64> = cases.iter().map(|c| c.plan().report().pending).collect();
        // Submission faults (panics, resizes) never merge, so their
        // storms schedule exactly their spec counts; colliding delay
        // keys accumulate into one firing, so the delay storm may
        // schedule fewer (but never zero) pending entries.
        assert_eq!(pending[0], 4, "panic storm");
        assert!(pending[1] >= 1 && pending[1] <= 6, "delay storm");
        assert_eq!(pending[2], 5, "resize storm");
        assert!(pending[3] >= 6 && pending[3] <= 8, "mixed chaos");
    }
}
