//! Seed discipline: every randomized suite in this crate derives its
//! cases from an explicit `u64` that is printed on failure, so any
//! red run can be replayed with `PROPTEST_SEED=<seed>` (property
//! suites) or by passing the printed seed back to the harness (fault
//! suites, soak binary).

/// The pinned seed CI runs first, before the randomized pass.
///
/// The value spells the paper's venue date (ICDCS 2011-06-11) and is
/// otherwise arbitrary; what matters is that the same corpus of cases
/// runs on every push.
pub const CI_SEED: u64 = 20_110_611;

/// The splitmix64 step — the same generator `fcr_runtime::FaultPlan`
/// uses to expand a seed into a fault schedule, re-exported here so
/// harnesses and the soak binary derive per-iteration seeds from one
/// well-known stream.
///
/// Advances `state` and returns the next output. Splitmix64 is an
/// equidistributed bijection on `u64`, so distinct iteration indices
/// can never collapse onto one seed.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives the seed for case number `case` of the named suite.
///
/// The suite name is folded in FNV-style so `("faults", 3)` and
/// ("golden", 3)` land in unrelated parts of the sequence.
pub fn case_seed(suite: &str, case: u64) -> u64 {
    let mut state = 0xcbf2_9ce4_8422_2325u64;
    for b in suite.bytes() {
        state ^= u64::from(b);
        state = state.wrapping_mul(0x1000_0000_01b3);
    }
    state ^= case;
    splitmix64(&mut state)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_advances_state() {
        let mut a = 7;
        let mut b = 7;
        assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        assert_eq!(a, b);
        assert_ne!(splitmix64(&mut a), {
            let mut c = 7;
            splitmix64(&mut c)
        });
    }

    #[test]
    fn case_seeds_differ_across_suites_and_cases() {
        assert_ne!(case_seed("faults", 0), case_seed("faults", 1));
        assert_ne!(case_seed("faults", 0), case_seed("golden", 0));
        assert_eq!(case_seed("soak", 5), case_seed("soak", 5));
    }
}
