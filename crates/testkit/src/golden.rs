//! Golden-trace conformance: canonical JSONL renderings of the
//! paper-figure scenarios, checked byte-for-byte against files under
//! `crates/testkit/goldens/`.
//!
//! The renderer prints every `f64` with Rust's `{}` formatting —
//! shortest round-trip representation, which is deterministic across
//! runs, worker pools, and shard policies (the engine itself is
//! bit-deterministic per `(run, gop)` stream). Any numeric drift in
//! the pipeline therefore shows up as a one-line golden diff.
//!
//! Workflow:
//!
//! * normal runs: [`check_or_regen`] compares the freshly rendered
//!   content with the stored golden and reports the first mismatching
//!   line on failure;
//! * after an *intentional* change to simulated numbers: re-run with
//!   `FCR_REGEN_GOLDENS=1`, review the diff, commit the new goldens.

use std::fmt::Write as _;
use std::path::PathBuf;

use fcr_runtime::ShardPolicy;
use fcr_sim::{
    config::SimConfig, PacketRunResult, RunResult, Scenario, Scheme, SimSession, TraceMode,
};

/// Environment variable that switches [`check_or_regen`] from
/// *compare* to *rewrite* mode.
pub const REGEN_ENV: &str = "FCR_REGEN_GOLDENS";

/// Outcome of a golden check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GoldenStatus {
    /// The rendered content matched the stored golden byte for byte.
    Matched,
    /// `FCR_REGEN_GOLDENS` was set and the golden file was rewritten.
    Regenerated,
}

/// Formats one `f64` for a golden line: Rust's shortest-roundtrip
/// `{}` representation, with `-0` normalized to `0` so sign-of-zero
/// noise can never enter a golden.
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else {
        format!("{x}")
    }
}

fn fmt_f64_slice(xs: &[f64]) -> String {
    let mut s = String::from("[");
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&fmt_f64(*x));
    }
    s.push(']');
    s
}

/// Renders one fluid-engine [`RunResult`] as a JSONL line.
pub fn run_line(scenario: &str, scheme: Scheme, run: usize, r: &RunResult) -> String {
    format!(
        "{{\"type\":\"run\",\"scenario\":\"{scenario}\",\"scheme\":\"{scheme:?}\",\"run\":{run},\
         \"psnr\":{},\"mean\":{},\"collision_rate\":{},\"mean_expected_available\":{}}}",
        fmt_f64_slice(&r.per_user_psnr),
        fmt_f64(r.mean_psnr()),
        fmt_f64(r.collision_rate),
        fmt_f64(r.mean_expected_available),
    )
}

/// Renders one packet-engine [`PacketRunResult`] as a JSONL line.
pub fn packet_line(scenario: &str, scheme: Scheme, run: usize, r: &PacketRunResult) -> String {
    format!(
        "{{\"type\":\"packet_run\",\"scenario\":\"{scenario}\",\"scheme\":\"{scheme:?}\",\
         \"run\":{run},\"psnr\":{},\"delivered\":{},\"expired\":{},\"retx\":{},\
         \"base_losses\":{}}}",
        fmt_f64_slice(&r.per_user_psnr),
        r.delivered_units,
        r.expired_units,
        r.retransmissions,
        r.base_layer_losses,
    )
}

/// Renders a fluid scenario (all schemes, all runs, plus per-slot
/// lines for the *first* run of each scheme) as a JSONL document.
pub fn render_fluid(
    name: &str,
    cfg: &SimConfig,
    scenario: &Scenario,
    schemes: &[Scheme],
    runs: u64,
    master_seed: u64,
    shards: ShardPolicy,
) -> String {
    let mut out = String::new();
    let session = SimSession::new(scenario.clone())
        .config(*cfg)
        .seed(master_seed)
        .runs(runs)
        .shards(shards)
        .trace(TraceMode::Slots);
    for &scheme in schemes {
        let result = session.run(scheme);
        for (run, r) in result.results().iter().enumerate() {
            out.push_str(&run_line(name, scheme, run, r));
            out.push('\n');
        }
        if let Some(trace) = result.traces().first() {
            for rec in trace.records() {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"slot\",\"scenario\":\"{name}\",\"scheme\":\"{scheme:?}\",\
                     \"slot\":{},\"posteriors\":{},\"accessed\":{:?},\"expected_available\":{},\
                     \"collisions\":{},\"delivered_db\":{}}}",
                    rec.slot,
                    fmt_f64_slice(&rec.posteriors),
                    rec.accessed,
                    fmt_f64(rec.expected_available),
                    rec.collisions,
                    fmt_f64_slice(&rec.delivered_db),
                );
            }
        }
    }
    out
}

/// Renders a packet-level scenario (all schemes, all runs) as a JSONL
/// document.
pub fn render_packet(
    name: &str,
    cfg: &SimConfig,
    scenario: &Scenario,
    schemes: &[Scheme],
    runs: u64,
    master_seed: u64,
    shards: ShardPolicy,
) -> String {
    let mut out = String::new();
    let session = SimSession::new(scenario.clone())
        .config(*cfg)
        .seed(master_seed)
        .runs(runs)
        .shards(shards);
    for &scheme in schemes {
        let result = session.run_packet(scheme);
        for (run, r) in result.results().iter().enumerate() {
            out.push_str(&packet_line(name, scheme, run, r));
            out.push('\n');
        }
    }
    out
}

/// The fig-3 golden: the paper's baseline single-FBS scenario (fluid
/// engine, traced), short horizon so the golden stays reviewable.
pub fn fig3_golden(shards: ShardPolicy) -> String {
    let cfg = SimConfig {
        gops: 3,
        ..SimConfig::default()
    };
    let scenario = Scenario::single_fbs(&cfg);
    render_fluid(
        "fig3",
        &cfg,
        &scenario,
        &[Scheme::Proposed],
        2,
        0xf163,
        shards,
    )
}

/// The fig-3 packet-level golden: same scenario on the NAL-unit
/// engine.
pub fn fig3_packet_golden(shards: ShardPolicy) -> String {
    let cfg = SimConfig {
        gops: 3,
        ..SimConfig::default()
    };
    let scenario = Scenario::single_fbs(&cfg);
    render_packet(
        "fig3",
        &cfg,
        &scenario,
        &[Scheme::Proposed, Scheme::Heuristic1],
        2,
        0xf163,
        shards,
    )
}

/// The fig-4 golden: the baseline scenario across the paper's three
/// (ε, δ) sensing operating points.
pub fn fig4_golden(shards: ShardPolicy) -> String {
    let mut out = String::new();
    for &(eps, delta) in &[(0.3, 0.3), (0.2, 0.48), (0.48, 0.2)] {
        let cfg = SimConfig {
            gops: 2,
            ..SimConfig::default()
        }
        .with_sensing_errors(eps, delta);
        let scenario = Scenario::single_fbs(&cfg);
        let name = format!("fig4/eps{eps}-delta{delta}");
        out.push_str(&render_fluid(
            &name,
            &cfg,
            &scenario,
            &[Scheme::Proposed],
            1,
            0xf164,
            shards,
        ));
    }
    out
}

/// The fig-6 golden: the interfering three-FBS path scenario of Fig. 5,
/// fluid and packet engines, proposed scheme vs heuristic 1.
pub fn fig6_golden(shards: ShardPolicy) -> String {
    let cfg = SimConfig {
        gops: 2,
        ..SimConfig::default()
    };
    let scenario = Scenario::interfering_fig5(&cfg);
    let mut out = render_fluid(
        "fig6",
        &cfg,
        &scenario,
        &[Scheme::Proposed, Scheme::Heuristic1],
        2,
        0xf166,
        shards,
    );
    out.push_str(&render_packet(
        "fig6",
        &cfg,
        &scenario,
        &[Scheme::Proposed, Scheme::Heuristic1],
        2,
        0xf166,
        shards,
    ));
    out
}

/// Absolute path of the stored golden named `name`.
pub fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("goldens")
        .join(format!("{name}.jsonl"))
}

/// Compares `content` with the stored golden `name`, or rewrites the
/// golden when [`REGEN_ENV`] is set.
///
/// On mismatch the error pinpoints the first differing line of each
/// side, plus the command that regenerates the goldens.
pub fn check_or_regen(name: &str, content: &str) -> Result<GoldenStatus, String> {
    let path = golden_path(name);
    if std::env::var_os(REGEN_ENV).is_some() {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir:?}: {e}"))?;
        }
        std::fs::write(&path, content).map_err(|e| format!("writing {path:?}: {e}"))?;
        return Ok(GoldenStatus::Regenerated);
    }
    let stored = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "golden {path:?} unreadable ({e}); generate it with \
             `FCR_REGEN_GOLDENS=1 cargo test -p fcr-testkit --test golden_conformance`"
        )
    })?;
    if stored == content {
        return Ok(GoldenStatus::Matched);
    }
    let mismatch = stored
        .lines()
        .zip(content.lines())
        .enumerate()
        .find(|(_, (a, b))| a != b);
    let detail = match mismatch {
        Some((i, (want, got))) => {
            format!(
                "first mismatch at line {}:\n  golden: {want}\n  fresh:  {got}",
                i + 1
            )
        }
        None => format!(
            "line counts differ: golden has {}, fresh render has {}",
            stored.lines().count(),
            content.lines().count()
        ),
    };
    Err(format!(
        "golden {name} drifted ({detail})\nif the change is intentional, regenerate with \
         `FCR_REGEN_GOLDENS=1 cargo test -p fcr-testkit --test golden_conformance` and review \
         the diff"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_formatting_is_shortest_roundtrip_and_normalizes_negative_zero() {
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(-0.0), "0");
        assert_eq!(fmt_f64(1.0 / 3.0), format!("{}", 1.0f64 / 3.0));
        let x: f64 = fmt_f64(0.1 + 0.2).parse().unwrap();
        assert_eq!(x.to_bits(), (0.1f64 + 0.2).to_bits());
    }

    #[test]
    fn slice_formatting_is_compact_json() {
        assert_eq!(fmt_f64_slice(&[]), "[]");
        assert_eq!(fmt_f64_slice(&[1.5, 0.0, 2.0]), "[1.5,0,2]");
    }

    #[test]
    fn missing_golden_reports_the_regeneration_command() {
        let err = check_or_regen("no-such-golden", "x\n").unwrap_err();
        assert!(err.contains("FCR_REGEN_GOLDENS=1"), "{err}");
    }
}
