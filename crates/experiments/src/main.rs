//! Regenerates every figure of Hu & Mao (ICDCS 2011).
//!
//! Usage: `experiments <fig3|fig4a|fig4b|fig4c|fig6a|fig6b|fig6c|all> [--runs N] [--gops N]`
//!
//! `experiments scenario <pack.json>` runs a declarative scenario pack
//! instead (see docs/scenario_format.md); `--generate <seed>` builds a
//! random valid pack, `--trace` emits its golden JSONL trace, and
//! `--churn` replays its session churn against a live service.
//!
//! Each subcommand prints the same rows/series the paper plots; see
//! EXPERIMENTS.md for paper-vs-measured commentary. `--pool-stats`
//! appends a live snapshot of the shared simulation worker pool
//! (jobs, queue, wall-time histogram, slots simulated) to stderr so
//! archived stdout stays byte-comparable across machines.
//!
//! `--telemetry[=PATH]` turns on `fcr-telemetry` span tracing and
//! solver-convergence capture for the whole run. Without a path the
//! phase-timing / convergence tables print to stderr; with a path the
//! full snapshot (plus per-worker pool utilization) is written to
//! `PATH` as JSONL. Telemetry never changes results — simulations are
//! bit-identical with it on or off.

use fcr_experiments::{
    ablation, fig3, fig4a, fig4b, fig4c, fig6a, fig6b, fig6c, packet, scale, scenario_churn_report,
    scenario_report, ExperimentOpts,
};
use std::process::ExitCode;

/// `experiments scenario <pack.json> [--churn] [--trace]`
/// `experiments scenario --generate <seed> [--out PATH]`
///
/// Loads (or generates) a declarative scenario pack and runs it: the
/// deterministic batch summary always prints; `--churn` adds a live
/// replay against a real service; `--trace` prints the canonical JSONL
/// trace (the same bytes the pack goldens pin). `--generate` writes
/// the canonical JSON of `fcr_scenario::Pack::generate(seed)` and
/// echoes the seed to stderr so a CI failure is replayable verbatim.
fn run_scenario(args: &[String]) -> ExitCode {
    let mut path: Option<&str> = None;
    let mut generate: Option<u64> = None;
    let mut out_path: Option<&str> = None;
    let mut churn = false;
    let mut trace = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--churn" => {
                churn = true;
                i += 1;
            }
            "--trace" => {
                trace = true;
                i += 1;
            }
            "--generate" => {
                let Some(seed) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                    eprintln!("--generate needs an integer seed");
                    return ExitCode::FAILURE;
                };
                generate = Some(seed);
                i += 2;
            }
            "--out" => {
                let Some(p) = args.get(i + 1) else {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                };
                out_path = Some(p);
                i += 2;
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown scenario option {flag}");
                return ExitCode::FAILURE;
            }
            positional => {
                path = Some(positional);
                i += 1;
            }
        }
    }

    let pack = match (path, generate) {
        (None, Some(seed)) => {
            let pack = fcr_scenario::Pack::generate(seed);
            eprintln!("generated pack `{}` from seed {seed}", pack.name);
            if let Some(out) = out_path {
                if let Err(e) = std::fs::write(out, pack.to_json()) {
                    eprintln!("failed to write {out}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {out}");
            }
            pack
        }
        (Some(p), None) => {
            let text = match std::fs::read_to_string(p) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("failed to read {p}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match fcr_scenario::Pack::from_json(&text) {
                Ok(pack) => pack,
                Err(e) => {
                    eprintln!("{p}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        _ => {
            eprintln!(
                "usage: experiments scenario <pack.json> [--churn] [--trace]\n\
                 \u{20}      experiments scenario --generate <seed> [--out PATH]"
            );
            return ExitCode::FAILURE;
        }
    };

    if trace {
        print!(
            "{}",
            fcr_scenario::render_trace(&pack, fcr_runtime::ShardPolicy::WholeRun)
        );
    } else {
        print!("{}", scenario_report(&pack));
    }
    if churn {
        print!("{}", scenario_churn_report(&pack));
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(which) = args.first() else {
        eprintln!("usage: experiments <fig3|fig4a|fig4b|fig4c|fig6a|fig6b|fig6c|ablation|scale|packet|scenario|all> [--runs N] [--gops N] [--seed N] [--csv] [--pool-stats] [--telemetry[=PATH]]");
        return ExitCode::FAILURE;
    };

    if which == "scenario" {
        return run_scenario(&args[1..]);
    }

    let mut opts = ExperimentOpts::default();
    let mut pool_stats = false;
    // None: telemetry off; Some(None): tables to stderr;
    // Some(Some(path)): JSONL to path.
    let mut telemetry: Option<Option<String>> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--runs" => {
                opts.runs = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--runs needs a positive integer");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--gops" => {
                opts.gops = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--gops needs a positive integer");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--csv" => {
                opts.csv = true;
                i += 1;
            }
            "--pool-stats" => {
                pool_stats = true;
                i += 1;
            }
            "--telemetry" => {
                telemetry = Some(None);
                i += 1;
            }
            flag if flag.starts_with("--telemetry=") => {
                let path = &flag["--telemetry=".len()..];
                if path.is_empty() {
                    eprintln!("--telemetry= needs a path (or use bare --telemetry)");
                    return ExitCode::FAILURE;
                }
                telemetry = Some(Some(path.to_string()));
                i += 1;
            }
            "--seed" => {
                opts.seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--seed needs an integer");
                        std::process::exit(2);
                    });
                i += 2;
            }
            other => {
                eprintln!("unknown option {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    if telemetry.is_some() {
        fcr_telemetry::enable();
    }

    match which.as_str() {
        "fig3" => print!("{}", fig3(&opts)),
        "fig4a" => print!("{}", fig4a(&opts)),
        "fig4b" => print!("{}", fig4b(&opts)),
        "fig4c" => print!("{}", fig4c(&opts)),
        "fig6a" => print!("{}", fig6a(&opts)),
        "fig6b" => print!("{}", fig6b(&opts)),
        "fig6c" => print!("{}", fig6c(&opts)),
        "ablation" => print!("{}", ablation(&opts)),
        "scale" => print!("{}", scale(&opts)),
        "packet" => print!("{}", packet(&opts)),
        "all" => {
            for (name, out) in [
                ("fig3", fig3(&opts)),
                ("fig4a", fig4a(&opts)),
                ("fig4b", fig4b(&opts)),
                ("fig4c", fig4c(&opts)),
                ("fig6a", fig6a(&opts)),
                ("fig6b", fig6b(&opts)),
                ("fig6c", fig6c(&opts)),
            ] {
                println!("==================== {name} ====================");
                print!("{out}");
                println!();
            }
        }
        other => {
            eprintln!("unknown experiment {other}");
            return ExitCode::FAILURE;
        }
    }
    if pool_stats {
        eprint!(
            "{}",
            fcr_sim::report::runtime_metrics_table(&fcr_sim::pool::snapshot())
        );
    }
    match telemetry {
        Some(Some(path)) => {
            let jsonl = fcr_telemetry::to_jsonl(
                &fcr_telemetry::global().snapshot(),
                Some(&fcr_sim::pool::snapshot()),
            );
            if let Err(e) = std::fs::write(&path, jsonl) {
                eprintln!("failed to write telemetry to {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("telemetry written to {path}");
        }
        Some(None) => {
            eprint!(
                "{}",
                fcr_sim::report::telemetry_table(&fcr_telemetry::global().snapshot())
            );
        }
        None => {}
    }
    ExitCode::SUCCESS
}
