//! Regenerates every figure of Hu & Mao (ICDCS 2011).
//!
//! Usage: `experiments <fig3|fig4a|fig4b|fig4c|fig6a|fig6b|fig6c|all> [--runs N] [--gops N]`
//!
//! Each subcommand prints the same rows/series the paper plots; see
//! EXPERIMENTS.md for paper-vs-measured commentary. `--pool-stats`
//! appends a live snapshot of the shared simulation worker pool
//! (jobs, queue, wall-time histogram, slots simulated) to stderr so
//! archived stdout stays byte-comparable across machines.
//!
//! `--telemetry[=PATH]` turns on `fcr-telemetry` span tracing and
//! solver-convergence capture for the whole run. Without a path the
//! phase-timing / convergence tables print to stderr; with a path the
//! full snapshot (plus per-worker pool utilization) is written to
//! `PATH` as JSONL. Telemetry never changes results — simulations are
//! bit-identical with it on or off.

use fcr_experiments::{
    ablation, fig3, fig4a, fig4b, fig4c, fig6a, fig6b, fig6c, packet, scale, ExperimentOpts,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(which) = args.first() else {
        eprintln!("usage: experiments <fig3|fig4a|fig4b|fig4c|fig6a|fig6b|fig6c|ablation|scale|packet|all> [--runs N] [--gops N] [--seed N] [--csv] [--pool-stats] [--telemetry[=PATH]]");
        return ExitCode::FAILURE;
    };

    let mut opts = ExperimentOpts::default();
    let mut pool_stats = false;
    // None: telemetry off; Some(None): tables to stderr;
    // Some(Some(path)): JSONL to path.
    let mut telemetry: Option<Option<String>> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--runs" => {
                opts.runs = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--runs needs a positive integer");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--gops" => {
                opts.gops = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--gops needs a positive integer");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--csv" => {
                opts.csv = true;
                i += 1;
            }
            "--pool-stats" => {
                pool_stats = true;
                i += 1;
            }
            "--telemetry" => {
                telemetry = Some(None);
                i += 1;
            }
            flag if flag.starts_with("--telemetry=") => {
                let path = &flag["--telemetry=".len()..];
                if path.is_empty() {
                    eprintln!("--telemetry= needs a path (or use bare --telemetry)");
                    return ExitCode::FAILURE;
                }
                telemetry = Some(Some(path.to_string()));
                i += 1;
            }
            "--seed" => {
                opts.seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--seed needs an integer");
                        std::process::exit(2);
                    });
                i += 2;
            }
            other => {
                eprintln!("unknown option {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    if telemetry.is_some() {
        fcr_telemetry::enable();
    }

    match which.as_str() {
        "fig3" => print!("{}", fig3(&opts)),
        "fig4a" => print!("{}", fig4a(&opts)),
        "fig4b" => print!("{}", fig4b(&opts)),
        "fig4c" => print!("{}", fig4c(&opts)),
        "fig6a" => print!("{}", fig6a(&opts)),
        "fig6b" => print!("{}", fig6b(&opts)),
        "fig6c" => print!("{}", fig6c(&opts)),
        "ablation" => print!("{}", ablation(&opts)),
        "scale" => print!("{}", scale(&opts)),
        "packet" => print!("{}", packet(&opts)),
        "all" => {
            for (name, out) in [
                ("fig3", fig3(&opts)),
                ("fig4a", fig4a(&opts)),
                ("fig4b", fig4b(&opts)),
                ("fig4c", fig4c(&opts)),
                ("fig6a", fig6a(&opts)),
                ("fig6b", fig6b(&opts)),
                ("fig6c", fig6c(&opts)),
            ] {
                println!("==================== {name} ====================");
                print!("{out}");
                println!();
            }
        }
        other => {
            eprintln!("unknown experiment {other}");
            return ExitCode::FAILURE;
        }
    }
    if pool_stats {
        eprint!(
            "{}",
            fcr_sim::report::runtime_metrics_table(&fcr_sim::pool::snapshot())
        );
    }
    match telemetry {
        Some(Some(path)) => {
            let jsonl = fcr_telemetry::to_jsonl(
                &fcr_telemetry::global().snapshot(),
                Some(&fcr_sim::pool::snapshot()),
            );
            if let Err(e) = std::fs::write(&path, jsonl) {
                eprintln!("failed to write telemetry to {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("telemetry written to {path}");
        }
        Some(None) => {
            eprint!(
                "{}",
                fcr_sim::report::telemetry_table(&fcr_telemetry::global().snapshot())
            );
        }
        None => {}
    }
    ExitCode::SUCCESS
}
