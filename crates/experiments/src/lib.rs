//! Experiment drivers: one function per figure of Hu & Mao
//! (ICDCS 2011), each returning the printed table as a `String` so the
//! binary, the integration tests, and the benches share one
//! implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use fcr_core::dual::{DualConfig, DualSolver, StepSchedule};
use fcr_sim::config::SimConfig;
use fcr_sim::engine::sample_slot_problem;
use fcr_sim::metrics::SchemeSummary;
use fcr_sim::scenario::Scenario;
use fcr_sim::scheme::Scheme;
use fcr_sim::session::SimSession;
use fcr_spectrum::sensing::FIG6B_OPERATING_POINTS;
use fcr_stats::rng::SeedSequence;
use fcr_stats::series::{render_csv, render_table, Series};
use std::fmt::Write as _;

/// Common knobs of all experiment drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentOpts {
    /// Simulation runs per point (the paper uses 10).
    pub runs: u64,
    /// GOPs per run.
    pub gops: u32,
    /// Master seed.
    pub seed: u64,
    /// Render sweep figures as CSV instead of an aligned table.
    pub csv: bool,
}

impl Default for ExperimentOpts {
    fn default() -> Self {
        Self {
            runs: 10,
            gops: 20,
            seed: 20110620, // ICDCS 2011 started June 20, 2011.
            csv: false,
        }
    }
}

impl ExperimentOpts {
    fn base_config(&self) -> SimConfig {
        SimConfig {
            gops: self.gops,
            ..SimConfig::default()
        }
    }

    fn render(&self, x_label: &str, series: &[Series]) -> String {
        if self.csv {
            render_csv(x_label, series)
        } else {
            render_table(x_label, series)
        }
    }

    /// One [`SimSession`] per sweep: the template carries the run
    /// count and seed; scenario/config are superseded point by point.
    fn sweep(&self, points: &[(f64, SimConfig, Scenario)], schemes: &[Scheme]) -> Vec<Series> {
        let (_, cfg, scenario) = points.first().expect("at least one sweep point");
        SimSession::new(scenario.clone())
            .config(*cfg)
            .runs(self.runs)
            .seed(self.seed)
            .sweep(points, schemes)
    }
}

/// Fig. 3 — single FBS: per-user Y-PSNR of Bus/Mobile/Harbor under the
/// three schemes.
pub fn fig3(opts: &ExperimentOpts) -> String {
    let cfg = opts.base_config();
    let scenario = Scenario::single_fbs(&cfg);
    let session = SimSession::new(scenario)
        .config(cfg)
        .runs(opts.runs)
        .seed(opts.seed);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 3 — Single FBS: received video quality for the three CR users"
    );
    let _ = writeln!(
        out,
        "{:>10} {:>24} {:>24} {:>24}",
        "User", "Proposed scheme", "Heuristic 1", "Heuristic 2"
    );
    let summaries: Vec<SchemeSummary> = Scheme::PAPER_TRIO
        .iter()
        .map(|s| session.run(*s).summary())
        .collect();
    let names = ["1 (Bus)", "2 (Mobile)", "3 (Harbor)"];
    for (j, name) in names.iter().enumerate() {
        let _ = write!(out, "{name:>10}");
        for s in &summaries {
            let ci = &s.per_user[j];
            let _ = write!(out, " {:>15.2} ± {:>5.2}", ci.mean(), ci.half_width());
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "{:>10}", "mean");
    for s in &summaries {
        let _ = write!(
            out,
            " {:>15.2} ± {:>5.2}",
            s.overall.mean(),
            s.overall.half_width()
        );
    }
    let _ = writeln!(out);
    let _ = write!(out, "{:>10}", "Jain");
    for s in &summaries {
        let _ = write!(out, " {:>23.4}", s.jain);
    }
    let _ = writeln!(out);
    out
}

/// Fig. 4(a) — convergence of the dual variables λ0(τ), λ1(τ) on a
/// representative single-FBS slot problem (Table I with a constant
/// step, as in the paper).
pub fn fig4a(opts: &ExperimentOpts) -> String {
    let cfg = opts.base_config();
    let scenario = Scenario::single_fbs(&cfg);
    let problem = sample_slot_problem(&scenario, &cfg, &SeedSequence::new(opts.seed));
    let solver = DualSolver::new(DualConfig {
        step: StepSchedule::Constant(2e-4),
        max_iterations: 800,
        tolerance: 1e-16,
        initial_lambda: 0.1,
        record_trace: true,
    });
    let solution = solver.solve(&problem);

    let mut out = String::new();
    let _ = writeln!(out, "Fig. 4(a) — Convergence of the two dual variables");
    let _ = writeln!(out, "{:>10} {:>12} {:>12}", "iter", "lambda0", "lambda1");
    for (tau, l) in solution.trace().iter().enumerate() {
        if tau % 50 == 0 || tau + 1 == solution.trace().len() {
            let _ = writeln!(out, "{tau:>10} {:>12.6} {:>12.6}", l[0], l[1]);
        }
    }
    let _ = writeln!(
        out,
        "converged: {} after {} iterations (objective {:.6})",
        solution.converged(),
        solution.iterations(),
        solution.objective()
    );
    out
}

/// Fig. 4(b) — Y-PSNR vs. number of licensed channels `M ∈ {4..12}`,
/// single FBS.
pub fn fig4b(opts: &ExperimentOpts) -> String {
    let base = opts.base_config();
    let points: Vec<(f64, SimConfig, Scenario)> = [4usize, 6, 8, 10, 12]
        .iter()
        .map(|m| {
            let cfg = SimConfig {
                num_channels: *m,
                ..base
            };
            (*m as f64, cfg, Scenario::single_fbs(&cfg))
        })
        .collect();
    let series = opts.sweep(&points, &Scheme::PAPER_TRIO);
    format!(
        "Fig. 4(b) — Video quality vs. number of channels (single FBS)\n{}",
        opts.render("M", &series)
    )
}

/// Fig. 4(c) — Y-PSNR vs. channel utilization `η ∈ {0.3..0.7}`, single
/// FBS.
pub fn fig4c(opts: &ExperimentOpts) -> String {
    let series = utilization_sweep(opts, false);
    format!(
        "Fig. 4(c) — Video quality vs. channel utilization (single FBS)\n{}",
        opts.render("eta", &series)
    )
}

/// Fig. 6(a) — interfering FBSs: Y-PSNR vs. utilization, with the
/// upper-bound series.
pub fn fig6a(opts: &ExperimentOpts) -> String {
    let series = utilization_sweep(opts, true);
    format!(
        "Fig. 6(a) — Video quality vs. channel utilization (interfering FBSs)\n{}",
        opts.render("eta", &series)
    )
}

/// Fig. 6(b) — interfering FBSs: Y-PSNR vs. the sensing-error pairs
/// {(ε, δ)} of Section V-B.
pub fn fig6b(opts: &ExperimentOpts) -> String {
    let base = opts.base_config();
    let points: Vec<(f64, SimConfig, Scenario)> = FIG6B_OPERATING_POINTS
        .iter()
        .map(|(eps, delta)| {
            let cfg = base.with_sensing_errors(*eps, *delta);
            (*eps, cfg, Scenario::interfering_fig5(&cfg))
        })
        .collect();
    let series = opts.sweep(&points, &Scheme::WITH_BOUND);
    format!(
        "Fig. 6(b) — Video quality vs. sensing error (x = false-alarm ε; δ paired as in the paper)\n{}",
        opts.render("epsilon", &series)
    )
}

/// Fig. 6(c) — interfering FBSs: Y-PSNR vs. common-channel bandwidth
/// `B0 ∈ {0.1..0.5}` Mbps with `B1 = 0.3`.
pub fn fig6c(opts: &ExperimentOpts) -> String {
    let base = opts.base_config();
    let points: Vec<(f64, SimConfig, Scenario)> = [0.1, 0.2, 0.3, 0.4, 0.5]
        .iter()
        .map(|b0| {
            let cfg = SimConfig { b0: *b0, ..base };
            (*b0, cfg, Scenario::interfering_fig5(&cfg))
        })
        .collect();
    let series = opts.sweep(&points, &Scheme::WITH_BOUND);
    format!(
        "Fig. 6(c) — Video quality vs. common channel bandwidth (interfering FBSs)\n{}",
        opts.render("B0 (Mbps)", &series)
    )
}

/// Ablation table (not a paper figure): quantifies the design choices
/// DESIGN.md calls out — solver, sensing prior, access rule, and
/// channel-allocation layer — on the baseline scenarios.
pub fn ablation(opts: &ExperimentOpts) -> String {
    use fcr_core::exhaustive::ExhaustiveAllocator;
    use fcr_core::greedy::GreedyAllocator;
    use fcr_core::interfering::{coloring_assignment, round_robin_assignment, InterferingProblem};
    use fcr_core::waterfill::WaterfillingSolver;
    use fcr_sim::config::{AccessMode, PriorMode, SensingStrategy};
    use fcr_sim::engine::{run, TraceMode};
    use fcr_sim::metrics::RunResult;

    let mut out = String::new();
    let base = opts.base_config();
    let scenario = Scenario::single_fbs(&base);
    let seeds = SeedSequence::new(opts.seed);

    let summarize = |cfg: &SimConfig| -> (f64, f64, f64) {
        let results: Vec<RunResult> = (0..opts.runs)
            .map(|r| run(&scenario, cfg, Scheme::Proposed, &seeds, r, TraceMode::Off).result)
            .collect();
        let mean = results.iter().map(RunResult::mean_psnr).sum::<f64>() / results.len() as f64;
        let coll = results.iter().map(|r| r.collision_rate).sum::<f64>() / results.len() as f64;
        let g = results
            .iter()
            .map(|r| r.mean_expected_available)
            .sum::<f64>()
            / results.len() as f64;
        (mean, coll, g)
    };

    let _ = writeln!(out, "Ablations (proposed scheme, single-FBS baseline)");
    let _ = writeln!(
        out,
        "{:<34} {:>10} {:>12} {:>8}",
        "variant", "Y-PSNR", "collisions", "mean G"
    );
    let rows: [(&str, SimConfig); 5] = [
        ("stationary prior + eq.(7) access", base),
        (
            "belief-tracking prior",
            SimConfig {
                prior_mode: PriorMode::BeliefTracking,
                ..base
            },
        ),
        (
            "hard-threshold access",
            SimConfig {
                access_mode: AccessMode::Threshold,
                ..base
            },
        ),
        (
            "first-observation G_t",
            SimConfig {
                first_observation_only: true,
                ..base
            },
        ),
        (
            "tracking + uncertainty sensing",
            SimConfig {
                prior_mode: PriorMode::BeliefTracking,
                sensing_strategy: SensingStrategy::UncertaintyFirst,
                ..base
            },
        ),
    ];
    for (name, cfg) in rows {
        let (psnr, coll, g) = summarize(&cfg);
        let _ = writeln!(out, "{name:<34} {psnr:>10.3} {coll:>12.4} {g:>8.3}");
    }

    // Channel-allocation layer on a representative interfering slot.
    let interfering = Scenario::interfering_fig5(&base);
    let slot = {
        let p = fcr_sim::engine::sample_slot_problem(&interfering, &base, &seeds);
        // Rebuild as an interfering problem with representative weights.
        InterferingProblem::new(
            p.users().to_vec(),
            interfering.graph.clone(),
            vec![0.9, 0.8, 0.75, 0.7],
        )
        .expect("valid instance")
    };
    let solver = WaterfillingSolver::new();
    let greedy = GreedyAllocator::new().allocate(&slot);
    let optimal = ExhaustiveAllocator::new().allocate(&slot);
    let rr = round_robin_assignment(slot.graph(), slot.num_channels());
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Channel allocation on a representative interfering slot:"
    );
    let _ = writeln!(out, "{:<34} {:>12}", "allocator", "objective Q");
    let _ = writeln!(
        out,
        "{:<34} {:>12.6}",
        "greedy (Table III)",
        greedy.q_value()
    );
    let _ = writeln!(
        out,
        "{:<34} {:>12.6}",
        "exhaustive optimum",
        optimal.q_value()
    );
    let _ = writeln!(
        out,
        "{:<34} {:>12.6}",
        "round-robin split",
        slot.q_value(&rr, &solver)
    );
    let coloring = coloring_assignment(slot.graph(), slot.num_channels());
    let _ = writeln!(
        out,
        "{:<34} {:>12.6}",
        "coloring split",
        slot.q_value(&coloring, &solver)
    );
    let _ = writeln!(
        out,
        "{:<34} {:>12.6}",
        "eq.(23) upper bound",
        greedy.upper_bound()
    );
    out
}

/// Scaling study (not a paper figure): runtime and bound tightness of
/// the Table III greedy as the network grows, exercising the paper's
/// `O(N²M²)` complexity claim on random interference graphs.
pub fn scale(opts: &ExperimentOpts) -> String {
    use fcr_core::greedy::GreedyAllocator;
    use fcr_core::interfering::InterferingProblem;
    use fcr_core::problem::UserState;
    use fcr_net::interference::InterferenceGraph;
    use fcr_net::node::FbsId;
    use rand::RngExt;
    use std::time::Instant;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Greedy channel allocation scaling (random graphs, edge prob 0.4, 2 users/FBS)"
    );
    let _ = writeln!(
        out,
        "{:>4} {:>4} {:>7} {:>8} {:>10} {:>12} {:>12}",
        "N", "M", "pairs", "steps", "D_max", "gain/eq23", "ms/alloc"
    );
    let seeds = SeedSequence::new(opts.seed);
    for n in [2usize, 4, 6, 8] {
        let m = 6usize;
        let mut rng = seeds.stream("scale", n as u64);
        // Random interference graph.
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.random_bool(0.4) {
                    edges.push((FbsId(i), FbsId(j)));
                }
            }
        }
        let graph = InterferenceGraph::new(n, &edges);
        let users: Vec<UserState> = (0..2 * n)
            .map(|k| {
                UserState::new(
                    rng.random_range(26.0..34.0),
                    FbsId(k % n),
                    0.72,
                    0.72,
                    rng.random_range(0.3..0.9),
                    rng.random_range(0.5..0.95),
                )
                .expect("valid state")
            })
            .collect();
        let weights: Vec<f64> = (0..m).map(|_| rng.random_range(0.4..0.95)).collect();
        let problem =
            InterferingProblem::new(users, graph.clone(), weights).expect("valid instance");

        let started = Instant::now();
        let outcome = GreedyAllocator::new().allocate(&problem);
        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
        let ratio = if outcome.upper_bound_gain() > 0.0 {
            outcome.gain() / outcome.upper_bound_gain()
        } else {
            1.0
        };
        let _ = writeln!(
            out,
            "{:>4} {:>4} {:>7} {:>8} {:>10} {:>12.4} {:>12.2}",
            n,
            m,
            n * m,
            outcome.steps().len(),
            graph.max_degree(),
            ratio,
            elapsed_ms
        );
    }
    let _ = writeln!(
        out,
        "gain/eq23 >= 1/(1+D_max) is Theorem 2's guarantee; ms/alloc grows with\n\
         the O(N^2 M^2) candidate evaluations of Table III."
    );
    out
}

/// Packet-level validation (not a paper figure): re-runs the Fig. 3
/// comparison with NAL-unit-granular delivery and prints fluid vs.
/// packet Y-PSNR per scheme — quantifying what eq. (9)'s fluid
/// abstraction hides (unit quantization, retransmissions, base-layer
/// outages) and checking that the scheme ordering survives.
pub fn packet(opts: &ExperimentOpts) -> String {
    use fcr_sim::engine::{run, TraceMode};
    use fcr_sim::packet_engine::run_packet_level;

    let cfg = opts.base_config();
    let scenario = Scenario::single_fbs(&cfg);
    let seeds = SeedSequence::new(opts.seed);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Packet-level validation (single FBS, proposed scenario)"
    );
    let _ = writeln!(
        out,
        "{:<18} {:>14} {:>15} {:>7}",
        "Scheme", "fluid Y-PSNR", "packet Y-PSNR", "gap"
    );
    for scheme in Scheme::PAPER_TRIO {
        let fluid = (0..opts.runs)
            .map(|r| {
                run(&scenario, &cfg, scheme, &seeds, r, TraceMode::Off)
                    .result
                    .mean_psnr()
            })
            .sum::<f64>()
            / opts.runs as f64;
        let pkt = (0..opts.runs)
            .map(|r| run_packet_level(&scenario, &cfg, scheme, &seeds, r).mean_psnr())
            .sum::<f64>()
            / opts.runs as f64;
        let _ = writeln!(
            out,
            "{:<18} {:>14.2} {:>15.2} {:>7.2}",
            scheme.name(),
            fluid,
            pkt,
            fluid - pkt
        );
    }
    let detail = run_packet_level(&scenario, &cfg, Scheme::Proposed, &seeds, 0);
    let _ = writeln!(
        out,
        "proposed run 0: {} units delivered, {} expired, {} retransmissions, {} base-layer outages",
        detail.delivered_units,
        detail.expired_units,
        detail.retransmissions,
        detail.base_layer_losses
    );
    out
}

/// Shared η sweep for Figs. 4(c) and 6(a).
fn utilization_sweep(opts: &ExperimentOpts, interfering: bool) -> Vec<Series> {
    let base = opts.base_config();
    let schemes: &[Scheme] = if interfering {
        &Scheme::WITH_BOUND
    } else {
        &Scheme::PAPER_TRIO
    };
    let points: Vec<(f64, SimConfig, Scenario)> = [0.3, 0.4, 0.5, 0.6, 0.7]
        .iter()
        .map(|eta| {
            let cfg = base.with_utilization(*eta);
            let scenario = if interfering {
                Scenario::interfering_fig5(&cfg)
            } else {
                Scenario::single_fbs(&cfg)
            };
            (*eta, cfg, scenario)
        })
        .collect();
    opts.sweep(&points, schemes)
}

/// Scenario-pack driver: runs every `(scheme, run)` of a declarative
/// pack in batch and prints the per-scheme summary, then (for churn
/// packs) the deterministic churn schedule digest. Everything printed
/// is a pure function of the pack — suitable for archiving.
pub fn scenario_report(pack: &fcr_scenario::Pack) -> String {
    use fcr_scenario::ChurnEventKind;

    let mut out = String::new();
    let topology = pack.topology();
    let _ = writeln!(out, "Scenario pack `{}` (seed {})", pack.name, pack.seed);
    let _ = writeln!(out, "  {}", pack.description);
    let _ = writeln!(
        out,
        "  topology: {} FBSs, {} CR users; traffic: {:?} x{} run(s)",
        topology.num_fbss(),
        topology.num_users(),
        pack.traffic.sequences,
        pack.runs,
    );

    let _ = writeln!(
        out,
        "{:<18} {:>12} {:>8} {:>12}",
        "Scheme", "mean Y-PSNR", "Jain", "collisions"
    );
    for scheme in &pack.schemes {
        let result = pack.session().run(*scheme);
        let results = result.results();
        let psnr = results.iter().map(|r| r.mean_psnr()).sum::<f64>() / results.len().max(1) as f64;
        let jain = results.iter().filter_map(|r| r.jain_index()).sum::<f64>()
            / results.len().max(1) as f64;
        let coll =
            results.iter().map(|r| r.collision_rate).sum::<f64>() / results.len().max(1) as f64;
        let _ = writeln!(
            out,
            "{:<18} {:>12.2} {:>8.4} {:>12.4}",
            scheme.name(),
            psnr,
            jain,
            coll
        );
    }

    if pack.churn.is_some() {
        let schedule = fcr_scenario::ChurnSchedule::generate(pack);
        let mut arrive = 0u64;
        let mut retire = 0u64;
        let mut ho = [0u64; 3];
        for event in &schedule.events {
            match event.kind {
                ChurnEventKind::Arrive { .. } => arrive += 1,
                ChurnEventKind::Retire => retire += 1,
                ChurnEventKind::Handover { kind, .. } => {
                    ho[match kind {
                        fcr_serve::HandoverKind::FbsToFbs => 0,
                        fcr_serve::HandoverKind::FbsToMbs => 1,
                        fcr_serve::HandoverKind::MbsToFbs => 2,
                    }] += 1
                }
            }
        }
        let _ = writeln!(
            out,
            "churn schedule: {} sessions; {arrive} arrivals, {retire} retires, \
             handovers fbs->fbs {} fbs->mbs {} mbs->fbs {}",
            schedule.sessions, ho[0], ho[1], ho[2]
        );
        if !schedule.pu_windows.windows().is_empty() {
            let _ = writeln!(
                out,
                "pu bursts: {:?} (utilization boost {})",
                schedule.pu_windows.windows(),
                pack.churn
                    .and_then(|c| c.pu_bursts.map(|b| b.utilization_boost))
                    .unwrap_or(0.0)
            );
        }
    }
    out
}

/// Live churn replay of a pack against a real [`fcr_serve::Service`]
/// on a private two-worker pool. The conservation aggregates printed
/// here are exact; the completed/retired *split* depends on pool
/// timing, so only their sum is shown.
pub fn scenario_churn_report(pack: &fcr_scenario::Pack) -> String {
    use fcr_runtime::{Runtime, RuntimeConfig};
    use fcr_serve::{ServeConfig, Service};
    use std::sync::Arc;

    let mut out = String::new();
    let Some(churn) = pack.churn else {
        let _ = writeln!(out, "pack `{}` has no churn section", pack.name);
        return out;
    };
    let service = Service::new(
        ServeConfig {
            mbs_budget: churn.mbs_budget,
            max_sessions: churn.max_sessions as usize,
            ..ServeConfig::default()
        },
        Arc::new(Runtime::with_config(RuntimeConfig {
            workers: 2,
            ..RuntimeConfig::default()
        })),
    );
    let report = fcr_scenario::ChurnDriver::run(pack, &service);
    let snapshot = service.snapshot();
    let _ = writeln!(
        out,
        "live churn replay: {} arrivals = {} admitted + {} rejected",
        report.arrivals, report.admitted, report.rejected_admissions
    );
    let _ = writeln!(
        out,
        "  handovers: {} attempted = {} completed + {} rejected ({} on inactive sessions)",
        report.handovers_attempted,
        report.handovers_completed,
        report.handovers_rejected,
        report.handovers_inactive
    );
    let _ = writeln!(
        out,
        "  terminal: {} = completed + retired + shed; ledger {} (identity held on every step)",
        snapshot.completed + snapshot.retired + snapshot.shed,
        snapshot.mbs_in_use
    );
    assert_eq!(
        snapshot.admitted,
        snapshot.completed + snapshot.retired + snapshot.shed,
        "conservation violated"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentOpts {
        ExperimentOpts {
            runs: 2,
            gops: 2,
            seed: 7,
            csv: false,
        }
    }

    #[test]
    fn fig3_prints_all_rows() {
        let out = fig3(&tiny());
        for needle in ["Bus", "Mobile", "Harbor", "mean", "Jain", "Proposed scheme"] {
            assert!(out.contains(needle), "missing {needle} in:\n{out}");
        }
    }

    #[test]
    fn fig4a_prints_a_trace() {
        let out = fig4a(&tiny());
        assert!(out.contains("lambda0"));
        assert!(out.contains("converged:"));
        assert!(out.lines().count() > 5);
    }

    #[test]
    fn sweeps_have_five_points() {
        let out = fig4b(&tiny());
        // Header + 5 data rows + title.
        assert_eq!(out.lines().count(), 7, "got:\n{out}");
    }

    #[test]
    fn csv_mode_emits_csv_for_sweeps() {
        let opts = ExperimentOpts {
            csv: true,
            ..tiny()
        };
        let out = fig4b(&opts);
        assert!(
            out.contains("M,Proposed scheme mean,Proposed scheme ci95"),
            "{out}"
        );
        assert!(out.contains(','));
    }

    #[test]
    fn packet_validation_prints_all_schemes() {
        let out = packet(&tiny());
        for needle in [
            "Proposed scheme",
            "Heuristic 1",
            "Heuristic 2",
            "base-layer",
        ] {
            assert!(out.contains(needle), "missing {needle} in:\n{out}");
        }
    }

    #[test]
    fn scale_study_prints_all_sizes() {
        let out = scale(&tiny());
        for n in ["   2", "   4", "   6", "   8"] {
            assert!(out.contains(n), "missing N={n} row in:\n{out}");
        }
        assert!(out.contains("gain/eq23"));
    }

    #[test]
    fn ablation_table_covers_all_variants() {
        let out = ablation(&tiny());
        for needle in [
            "belief-tracking",
            "hard-threshold",
            "first-observation",
            "greedy (Table III)",
            "exhaustive optimum",
            "round-robin",
            "eq.(23)",
        ] {
            assert!(out.contains(needle), "missing {needle} in:\n{out}");
        }
    }

    #[test]
    fn fig6_experiments_include_the_bound() {
        let out = fig6c(&tiny());
        assert!(out.contains("Upper bound"));
        assert!(out.contains("Proposed scheme"));
    }

    #[test]
    fn scenario_report_covers_schemes_and_churn() {
        let pack = fcr_scenario::shipped::mobility_churn();
        let out = scenario_report(&pack);
        for needle in ["mobility_churn", "Scheme", "churn schedule", "handovers"] {
            assert!(out.contains(needle), "missing {needle} in:\n{out}");
        }
        // Pure function of the pack: two renders agree byte-for-byte.
        assert_eq!(out, scenario_report(&pack));

        let live = scenario_churn_report(&pack);
        assert!(live.contains("live churn replay"), "got:\n{live}");
        assert!(live.contains("identity held"), "got:\n{live}");
    }
}
