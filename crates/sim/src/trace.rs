//! Per-slot simulation traces: the full storyboard of what happened in
//! every phase of every slot, for debugging, visualization, and the
//! worked examples.

use fcr_core::allocation::Allocation;

/// Everything that happened in one time slot.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotRecord {
    /// Absolute slot index.
    pub slot: u64,
    /// Ground truth: which licensed channels were actually idle.
    pub true_idle: Vec<bool>,
    /// Fused availability posteriors `P^A_m`.
    pub posteriors: Vec<f64>,
    /// Indices of the channels in the available set `A(t)`.
    pub accessed: Vec<usize>,
    /// `G_t`: expected available channels.
    pub expected_available: f64,
    /// Number of accessed channels that were actually busy (collisions
    /// with primary users).
    pub collisions: usize,
    /// The slot's time-share allocation.
    pub allocation: Allocation,
    /// Realized idle-channel count per FBS.
    pub realized_g: Vec<f64>,
    /// Quality credited to each user this slot (dB; zero on loss or no
    /// allocation).
    pub delivered_db: Vec<f64>,
    /// Per-user GOP quality recorded at this slot's deadline, if the
    /// slot closed a GOP.
    pub completed_gop_db: Vec<Option<f64>>,
    /// Subgradient iterations the dual-decomposition solver
    /// (Tables I/II) needed on this slot's problem (traced runs solve
    /// it alongside the production path; the solver is deterministic,
    /// so this costs time but never perturbs results).
    pub dual_iterations: usize,
    /// Whether that solve met the step-11 stopping criterion before
    /// the iteration cap.
    pub dual_converged: bool,
}

/// A whole run's slot records.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimTrace {
    records: Vec<SlotRecord>,
}

impl SimTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one slot's record.
    pub fn push(&mut self, record: SlotRecord) {
        self.records.push(record);
    }

    /// All records in slot order.
    pub fn records(&self) -> &[SlotRecord] {
        &self.records
    }

    /// Number of recorded slots.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total collisions across the trace.
    pub fn total_collisions(&self) -> usize {
        self.records.iter().map(|r| r.collisions).sum()
    }

    /// Total quality delivered to one user across the trace (dB).
    ///
    /// Returns `None` when `user` is out of range for any record (the
    /// crate-wide convention: indexing mistakes surface as values, not
    /// panics). An empty trace delivers `Some(0.0)`.
    pub fn total_delivered(&self, user: usize) -> Option<f64> {
        self.records
            .iter()
            .map(|r| r.delivered_db.get(user).copied())
            .sum()
    }

    /// Mean `G_t` across the trace; 0.0 when empty.
    pub fn mean_expected_available(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .map(|r| r.expected_available)
            .sum::<f64>()
            / self.records.len() as f64
    }

    /// All completed-GOP qualities of one user, in order.
    pub fn gop_history(&self, user: usize) -> Vec<f64> {
        self.records
            .iter()
            .filter_map(|r| r.completed_gop_db[user])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(slot: u64, delivered: f64, gop: Option<f64>) -> SlotRecord {
        SlotRecord {
            slot,
            true_idle: vec![true, false],
            posteriors: vec![0.8, 0.3],
            accessed: vec![0],
            expected_available: 0.8,
            collisions: usize::from(slot.is_multiple_of(2)),
            allocation: Allocation::idle(1),
            realized_g: vec![1.0],
            delivered_db: vec![delivered],
            completed_gop_db: vec![gop],
            dual_iterations: 3,
            dual_converged: true,
        }
    }

    #[test]
    fn accumulates_records_and_statistics() {
        let mut trace = SimTrace::new();
        assert!(trace.is_empty());
        trace.push(record(0, 0.5, None));
        trace.push(record(1, 0.7, Some(34.0)));
        trace.push(record(2, 0.0, None));
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.total_collisions(), 2);
        assert!((trace.total_delivered(0).unwrap() - 1.2).abs() < 1e-12);
        assert_eq!(trace.total_delivered(5), None, "out-of-range user");
        assert!((trace.mean_expected_available() - 0.8).abs() < 1e-12);
        assert_eq!(trace.gop_history(0), vec![34.0]);
        assert_eq!(trace.records()[1].slot, 1);
    }

    #[test]
    fn empty_trace_statistics() {
        let trace = SimTrace::new();
        assert_eq!(trace.mean_expected_available(), 0.0);
        assert_eq!(trace.total_collisions(), 0);
        assert_eq!(trace.total_delivered(0), Some(0.0));
        assert!(trace.gop_history(0).is_empty());
    }
}
