//! Packet-level simulation mode: NAL-unit-granular delivery.
//!
//! The main engine treats video as a fluid — eq. (9) converts received
//! *rate* directly into PSNR, matching the paper's formulation. This
//! module re-runs the same slot pipeline at packet granularity:
//! every GOP is packetized into significance-ordered NAL units
//! (Section III-E's "transmitted in the decreasing order of their
//! significances, with retransmissions if necessary; overdue packets
//! will be discarded"), each slot's allocation buys a bit budget, units
//! are delivered or lost one by one, and a GOP's Y-PSNR is exactly the
//! sum of the quality its *delivered* units carry.
//!
//! Comparing [`run_packet_level`] against [`crate::engine::run_once`]
//! (the `fluid_vs_packet` example and the integration tests) quantifies
//! what the fluid abstraction hides: quantization to unit boundaries,
//! retransmission overhead, and base-layer-loss outages.

use crate::config::SimConfig;
use crate::scenario::Scenario;
use crate::scheme::{decide_slot, Scheme};
use fcr_core::allocation::Mode;
use fcr_core::problem::UserState;
use fcr_net::node::FbsId;
use fcr_spectrum::access::AccessOutcome;
use fcr_spectrum::fusion::fuse_channel;
use fcr_spectrum::primary::{ChannelId, PrimaryNetwork};
use fcr_stats::rng::SeedSequence;
use fcr_video::packet::{Packetizer, TransmissionQueue};
use rand::rngs::StdRng;
use rand::RngExt;

/// Results of one packet-level run.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketRunResult {
    /// Mean Y-PSNR per user over completed GOPs, computed from the
    /// quality of actually-delivered NAL units (a GOP whose base layer
    /// is lost scores the concealment floor).
    pub per_user_psnr: Vec<f64>,
    /// Total NAL units delivered across users.
    pub delivered_units: u64,
    /// Total units discarded at GOP deadlines.
    pub expired_units: u64,
    /// Total failed attempts (retransmissions).
    pub retransmissions: u64,
    /// GOPs whose base layer never arrived (outage events).
    pub base_layer_losses: u64,
}

impl PacketRunResult {
    /// Mean Y-PSNR over all users.
    pub fn mean_psnr(&self) -> f64 {
        if self.per_user_psnr.is_empty() {
            return 0.0;
        }
        self.per_user_psnr.iter().sum::<f64>() / self.per_user_psnr.len() as f64
    }
}

/// Y-PSNR attributed to a GOP whose base layer was never delivered:
/// the decoder conceals with the previous GOP, which for these models
/// we score at a flat floor well below every base layer.
pub const CONCEALMENT_FLOOR_DB: f64 = 20.0;

/// Enhancement rungs per GOP by scalability flavour: MGS is NAL-unit
/// grained; FGS is (nearly) bit-grained, modeled as a much finer
/// ladder.
fn rungs_for(scalability: fcr_video::sequences::Scalability) -> u16 {
    match scalability {
        fcr_video::sequences::Scalability::Mgs => 16,
        fcr_video::sequences::Scalability::Fgs => 64,
    }
}

/// Runs one packet-level simulation. Sensing, fusion, access, fading,
/// and the allocation scheme are identical to the fluid engine; only
/// the transmission phase differs (bit budgets and unit-by-unit
/// delivery instead of fractional PSNR credits).
///
/// # Panics
///
/// Panics on invalid configuration (see [`crate::engine::run_once`]).
pub fn run_packet_level(
    scenario: &Scenario,
    cfg: &SimConfig,
    scheme: Scheme,
    seeds: &SeedSequence,
    run_index: u64,
) -> PacketRunResult {
    let run_seeds = seeds.child("packet-run", run_index);
    let mut primary_rng = run_seeds.stream("primary", 0);
    let mut sensing_rng = run_seeds.stream("sensing", 0);
    let mut access_rng = run_seeds.stream("access", 0);
    let mut fading_rng = run_seeds.stream("fading", 0);
    let mut loss_rng = run_seeds.stream("loss", 0);

    let chain = cfg.markov().expect("valid markov config");
    let sensor = cfg.sensor().expect("valid sensor config");
    let policy = cfg.access_policy().expect("valid access config");
    let mut primary = PrimaryNetwork::homogeneous(cfg.num_channels, chain, &mut primary_rng);
    let eta = chain.utilization();

    // Per-user packetizers and queues.
    let packetizers: Vec<Packetizer> = scenario
        .users
        .iter()
        .map(|u| {
            Packetizer::new(
                u.sequence.model_for(cfg.scalability),
                fcr_video::gop::GopConfig::new(u.sequence.gop().frames(), cfg.deadline)
                    .expect("deadline > 0"),
                u.sequence.full_rate(),
                rungs_for(cfg.scalability),
            )
            .expect("preset packetizer valid")
        })
        .collect();
    let mut queues: Vec<TransmissionQueue> = scenario
        .users
        .iter()
        .map(|_| TransmissionQueue::new())
        .collect();
    // Quality delivered toward the *current* GOP of each user.
    let mut gop_quality = vec![0.0_f64; scenario.num_users()];
    let mut base_delivered = vec![false; scenario.num_users()];
    let mut completed: Vec<Vec<f64>> = vec![Vec::new(); scenario.num_users()];
    let mut base_layer_losses = 0u64;

    // Seconds of media per slot: a GOP (frames/30 s) spans T slots.
    let slot_seconds: Vec<f64> = scenario
        .users
        .iter()
        .map(|u| f64::from(u.sequence.gop().frames()) / 30.0 / f64::from(cfg.deadline))
        .collect();

    let t = u64::from(cfg.deadline);
    for slot in 0..cfg.total_slots() {
        // New GOP boundaries: enqueue the next GOP's units.
        if slot % t == 0 {
            let gop_index = slot / t;
            for (j, q) in queues.iter_mut().enumerate() {
                q.enqueue_gop(packetizers[j].packetize(gop_index, slot));
            }
        }

        primary.step(&mut primary_rng);

        // Sensing + fusion (same structure as the fluid engine). The
        // observation count per channel — every FBS plus the users whose
        // round-robin sensing target is this channel — matches the old
        // inline loop draw for draw, so results are bit-identical.
        let mut posteriors = Vec::with_capacity(cfg.num_channels);
        for ch in 0..cfg.num_channels {
            let truth = primary.state(ChannelId(ch));
            let user_obs = (0..scenario.num_users())
                .filter(|j| (*j as u64 + slot) % cfg.num_channels as u64 == ch as u64)
                .count();
            let observations =
                sensor.observe_many(truth, scenario.num_fbss() + user_obs, &mut sensing_rng);
            let fused = fuse_channel(eta, &sensor, &observations).expect("valid prior");
            posteriors.push(fused.posterior);
        }
        let outcome = AccessOutcome::decide_all(policy, &posteriors, None, &mut access_rng);

        // Link qualities + allocation.
        let link_qualities: Vec<(f64, f64)> = scenario
            .users
            .iter()
            .map(|u| {
                (
                    u.mbs_link.draw_slot(&mut fading_rng).success_probability(),
                    u.fbs_link.draw_slot(&mut fading_rng).success_probability(),
                )
            })
            .collect();
        let user_states: Vec<UserState> = scenario
            .users
            .iter()
            .enumerate()
            .map(|(j, u)| {
                let model = u.sequence.model_for(cfg.scalability);
                // The allocator's W tracks the quality delivered so far
                // this GOP on top of the concealment floor.
                let w = CONCEALMENT_FLOOR_DB + gop_quality[j];
                UserState::new(
                    w,
                    u.fbs,
                    model.slot_increment(cfg.b0_rate(), cfg.deadline).db(),
                    model.slot_increment(cfg.b1_rate(), cfg.deadline).db(),
                    link_qualities[j].0,
                    link_qualities[j].1,
                )
                .expect("engine-built state valid")
            })
            .collect();
        let weights: Vec<f64> = outcome.available().iter().map(|(_, w)| *w).collect();
        let decision = decide_slot(
            scheme,
            &user_states,
            &scenario.graph,
            &weights,
            outcome.expected_available(),
        );

        // Realized idle channels per FBS.
        let mut realized = vec![0.0_f64; scenario.num_fbss()];
        for (pos, (id, _)) in outcome.available().iter().enumerate() {
            if primary.state(*id).is_busy() {
                continue;
            }
            match &decision.assignment {
                Some(c) => {
                    for (i, r) in realized.iter_mut().enumerate() {
                        if c.is_assigned(FbsId(i), pos) {
                            *r += 1.0;
                        }
                    }
                }
                None => {
                    for r in &mut realized {
                        *r += 1.0;
                    }
                }
            }
        }

        // Transmission: spend each user's bit budget on queued units.
        // Unit delivery and GOP scoring are the packet engine's
        // "video credit" phase.
        let video_span = fcr_telemetry::Span::enter(fcr_telemetry::Phase::VideoCredit);
        for (j, u) in scenario.users.iter().enumerate() {
            let a = decision.allocation.user(j);
            if a.rho() <= 0.0 {
                continue;
            }
            let (success_p, rate_mbps) = match a.mode {
                Mode::Mbs => (link_qualities[j].0, a.rho_mbs * cfg.b0),
                Mode::Fbs => (link_qualities[j].1, a.rho_fbs * realized[u.fbs.0] * cfg.b1),
            };
            let mut budget_bits = rate_mbps * 1e6 * slot_seconds[j];
            while let Some(head) = queues[j].head().copied() {
                // Charge at least one bit per attempt so a pathological
                // zero-size unit cannot spin the loop forever.
                let cost = (head.size_bits.max(1)) as f64;
                if budget_bits < cost {
                    break;
                }
                budget_bits -= cost;
                let ok = success_bernoulli(&mut loss_rng, success_p);
                if queues[j].attempt(ok).is_some() {
                    if head.is_base_layer() {
                        base_delivered[j] = true;
                    }
                    gop_quality[j] += head.psnr_gain.db();
                }
            }
        }

        // GOP deadline: score and reset.
        if (slot + 1) % t == 0 {
            for j in 0..scenario.num_users() {
                let psnr = if base_delivered[j] {
                    gop_quality[j]
                } else {
                    base_layer_losses += 1;
                    CONCEALMENT_FLOOR_DB
                };
                completed[j].push(psnr);
                gop_quality[j] = 0.0;
                base_delivered[j] = false;
                queues[j].expire(slot + 1);
            }
        }
        drop(video_span);
    }

    let per_user_psnr = completed
        .iter()
        .map(|h| {
            if h.is_empty() {
                0.0
            } else {
                h.iter().sum::<f64>() / h.len() as f64
            }
        })
        .collect();
    let stats = queues.iter().map(TransmissionQueue::stats);
    let (mut delivered, mut expired, mut retrans) = (0, 0, 0);
    for s in stats {
        delivered += s.delivered;
        expired += s.expired;
        retrans += s.retransmissions;
    }
    PacketRunResult {
        per_user_psnr,
        delivered_units: delivered,
        expired_units: expired,
        retransmissions: retrans,
        base_layer_losses,
    }
}

fn success_bernoulli(rng: &mut StdRng, p: f64) -> bool {
    rng.random_bool(p.clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_once;

    fn cfg(gops: u32) -> SimConfig {
        SimConfig {
            gops,
            ..SimConfig::default()
        }
    }

    #[test]
    fn packet_run_is_deterministic_and_sane() {
        let cfg = cfg(5);
        let scenario = Scenario::single_fbs(&cfg);
        let seeds = SeedSequence::new(5);
        let a = run_packet_level(&scenario, &cfg, Scheme::Proposed, &seeds, 0);
        let b = run_packet_level(&scenario, &cfg, Scheme::Proposed, &seeds, 0);
        assert_eq!(a, b);
        assert_eq!(a.per_user_psnr.len(), 3);
        for (j, p) in a.per_user_psnr.iter().enumerate() {
            let cap = scenario.users[j].sequence.max_psnr().db();
            assert!(
                (CONCEALMENT_FLOOR_DB..=cap + 1e-9).contains(p),
                "user {j}: {p} outside [{CONCEALMENT_FLOOR_DB}, {cap}]"
            );
        }
        assert!(a.delivered_units > 0, "something must get through");
    }

    #[test]
    fn unit_accounting_balances() {
        let cfg = cfg(5);
        let scenario = Scenario::single_fbs(&cfg);
        let r = run_packet_level(&scenario, &cfg, Scheme::Proposed, &SeedSequence::new(6), 0);
        // Every packetized unit is delivered, expired, or still queued
        // (the last GOP expires at the final boundary, so queues are
        // empty); total = gops × (rungs + 1) × users.
        let total = u64::from(cfg.gops) * u64::from(rungs_for(cfg.scalability) + 1) * 3;
        assert_eq!(r.delivered_units + r.expired_units, total);
    }

    #[test]
    fn packet_psnr_tracks_the_fluid_model() {
        // The fluid abstraction should be within a couple of dB of the
        // packet-level ground truth on the baseline scenario.
        let cfg = cfg(10);
        let scenario = Scenario::single_fbs(&cfg);
        let seeds = SeedSequence::new(7);
        let mean_fluid = (0..3)
            .map(|r| run_once(&scenario, &cfg, Scheme::Proposed, &seeds, r).mean_psnr())
            .sum::<f64>()
            / 3.0;
        let mean_packet = (0..3)
            .map(|r| run_packet_level(&scenario, &cfg, Scheme::Proposed, &seeds, r).mean_psnr())
            .sum::<f64>()
            / 3.0;
        let gap = (mean_fluid - mean_packet).abs();
        assert!(
            gap < 4.0,
            "fluid {mean_fluid} vs packet {mean_packet}: gap {gap} dB too large"
        );
    }

    #[test]
    fn scheme_ordering_survives_packetization() {
        let cfg = cfg(10);
        let scenario = Scenario::single_fbs(&cfg);
        let seeds = SeedSequence::new(8);
        let mean = |scheme| {
            (0..3)
                .map(|r| run_packet_level(&scenario, &cfg, scheme, &seeds, r).mean_psnr())
                .sum::<f64>()
                / 3.0
        };
        let proposed = mean(Scheme::Proposed);
        let h1 = mean(Scheme::Heuristic1);
        assert!(
            proposed > h1 - 0.2,
            "packetization should preserve the ordering: {proposed} vs {h1}"
        );
    }

    #[test]
    fn starved_links_lose_base_layers() {
        // Nearly-dead links: most GOPs never deliver the base layer and
        // score the concealment floor.
        let cfg = SimConfig {
            gops: 5,
            mean_sinr_mbs: 0.5,
            mean_sinr_fbs: 0.5,
            ..SimConfig::default()
        };
        let scenario = Scenario::single_fbs(&cfg);
        let r = run_packet_level(&scenario, &cfg, Scheme::Proposed, &SeedSequence::new(9), 0);
        assert!(
            r.base_layer_losses > 0,
            "terrible links must lose base layers"
        );
        assert!(r.mean_psnr() < 30.0);
    }
}
