//! Packet-level simulation mode: NAL-unit-granular delivery.
//!
//! The main engine treats video as a fluid — eq. (9) converts received
//! *rate* directly into PSNR, matching the paper's formulation. This
//! module re-runs the same slot pipeline at packet granularity:
//! every GOP is packetized into significance-ordered NAL units
//! (Section III-E's "transmitted in the decreasing order of their
//! significances, with retransmissions if necessary; overdue packets
//! will be discarded"), each slot's allocation buys a bit budget, units
//! are delivered or lost one by one, and a GOP's Y-PSNR is exactly the
//! sum of the quality its *delivered* units carry.
//!
//! Comparing [`run_packet_level`] against [`crate::engine::run`]
//! (the `fluid_vs_packet` example and the integration tests) quantifies
//! what the fluid abstraction hides: quantization to unit boundaries,
//! retransmission overhead, and base-layer-loss outages.
//!
//! # Plan / window / stitch
//!
//! Like the fluid engine, the packet engine is split into the serial
//! spectrum prologue (`crate::engine::plan_spectrum`, run on a
//! *normalized* config because the packet mode hardcodes the paper's
//! baseline spectrum pipeline), a GOP-aligned window stage
//! (`run_packet_window`) whose fading/loss draws come from per-GOP
//! substreams ([`fcr_spectrum::streams::gop_streams`]), and a stitcher
//! (`stitch_packet`) that merges window outputs in GOP order.
//! Transmission queues drain completely at every GOP deadline (overdue
//! units are discarded), so windows are independent given the plan and
//! any GOP-aligned partition is bit-identical to serial execution.

use crate::config::SimConfig;
use crate::engine::{plan_spectrum, realized_channels, SpectrumPlan};
use crate::scenario::Scenario;
use crate::scheme::{decide_slot, Scheme};
use fcr_core::allocation::Mode;
use fcr_core::problem::UserState;
use fcr_spectrum::streams::gop_streams;
use fcr_stats::rng::SeedSequence;
use fcr_video::packet::{Packetizer, TransmissionQueue};
use rand::rngs::StdRng;
use rand::RngExt;

/// Results of one packet-level run.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketRunResult {
    /// Mean Y-PSNR per user over completed GOPs, computed from the
    /// quality of actually-delivered NAL units (a GOP whose base layer
    /// is lost scores the concealment floor).
    pub per_user_psnr: Vec<f64>,
    /// Total NAL units delivered across users.
    pub delivered_units: u64,
    /// Total units discarded at GOP deadlines.
    pub expired_units: u64,
    /// Total failed attempts (retransmissions).
    pub retransmissions: u64,
    /// GOPs whose base layer never arrived (outage events).
    pub base_layer_losses: u64,
}

impl PacketRunResult {
    /// Mean Y-PSNR over all users.
    pub fn mean_psnr(&self) -> f64 {
        if self.per_user_psnr.is_empty() {
            return 0.0;
        }
        self.per_user_psnr.iter().sum::<f64>() / self.per_user_psnr.len() as f64
    }
}

/// Y-PSNR attributed to a GOP whose base layer was never delivered:
/// the decoder conceals with the previous GOP, which for these models
/// we score at a flat floor well below every base layer.
pub const CONCEALMENT_FLOOR_DB: f64 = 20.0;

/// Enhancement rungs per GOP by scalability flavour: MGS is NAL-unit
/// grained; FGS is (nearly) bit-grained, modeled as a much finer
/// ladder.
fn rungs_for(scalability: fcr_video::sequences::Scalability) -> u16 {
    match scalability {
        fcr_video::sequences::Scalability::Mgs => 16,
        fcr_video::sequences::Scalability::Fgs => 64,
    }
}

/// The spectrum configuration the packet engine actually runs: it
/// predates the ablation switches and hardcodes the paper's baseline
/// pipeline (stationary priors, probabilistic access, round-robin user
/// sensing, all observations fused). Normalizing the config here lets
/// it share `crate::engine::plan_spectrum` draw for draw.
fn normalized(cfg: &SimConfig) -> SimConfig {
    SimConfig {
        prior_mode: crate::config::PriorMode::Stationary,
        access_mode: crate::config::AccessMode::Probabilistic,
        sensing_strategy: crate::config::SensingStrategy::RoundRobin,
        first_observation_only: false,
        ..*cfg
    }
}

/// The serial spectrum prologue of one packet run. Callers that shard
/// a run compute this once and share it across windows.
pub(crate) fn plan_packet(
    scenario: &Scenario,
    cfg: &SimConfig,
    run_seeds: &SeedSequence,
) -> SpectrumPlan {
    plan_spectrum(scenario, &normalized(cfg), run_seeds)
}

/// The output of one GOP-aligned packet window: per-GOP scores plus
/// integer delivery statistics (integers sum associatively, so window
/// partitioning cannot perturb the stitched totals).
#[derive(Debug, Clone)]
pub(crate) struct PacketWindowOutput {
    /// First GOP (inclusive) this window covered.
    pub gop_start: u32,
    /// Completed-GOP PSNRs, `[user][gop - gop_start]`.
    pub gop_psnr: Vec<Vec<f64>>,
    /// NAL units delivered within the window.
    pub delivered_units: u64,
    /// Units discarded at the window's GOP deadlines.
    pub expired_units: u64,
    /// Failed attempts within the window.
    pub retransmissions: u64,
    /// GOPs in the window whose base layer never arrived.
    pub base_layer_losses: u64,
}

/// Runs packetized transmission for the GOP-aligned window
/// `[gop_start, gop_start + gop_count)` against a shared spectrum
/// plan. Queues start empty (they also *end* empty at every GOP
/// deadline — overdue units are discarded), and fading/loss draws come
/// from per-GOP substreams, so the output is independent of how the
/// run was partitioned into windows.
pub(crate) fn run_packet_window(
    scenario: &Scenario,
    cfg: &SimConfig,
    scheme: Scheme,
    run_seeds: &SeedSequence,
    plan: &SpectrumPlan,
    gop_start: u32,
    gop_count: u32,
) -> PacketWindowOutput {
    // Per-user packetizers and (empty) queues.
    let packetizers: Vec<Packetizer> = scenario
        .users
        .iter()
        .map(|u| {
            Packetizer::new(
                u.sequence.model_for(cfg.scalability),
                fcr_video::gop::GopConfig::new(u.sequence.gop().frames(), cfg.deadline)
                    .expect("deadline > 0"),
                u.sequence.full_rate(),
                rungs_for(cfg.scalability),
            )
            .expect("preset packetizer valid")
        })
        .collect();
    let mut queues: Vec<TransmissionQueue> = scenario
        .users
        .iter()
        .map(|_| TransmissionQueue::new())
        .collect();
    // Quality delivered toward the *current* GOP of each user.
    let mut gop_quality = vec![0.0_f64; scenario.num_users()];
    let mut base_delivered = vec![false; scenario.num_users()];
    let mut gop_psnr: Vec<Vec<f64>> =
        vec![Vec::with_capacity(gop_count as usize); scenario.num_users()];
    let mut base_layer_losses = 0u64;

    // Seconds of media per slot: a GOP (frames/30 s) spans T slots.
    let slot_seconds: Vec<f64> = scenario
        .users
        .iter()
        .map(|u| f64::from(u.sequence.gop().frames()) / 30.0 / f64::from(cfg.deadline))
        .collect();

    let t = u64::from(cfg.deadline);
    for gop in gop_start..gop_start + gop_count {
        let mut streams = gop_streams(run_seeds, u64::from(gop));
        for slot_in_gop in 0..t {
            let slot = u64::from(gop) * t + slot_in_gop;
            // New GOP boundary: enqueue this GOP's units.
            if slot_in_gop == 0 {
                for (j, q) in queues.iter_mut().enumerate() {
                    q.enqueue_gop(packetizers[j].packetize(u64::from(gop), slot));
                }
            }
            let sp = &plan.slots[slot as usize];

            // Link qualities + allocation (identical to the fluid
            // engine's window stage).
            let link_qualities: Vec<(f64, f64)> = scenario
                .users
                .iter()
                .map(|u| {
                    (
                        u.mbs_link
                            .draw_slot(&mut streams.fading)
                            .success_probability(),
                        u.fbs_link
                            .draw_slot(&mut streams.fading)
                            .success_probability(),
                    )
                })
                .collect();
            let user_states: Vec<UserState> = scenario
                .users
                .iter()
                .enumerate()
                .map(|(j, u)| {
                    let model = u.sequence.model_for(cfg.scalability);
                    // The allocator's W tracks the quality delivered so
                    // far this GOP on top of the concealment floor.
                    let w = CONCEALMENT_FLOOR_DB + gop_quality[j];
                    UserState::new(
                        w,
                        u.fbs,
                        model.slot_increment(cfg.b0_rate(), cfg.deadline).db(),
                        model.slot_increment(cfg.b1_rate(), cfg.deadline).db(),
                        link_qualities[j].0,
                        link_qualities[j].1,
                    )
                    .expect("engine-built state valid")
                })
                .collect();
            let weights: Vec<f64> = sp.available.iter().map(|(_, w)| *w).collect();
            let decision = decide_slot(
                scheme,
                &user_states,
                &scenario.graph,
                &weights,
                sp.expected_available,
            );

            // Realized idle channels per FBS, from the shared plan.
            let realized = realized_channels(scenario, sp, &decision.assignment);

            // Transmission: spend each user's bit budget on queued
            // units. Unit delivery and GOP scoring are the packet
            // engine's "video credit" phase.
            let video_span = fcr_telemetry::Span::enter(fcr_telemetry::Phase::VideoCredit);
            for (j, u) in scenario.users.iter().enumerate() {
                let a = decision.allocation.user(j);
                if a.rho() <= 0.0 {
                    continue;
                }
                let (success_p, rate_mbps) = match a.mode {
                    Mode::Mbs => (link_qualities[j].0, a.rho_mbs * cfg.b0),
                    Mode::Fbs => (link_qualities[j].1, a.rho_fbs * realized[u.fbs.0] * cfg.b1),
                };
                let mut budget_bits = rate_mbps * 1e6 * slot_seconds[j];
                while let Some(head) = queues[j].head().copied() {
                    // Charge at least one bit per attempt so a
                    // pathological zero-size unit cannot spin the loop
                    // forever.
                    let cost = (head.size_bits.max(1)) as f64;
                    if budget_bits < cost {
                        break;
                    }
                    budget_bits -= cost;
                    let ok = success_bernoulli(&mut streams.loss, success_p);
                    if queues[j].attempt(ok).is_some() {
                        if head.is_base_layer() {
                            base_delivered[j] = true;
                        }
                        gop_quality[j] += head.psnr_gain.db();
                    }
                }
            }

            // GOP deadline: score and reset. Overdue units are expired
            // here, so queues are empty at every window boundary.
            if slot_in_gop + 1 == t {
                for j in 0..scenario.num_users() {
                    let psnr = if base_delivered[j] {
                        gop_quality[j]
                    } else {
                        base_layer_losses += 1;
                        CONCEALMENT_FLOOR_DB
                    };
                    gop_psnr[j].push(psnr);
                    gop_quality[j] = 0.0;
                    base_delivered[j] = false;
                    queues[j].expire(slot + 1);
                }
            }
            drop(video_span);
        }
    }

    let stats = queues.iter().map(TransmissionQueue::stats);
    let (mut delivered, mut expired, mut retrans) = (0, 0, 0);
    for s in stats {
        delivered += s.delivered;
        expired += s.expired;
        retrans += s.retransmissions;
    }
    PacketWindowOutput {
        gop_start,
        gop_psnr,
        delivered_units: delivered,
        expired_units: expired,
        retransmissions: retrans,
        base_layer_losses,
    }
}

/// Merges packet window outputs (any GOP-aligned partition of the run)
/// into the final [`PacketRunResult`]. Per-user PSNRs are accumulated
/// one GOP at a time in GOP order — the same float summation order for
/// every partition — and the delivery statistics are integer sums.
pub(crate) fn stitch_packet(
    mut windows: Vec<PacketWindowOutput>,
    num_users: usize,
) -> PacketRunResult {
    windows.sort_by_key(|w| w.gop_start);
    let mut per_user_sum = vec![0.0_f64; num_users];
    let mut per_user_gops = vec![0u64; num_users];
    let (mut delivered, mut expired, mut retrans, mut base_losses) = (0u64, 0u64, 0u64, 0u64);
    for w in windows {
        for (j, history) in w.gop_psnr.iter().enumerate() {
            for db in history {
                per_user_sum[j] += db;
            }
            per_user_gops[j] += history.len() as u64;
        }
        delivered += w.delivered_units;
        expired += w.expired_units;
        retrans += w.retransmissions;
        base_losses += w.base_layer_losses;
    }
    let per_user_psnr = per_user_sum
        .iter()
        .zip(&per_user_gops)
        .map(|(sum, n)| if *n == 0 { 0.0 } else { sum / *n as f64 })
        .collect();
    PacketRunResult {
        per_user_psnr,
        delivered_units: delivered,
        expired_units: expired,
        retransmissions: retrans,
        base_layer_losses: base_losses,
    }
}

/// Runs one packet-level simulation. Sensing, fusion, access, fading,
/// and the allocation scheme are identical to the fluid engine; only
/// the transmission phase differs (bit budgets and unit-by-unit
/// delivery instead of fractional PSNR credits).
///
/// This is the serial reference for sharded packet execution: a
/// sharded run is the same `plan_packet` → `run_packet_window` →
/// `stitch_packet` pipeline with more than one window.
///
/// # Panics
///
/// Panics on invalid configuration (see [`crate::engine::run`]).
pub fn run_packet_level(
    scenario: &Scenario,
    cfg: &SimConfig,
    scheme: Scheme,
    seeds: &SeedSequence,
    run_index: u64,
) -> PacketRunResult {
    let run_seeds = seeds.child("packet-run", run_index);
    let plan = plan_packet(scenario, cfg, &run_seeds);
    let window = run_packet_window(scenario, cfg, scheme, &run_seeds, &plan, 0, cfg.gops);
    stitch_packet(vec![window], scenario.num_users())
}

fn success_bernoulli(rng: &mut StdRng, p: f64) -> bool {
    rng.random_bool(p.clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run, TraceMode};

    fn cfg(gops: u32) -> SimConfig {
        SimConfig {
            gops,
            ..SimConfig::default()
        }
    }

    #[test]
    fn packet_run_is_deterministic_and_sane() {
        let cfg = cfg(5);
        let scenario = Scenario::single_fbs(&cfg);
        let seeds = SeedSequence::new(5);
        let a = run_packet_level(&scenario, &cfg, Scheme::Proposed, &seeds, 0);
        let b = run_packet_level(&scenario, &cfg, Scheme::Proposed, &seeds, 0);
        assert_eq!(a, b);
        assert_eq!(a.per_user_psnr.len(), 3);
        for (j, p) in a.per_user_psnr.iter().enumerate() {
            let cap = scenario.users[j].sequence.max_psnr().db();
            assert!(
                (CONCEALMENT_FLOOR_DB..=cap + 1e-9).contains(p),
                "user {j}: {p} outside [{CONCEALMENT_FLOOR_DB}, {cap}]"
            );
        }
        assert!(a.delivered_units > 0, "something must get through");
    }

    #[test]
    fn unit_accounting_balances() {
        let cfg = cfg(5);
        let scenario = Scenario::single_fbs(&cfg);
        let r = run_packet_level(&scenario, &cfg, Scheme::Proposed, &SeedSequence::new(6), 0);
        // Every packetized unit is delivered, expired, or still queued
        // (the last GOP expires at the final boundary, so queues are
        // empty); total = gops × (rungs + 1) × users.
        let total = u64::from(cfg.gops) * u64::from(rungs_for(cfg.scalability) + 1) * 3;
        assert_eq!(r.delivered_units + r.expired_units, total);
    }

    #[test]
    fn gop_windows_stitch_bit_identical_to_serial() {
        // The packet-engine core of the sharding guarantee: any
        // GOP-aligned partition stitches to byte-for-byte the serial
        // PacketRunResult.
        let cfg = cfg(5);
        let scenario = Scenario::single_fbs(&cfg);
        let seeds = SeedSequence::new(41);
        let serial = run_packet_level(&scenario, &cfg, Scheme::Proposed, &seeds, 0);
        let run_seeds = seeds.child("packet-run", 0);
        let plan = plan_packet(&scenario, &cfg, &run_seeds);
        for window_gops in [1u32, 2, 3] {
            let mut windows = Vec::new();
            let mut start = 0;
            while start < cfg.gops {
                let count = window_gops.min(cfg.gops - start);
                windows.push(run_packet_window(
                    &scenario,
                    &cfg,
                    Scheme::Proposed,
                    &run_seeds,
                    &plan,
                    start,
                    count,
                ));
                start += count;
            }
            let stitched = stitch_packet(windows, scenario.num_users());
            assert_eq!(serial, stitched, "window size {window_gops}");
        }
    }

    #[test]
    fn packet_psnr_tracks_the_fluid_model() {
        // The fluid abstraction should be within a couple of dB of the
        // packet-level ground truth on the baseline scenario.
        let cfg = cfg(10);
        let scenario = Scenario::single_fbs(&cfg);
        let seeds = SeedSequence::new(7);
        let mean_fluid = (0..3)
            .map(|r| {
                run(&scenario, &cfg, Scheme::Proposed, &seeds, r, TraceMode::Off)
                    .result
                    .mean_psnr()
            })
            .sum::<f64>()
            / 3.0;
        let mean_packet = (0..3)
            .map(|r| run_packet_level(&scenario, &cfg, Scheme::Proposed, &seeds, r).mean_psnr())
            .sum::<f64>()
            / 3.0;
        let gap = (mean_fluid - mean_packet).abs();
        assert!(
            gap < 4.0,
            "fluid {mean_fluid} vs packet {mean_packet}: gap {gap} dB too large"
        );
    }

    #[test]
    fn scheme_ordering_survives_packetization() {
        let cfg = cfg(10);
        let scenario = Scenario::single_fbs(&cfg);
        let seeds = SeedSequence::new(8);
        let mean = |scheme| {
            (0..3)
                .map(|r| run_packet_level(&scenario, &cfg, scheme, &seeds, r).mean_psnr())
                .sum::<f64>()
                / 3.0
        };
        let proposed = mean(Scheme::Proposed);
        let h1 = mean(Scheme::Heuristic1);
        assert!(
            proposed > h1 - 0.2,
            "packetization should preserve the ordering: {proposed} vs {h1}"
        );
    }

    #[test]
    fn starved_links_lose_base_layers() {
        // Nearly-dead links: most GOPs never deliver the base layer and
        // score the concealment floor.
        let cfg = SimConfig {
            gops: 5,
            mean_sinr_mbs: 0.5,
            mean_sinr_fbs: 0.5,
            ..SimConfig::default()
        };
        let scenario = Scenario::single_fbs(&cfg);
        let r = run_packet_level(&scenario, &cfg, Scheme::Proposed, &SeedSequence::new(9), 0);
        assert!(
            r.base_layer_losses > 0,
            "terrible links must lose base layers"
        );
        assert!(r.mean_psnr() < 30.0);
    }
}
