//! Simulation parameters. `Default` reproduces the paper's baseline
//! (Section V): `M = 8`, `P01 = 0.4`, `P10 = 0.3`, `γ = 0.2`,
//! `ε = δ = 0.3`, `B0 = B1 = 0.3` Mbps, `T = 10`.

use fcr_runtime::ShardPolicy;
use fcr_spectrum::access::{AccessPolicy, ThresholdPolicy};
use fcr_spectrum::markov::TwoStateMarkov;
use fcr_spectrum::sensing::SensorProfile;
use fcr_spectrum::SpectrumError;
use fcr_video::quality::Mbps;
use fcr_video::sequences::Scalability;

/// How the per-channel sensing prior is formed at the start of each
/// slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PriorMode {
    /// The paper's choice: reset to the stationary utilization η every
    /// slot (eq. (2)'s prior).
    #[default]
    Stationary,
    /// Extension: carry yesterday's fused posterior forward through the
    /// Markov transition kernel (belief tracking) — strictly more
    /// informative when the chain is persistent.
    BeliefTracking,
}

/// How CR users pick which licensed channel to sense each slot (each
/// user has one transceiver and senses exactly one channel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SensingStrategy {
    /// The default: user `j` senses channel `(j + t) mod M`, spreading
    /// observations uniformly over channels and time.
    #[default]
    RoundRobin,
    /// Extension (active sensing): users sense the channels whose
    /// current busy prior is most uncertain (closest to ½), where an
    /// extra observation moves the posterior the most. Ties rotate
    /// with the slot index. Most useful combined with
    /// [`PriorMode::BeliefTracking`], which gives priors something to
    /// disagree about.
    UncertaintyFirst,
}

/// How access decisions are drawn from the availability posterior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AccessMode {
    /// The paper's probabilistic rule, eq. (7): maximal access
    /// probability subject to the collision bound.
    #[default]
    Probabilistic,
    /// Deterministic alternative: access iff `1 − P^A ≤ γ` (same bound,
    /// fewer opportunities taken; ablated in the benches).
    Threshold,
}

/// All tunable parameters of a simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Number of licensed channels `M`.
    pub num_channels: usize,
    /// Markov transition probability idle → busy (`P01`).
    pub p01: f64,
    /// Markov transition probability busy → idle (`P10`).
    pub p10: f64,
    /// Maximum allowable collision probability γ.
    pub gamma: f64,
    /// False-alarm probability ε (all sensors).
    pub epsilon: f64,
    /// Miss-detection probability δ (all sensors).
    pub delta: f64,
    /// Common (MBS) channel bandwidth `B0` in Mbps.
    pub b0: f64,
    /// Licensed channel bandwidth `B1` in Mbps.
    pub b1: f64,
    /// GOP delivery deadline `T` in slots.
    pub deadline: u32,
    /// GOPs simulated per run.
    pub gops: u32,
    /// Mean SINR (linear) of MBS → user links; the MBS is farther, so
    /// this is the weaker link.
    pub mean_sinr_mbs: f64,
    /// Mean SINR (linear) of FBS → user links.
    pub mean_sinr_fbs: f64,
    /// SINR decoding threshold `H` (linear).
    pub sinr_threshold: f64,
    /// Log-normal shadowing spread in dB (per-slot channel-condition
    /// variation; what multiuser diversity exploits).
    pub shadowing_sigma_db: f64,
    /// Compute `G_t` from the first observation only, as eq. printed in
    /// Section III-C (see DESIGN.md §7); default `false` = fused.
    pub first_observation_only: bool,
    /// Sensing-prior formation (stationary η vs. belief tracking).
    pub prior_mode: PriorMode,
    /// Access rule (probabilistic eq. (7) vs. hard threshold).
    pub access_mode: AccessMode,
    /// Which channels the users sense (round-robin vs. active).
    pub sensing_strategy: SensingStrategy,
    /// Scalable-coding flavour of every stream (MGS, the paper's
    /// choice, vs. FGS for the motivating comparison).
    pub scalability: Scalability,
    /// Nakagami fading shape `m` for every link: 1.0 (default) is the
    /// paper's Rayleigh model; larger values model channel hardening
    /// (near line-of-sight femtocell links), `0.5 ≤ m < 1` models
    /// worse-than-Rayleigh scattering.
    pub nakagami_m: f64,
    /// How [`crate::session::SimSession`] cuts each multi-GOP run into
    /// independently schedulable GOP-aligned shard jobs. Never affects
    /// results — sharded output is bit-identical to serial for every
    /// policy — only the scheduling granularity.
    pub shard: ShardPolicy,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            num_channels: 8,
            p01: 0.4,
            p10: 0.3,
            gamma: 0.2,
            epsilon: 0.3,
            delta: 0.3,
            b0: 0.3,
            b1: 0.3,
            deadline: 10,
            gops: 20,
            mean_sinr_mbs: 8.0,
            mean_sinr_fbs: 25.0,
            sinr_threshold: 3.0,
            shadowing_sigma_db: 2.0,
            first_observation_only: false,
            prior_mode: PriorMode::Stationary,
            access_mode: AccessMode::Probabilistic,
            sensing_strategy: SensingStrategy::RoundRobin,
            scalability: Scalability::Mgs,
            nakagami_m: 1.0,
            shard: ShardPolicy::Auto,
        }
    }
}

impl SimConfig {
    /// Returns a copy with channel utilization η, holding `p10` fixed
    /// (the paper's Figs. 4(c)/6(a) sweep).
    ///
    /// # Panics
    ///
    /// Panics if η is unreachable with the current `p10` (see
    /// [`TwoStateMarkov::with_utilization`]).
    pub fn with_utilization(mut self, eta: f64) -> Self {
        let chain = TwoStateMarkov::with_utilization(eta, self.p10)
            .expect("utilization reachable with configured p10");
        self.p01 = chain.p01();
        self
    }

    /// Returns a copy with sensing-error pair (ε, δ) (Fig. 6(b)).
    pub fn with_sensing_errors(mut self, epsilon: f64, delta: f64) -> Self {
        self.epsilon = epsilon;
        self.delta = delta;
        self
    }

    /// The per-channel Markov chain.
    ///
    /// # Errors
    ///
    /// Returns an error if `p01`/`p10` are invalid.
    pub fn markov(&self) -> Result<TwoStateMarkov, SpectrumError> {
        TwoStateMarkov::new(self.p01, self.p10)
    }

    /// The sensor profile.
    ///
    /// # Errors
    ///
    /// Returns an error if ε/δ are invalid.
    pub fn sensor(&self) -> Result<SensorProfile, SpectrumError> {
        SensorProfile::new(self.epsilon, self.delta)
    }

    /// The access policy.
    ///
    /// # Errors
    ///
    /// Returns an error if γ is invalid.
    pub fn access_policy(&self) -> Result<AccessPolicy, SpectrumError> {
        AccessPolicy::new(self.gamma)
    }

    /// The hard-threshold policy (used when
    /// [`SimConfig::access_mode`] is [`AccessMode::Threshold`]).
    ///
    /// # Errors
    ///
    /// Returns an error if γ is invalid.
    pub fn threshold_policy(&self) -> Result<ThresholdPolicy, SpectrumError> {
        ThresholdPolicy::new(self.gamma)
    }

    /// `B0` as a typed rate.
    ///
    /// # Panics
    ///
    /// Panics if `b0` is negative.
    pub fn b0_rate(&self) -> Mbps {
        Mbps::new(self.b0).expect("b0 must be nonnegative")
    }

    /// `B1` as a typed rate.
    ///
    /// # Panics
    ///
    /// Panics if `b1` is negative.
    pub fn b1_rate(&self) -> Mbps {
        Mbps::new(self.b1).expect("b1 must be nonnegative")
    }

    /// Total simulated slots per run.
    pub fn total_slots(&self) -> u64 {
        u64::from(self.gops) * u64::from(self.deadline)
    }

    /// Checks every field at once and returns all problems found —
    /// library users building configs by hand get a complete error
    /// report instead of the first panic the engine would hit.
    pub fn validate(&self) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        if self.num_channels == 0 {
            problems.push("num_channels must be at least 1".to_string());
        }
        if let Err(e) = self.markov() {
            problems.push(format!("markov model: {e}"));
        }
        if let Err(e) = self.sensor() {
            problems.push(format!("sensor profile: {e}"));
        }
        if let Err(e) = self.access_policy() {
            problems.push(format!("access policy: {e}"));
        }
        for (name, value) in [("b0", self.b0), ("b1", self.b1)] {
            if !(value >= 0.0 && value.is_finite()) {
                problems.push(format!("{name} must be nonnegative, got {value}"));
            }
        }
        if self.deadline == 0 {
            problems.push("deadline must be at least 1 slot".to_string());
        }
        if self.gops == 0 {
            problems.push("gops must be at least 1".to_string());
        }
        for (name, value) in [
            ("mean_sinr_mbs", self.mean_sinr_mbs),
            ("mean_sinr_fbs", self.mean_sinr_fbs),
            ("sinr_threshold", self.sinr_threshold),
        ] {
            if !(value > 0.0 && value.is_finite()) {
                problems.push(format!("{name} must be positive, got {value}"));
            }
        }
        if !(self.shadowing_sigma_db >= 0.0 && self.shadowing_sigma_db.is_finite()) {
            problems.push(format!(
                "shadowing_sigma_db must be nonnegative, got {}",
                self.shadowing_sigma_db
            ));
        }
        if !(self.nakagami_m >= 0.5 && self.nakagami_m.is_finite()) {
            problems.push(format!(
                "nakagami_m must be at least 0.5, got {}",
                self.nakagami_m
            ));
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_baseline() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.num_channels, 8);
        assert_eq!(cfg.p01, 0.4);
        assert_eq!(cfg.p10, 0.3);
        assert_eq!(cfg.gamma, 0.2);
        assert_eq!(cfg.epsilon, 0.3);
        assert_eq!(cfg.delta, 0.3);
        assert_eq!(cfg.b0, 0.3);
        assert_eq!(cfg.b1, 0.3);
        assert_eq!(cfg.deadline, 10);
        assert!(!cfg.first_observation_only);
        assert_eq!(cfg.prior_mode, PriorMode::Stationary);
        assert_eq!(cfg.access_mode, AccessMode::Probabilistic);
        assert_eq!(cfg.sensing_strategy, SensingStrategy::RoundRobin);
        assert_eq!(cfg.scalability, Scalability::Mgs);
        assert_eq!(cfg.nakagami_m, 1.0);
        assert_eq!(cfg.shard, ShardPolicy::Auto);
    }

    #[test]
    fn validate_accepts_the_baseline_and_collects_all_problems() {
        assert!(SimConfig::default().validate().is_ok());
        let broken = SimConfig {
            num_channels: 0,
            gamma: 1.5,
            deadline: 0,
            mean_sinr_fbs: -1.0,
            ..SimConfig::default()
        };
        let problems = broken.validate().unwrap_err();
        assert!(problems.len() >= 4, "all problems reported: {problems:?}");
        assert!(problems.iter().any(|p| p.contains("num_channels")));
        assert!(problems.iter().any(|p| p.contains("gamma")));
        assert!(problems.iter().any(|p| p.contains("deadline")));
        assert!(problems.iter().any(|p| p.contains("mean_sinr_fbs")));
    }

    #[test]
    fn threshold_policy_builds() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.threshold_policy().unwrap().gamma(), 0.2);
    }

    #[test]
    fn utilization_sweep_changes_p01_only() {
        let cfg = SimConfig::default().with_utilization(0.5);
        assert_eq!(cfg.p10, 0.3);
        assert!((cfg.markov().unwrap().utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "utilization reachable")]
    fn impossible_utilization_panics() {
        let _ = SimConfig::default().with_utilization(0.95);
    }

    #[test]
    fn sensing_sweep() {
        let cfg = SimConfig::default().with_sensing_errors(0.2, 0.48);
        assert_eq!(cfg.epsilon, 0.2);
        assert_eq!(cfg.delta, 0.48);
        assert!(cfg.sensor().is_ok());
    }

    #[test]
    fn derived_objects_build() {
        let cfg = SimConfig::default();
        assert!(cfg.markov().is_ok());
        assert!(cfg.sensor().is_ok());
        assert!(cfg.access_policy().is_ok());
        assert_eq!(cfg.b0_rate().value(), 0.3);
        assert_eq!(cfg.b1_rate().value(), 0.3);
        assert_eq!(cfg.total_slots(), 200);
    }
}
