//! Rendering helpers for experiment results: the Fig. 3-style
//! per-user/per-scheme tables and the live worker-pool telemetry
//! table, shared by the `experiments` binary and downstream users of
//! the library.

use crate::metrics::SchemeSummary;
use crate::scheme::Scheme;
use fcr_runtime::MetricsSnapshot;
use fcr_telemetry::TelemetrySnapshot;
use std::fmt::Write as _;

/// Renders a per-user comparison table (rows = users + mean + Jain,
/// columns = schemes), the layout of the paper's Fig. 3.
///
/// `user_labels` names the rows; every summary must cover the same
/// number of users.
///
/// # Panics
///
/// Panics if the inputs disagree on user counts or the scheme/summary
/// lists differ in length.
pub fn per_user_table(
    user_labels: &[String],
    schemes: &[Scheme],
    summaries: &[SchemeSummary],
) -> String {
    assert_eq!(schemes.len(), summaries.len(), "one summary per scheme");
    for s in summaries {
        assert_eq!(
            s.per_user.len(),
            user_labels.len(),
            "summary covers a different user count"
        );
    }
    let mut out = String::new();
    let _ = write!(out, "{:>12}", "User");
    for s in schemes {
        let _ = write!(out, " {:>24}", s.name());
    }
    let _ = writeln!(out);
    for (j, label) in user_labels.iter().enumerate() {
        let _ = write!(out, "{label:>12}");
        for s in summaries {
            let ci = &s.per_user[j];
            let _ = write!(out, " {:>15.2} ± {:>5.2}", ci.mean(), ci.half_width());
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "{:>12}", "mean");
    for s in summaries {
        let _ = write!(
            out,
            " {:>15.2} ± {:>5.2}",
            s.overall.mean(),
            s.overall.half_width()
        );
    }
    let _ = writeln!(out);
    let _ = write!(out, "{:>12}", "Jain");
    for s in summaries {
        let _ = write!(out, " {:>23.4}", s.jain);
    }
    let _ = writeln!(out);
    out
}

/// Renders a compact scheme-summary list (mean ± CI, collision rate,
/// Jain) — the quickstart-style report.
pub fn scheme_list(schemes: &[Scheme], summaries: &[SchemeSummary]) -> String {
    assert_eq!(schemes.len(), summaries.len(), "one summary per scheme");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>14} {:>12} {:>8}",
        "Scheme", "mean Y-PSNR", "collisions", "Jain"
    );
    for (scheme, s) in schemes.iter().zip(summaries) {
        let _ = writeln!(
            out,
            "{:<18} {:>7.2} ± {:<4.2} {:>12.4} {:>8.4}",
            scheme.name(),
            s.overall.mean(),
            s.overall.half_width(),
            s.collision.mean(),
            s.jain
        );
    }
    out
}

/// Renders a live snapshot of the shared simulation pool: worker
/// count, job counters, queue state, the job wall-time histogram
/// (occupied buckets only), and every registered domain counter
/// (`slots_simulated`, `solver_invocations`, ...).
pub fn runtime_metrics_table(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "runtime pool ({} workers)", snapshot.workers);
    let rows: [(&str, u64); 7] = [
        ("jobs submitted", snapshot.jobs_submitted),
        ("jobs completed", snapshot.jobs_completed),
        ("jobs failed", snapshot.jobs_failed),
        ("jobs stolen", snapshot.jobs_stolen),
        ("jobs rejected", snapshot.jobs_rejected),
        ("queue depth", snapshot.queue_depth),
        ("in flight", snapshot.jobs_in_flight),
    ];
    for (label, value) in rows {
        let _ = writeln!(out, "  {label:<20} {value:>12}");
    }
    let _ = writeln!(
        out,
        "  {:<20} {:>12.1}",
        "jobs/sec",
        snapshot.jobs_per_sec()
    );
    for (name, value) in &snapshot.counters {
        let _ = writeln!(out, "  {name:<20} {value:>12}");
    }
    // Intra-run sharding: how the session cut runs into slot-window
    // jobs (the counters are registered on first sharded session).
    if let (Some(shards), Some(slots)) = (
        snapshot.counter(crate::pool::SHARDS_COUNTER),
        snapshot.counter(crate::pool::SLOTS_COUNTER),
    ) {
        if shards > 0 {
            let _ = writeln!(
                out,
                "  shard stats: {shards} shards executed, {:.1} slots/shard",
                slots as f64 / shards as f64,
            );
        }
    }
    let wall = &snapshot.job_wall_time;
    let _ = writeln!(
        out,
        "  job wall time: n={} mean={:.0}us min={}us max={}us",
        wall.count,
        wall.mean_micros(),
        wall.min_micros.unwrap_or(0),
        wall.max_micros,
    );
    for (upper, count) in wall.occupied_buckets() {
        if upper == u64::MAX {
            let _ = writeln!(out, "    {:>12} {count:>10}", "   overflow");
        } else {
            let _ = writeln!(out, "    < {upper:>8}us {count:>10}");
        }
    }
    if !snapshot.per_worker.is_empty() {
        let _ = writeln!(
            out,
            "  {:<8} {:>8} {:>12} {:>8} {:>10}",
            "worker", "jobs", "busy (ms)", "steals", "util"
        );
        for w in &snapshot.per_worker {
            let _ = writeln!(
                out,
                "  {:<8} {:>8} {:>12.2} {:>8} {:>9.1}%",
                w.index,
                w.jobs_executed,
                w.busy_ns as f64 / 1e6,
                w.steals,
                100.0 * w.utilization(),
            );
        }
    }
    out
}

/// Renders a telemetry snapshot as human-readable tables: per-phase
/// span timings, the dual-solver convergence summary, the eq.-(23)
/// greedy optimality bookkeeping, and named counters.
pub fn telemetry_table(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:>10} {:>12} {:>12} {:>12}",
        "phase", "spans", "total (ms)", "mean (us)", "max (us)"
    );
    for (phase, stats) in &snapshot.phases {
        let _ = writeln!(
            out,
            "{:<14} {:>10} {:>12.2} {:>12.1} {:>12.1}",
            phase.name(),
            stats.count,
            stats.total_ns as f64 / 1e6,
            stats.mean_ns() / 1e3,
            stats.max_ns as f64 / 1e3,
        );
    }
    if !snapshot.solves.is_empty() {
        let max_iter = snapshot
            .solves
            .iter()
            .map(|s| s.iterations)
            .max()
            .unwrap_or(0);
        let _ = writeln!(
            out,
            "dual solver: {} solves, {:.1} mean iterations, max {}, {:.1}% converged{}",
            snapshot.solves.len(),
            snapshot.mean_iterations().unwrap_or(0.0),
            max_iter,
            100.0 * snapshot.convergence_rate().unwrap_or(0.0),
            if snapshot.dropped_solves > 0 {
                format!(" ({} dropped)", snapshot.dropped_solves)
            } else {
                String::new()
            },
        );
    }
    if !snapshot.greedy.is_empty() {
        let n = snapshot.greedy.len() as f64;
        let mean_ratio: f64 = snapshot
            .greedy
            .iter()
            .map(fcr_telemetry::GreedyRecord::optimality_ratio)
            .sum::<f64>()
            / n;
        let mean_gap: f64 = snapshot
            .greedy
            .iter()
            .map(fcr_telemetry::GreedyRecord::gap)
            .sum::<f64>()
            / n;
        let _ = writeln!(
            out,
            "greedy (Table III): {} runs, mean eq.(23) gap {:.3} dB, \
             mean guaranteed ratio {:.3}{}",
            snapshot.greedy.len(),
            mean_gap,
            mean_ratio,
            if snapshot.dropped_greedy > 0 {
                format!(" ({} dropped)", snapshot.dropped_greedy)
            } else {
                String::new()
            },
        );
    }
    if !snapshot.shards.is_empty() {
        let _ = writeln!(
            out,
            "shards: {} executed, mean wall {:.2} ms{}",
            snapshot.shards.len(),
            snapshot.mean_shard_wall_ns().unwrap_or(0.0) / 1e6,
            if snapshot.dropped_shards > 0 {
                format!(" ({} dropped)", snapshot.dropped_shards)
            } else {
                String::new()
            },
        );
    }
    for r in &snapshot.resizes {
        let _ = writeln!(
            out,
            "  pool resize {} -> {} [{}] (queue {}, util {:.0}%)",
            r.from,
            r.to,
            r.trigger.name(),
            r.queue_depth,
            100.0 * r.utilization,
        );
    }
    for (name, value) in &snapshot.counters {
        let _ = writeln!(out, "  {name:<24} {value:>12}");
    }
    if snapshot.records_dropped() > 0 {
        let _ = writeln!(
            out,
            "WARNING: {} telemetry records dropped past the {}-record cap \
             (solves {}, greedy {}, shards {}); per-record channels are \
             truncated, aggregates remain complete",
            snapshot.records_dropped(),
            fcr_telemetry::MAX_RECORDS,
            snapshot.dropped_solves,
            snapshot.dropped_greedy,
            snapshot.dropped_shards,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RunResult;

    fn summary() -> SchemeSummary {
        let runs = vec![
            RunResult {
                per_user_psnr: vec![34.0, 30.0],
                collision_rate: 0.18,
                mean_expected_available: 2.0,
                mean_greedy_objective: None,
                mean_eq23_bound: None,
            },
            RunResult {
                per_user_psnr: vec![35.0, 31.0],
                collision_rate: 0.19,
                mean_expected_available: 2.1,
                mean_greedy_objective: None,
                mean_eq23_bound: None,
            },
        ];
        SchemeSummary::from_runs(&runs)
    }

    #[test]
    fn per_user_table_has_all_rows_and_columns() {
        let labels = vec!["1 (Bus)".to_string(), "2 (Mobile)".to_string()];
        let out = per_user_table(&labels, &[Scheme::Proposed], &[summary()]);
        assert!(out.contains("Proposed scheme"));
        assert!(out.contains("1 (Bus)"));
        assert!(out.contains("2 (Mobile)"));
        assert!(out.contains("mean"));
        assert!(out.contains("Jain"));
        assert_eq!(out.lines().count(), 5);
        assert!(out.contains("34.50"), "per-user mean rendered:\n{out}");
    }

    #[test]
    fn scheme_list_has_one_row_per_scheme() {
        let out = scheme_list(
            &[Scheme::Proposed, Scheme::Heuristic1],
            &[summary(), summary()],
        );
        assert_eq!(out.lines().count(), 3);
        assert!(out.contains("Heuristic 1"));
        assert!(out.contains("0.185"), "collision mean rendered:\n{out}");
    }

    #[test]
    #[should_panic(expected = "one summary per scheme")]
    fn mismatched_lengths_panic() {
        let _ = scheme_list(&[Scheme::Proposed], &[]);
    }

    #[test]
    #[should_panic(expected = "different user count")]
    fn mismatched_user_counts_panic() {
        let labels = vec!["only one".to_string()];
        let _ = per_user_table(&labels, &[Scheme::Proposed], &[summary()]);
    }

    #[test]
    fn runtime_metrics_table_lists_counters_and_histogram() {
        use crate::config::SimConfig;
        use crate::pool::{self, SLOTS_COUNTER};
        use crate::scenario::Scenario;
        use crate::session::SimSession;
        use fcr_runtime::ShardPolicy;

        // Push at least one real sharded run through the shared pool so
        // every section of the table (including shard stats) has data.
        let config = SimConfig {
            gops: 2,
            ..SimConfig::default()
        };
        let result = SimSession::new(Scenario::single_fbs(&config))
            .config(config)
            .runs(1)
            .seed(7)
            .shards(ShardPolicy::Windows(1))
            .run(Scheme::Proposed);
        assert!(result.outcomes()[0].is_ok());
        let snap = pool::snapshot();
        let out = runtime_metrics_table(&snap);
        assert!(out.contains("runtime pool ("), "header rendered:\n{out}");
        for label in [
            "jobs submitted",
            "jobs completed",
            "jobs failed",
            "queue depth",
            "jobs/sec",
            SLOTS_COUNTER,
            "solver_invocations",
            "shard stats:",
            "slots/shard",
            "job wall time:",
        ] {
            assert!(out.contains(label), "{label} rendered:\n{out}");
        }
        assert!(
            out.lines().count() >= 13,
            "counter rows + histogram rows:\n{out}"
        );
        // Per-worker utilization rows (one header + one per worker).
        assert!(
            out.contains("worker"),
            "per-worker section rendered:\n{out}"
        );
        assert!(out.contains("util"), "utilization column rendered:\n{out}");
    }

    #[test]
    fn telemetry_table_renders_all_sections() {
        use fcr_telemetry::{GreedyRecord, Phase, SolveRecord, TelemetrySink};
        use std::time::Duration;

        let sink = TelemetrySink::new();
        sink.record_span(Phase::Sensing, Duration::from_micros(40));
        sink.record_span(Phase::Solver, Duration::from_micros(120));
        sink.record_solve(SolveRecord {
            iterations: 200,
            converged: true,
            residual: 1e-14,
            lambda: vec![0.0, 0.1],
        });
        sink.record_greedy(GreedyRecord {
            steps: 2,
            gain: 1.5,
            upper_bound_gain: 2.0,
            gap_terms: vec![0.3, 0.2],
        });
        sink.incr("greedy.inner_solves", 12);
        sink.record_shard(fcr_telemetry::ShardRecord {
            run: 0,
            window: 0,
            gop_start: 0,
            gops: 2,
            wall_ns: 2_000_000,
        });
        sink.record_resize(fcr_telemetry::ResizeEvent {
            from: 1,
            to: 2,
            queue_depth: 3,
            utilization: 0.9,
            trigger: fcr_telemetry::ResizeTrigger::Loop,
        });
        let out = telemetry_table(&sink.snapshot());
        for needle in [
            "phase",
            "sensing",
            "fusion",
            "access",
            "solver",
            "greedy_alloc",
            "video_credit",
            "dual solver: 1 solves",
            "greedy (Table III): 1 runs",
            "greedy.inner_solves",
            "shards: 1 executed, mean wall 2.00 ms",
            "pool resize 1 -> 2 [loop] (queue 3, util 90%)",
        ] {
            assert!(out.contains(needle), "{needle} rendered:\n{out}");
        }
        assert!(
            out.contains("100.0% converged"),
            "convergence rate rendered:\n{out}"
        );
        assert!(
            !out.contains("records dropped"),
            "no drop warning below the cap:\n{out}"
        );
    }

    #[test]
    fn telemetry_table_warns_when_records_were_dropped() {
        use fcr_telemetry::{GreedyRecord, TelemetrySink, MAX_RECORDS};

        let sink = TelemetrySink::new();
        for _ in 0..MAX_RECORDS + 5 {
            sink.record_greedy(GreedyRecord {
                steps: 1,
                gain: 0.5,
                upper_bound_gain: 1.0,
                gap_terms: vec![0.5],
            });
        }
        let snap = sink.snapshot();
        assert_eq!(snap.records_dropped(), 5);
        let out = telemetry_table(&snap);
        assert!(
            out.contains("(5 dropped)"),
            "greedy line shows its drop count:\n{out}"
        );
        assert!(
            out.contains("WARNING: 5 telemetry records dropped"),
            "cap overflow is loud:\n{out}"
        );
    }
}
