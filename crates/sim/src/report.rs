//! Rendering helpers for experiment results: the Fig. 3-style
//! per-user/per-scheme tables, shared by the `experiments` binary and
//! downstream users of the library.

use crate::metrics::SchemeSummary;
use crate::scheme::Scheme;
use std::fmt::Write as _;

/// Renders a per-user comparison table (rows = users + mean + Jain,
/// columns = schemes), the layout of the paper's Fig. 3.
///
/// `user_labels` names the rows; every summary must cover the same
/// number of users.
///
/// # Panics
///
/// Panics if the inputs disagree on user counts or the scheme/summary
/// lists differ in length.
pub fn per_user_table(
    user_labels: &[String],
    schemes: &[Scheme],
    summaries: &[SchemeSummary],
) -> String {
    assert_eq!(schemes.len(), summaries.len(), "one summary per scheme");
    for s in summaries {
        assert_eq!(
            s.per_user.len(),
            user_labels.len(),
            "summary covers a different user count"
        );
    }
    let mut out = String::new();
    let _ = write!(out, "{:>12}", "User");
    for s in schemes {
        let _ = write!(out, " {:>24}", s.name());
    }
    let _ = writeln!(out);
    for (j, label) in user_labels.iter().enumerate() {
        let _ = write!(out, "{label:>12}");
        for s in summaries {
            let ci = &s.per_user[j];
            let _ = write!(out, " {:>15.2} ± {:>5.2}", ci.mean(), ci.half_width());
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "{:>12}", "mean");
    for s in summaries {
        let _ = write!(
            out,
            " {:>15.2} ± {:>5.2}",
            s.overall.mean(),
            s.overall.half_width()
        );
    }
    let _ = writeln!(out);
    let _ = write!(out, "{:>12}", "Jain");
    for s in summaries {
        let _ = write!(out, " {:>23.4}", s.jain);
    }
    let _ = writeln!(out);
    out
}

/// Renders a compact scheme-summary list (mean ± CI, collision rate,
/// Jain) — the quickstart-style report.
pub fn scheme_list(schemes: &[Scheme], summaries: &[SchemeSummary]) -> String {
    assert_eq!(schemes.len(), summaries.len(), "one summary per scheme");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>14} {:>12} {:>8}",
        "Scheme", "mean Y-PSNR", "collisions", "Jain"
    );
    for (scheme, s) in schemes.iter().zip(summaries) {
        let _ = writeln!(
            out,
            "{:<18} {:>7.2} ± {:<4.2} {:>12.4} {:>8.4}",
            scheme.name(),
            s.overall.mean(),
            s.overall.half_width(),
            s.collision.mean(),
            s.jain
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::RunResult;

    fn summary() -> SchemeSummary {
        let runs = vec![
            RunResult {
                per_user_psnr: vec![34.0, 30.0],
                collision_rate: 0.18,
                mean_expected_available: 2.0,
                mean_greedy_objective: None,
                mean_eq23_bound: None,
            },
            RunResult {
                per_user_psnr: vec![35.0, 31.0],
                collision_rate: 0.19,
                mean_expected_available: 2.1,
                mean_greedy_objective: None,
                mean_eq23_bound: None,
            },
        ];
        SchemeSummary::from_runs(&runs)
    }

    #[test]
    fn per_user_table_has_all_rows_and_columns() {
        let labels = vec!["1 (Bus)".to_string(), "2 (Mobile)".to_string()];
        let out = per_user_table(&labels, &[Scheme::Proposed], &[summary()]);
        assert!(out.contains("Proposed scheme"));
        assert!(out.contains("1 (Bus)"));
        assert!(out.contains("2 (Mobile)"));
        assert!(out.contains("mean"));
        assert!(out.contains("Jain"));
        assert_eq!(out.lines().count(), 5);
        assert!(out.contains("34.50"), "per-user mean rendered:\n{out}");
    }

    #[test]
    fn scheme_list_has_one_row_per_scheme() {
        let out = scheme_list(
            &[Scheme::Proposed, Scheme::Heuristic1],
            &[summary(), summary()],
        );
        assert_eq!(out.lines().count(), 3);
        assert!(out.contains("Heuristic 1"));
        assert!(out.contains("0.185"), "collision mean rendered:\n{out}");
    }

    #[test]
    #[should_panic(expected = "one summary per scheme")]
    fn mismatched_lengths_panic() {
        let _ = scheme_list(&[Scheme::Proposed], &[]);
    }

    #[test]
    #[should_panic(expected = "different user count")]
    fn mismatched_user_counts_panic() {
        let labels = vec!["only one".to_string()];
        let _ = per_user_table(&labels, &[Scheme::Proposed], &[summary()]);
    }
}
