//! The slot loop: sensing → fusion → access → allocation →
//! transmission → accounting.
//!
//! # Plan / window / stitch
//!
//! Since the intra-run sharding redesign the engine is split into
//! three stages that serial and sharded execution share:
//!
//! 1. **`plan_spectrum`** — the serial *spectrum prologue*. The
//!    primary-user Markov chain, sensing, fusion, and access carry
//!    state from slot to slot, so they run sequentially once per run
//!    (they are cheap and scheme-independent) and produce a
//!    `SpectrumPlan`: the per-slot truth, posteriors, and accessed
//!    channels every shard reads.
//! 2. **`run_window`** — the expensive allocation + transmission
//!    stage for one GOP-aligned slot window. Video sessions reset to
//!    the base layer at every GOP deadline and the fading/loss RNG
//!    streams are derived per `(run, gop)`
//!    ([`fcr_spectrum::streams::gop_streams`]), so windows are
//!    independent given the plan — any GOP-aligned partition yields
//!    bit-identical results.
//! 3. **`stitch`** — merges window outputs (in GOP order) with the
//!    plan's aggregates into the final [`RunResult`] and optional
//!    [`SimTrace`].
//!
//! [`run`] executes all three stages serially (one whole-run window);
//! `crate::session::SimSession` schedules stage 2 across the shared
//! worker pool.

use crate::config::SimConfig;
use crate::metrics::RunResult;
use crate::scenario::Scenario;
use crate::scheme::{decide_slot, Scheme};
use crate::trace::{SimTrace, SlotRecord};
use fcr_core::allocation::Mode;
use fcr_core::problem::{SlotProblem, UserState};
use fcr_net::node::FbsId;
use fcr_spectrum::access::AccessOutcome;
use fcr_spectrum::fusion::fuse_channel;
use fcr_spectrum::primary::{ChannelId, PrimaryNetwork};
use fcr_spectrum::sensing::SensorProfile;
use fcr_spectrum::streams::{gop_streams, spectrum_streams};
use fcr_stats::rng::SeedSequence;
use fcr_video::quality::Psnr;
use fcr_video::session::VideoSession;
use rand::rngs::StdRng;

/// How much per-slot state a run records alongside its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TraceMode {
    /// Record nothing beyond the aggregate [`RunResult`] (the
    /// production mode; costs no memory).
    #[default]
    Off,
    /// Record one [`SlotRecord`] per slot (posteriors, access
    /// decisions, allocations, deliveries, GOP completions). Memory
    /// proportional to slots × users.
    Slots,
    /// As [`TraceMode::Slots`], additionally running the
    /// dual-decomposition solver (Tables I/II) on every slot's problem
    /// so per-slot convergence behaviour is observable
    /// (`SlotRecord::dual_iterations`). The solver is deterministic
    /// and consumes no RNG, so results stay bit-identical.
    Full,
}

impl TraceMode {
    /// `true` when per-slot records are collected.
    pub fn records(self) -> bool {
        !matches!(self, TraceMode::Off)
    }
}

/// The outcome of [`run`]: the aggregate result plus the per-slot
/// trace when the [`TraceMode`] asked for one.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutput {
    /// Aggregate run result (always present).
    pub result: RunResult,
    /// Per-slot records; `Some` iff the trace mode records.
    pub trace: Option<SimTrace>,
}

/// Everything the spectrum prologue decided for one slot: the ground
/// truth, the fused posteriors, and the channels the access policy
/// opened. Scheme-independent and read-only for every shard.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SlotPlan {
    /// True idleness per channel after this slot's primary step.
    pub true_idle: Vec<bool>,
    /// Fused availability posterior per channel.
    pub posteriors: Vec<f64>,
    /// Channels accessed this slot with their availability weights.
    pub available: Vec<(ChannelId, f64)>,
    /// Expected number of available accessed channels (`G` of eq. (5)).
    pub expected_available: f64,
}

impl SlotPlan {
    /// Accessed channels that are actually busy (collisions).
    pub fn collisions(&self) -> usize {
        self.available
            .iter()
            .filter(|(id, _)| !self.true_idle[id.0])
            .count()
    }
}

/// The serial spectrum prologue of one run: per-slot sensing / fusion
/// / access decisions shared by every shard of the run.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SpectrumPlan {
    pub slots: Vec<SlotPlan>,
}

impl SpectrumPlan {
    /// Total collisions across the run.
    pub fn total_collisions(&self) -> u64 {
        self.slots.iter().map(|s| s.collisions() as u64).sum()
    }

    /// Sum of expected available channels across the run.
    pub fn g_sum(&self) -> f64 {
        self.slots.iter().map(|s| s.expected_available).sum()
    }
}

/// Greedy-allocator diagnostics accumulated over one GOP.
///
/// Aggregation happens at fixed per-GOP granularity (not per window)
/// so that floating-point summation order — and therefore the final
/// result, bit for bit — is independent of how the run was cut into
/// windows.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub(crate) struct GopGreedy {
    /// Sum of greedy objective values over this GOP's greedy slots.
    pub obj_sum: f64,
    /// Sum of eq. (23) upper bounds over the same slots.
    pub eq23_sum: f64,
    /// Number of slots in this GOP that ran the greedy allocator.
    pub slots: u64,
}

/// The output of one GOP-aligned slot window (see `run_window`).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct WindowOutput {
    /// First GOP (inclusive) this window covered.
    pub gop_start: u32,
    /// Completed-GOP PSNRs, `[user][gop - gop_start]`.
    pub gop_psnr: Vec<Vec<f64>>,
    /// Per-GOP greedy diagnostics, `[gop - gop_start]`.
    pub greedy: Vec<GopGreedy>,
    /// Per-slot records (empty when the trace mode is off).
    pub records: Vec<SlotRecord>,
}

/// Runs one complete simulation (`cfg.gops` GOPs) of `scheme` on
/// `scenario`, deterministically derived from `(seeds, run_index)`,
/// recording per-slot state per the [`TraceMode`].
///
/// This is the single entry point behind both the production and the
/// traced paths, and the serial reference for sharded execution: a
/// sharded run is the same `plan_spectrum` → `run_window` →
/// `stitch` pipeline with more than one window.
///
/// # Panics
///
/// Panics if the configuration is invalid (probabilities out of range,
/// zero channels) — configs come from [`SimConfig`] whose constructors
/// validate, so this indicates a hand-built config bug.
pub fn run(
    scenario: &Scenario,
    cfg: &SimConfig,
    scheme: Scheme,
    seeds: &SeedSequence,
    run_index: u64,
    mode: TraceMode,
) -> RunOutput {
    let run_seeds = seeds.child("run", run_index);
    let plan = plan_spectrum(scenario, cfg, &run_seeds);
    let window = run_window(scenario, cfg, scheme, &run_seeds, &plan, 0, cfg.gops, mode);
    stitch(cfg, &plan, vec![window], mode)
}

/// The serial spectrum prologue: steps the primary network, senses,
/// fuses, and decides access for every slot of the run, consuming the
/// run-level RNG streams ([`fcr_spectrum::streams::spectrum_streams`])
/// in exactly the draw order of the pre-sharding engine.
pub(crate) fn plan_spectrum(
    scenario: &Scenario,
    cfg: &SimConfig,
    run_seeds: &SeedSequence,
) -> SpectrumPlan {
    let mut streams = spectrum_streams(run_seeds);
    let chain = cfg.markov().expect("valid markov config");
    let sensor = cfg.sensor().expect("valid sensor config");
    let policy = cfg.access_policy().expect("valid access config");
    let mut primary = PrimaryNetwork::homogeneous(cfg.num_channels, chain, &mut streams.primary);
    let eta = chain.utilization();
    // Per-channel busy beliefs (used only in belief-tracking mode).
    let mut beliefs = vec![eta; cfg.num_channels];

    let mut slots = Vec::with_capacity(cfg.total_slots() as usize);
    for slot in 0..cfg.total_slots() {
        primary.step(&mut streams.primary);

        // --- Sensing + fusion (Section III-B). ---
        let busy_priors: Vec<f64> = match cfg.prior_mode {
            crate::config::PriorMode::Stationary => vec![eta; cfg.num_channels],
            crate::config::PriorMode::BeliefTracking => {
                beliefs.iter().map(|b| chain.propagate_belief(*b)).collect()
            }
        };
        let user_targets = sensing_targets(
            cfg.sensing_strategy,
            &busy_priors,
            scenario.num_users(),
            slot,
        );
        let (posteriors, first_obs) = sense_all_channels(
            &primary,
            scenario,
            &sensor,
            &busy_priors,
            &user_targets,
            &mut streams.sensing,
        );
        for (belief, p_avail) in beliefs.iter_mut().zip(&posteriors) {
            *belief = 1.0 - p_avail;
        }

        // --- Opportunistic access (Section III-C). ---
        let first = cfg.first_observation_only.then_some(first_obs.as_slice());
        let outcome = match cfg.access_mode {
            crate::config::AccessMode::Probabilistic => {
                AccessOutcome::decide_all(policy, &posteriors, first, &mut streams.access)
            }
            crate::config::AccessMode::Threshold => AccessOutcome::decide_all_threshold(
                cfg.threshold_policy().expect("valid gamma"),
                &posteriors,
                first,
            ),
        };
        slots.push(SlotPlan {
            true_idle: primary.states().iter().map(|s| s.is_idle()).collect(),
            posteriors,
            available: outcome.available().to_vec(),
            expected_available: outcome.expected_available(),
        });
    }
    SpectrumPlan { slots }
}

/// Runs allocation + transmission for the GOP-aligned window
/// `[gop_start, gop_start + gop_count)` against a shared
/// `SpectrumPlan`. Fading/loss draws come from per-GOP substreams,
/// and video sessions reset at GOP deadlines, so the output is
/// independent of how the run was partitioned into windows.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_window(
    scenario: &Scenario,
    cfg: &SimConfig,
    scheme: Scheme,
    run_seeds: &SeedSequence,
    plan: &SpectrumPlan,
    gop_start: u32,
    gop_count: u32,
    mode: TraceMode,
) -> WindowOutput {
    let mut sessions: Vec<VideoSession> = scenario
        .users
        .iter()
        .map(|u| {
            VideoSession::new(
                u.sequence.model_for(cfg.scalability),
                fcr_video::gop::GopConfig::new(u.sequence.gop().frames(), cfg.deadline)
                    .expect("deadline > 0"),
            )
        })
        .collect();
    let caps: Vec<f64> = scenario
        .users
        .iter()
        .map(|u| u.sequence.max_psnr_for(cfg.scalability).db())
        .collect();

    let t = u64::from(cfg.deadline);
    let mut gop_psnr: Vec<Vec<f64>> = vec![Vec::with_capacity(gop_count as usize); caps.len()];
    let mut greedy = Vec::with_capacity(gop_count as usize);
    let mut records = Vec::new();

    for gop in gop_start..gop_start + gop_count {
        let mut streams = gop_streams(run_seeds, u64::from(gop));
        let mut gop_greedy = GopGreedy::default();
        for slot_in_gop in 0..t {
            let slot = u64::from(gop) * t + slot_in_gop;
            let sp = &plan.slots[slot as usize];

            // --- Per-slot link qualities (Section III-D). ---
            let user_states: Vec<UserState> = scenario
                .users
                .iter()
                .zip(&sessions)
                .map(|(u, session)| {
                    let mbs_q = u.mbs_link.draw_slot(&mut streams.fading);
                    let fbs_q = u.fbs_link.draw_slot(&mut streams.fading);
                    let model = session.model();
                    UserState::new(
                        session.current_psnr().db(),
                        u.fbs,
                        model.slot_increment(cfg.b0_rate(), cfg.deadline).db(),
                        model.slot_increment(cfg.b1_rate(), cfg.deadline).db(),
                        mbs_q.success_probability(),
                        fbs_q.success_probability(),
                    )
                    .expect("engine-built user state is valid")
                })
                .collect();

            // --- Allocation (Section IV). ---
            let weights: Vec<f64> = sp.available.iter().map(|(_, w)| *w).collect();
            let decision = decide_slot(
                scheme,
                &user_states,
                &scenario.graph,
                &weights,
                sp.expected_available,
            );
            if let Some(g) = &decision.greedy {
                gop_greedy.obj_sum += g.q_value();
                gop_greedy.eq23_sum += g.upper_bound();
                gop_greedy.slots += 1;
            }

            // --- Transmission realization + PSNR crediting. ---
            let video_span = fcr_telemetry::Span::enter(fcr_telemetry::Phase::VideoCredit);
            let realized_g = realized_channels(scenario, sp, &decision.assignment);
            let mut delivered_db = vec![0.0; user_states.len()];
            for (j, user) in user_states.iter().enumerate() {
                let a = decision.allocation.user(j);
                if a.rho() <= 0.0 {
                    continue;
                }
                let (success_p, increment) = match a.mode {
                    Mode::Mbs => (user.success_mbs(), a.rho_mbs * user.r_mbs()),
                    Mode::Fbs => (
                        user.success_fbs(),
                        a.rho_fbs * realized_g[user.fbs().0] * user.r_fbs(),
                    ),
                };
                if increment > 0.0 && bernoulli(&mut streams.loss, success_p) {
                    // Cap at the stream's full-quality ceiling: a GOP
                    // has finitely many enhancement bits.
                    let headroom = (caps[j] - sessions[j].current_psnr().db()).max(0.0);
                    let credited = increment.min(headroom);
                    delivered_db[j] = credited;
                    sessions[j].credit(Psnr::new(credited).expect("nonnegative"));
                }
            }

            // --- GOP accounting. ---
            let mut completed_gop_db = Vec::with_capacity(sessions.len());
            for (j, session) in sessions.iter_mut().enumerate() {
                let completed = session.end_slot().map(|p| p.db());
                if let Some(db) = completed {
                    gop_psnr[j].push(db);
                }
                completed_gop_db.push(completed);
            }
            drop(video_span);

            if mode.records() {
                // Full mode only: run the dual-decomposition solver
                // (Tables I/II) on this slot's problem so the per-slot
                // convergence behaviour is observable. The solver is
                // deterministic and consumes no RNG, so the simulation
                // results are bit-identical with or without it.
                let (dual_iterations, dual_converged) = if mode == TraceMode::Full {
                    let dual_problem = match &decision.assignment {
                        Some(assignment) => fcr_core::interfering::InterferingProblem::new(
                            user_states.clone(),
                            scenario.graph.clone(),
                            weights.clone(),
                        )
                        .expect("engine-built states are valid")
                        .problem_for(assignment),
                        None => SlotProblem::new(
                            user_states.clone(),
                            vec![sp.expected_available; scenario.num_fbss()],
                        )
                        .expect("engine-built states are valid"),
                    };
                    let dual = fcr_core::dual::DualSolver::default().solve(&dual_problem);
                    (dual.iterations(), dual.converged())
                } else {
                    (0, false)
                };
                records.push(SlotRecord {
                    slot,
                    true_idle: sp.true_idle.clone(),
                    posteriors: sp.posteriors.clone(),
                    accessed: sp.available.iter().map(|(id, _)| id.0).collect(),
                    expected_available: sp.expected_available,
                    collisions: sp.collisions(),
                    allocation: decision.allocation.clone(),
                    realized_g,
                    delivered_db,
                    completed_gop_db,
                    dual_iterations,
                    dual_converged,
                });
            }
        }
        greedy.push(gop_greedy);
    }

    WindowOutput {
        gop_start,
        gop_psnr,
        greedy,
        records,
    }
}

/// Merges window outputs (any GOP-aligned partition of the run) with
/// the plan's scheme-independent aggregates into the final
/// [`RunOutput`]. Windows are stitched in GOP order, so sharded and
/// serial execution produce byte-for-byte the same result and trace.
pub(crate) fn stitch(
    cfg: &SimConfig,
    plan: &SpectrumPlan,
    mut windows: Vec<WindowOutput>,
    mode: TraceMode,
) -> RunOutput {
    windows.sort_by_key(|w| w.gop_start);
    let num_users = windows.first().map_or(0, |w| w.gop_psnr.len());

    // All floating-point accumulation below walks per-GOP values in
    // GOP order, one at a time — the summation order is therefore the
    // same for every GOP-aligned partition, keeping sharded results
    // bit-identical to serial ones.
    let mut greedy_obj_sum = 0.0;
    let mut eq23_sum = 0.0;
    let mut greedy_slots = 0u64;
    let mut per_user_sum = vec![0.0f64; num_users];
    let mut per_user_gops = vec![0u64; num_users];
    let mut trace = mode.records().then(SimTrace::new);
    for w in windows {
        for g in &w.greedy {
            greedy_obj_sum += g.obj_sum;
            eq23_sum += g.eq23_sum;
            greedy_slots += g.slots;
        }
        for (j, history) in w.gop_psnr.iter().enumerate() {
            for db in history {
                per_user_sum[j] += db;
            }
            per_user_gops[j] += history.len() as u64;
        }
        if let Some(trace) = trace.as_mut() {
            for record in w.records {
                trace.push(record);
            }
        }
    }

    let per_user_psnr = per_user_sum
        .iter()
        .zip(&per_user_gops)
        .map(|(sum, n)| if *n == 0 { 0.0 } else { sum / *n as f64 })
        .collect();
    let channel_slots = cfg.total_slots() * cfg.num_channels as u64;
    let result = RunResult {
        per_user_psnr,
        collision_rate: plan.total_collisions() as f64 / channel_slots as f64,
        mean_expected_available: plan.g_sum() / cfg.total_slots() as f64,
        mean_greedy_objective: (greedy_slots > 0).then(|| greedy_obj_sum / greedy_slots as f64),
        mean_eq23_bound: (greedy_slots > 0).then(|| eq23_sum / greedy_slots as f64),
    };
    RunOutput { result, trace }
}

/// Builds the per-slot problem the allocator sees in a representative
/// slot — used by the Fig. 4(a) convergence experiment to feed the
/// dual solver a realistic instance.
pub fn sample_slot_problem(
    scenario: &Scenario,
    cfg: &SimConfig,
    seeds: &SeedSequence,
) -> SlotProblem {
    let run_seeds = seeds.child("sample", 0);
    let mut primary_rng = run_seeds.stream("primary", 0);
    let mut sensing_rng = run_seeds.stream("sensing", 0);
    let mut access_rng = run_seeds.stream("access", 0);
    let mut fading_rng = run_seeds.stream("fading", 0);

    let chain = cfg.markov().expect("valid markov config");
    let sensor = cfg.sensor().expect("valid sensor config");
    let policy = cfg.access_policy().expect("valid access config");
    let mut primary = PrimaryNetwork::homogeneous(cfg.num_channels, chain, &mut primary_rng);
    primary.step(&mut primary_rng);
    let eta = chain.utilization();

    let priors = vec![eta; cfg.num_channels];
    let targets = sensing_targets(cfg.sensing_strategy, &priors, scenario.num_users(), 0);
    let (posteriors, _) = sense_all_channels(
        &primary,
        scenario,
        &sensor,
        &priors,
        &targets,
        &mut sensing_rng,
    );
    let outcome = AccessOutcome::decide_all(policy, &posteriors, None, &mut access_rng);

    let users: Vec<UserState> = scenario
        .users
        .iter()
        .map(|u| {
            let mbs_q = u.mbs_link.draw_slot(&mut fading_rng);
            let fbs_q = u.fbs_link.draw_slot(&mut fading_rng);
            let model = u.sequence.model_for(cfg.scalability);
            UserState::new(
                model.alpha().db(),
                u.fbs,
                model.slot_increment(cfg.b0_rate(), cfg.deadline).db(),
                model.slot_increment(cfg.b1_rate(), cfg.deadline).db(),
                mbs_q.success_probability(),
                fbs_q.success_probability(),
            )
            .expect("engine-built user state is valid")
        })
        .collect();
    SlotProblem::new(
        users,
        vec![outcome.expected_available(); scenario.num_fbss()],
    )
    .expect("valid problem")
}

/// Which channel each user senses this slot, per the configured
/// strategy (each user contributes exactly one observation).
fn sensing_targets(
    strategy: crate::config::SensingStrategy,
    busy_priors: &[f64],
    num_users: usize,
    slot: u64,
) -> Vec<usize> {
    let m = busy_priors.len();
    match strategy {
        crate::config::SensingStrategy::RoundRobin => (0..num_users)
            .map(|j| ((j as u64 + slot) % m as u64) as usize)
            .collect(),
        crate::config::SensingStrategy::UncertaintyFirst => {
            // Rank channels by prior uncertainty (closest to ½ first);
            // rotate ties with the slot so no channel is starved.
            let mut order: Vec<usize> = (0..m).collect();
            order.sort_by(|a, b| {
                let ua = (busy_priors[*a] - 0.5).abs();
                let ub = (busy_priors[*b] - 0.5).abs();
                ua.partial_cmp(&ub)
                    .expect("priors are not NaN")
                    .then_with(|| {
                        let ra = (*a + slot as usize) % m;
                        let rb = (*b + slot as usize) % m;
                        ra.cmp(&rb)
                    })
            });
            (0..num_users).map(|j| order[j % m]).collect()
        }
    }
}

/// Sensing phase: every FBS senses every channel; each user senses the
/// one channel its strategy assigned (`user_targets[j]`); all results
/// are fused per channel starting from the given per-channel busy
/// priors. Returns the fused availability posteriors and the
/// first-observation posteriors (for the paper-literal `G_t` mode).
fn sense_all_channels(
    primary: &PrimaryNetwork,
    scenario: &Scenario,
    sensor: &SensorProfile,
    busy_priors: &[f64],
    user_targets: &[usize],
    rng: &mut StdRng,
) -> (Vec<f64>, Vec<f64>) {
    let m = primary.num_channels();
    assert_eq!(busy_priors.len(), m, "one prior per channel");
    assert_eq!(
        user_targets.len(),
        scenario.num_users(),
        "one target per user"
    );
    let mut posteriors = Vec::with_capacity(m);
    let mut first_obs = Vec::with_capacity(m);
    for (ch, prior) in busy_priors.iter().copied().enumerate() {
        let truth = primary.state(ChannelId(ch));
        // Sensing phase: the FBS observations first, then one per user
        // targeting this channel — the exact RNG draw order of the
        // original interleaved observe-and-update loop, so sample
        // paths are unchanged. `observe_many` times the draws under a
        // `Phase::Sensing` telemetry span.
        let user_obs = user_targets.iter().filter(|t| **t == ch).count();
        let observations = sensor.observe_many(truth, scenario.num_fbss() + user_obs, rng);
        // Fusion phase (eqs. (2)–(4)), timed under `Phase::Fusion`.
        let fused = fuse_channel(prior, sensor, &observations).expect("prior is a probability");
        posteriors.push(fused.posterior);
        first_obs.push(fused.first_observation.unwrap_or(1.0 - prior));
    }
    (posteriors, first_obs)
}

/// Counts, per FBS, how many of its accessed channels are *actually*
/// idle — the realized (not expected) channel count that scales
/// delivered video bits. Reads the slot's plan (truth + accessed
/// channels) instead of the live primary network, so shards can
/// compute it from the shared prologue.
pub(crate) fn realized_channels(
    scenario: &Scenario,
    sp: &SlotPlan,
    assignment: &Option<fcr_core::interfering::ChannelAssignment>,
) -> Vec<f64> {
    let n = scenario.num_fbss();
    let mut realized = vec![0.0; n];
    for (pos, (id, _)) in sp.available.iter().enumerate() {
        if !sp.true_idle[id.0] {
            continue; // collision: the channel delivers nothing.
        }
        match assignment {
            // Interfering: only the holding FBSs benefit.
            Some(c) => {
                for (i, r) in realized.iter_mut().enumerate() {
                    if c.is_assigned(FbsId(i), pos) {
                        *r += 1.0;
                    }
                }
            }
            // Non-interfering: full spatial reuse.
            None => {
                for r in &mut realized {
                    *r += 1.0;
                }
            }
        }
    }
    realized
}

fn bernoulli(rng: &mut StdRng, p: f64) -> bool {
    use rand::RngExt;
    rng.random_bool(p.clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Production-mode run (tests only need the aggregate result).
    fn run_off(
        scenario: &Scenario,
        cfg: &SimConfig,
        scheme: Scheme,
        seeds: &SeedSequence,
        run_index: u64,
    ) -> RunResult {
        run(scenario, cfg, scheme, seeds, run_index, TraceMode::Off).result
    }

    fn quick_cfg() -> SimConfig {
        SimConfig {
            gops: 4,
            ..SimConfig::default()
        }
    }

    #[test]
    fn run_is_deterministic_given_seed() {
        let cfg = quick_cfg();
        let scenario = Scenario::single_fbs(&cfg);
        let seeds = SeedSequence::new(99);
        let a = run_off(&scenario, &cfg, Scheme::Proposed, &seeds, 0);
        let b = run_off(&scenario, &cfg, Scheme::Proposed, &seeds, 0);
        assert_eq!(a, b);
        let c = run_off(&scenario, &cfg, Scheme::Proposed, &seeds, 1);
        assert_ne!(a, c, "different run index, different randomness");
    }

    #[test]
    fn psnrs_land_in_the_papers_plot_range() {
        let cfg = quick_cfg();
        let scenario = Scenario::single_fbs(&cfg);
        let r = run_off(&scenario, &cfg, Scheme::Proposed, &SeedSequence::new(1), 0);
        for (j, p) in r.per_user_psnr.iter().enumerate() {
            assert!(
                (25.0..48.0).contains(p),
                "user {j}: {p} dB outside plausible range"
            );
        }
    }

    #[test]
    fn collision_rate_respects_gamma() {
        let cfg = SimConfig {
            gops: 30,
            ..SimConfig::default()
        };
        let scenario = Scenario::single_fbs(&cfg);
        for scheme in [Scheme::Proposed, Scheme::Heuristic1] {
            let r = run_off(&scenario, &cfg, scheme, &SeedSequence::new(5), 0);
            assert!(
                r.collision_rate <= cfg.gamma + 0.03,
                "{scheme}: collision rate {} exceeds γ = {}",
                r.collision_rate,
                cfg.gamma
            );
        }
    }

    #[test]
    fn quality_never_exceeds_the_encoding_ceiling() {
        let cfg = SimConfig {
            gops: 6,
            num_channels: 12,
            mean_sinr_fbs: 200.0, // near-lossless links: lots of throughput
            ..SimConfig::default()
        };
        let scenario = Scenario::single_fbs(&cfg);
        let r = run_off(
            &scenario,
            &cfg,
            Scheme::Heuristic2,
            &SeedSequence::new(3),
            0,
        );
        for (j, p) in r.per_user_psnr.iter().enumerate() {
            let cap = scenario.users[j].sequence.max_psnr().db();
            assert!(*p <= cap + 1e-9, "user {j}: {p} above ceiling {cap}");
        }
    }

    #[test]
    fn proposed_beats_heuristics_on_the_single_fbs_scenario() {
        let cfg = SimConfig {
            gops: 10,
            ..SimConfig::default()
        };
        let scenario = Scenario::single_fbs(&cfg);
        let seeds = SeedSequence::new(2024);
        let mean = |scheme| {
            (0..4)
                .map(|r| run_off(&scenario, &cfg, scheme, &seeds, r).mean_psnr())
                .sum::<f64>()
                / 4.0
        };
        let proposed = mean(Scheme::Proposed);
        let h1 = mean(Scheme::Heuristic1);
        let h2 = mean(Scheme::Heuristic2);
        assert!(proposed > h1, "proposed {proposed} vs H1 {h1}");
        assert!(proposed > h2, "proposed {proposed} vs H2 {h2}");
    }

    #[test]
    fn interfering_run_records_greedy_diagnostics() {
        let cfg = SimConfig {
            gops: 2,
            ..SimConfig::default()
        };
        let scenario = Scenario::interfering_fig5(&cfg);
        let r = run_off(&scenario, &cfg, Scheme::Proposed, &SeedSequence::new(7), 0);
        let q = r.mean_greedy_objective.expect("proposed records Q");
        let ub = r.mean_eq23_bound.expect("proposed records the bound");
        assert!(ub >= q - 1e-9, "eq.(23) bound {ub} below Q {q}");
        assert_eq!(r.per_user_psnr.len(), 9);
    }

    #[test]
    fn heuristics_do_not_record_greedy_diagnostics() {
        let cfg = quick_cfg();
        let scenario = Scenario::interfering_fig5(&cfg);
        let r = run_off(
            &scenario,
            &cfg,
            Scheme::Heuristic1,
            &SeedSequence::new(7),
            0,
        );
        assert!(r.mean_greedy_objective.is_none());
        assert!(r.mean_eq23_bound.is_none());
    }

    #[test]
    fn sample_slot_problem_is_well_formed() {
        let cfg = quick_cfg();
        let scenario = Scenario::single_fbs(&cfg);
        let p = sample_slot_problem(&scenario, &cfg, &SeedSequence::new(11));
        assert_eq!(p.num_users(), 3);
        assert_eq!(p.num_fbss(), 1);
        assert!(p.g(FbsId(0)) >= 0.0);
        // Ws start at the base layers.
        for (u, spec) in p.users().iter().zip(&scenario.users) {
            assert_eq!(u.w(), spec.sequence.model().alpha().db());
        }
    }

    #[test]
    fn more_channels_mean_more_expected_availability() {
        let seeds = SeedSequence::new(17);
        let small = SimConfig {
            gops: 10,
            num_channels: 4,
            ..SimConfig::default()
        };
        let large = SimConfig {
            gops: 10,
            num_channels: 12,
            ..SimConfig::default()
        };
        let scenario = Scenario::single_fbs(&small);
        let g4 = run_off(&scenario, &small, Scheme::Proposed, &seeds, 0).mean_expected_available;
        let g12 = run_off(&scenario, &large, Scheme::Proposed, &seeds, 0).mean_expected_available;
        assert!(
            g12 > g4,
            "G with 12 channels ({g12}) should exceed 4 ({g4})"
        );
    }

    #[test]
    fn traced_run_matches_untraced_and_is_internally_consistent() {
        let cfg = quick_cfg();
        let scenario = Scenario::single_fbs(&cfg);
        let seeds = SeedSequence::new(21);
        let plain = run_off(&scenario, &cfg, Scheme::Proposed, &seeds, 0);
        let out = run(
            &scenario,
            &cfg,
            Scheme::Proposed,
            &seeds,
            0,
            TraceMode::Full,
        );
        let (traced, trace) = (out.result, out.trace.expect("Full mode traces"));
        assert_eq!(plain, traced, "tracing must not perturb the simulation");
        assert_eq!(trace.len() as u64, cfg.total_slots());
        // Collision tally agrees with the aggregate rate.
        let rate =
            trace.total_collisions() as f64 / (cfg.total_slots() * cfg.num_channels as u64) as f64;
        assert!((rate - traced.collision_rate).abs() < 1e-12);
        // Mean G agrees.
        assert!((trace.mean_expected_available() - traced.mean_expected_available).abs() < 1e-12);
        // GOP history reconstructs the per-user means.
        for j in 0..scenario.num_users() {
            let history = trace.gop_history(j);
            assert_eq!(history.len() as u64, u64::from(cfg.gops));
            let mean = history.iter().sum::<f64>() / history.len() as f64;
            assert!((mean - traced.per_user_psnr[j]).abs() < 1e-9, "user {j}");
        }
        // Accessed channels were decided on valid indices, and every
        // collision corresponds to an accessed busy channel.
        for r in trace.records() {
            assert!(r.accessed.iter().all(|c| *c < cfg.num_channels));
            let busy_accessed = r.accessed.iter().filter(|c| !r.true_idle[**c]).count();
            assert_eq!(busy_accessed, r.collisions, "slot {}", r.slot);
        }
    }

    #[test]
    fn belief_tracking_runs_and_respects_gamma() {
        let cfg = SimConfig {
            gops: 15,
            prior_mode: crate::config::PriorMode::BeliefTracking,
            ..SimConfig::default()
        };
        let scenario = Scenario::single_fbs(&cfg);
        let r = run_off(&scenario, &cfg, Scheme::Proposed, &SeedSequence::new(8), 0);
        assert!(
            r.collision_rate <= cfg.gamma + 0.03,
            "rate {}",
            r.collision_rate
        );
        assert!(r.mean_psnr() > 25.0);
        // The tracked prior actually changes behaviour vs. stationary.
        let stationary = SimConfig {
            prior_mode: crate::config::PriorMode::Stationary,
            ..cfg
        };
        let r2 = run_off(
            &scenario,
            &stationary,
            Scheme::Proposed,
            &SeedSequence::new(8),
            0,
        );
        assert_ne!(r, r2);
    }

    #[test]
    fn threshold_access_is_safer_but_sees_fewer_channels() {
        let base = SimConfig {
            gops: 15,
            ..SimConfig::default()
        };
        let hard = SimConfig {
            access_mode: crate::config::AccessMode::Threshold,
            ..base
        };
        let scenario = Scenario::single_fbs(&base);
        let seeds = SeedSequence::new(12);
        let prob = run_off(&scenario, &base, Scheme::Proposed, &seeds, 0);
        let thresh = run_off(&scenario, &hard, Scheme::Proposed, &seeds, 0);
        assert!(thresh.collision_rate <= base.gamma + 0.02);
        assert!(
            thresh.mean_expected_available <= prob.mean_expected_available + 1e-9,
            "threshold access must not open more spectrum: {} vs {}",
            thresh.mean_expected_available,
            prob.mean_expected_available
        );
    }

    #[test]
    fn sensing_targets_cover_strategies() {
        use crate::config::SensingStrategy;
        // Round-robin rotates with the slot.
        let rr0 = sensing_targets(SensingStrategy::RoundRobin, &[0.5; 4], 3, 0);
        assert_eq!(rr0, vec![0, 1, 2]);
        let rr1 = sensing_targets(SensingStrategy::RoundRobin, &[0.5; 4], 3, 1);
        assert_eq!(rr1, vec![1, 2, 3]);
        // Uncertainty-first targets the priors nearest ½.
        let uf = sensing_targets(
            SensingStrategy::UncertaintyFirst,
            &[0.9, 0.52, 0.1, 0.48],
            2,
            0,
        );
        assert_eq!(uf.len(), 2);
        assert!(uf.contains(&1) && uf.contains(&3), "targets {uf:?}");
        // More users than channels wraps around.
        let wrap = sensing_targets(SensingStrategy::UncertaintyFirst, &[0.5, 0.9], 3, 0);
        assert_eq!(wrap.len(), 3);
        assert_eq!(wrap[0], wrap[2], "wraps to the most uncertain again");
    }

    #[test]
    fn uncertainty_first_sensing_runs_end_to_end() {
        use crate::config::{PriorMode, SensingStrategy};
        let cfg = SimConfig {
            gops: 6,
            prior_mode: PriorMode::BeliefTracking,
            sensing_strategy: SensingStrategy::UncertaintyFirst,
            ..SimConfig::default()
        };
        let scenario = Scenario::single_fbs(&cfg);
        let seeds = SeedSequence::new(19);
        let active = run_off(&scenario, &cfg, Scheme::Proposed, &seeds, 0);
        assert!(active.collision_rate <= cfg.gamma + 0.03);
        assert!(active.mean_psnr() > 25.0);
        // It actually changes the sample path vs. round-robin.
        let rr_cfg = SimConfig {
            sensing_strategy: SensingStrategy::RoundRobin,
            ..cfg
        };
        let rr = run_off(&scenario, &rr_cfg, Scheme::Proposed, &seeds, 0);
        assert_ne!(active, rr);
    }

    #[test]
    fn nakagami_hardening_improves_quality() {
        // m = 4 links fade less than Rayleigh at these SINRs, so the
        // same scenario delivers more.
        let rayleigh = SimConfig {
            gops: 8,
            ..SimConfig::default()
        };
        let hardened = SimConfig {
            nakagami_m: 4.0,
            ..rayleigh
        };
        let seeds = SeedSequence::new(23);
        let mean = |cfg: &SimConfig| {
            let scenario = Scenario::single_fbs(cfg);
            (0..3)
                .map(|r| run_off(&scenario, cfg, Scheme::Proposed, &seeds, r).mean_psnr())
                .sum::<f64>()
                / 3.0
        };
        let ray = mean(&rayleigh);
        let nak = mean(&hardened);
        assert!(nak > ray, "hardened {nak} should beat Rayleigh {ray}");
        // m = 1.0 builds the Rayleigh type directly: bit-identical to
        // the default config's sample paths.
        let m1 = SimConfig {
            nakagami_m: 1.0,
            ..rayleigh
        };
        assert_eq!(mean(&rayleigh), mean(&m1));
    }

    #[test]
    fn gop_windows_stitch_bit_identical_to_serial() {
        // The engine-level core of the sharding guarantee: running the
        // same plan through 1-, 2-, and 3-GOP windows stitches to
        // byte-for-byte the serial RunOutput, trace included. (The
        // integration suite covers more shapes and the packet engine.)
        let cfg = quick_cfg(); // 4 GOPs
        let seeds = SeedSequence::new(31);
        for scenario in [Scenario::single_fbs(&cfg), Scenario::interfering_fig5(&cfg)] {
            let serial = run(
                &scenario,
                &cfg,
                Scheme::Proposed,
                &seeds,
                0,
                TraceMode::Full,
            );
            let run_seeds = seeds.child("run", 0);
            let plan = plan_spectrum(&scenario, &cfg, &run_seeds);
            for window_gops in [1u32, 2, 3] {
                let mut windows = Vec::new();
                let mut start = 0;
                while start < cfg.gops {
                    let count = window_gops.min(cfg.gops - start);
                    windows.push(run_window(
                        &scenario,
                        &cfg,
                        Scheme::Proposed,
                        &run_seeds,
                        &plan,
                        start,
                        count,
                        TraceMode::Full,
                    ));
                    start += count;
                }
                let stitched = stitch(&cfg, &plan, windows, TraceMode::Full);
                assert_eq!(serial, stitched, "window size {window_gops}");
            }
        }
    }

    #[test]
    fn slots_mode_records_without_the_dual_solve() {
        let cfg = quick_cfg();
        let scenario = Scenario::single_fbs(&cfg);
        let seeds = SeedSequence::new(13);
        let full = run(
            &scenario,
            &cfg,
            Scheme::Proposed,
            &seeds,
            0,
            TraceMode::Full,
        );
        let slots = run(
            &scenario,
            &cfg,
            Scheme::Proposed,
            &seeds,
            0,
            TraceMode::Slots,
        );
        let off = run(&scenario, &cfg, Scheme::Proposed, &seeds, 0, TraceMode::Off);
        assert_eq!(full.result, slots.result);
        assert_eq!(slots.result, off.result);
        assert!(off.trace.is_none());
        let full_trace = full.trace.expect("full traces");
        let slots_trace = slots.trace.expect("slots traces");
        assert_eq!(full_trace.len(), slots_trace.len());
        assert!(full_trace.records().iter().all(|r| r.dual_iterations > 0));
        assert!(slots_trace.records().iter().all(|r| r.dual_iterations == 0));
        // Everything except the diagnostic solver columns agrees.
        for (f, s) in full_trace.records().iter().zip(slots_trace.records()) {
            assert_eq!(f.allocation, s.allocation);
            assert_eq!(f.delivered_db, s.delivered_db);
            assert_eq!(f.posteriors, s.posteriors);
        }
    }

    #[test]
    fn first_observation_mode_runs() {
        let cfg = SimConfig {
            gops: 2,
            first_observation_only: true,
            ..SimConfig::default()
        };
        let scenario = Scenario::single_fbs(&cfg);
        let r = run_off(&scenario, &cfg, Scheme::Proposed, &SeedSequence::new(4), 0);
        assert!(r.mean_expected_available > 0.0);
    }
}
