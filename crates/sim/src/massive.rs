//! Massive-N slot driver: partitioned parallel channel allocation plus
//! a warm-started global dual solve.
//!
//! The paper evaluates N ≤ 3 femtocells; its follow-up work (and any
//! deployment worth the name) runs hundreds to thousands. This module
//! is the scale path the ROADMAP calls for, composing the four core
//! primitives end to end per slot:
//!
//! 1. [`fcr_core::partition::Partition`] splits the interference graph
//!    into independent FBS clusters;
//! 2. each cluster's Table III greedy (incremental `Q`-cache by
//!    default) runs as one job on the shared [`fcr_runtime::Runtime`]
//!    worker pool — results return in submission order, so the
//!    parallel solve is bit-identical to the serial reference;
//! 3. the per-cluster assignments merge into one conflict-free global
//!    assignment;
//! 4. the *global* time-share problem at the merged assignment is
//!    solved by the dual algorithm, warm-started from the previous
//!    slot's prices through a [`fcr_core::SolverState`] — so the
//!    Table I/II iteration count collapses when the channel state
//!    barely moves between slots.
//!
//! The deterministic generator and perturbation helpers below drive
//! the `fcr-bench` solver area's massive-N workloads and the testkit
//! warm-start properties.

use crate::pool::{SLOTS_COUNTER, SOLVER_COUNTER};
use fcr_core::dual::{DualConfig, DualSolution, DualSolver};
use fcr_core::interfering::{ChannelAssignment, InterferingProblem};
use fcr_core::partition::Partition;
use fcr_core::problem::UserState;
use fcr_core::{GreedyAllocator, SolverState};
use fcr_net::interference::InterferenceGraph;
use fcr_net::node::FbsId;
use fcr_runtime::Runtime;
use fcr_stats::rng::SeedSequence;
use rand::RngExt;
use std::sync::atomic::Ordering;

/// Parameters of the massive-N workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MassiveConfig {
    /// Total number of femtocells `N`.
    pub num_fbss: usize,
    /// FBSs per interference cluster: the graph is a disjoint union of
    /// paths of this length (a dense corridor deployment; geometric
    /// graphs at realistic densities split the same way).
    pub cluster_size: usize,
    /// CR users per femtocell.
    pub users_per_fbs: usize,
    /// Licensed channels in the slot's available set `A(t)`.
    pub num_channels: usize,
    /// Run each cluster's greedy with the incremental `Q` cache
    /// (DESIGN §15); the cold Table III sweep otherwise.
    pub incremental_greedy: bool,
    /// Configuration of the global warm-started dual solve.
    pub dual: DualConfig,
}

impl MassiveConfig {
    /// The dual configuration actually used for an N-FBS slot.
    ///
    /// Step-11's φ bounds the *aggregate* `Σ(Δλ)²` over all `N + 1`
    /// prices, so a φ tuned for the paper's N ≤ 3 becomes ~300× stricter
    /// per price at N = 1000 — strict enough that the diminishing
    /// schedule hits the iteration cap before satisfying it. [`Self::dual`]'s
    /// tolerance is therefore interpreted per price and scaled by the
    /// price count here, keeping the effective criterion N-invariant.
    pub fn dual_for(&self, num_fbss: usize) -> DualConfig {
        DualConfig {
            tolerance: self.dual.tolerance * (num_fbss + 1) as f64,
            ..self.dual
        }
    }
}

impl Default for MassiveConfig {
    fn default() -> Self {
        Self {
            num_fbss: 64,
            cluster_size: 4,
            users_per_fbs: 2,
            num_channels: 4,
            incremental_greedy: true,
            dual: DualConfig::default(),
        }
    }
}

/// Deterministic massive-N instance: path-segment interference
/// topology, offload-regime users (femtocell links strong, the common
/// channel a fallback), per-channel availability weights — all drawn
/// from streams of `SeedSequence::new(seed)`, so equal seeds give
/// bit-equal problems regardless of call order.
pub fn generate_problem(cfg: &MassiveConfig, seed: u64) -> InterferingProblem {
    assert!(cfg.num_fbss > 0, "need at least one FBS");
    assert!(cfg.cluster_size > 0, "cluster_size must be ≥ 1");
    assert!(cfg.users_per_fbs > 0, "need at least one user per FBS");
    let seq = SeedSequence::new(seed);

    let edges: Vec<(FbsId, FbsId)> = (0..cfg.num_fbss.saturating_sub(1))
        .filter(|i| i / cfg.cluster_size == (i + 1) / cfg.cluster_size)
        .map(|i| (FbsId(i), FbsId(i + 1)))
        .collect();
    let graph = InterferenceGraph::new(cfg.num_fbss, &edges);

    let mut users = Vec::with_capacity(cfg.num_fbss * cfg.users_per_fbs);
    for f in 0..cfg.num_fbss {
        let mut rng = seq.stream("massive.user", f as u64);
        for _ in 0..cfg.users_per_fbs {
            let w = rng.random_range(20.0..40.0f64);
            let s_mbs = rng.random_range(0.10..0.40f64);
            let s_fbs = rng.random_range(0.70..0.95f64);
            users.push(UserState::new(w, FbsId(f), 0.72, 0.72, s_mbs, s_fbs).expect("valid draw"));
        }
    }

    let mut rng = seq.stream("massive.channel", 0);
    let weights: Vec<f64> = (0..cfg.num_channels)
        .map(|_| rng.random_range(0.60..0.95f64))
        .collect();

    InterferingProblem::new(users, graph, weights).expect("generated instance is valid")
}

/// The next slot's channel state: every user quality, success
/// probability, and channel weight jittered by at most `magnitude`
/// (relative), topology unchanged — the small perturbation regime
/// where warm-started duals collapse. Deterministic in `seed`.
pub fn perturb_problem(
    problem: &InterferingProblem,
    seed: u64,
    magnitude: f64,
) -> InterferingProblem {
    assert!(
        (0.0..1.0).contains(&magnitude),
        "relative magnitude must be in [0, 1), got {magnitude}"
    );
    let seq = SeedSequence::new(seed);
    let mut rng = seq.stream("perturb.user", 0);
    let jitter = |rng: &mut rand::rngs::StdRng, x: f64| -> f64 {
        x * (1.0 + magnitude * rng.random_range(-1.0..1.0f64))
    };
    let users: Vec<UserState> = problem
        .users()
        .iter()
        .map(|u| {
            UserState::new(
                jitter(&mut rng, u.w()),
                u.fbs(),
                u.r_mbs(),
                u.r_fbs(),
                jitter(&mut rng, u.success_mbs()).clamp(0.01, 1.0),
                jitter(&mut rng, u.success_fbs()).clamp(0.01, 1.0),
            )
            .expect("jittered state stays valid")
        })
        .collect();
    let mut rng = seq.stream("perturb.channel", 0);
    let weights: Vec<f64> = problem
        .channel_weights()
        .iter()
        .map(|w| jitter(&mut rng, *w).clamp(0.01, 1.0))
        .collect();
    InterferingProblem::new(users, problem.graph().clone(), weights)
        .expect("perturbed instance is valid")
}

/// Result of one massive-N slot.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotOutcome {
    /// The merged conflict-free channel assignment.
    pub assignment: ChannelAssignment,
    /// The global warm-started dual solution (final time shares).
    pub solution: DualSolution,
    /// Interference clusters solved (in parallel).
    pub num_clusters: usize,
    /// FBSs set aside because their component serves no users.
    pub idle_fbss: usize,
}

/// Per-slot driver holding the warm-start lineage: keep one driver per
/// cell and feed it consecutive slots.
#[derive(Debug, Clone, Default)]
pub struct MassiveDriver {
    config: MassiveConfig,
    state: SolverState,
}

impl MassiveDriver {
    /// A driver with the given configuration and a cold solver state.
    pub fn new(config: MassiveConfig) -> Self {
        Self {
            config,
            state: SolverState::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MassiveConfig {
        &self.config
    }

    /// The warm-start state (inspect warm/cold counts; reset on
    /// topology changes).
    pub fn state(&self) -> &SolverState {
        &self.state
    }

    /// Forgets the warm-start prices; the next slot solves cold.
    pub fn reset_state(&mut self) {
        self.state.reset();
    }

    /// Solves one slot with cluster greedy jobs fanned out on
    /// `runtime`. Results are bit-identical to
    /// [`Self::solve_slot_serial`]: cluster subproblems share no state
    /// and the batch returns in submission order.
    pub fn solve_slot(&mut self, runtime: &Runtime, problem: &InterferingProblem) -> SlotOutcome {
        let partition = Partition::of(problem);
        let allocator = GreedyAllocator::new().incremental(self.config.incremental_greedy);
        let outcomes = runtime.run_batch(partition.clusters().iter().map(|cluster| {
            let cluster = cluster.clone();
            move || allocator.allocate(cluster.problem()).assignment().clone()
        }));
        let locals: Vec<ChannelAssignment> = outcomes
            .into_iter()
            .map(|o| o.expect("cluster greedy must not panic"))
            .collect();
        runtime
            .metrics()
            .counter(SLOTS_COUNTER)
            .fetch_add(1, Ordering::Relaxed);
        runtime
            .metrics()
            .counter(SOLVER_COUNTER)
            .fetch_add(locals.len() as u64 + 1, Ordering::Relaxed);
        self.finish_slot(problem, &partition, &locals)
    }

    /// The sequential reference: identical semantics to
    /// [`Self::solve_slot`] without the worker pool.
    pub fn solve_slot_serial(&mut self, problem: &InterferingProblem) -> SlotOutcome {
        let partition = Partition::of(problem);
        let allocator = GreedyAllocator::new().incremental(self.config.incremental_greedy);
        let locals: Vec<ChannelAssignment> = partition
            .clusters()
            .iter()
            .map(|c| allocator.allocate(c.problem()).assignment().clone())
            .collect();
        self.finish_slot(problem, &partition, &locals)
    }

    fn finish_slot(
        &mut self,
        problem: &InterferingProblem,
        partition: &Partition,
        locals: &[ChannelAssignment],
    ) -> SlotOutcome {
        let assignment = partition.merge(locals);
        debug_assert!(assignment.is_conflict_free(problem.graph()));
        let slot_problem = problem.problem_for(&assignment);
        let solution = DualSolver::new(self.config.dual_for(problem.num_fbss()))
            .solve_with_state(&slot_problem, &mut self.state);
        SlotOutcome {
            assignment,
            solution,
            num_clusters: partition.clusters().len(),
            idle_fbss: partition.idle_fbss().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcr_runtime::RuntimeConfig;

    fn small_cfg() -> MassiveConfig {
        MassiveConfig {
            num_fbss: 12,
            cluster_size: 3,
            users_per_fbs: 1,
            num_channels: 2,
            ..MassiveConfig::default()
        }
    }

    #[test]
    fn generator_is_deterministic_in_the_seed() {
        let cfg = small_cfg();
        assert_eq!(generate_problem(&cfg, 7), generate_problem(&cfg, 7));
        assert_ne!(generate_problem(&cfg, 7), generate_problem(&cfg, 8));
    }

    #[test]
    fn generated_topology_is_paths_of_cluster_size() {
        let p = generate_problem(&small_cfg(), 1);
        assert_eq!(p.num_fbss(), 12);
        let partition = Partition::of(&p);
        assert_eq!(partition.clusters().len(), 4);
        for c in partition.clusters() {
            assert_eq!(c.fbs_ids().len(), 3);
            assert_eq!(c.problem().graph().max_degree(), 2);
        }
    }

    #[test]
    fn parallel_slot_is_bit_identical_to_serial() {
        let cfg = small_cfg();
        let problem = generate_problem(&cfg, 42);
        let runtime = Runtime::with_config(RuntimeConfig {
            workers: 3,
            ..RuntimeConfig::default()
        });
        let parallel = MassiveDriver::new(cfg).solve_slot(&runtime, &problem);
        let serial = MassiveDriver::new(cfg).solve_slot_serial(&problem);
        assert_eq!(parallel, serial);
        assert!(parallel.assignment.is_conflict_free(problem.graph()));
        assert_eq!(parallel.num_clusters, 4);
        assert_eq!(parallel.idle_fbss, 0);
    }

    #[test]
    fn final_allocation_is_feasible_for_the_merged_assignment() {
        let cfg = small_cfg();
        let problem = generate_problem(&cfg, 3);
        let mut driver = MassiveDriver::new(cfg);
        let outcome = driver.solve_slot_serial(&problem);
        let slot_problem = problem.problem_for(&outcome.assignment);
        assert!(slot_problem.is_feasible(outcome.solution.allocation(), 1e-6));
    }

    #[test]
    fn warm_start_collapses_iterations_across_consecutive_slots() {
        let cfg = small_cfg();
        let problem = generate_problem(&cfg, 11);
        let mut driver = MassiveDriver::new(cfg);
        let cold = driver.solve_slot_serial(&problem);
        // A barely-perturbed next slot must converge far faster warm.
        let next = perturb_problem(&problem, 12, 1e-4);
        let warm = driver.solve_slot_serial(&next);
        assert_eq!(driver.state().cold_solves(), 1);
        assert_eq!(driver.state().warm_solves(), 1);
        assert!(
            warm.solution.iterations() * 2 <= cold.solution.iterations(),
            "warm {} vs cold {} iterations",
            warm.solution.iterations(),
            cold.solution.iterations()
        );
    }

    #[test]
    fn perturbation_is_deterministic_and_small() {
        let cfg = small_cfg();
        let p = generate_problem(&cfg, 5);
        let a = perturb_problem(&p, 9, 1e-3);
        let b = perturb_problem(&p, 9, 1e-3);
        assert_eq!(a, b);
        assert_ne!(a, p);
        for (u, v) in p.users().iter().zip(a.users()) {
            assert!((u.w() - v.w()).abs() <= u.w() * 1.1e-3);
            assert_eq!(u.fbs(), v.fbs());
        }
    }
}
