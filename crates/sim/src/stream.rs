//! Incremental (streaming) execution of one simulation run — the seam
//! `fcr-serve` schedules live sessions through.
//!
//! [`crate::session::SimSession`] is batch-shaped: it builds every
//! window job up front, submits them as one batch, and blocks until
//! the batch drains. A long-running service cannot block like that —
//! it interleaves windows of *many* runs on one slot clock, submits
//! them as their playout deadlines approach, and stitches each run
//! when its windows come back. [`RunStream`] exposes exactly the
//! batch pipeline (`plan_spectrum` → `run_window` → `stitch`) in that
//! pull shape:
//!
//! 1. [`RunStream::new`] runs the serial spectrum prologue and derives
//!    the same per-run seeds as the batch path (`child("run", r)`).
//! 2. [`RunStream::tasks`] yields one [`WindowTask`] per GOP-aligned
//!    window. Tasks are self-contained, cheaply cloneable, and
//!    idempotent: executing the same task twice yields the same
//!    [`CompletedWindow`], so a service can re-submit a window whose
//!    job was lost to a panic without corrupting the run.
//! 3. [`RunStream::stitch`] folds completed windows (any order) into
//!    the final [`RunOutput`].
//!
//! Windows are independent given the plan and stitching is
//! partition-independent, so a streamed run is **bit-identical** to
//! [`crate::engine::run`] and to [`crate::session::SimSession`] for
//! every window size and scheduling order — the property the serve
//! path's conformance tests pin.

use crate::config::SimConfig;
use crate::engine::{self, RunOutput, SpectrumPlan, TraceMode, WindowOutput};
use crate::scenario::Scenario;
use crate::scheme::Scheme;
use fcr_runtime::Runtime;
use fcr_stats::rng::SeedSequence;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Handles to the domain counters the batch path feeds per shard,
/// pre-resolved so a pool job can update them without reaching back
/// into the runtime's metrics registry.
#[derive(Debug, Clone)]
pub struct ShardCounters {
    slots: Arc<AtomicU64>,
    solves: Arc<AtomicU64>,
    shards: Arc<AtomicU64>,
}

impl ShardCounters {
    /// Resolves the three domain counters on `runtime` (registering
    /// them on first use, like the batch session path).
    pub fn from_runtime(runtime: &Runtime) -> Self {
        ShardCounters {
            slots: runtime.metrics().counter(crate::pool::SLOTS_COUNTER),
            solves: runtime.metrics().counter(crate::pool::SOLVER_COUNTER),
            shards: runtime.metrics().counter(crate::pool::SHARDS_COUNTER),
        }
    }
}

/// One simulation run opened for incremental window-by-window
/// execution. See the module docs for the pipeline shape.
#[derive(Debug)]
pub struct RunStream {
    scenario: Arc<Scenario>,
    config: SimConfig,
    scheme: Scheme,
    run_seeds: SeedSequence,
    plan: Arc<SpectrumPlan>,
    run_index: u64,
    window_gops: u64,
    mode: TraceMode,
}

impl RunStream {
    /// Opens run `run_index` of the `(scenario, config, scheme)`
    /// simulation under `master_seed`, executing the serial spectrum
    /// prologue now and cutting the run into GOP-aligned windows of
    /// `window_gops` GOPs (clamped to `[1, config.gops]`).
    ///
    /// Seed derivation matches [`crate::session::SimSession::run`]
    /// exactly (`SeedSequence::new(master).child("run", run_index)`),
    /// so streamed results are bit-identical to batch results for the
    /// same master seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid, like
    /// [`crate::engine::run`].
    pub fn new(
        scenario: Arc<Scenario>,
        config: SimConfig,
        scheme: Scheme,
        master_seed: u64,
        run_index: u64,
        window_gops: u64,
        mode: TraceMode,
    ) -> Self {
        let run_seeds = SeedSequence::new(master_seed).child("run", run_index);
        let plan = Arc::new(engine::plan_spectrum(&scenario, &config, &run_seeds));
        let window_gops = window_gops.clamp(1, u64::from(config.gops).max(1));
        RunStream {
            scenario,
            config,
            scheme,
            run_seeds,
            plan,
            run_index,
            window_gops,
            mode,
        }
    }

    /// The run index this stream executes.
    pub fn run_index(&self) -> u64 {
        self.run_index
    }

    /// Number of GOP-aligned windows the run is cut into.
    pub fn window_count(&self) -> u64 {
        u64::from(self.config.gops)
            .max(1)
            .div_ceil(self.window_gops)
    }

    /// Total slots the run simulates (gops × deadline).
    pub fn total_slots(&self) -> u64 {
        self.config.total_slots()
    }

    /// The window tasks of this run, in GOP order. Each task is
    /// self-contained (`Send + 'static`) and idempotent; clone freely
    /// and execute in any order, on any thread.
    pub fn tasks(&self) -> Vec<WindowTask> {
        let total_gops = u64::from(self.config.gops);
        (0..self.window_count())
            .map(|w| {
                let gop_start = w * self.window_gops;
                WindowTask {
                    scenario: Arc::clone(&self.scenario),
                    config: self.config,
                    scheme: self.scheme,
                    run_seeds: self.run_seeds,
                    plan: Arc::clone(&self.plan),
                    run_index: self.run_index,
                    window: w,
                    gop_start: gop_start as u32,
                    gops: self.window_gops.min(total_gops - gop_start) as u32,
                    mode: self.mode,
                }
            })
            .collect()
    }

    /// Folds the completed windows of this run — in any order, each
    /// exactly once — into the final run output, exactly like the
    /// batch stitch.
    ///
    /// # Panics
    ///
    /// Panics when the window set is incomplete or contains
    /// duplicates: stitching a partial run would silently fabricate a
    /// result, and the serve path's accounting forbids silent loss.
    pub fn stitch(&self, windows: Vec<CompletedWindow>) -> RunOutput {
        assert_eq!(
            windows.len() as u64,
            self.window_count(),
            "run {} stitched with {} of {} windows",
            self.run_index,
            windows.len(),
            self.window_count()
        );
        let mut starts: Vec<u32> = windows.iter().map(|w| w.output.gop_start).collect();
        starts.sort_unstable();
        starts.dedup();
        assert_eq!(
            starts.len() as u64,
            self.window_count(),
            "run {} stitched with duplicate windows",
            self.run_index
        );
        engine::stitch(
            &self.config,
            &self.plan,
            windows.into_iter().map(|w| w.output).collect(),
            self.mode,
        )
    }
}

/// One GOP-aligned window of a [`RunStream`], ready to execute on any
/// thread. Executing is pure compute over shared read-only state —
/// repeatable, so lost jobs can be re-submitted.
#[derive(Debug, Clone)]
pub struct WindowTask {
    scenario: Arc<Scenario>,
    config: SimConfig,
    scheme: Scheme,
    run_seeds: SeedSequence,
    plan: Arc<SpectrumPlan>,
    run_index: u64,
    window: u64,
    gop_start: u32,
    gops: u32,
    mode: TraceMode,
}

impl WindowTask {
    /// The run this window belongs to.
    pub fn run_index(&self) -> u64 {
        self.run_index
    }

    /// Window index within the run (0-based, GOP order).
    pub fn window(&self) -> u64 {
        self.window
    }

    /// First GOP (inclusive) this window covers.
    pub fn gop_start(&self) -> u32 {
        self.gop_start
    }

    /// Number of GOPs in this window.
    pub fn gops(&self) -> u32 {
        self.gops
    }

    /// Slots this window simulates.
    pub fn slots(&self) -> u64 {
        u64::from(self.gops) * u64::from(self.config.deadline)
    }

    /// Executes the window: pure compute, no telemetry.
    pub fn execute(&self) -> CompletedWindow {
        CompletedWindow {
            output: engine::run_window(
                &self.scenario,
                &self.config,
                self.scheme,
                &self.run_seeds,
                &self.plan,
                self.gop_start,
                self.gops,
                self.mode,
            ),
        }
    }

    /// Executes the window with the batch path's full bookkeeping: the
    /// shard wall time lands in telemetry as a
    /// [`fcr_telemetry::ShardRecord`] and the slots/solver/shards
    /// domain counters advance — so serve-path runs are
    /// observationally identical to [`crate::session::SimSession`]
    /// runs.
    pub fn execute_counted(&self, counters: &ShardCounters) -> CompletedWindow {
        let started = Instant::now();
        let out = self.execute();
        let slots = self.slots();
        counters.slots.fetch_add(slots, Ordering::Relaxed);
        counters.solves.fetch_add(slots, Ordering::Relaxed);
        counters.shards.fetch_add(1, Ordering::Relaxed);
        fcr_telemetry::record_shard(fcr_telemetry::ShardRecord {
            run: self.run_index,
            window: self.window,
            gop_start: u64::from(self.gop_start),
            gops: u64::from(self.gops),
            wall_ns: started.elapsed().as_nanos() as u64,
        });
        out
    }
}

/// The opaque output of one executed [`WindowTask`], consumed by
/// [`RunStream::stitch`].
#[derive(Debug, Clone)]
pub struct CompletedWindow {
    output: WindowOutput,
}

impl CompletedWindow {
    /// First GOP (inclusive) the executed window covered.
    pub fn gop_start(&self) -> u32 {
        self.output.gop_start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SimSession;

    fn cfg() -> SimConfig {
        SimConfig {
            gops: 6,
            deadline: 4,
            num_channels: 4,
            ..SimConfig::default()
        }
    }

    #[test]
    fn streamed_run_is_bit_identical_to_serial_and_session() {
        let config = cfg();
        let scenario = Arc::new(Scenario::single_fbs(&config));
        let seeds = SeedSequence::new(7);
        let serial = engine::run(
            &scenario,
            &config,
            Scheme::Proposed,
            &seeds,
            0,
            TraceMode::Off,
        );

        for window_gops in [1u64, 2, 5, 6, 100] {
            let stream = RunStream::new(
                Arc::clone(&scenario),
                config,
                Scheme::Proposed,
                7,
                0,
                window_gops,
                TraceMode::Off,
            );
            // Execute out of order to prove order independence.
            let mut tasks = stream.tasks();
            tasks.reverse();
            let windows: Vec<CompletedWindow> = tasks.iter().map(WindowTask::execute).collect();
            let streamed = stream.stitch(windows);
            assert_eq!(
                streamed.result, serial.result,
                "window_gops={window_gops} diverged from serial"
            );
        }

        let session = SimSession::new((*scenario).clone())
            .config(config)
            .seed(7)
            .runs(1);
        let batch = session.run(Scheme::Proposed);
        let batch_result = &batch.outcomes()[0].as_ref().expect("batch run ok").result;
        let stream = RunStream::new(scenario, config, Scheme::Proposed, 7, 0, 2, TraceMode::Off);
        let windows: Vec<CompletedWindow> =
            stream.tasks().iter().map(WindowTask::execute).collect();
        assert_eq!(&stream.stitch(windows).result, batch_result);
    }

    #[test]
    fn tasks_are_idempotent_and_cloneable() {
        let config = cfg();
        let scenario = Arc::new(Scenario::single_fbs(&config));
        let stream = RunStream::new(scenario, config, Scheme::Proposed, 11, 3, 3, TraceMode::Off);
        let tasks = stream.tasks();
        assert_eq!(tasks.len() as u64, stream.window_count());
        let first = tasks[0].execute();
        let again = tasks[0].clone().execute();
        assert_eq!(first.output, again.output, "re-execution diverged");
    }

    #[test]
    #[should_panic(expected = "windows")]
    fn stitch_refuses_partial_runs() {
        let config = cfg();
        let scenario = Arc::new(Scenario::single_fbs(&config));
        let stream = RunStream::new(scenario, config, Scheme::Proposed, 1, 0, 2, TraceMode::Off);
        let tasks = stream.tasks();
        let one = tasks[0].execute();
        stream.stitch(vec![one]);
    }

    #[test]
    fn counted_execution_feeds_shard_telemetry_and_counters() {
        let config = cfg();
        let scenario = Arc::new(Scenario::single_fbs(&config));
        let runtime = Runtime::with_config(fcr_runtime::RuntimeConfig {
            workers: 1,
            ..fcr_runtime::RuntimeConfig::default()
        });
        let counters = ShardCounters::from_runtime(&runtime);
        let stream = RunStream::new(
            scenario,
            config,
            Scheme::Proposed,
            5,
            0,
            100,
            TraceMode::Off,
        );
        let tasks = stream.tasks();
        assert_eq!(tasks.len(), 1);
        let _ = tasks[0].execute_counted(&counters);
        let metrics = runtime.snapshot();
        assert_eq!(
            metrics.counter(crate::pool::SLOTS_COUNTER),
            Some(config.total_slots())
        );
        assert_eq!(metrics.counter(crate::pool::SHARDS_COUNTER), Some(1));
    }
}
