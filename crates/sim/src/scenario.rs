//! Simulation scenarios: which users stream which sequences from which
//! femtocell, over which links, under which interference graph.

use crate::config::SimConfig;
use fcr_net::interference::InterferenceGraph;
use fcr_net::node::FbsId;
use fcr_net::topology::Topology;
use fcr_spectrum::fading::{BlockFadingLink, NakagamiBlockFading, PathLoss, RayleighBlockFading};
use fcr_video::sequences::Sequence;

/// Radio-link budget used when deriving per-user SINRs from a
/// geometric [`Topology`] instead of hand-set values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioParams {
    /// MBS transmit power in dBm.
    pub mbs_tx_dbm: f64,
    /// FBS transmit power in dBm (femtocells transmit at low power).
    pub fbs_tx_dbm: f64,
    /// Noise-plus-interference floor in dBm.
    pub noise_dbm: f64,
    /// Path-loss model for the outdoor MBS → user links.
    pub mbs_path_loss: PathLoss,
    /// Path-loss model for the indoor FBS → user links.
    pub fbs_path_loss: PathLoss,
}

impl Default for RadioParams {
    fn default() -> Self {
        Self {
            mbs_tx_dbm: 33.0,
            fbs_tx_dbm: 10.0,
            noise_dbm: -95.0,
            // Outdoor macro: exponent 3.5, 38 dB at 1 m.
            mbs_path_loss: PathLoss::new(3.5, 38.0, 1.0).expect("preset valid"),
            // Indoor femto: exponent 3.0, 37 dB at 1 m.
            fbs_path_loss: PathLoss::new(3.0, 37.0, 1.0).expect("preset valid"),
        }
    }
}

/// One streaming CR user.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UserSpec {
    /// The video sequence streamed to this user.
    pub sequence: Sequence,
    /// The femtocell the user is associated with.
    pub fbs: FbsId,
    /// MBS → user fading link.
    pub mbs_link: BlockFadingLink,
    /// FBS → user fading link.
    pub fbs_link: BlockFadingLink,
}

/// A complete simulation scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Interference graph over the FBSs.
    pub graph: InterferenceGraph,
    /// The streaming users.
    pub users: Vec<UserSpec>,
}

impl Scenario {
    /// Scenario A (Section V-A): one FBS, three users streaming Bus,
    /// Mobile, and Harbor.
    pub fn single_fbs(cfg: &SimConfig) -> Self {
        Self::single_fbs_with_users(cfg, &Sequence::PAPER_TRIO)
    }

    /// Single FBS with an arbitrary set of streams.
    pub fn single_fbs_with_users(cfg: &SimConfig, sequences: &[Sequence]) -> Self {
        Self::uniform(
            InterferenceGraph::edgeless(1),
            sequences.len(),
            sequences,
            cfg,
        )
    }

    /// The general hand-set-SINR scenario every paper figure is a
    /// special case of: `users_per_fbs` users on each vertex of
    /// `graph`, sequences cycled per FBS in `sequences` order, and the
    /// per-user SINR spread keyed by the *global* user index (so the
    /// strong/weak/edge mix differs across cells). With
    /// `users_per_fbs == 3` and [`Sequence::PAPER_TRIO`] this
    /// reproduces [`Scenario::fig1`] / [`Scenario::interfering_fig5`]
    /// bit for bit — which is what lets scenario packs express those
    /// figures declaratively and stay golden-trace-identical to the
    /// Rust constructors.
    ///
    /// # Panics
    ///
    /// Panics if `graph` has no vertices, `users_per_fbs` is zero, or
    /// `sequences` is empty.
    pub fn uniform(
        graph: InterferenceGraph,
        users_per_fbs: usize,
        sequences: &[Sequence],
        cfg: &SimConfig,
    ) -> Self {
        assert!(graph.num_vertices() > 0, "need at least one FBS");
        assert!(users_per_fbs > 0, "need at least one user per FBS");
        assert!(!sequences.is_empty(), "need at least one sequence");
        let mut users = Vec::with_capacity(graph.num_vertices() * users_per_fbs);
        for i in 0..graph.num_vertices() {
            for k in 0..users_per_fbs {
                let j = i * users_per_fbs + k;
                users.push(UserSpec {
                    sequence: sequences[k % sequences.len()],
                    fbs: FbsId(i),
                    mbs_link: link(cfg.mean_sinr_mbs, cfg, j),
                    fbs_link: link(cfg.mean_sinr_fbs, cfg, j),
                });
            }
        }
        Self { graph, users }
    }

    /// The paper's illustrative Fig. 1 network: four FBSs where only
    /// FBSs 3 and 4 (ids 2 and 3) overlap — the Fig. 2 interference
    /// graph with `D_max = 1`, for which Theorem 2 guarantees the
    /// greedy reaches at least half the optimal gain.
    pub fn fig1(cfg: &SimConfig) -> Self {
        Self::uniform(
            InterferenceGraph::new(4, &[(FbsId(2), FbsId(3))]),
            3,
            &Sequence::PAPER_TRIO,
            cfg,
        )
    }

    /// Scenario B (Section V-B / Fig. 5): three FBSs in a path
    /// interference graph (1–2 and 2–3 overlap), three users per FBS,
    /// each FBS streaming the paper's three sequences.
    pub fn interfering_fig5(cfg: &SimConfig) -> Self {
        Self::uniform(
            InterferenceGraph::new(3, &[(FbsId(0), FbsId(1)), (FbsId(1), FbsId(2))]),
            3,
            &Sequence::PAPER_TRIO,
            cfg,
        )
    }

    /// Builds a scenario from a geometric [`Topology`]: per-user mean
    /// SINRs follow the link budget in `radio` and the node distances;
    /// the interference graph comes from the coverage overlaps; video
    /// sequences are cycled over users in `sequences` order.
    ///
    /// Users outside every femtocell's coverage are attached to the
    /// *nearest* FBS anyway — their FBS link is simply weak, so the
    /// allocator will route them to the MBS, which is the physically
    /// correct outcome.
    ///
    /// # Panics
    ///
    /// Panics if the topology has no FBSs or no users, or `sequences`
    /// is empty.
    pub fn from_topology(
        topology: &Topology,
        sequences: &[Sequence],
        radio: &RadioParams,
        cfg: &SimConfig,
    ) -> Self {
        assert!(topology.num_fbss() > 0, "topology needs at least one FBS");
        assert!(topology.num_users() > 0, "topology needs at least one user");
        assert!(!sequences.is_empty(), "need at least one sequence");

        let users = (0..topology.num_users())
            .map(|j| {
                let uid = fcr_net::node::UserId(j);
                let fbs = topology.association(uid).unwrap_or_else(|| {
                    // Nearest FBS regardless of coverage.
                    (0..topology.num_fbss())
                        .map(FbsId)
                        .min_by(|a, b| {
                            topology
                                .distance_to_fbs(uid, *a)
                                .partial_cmp(&topology.distance_to_fbs(uid, *b))
                                .expect("distances are not NaN")
                        })
                        .expect("at least one FBS")
                });
                let mbs_sinr = radio.mbs_path_loss.mean_sinr(
                    radio.mbs_tx_dbm,
                    radio.noise_dbm,
                    topology.distance_to_mbs(uid),
                );
                let fbs_sinr = radio.fbs_path_loss.mean_sinr(
                    radio.fbs_tx_dbm,
                    radio.noise_dbm,
                    topology.distance_to_fbs(uid, fbs),
                );
                UserSpec {
                    sequence: sequences[j % sequences.len()],
                    fbs,
                    mbs_link: build_link(mbs_sinr, cfg),
                    fbs_link: build_link(fbs_sinr, cfg),
                }
            })
            .collect();
        Self {
            graph: topology.interference_graph(),
            users,
        }
    }

    /// Number of users `K`.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Number of FBSs `N`.
    pub fn num_fbss(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Returns `true` when at least two FBSs interfere — the case that
    /// needs the greedy channel allocation of Table III.
    pub fn has_interference(&self) -> bool {
        self.graph.max_degree() > 0
    }
}

/// Builds a fading link with a deterministic per-user SINR spread so
/// users are not identical: some sit near their FBS, some at the cell
/// edge. The spread is what makes quality-blind multiuser diversity
/// sticky (the strong user keeps winning the slot).
fn link(mean_sinr: f64, cfg: &SimConfig, user_index: usize) -> BlockFadingLink {
    // Spread factors cycle through {1.0, 0.6, 1.4}.
    let factor = match user_index % 3 {
        0 => 1.0,
        1 => 0.6,
        _ => 1.4,
    };
    build_link(mean_sinr * factor, cfg)
}

/// Builds a fading link at the configured Nakagami shape (`m = 1` is
/// the paper's Rayleigh model and uses the Rayleigh type directly, so
/// baseline sample paths are unchanged).
fn build_link(mean_sinr: f64, cfg: &SimConfig) -> BlockFadingLink {
    if (cfg.nakagami_m - 1.0).abs() < 1e-12 {
        RayleighBlockFading::new(mean_sinr, cfg.sinr_threshold, cfg.shadowing_sigma_db)
            .expect("config SINRs are positive")
            .into()
    } else {
        NakagamiBlockFading::new(
            cfg.nakagami_m,
            mean_sinr,
            cfg.sinr_threshold,
            cfg.shadowing_sigma_db,
        )
        .expect("config SINRs are positive")
        .into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_fbs_scenario_matches_paper() {
        let s = Scenario::single_fbs(&SimConfig::default());
        assert_eq!(s.num_users(), 3);
        assert_eq!(s.num_fbss(), 1);
        assert!(!s.has_interference());
        assert_eq!(
            s.users
                .iter()
                .map(|u| u.sequence.name())
                .collect::<Vec<_>>(),
            vec!["Bus", "Mobile", "Harbor"]
        );
        assert!(s.users.iter().all(|u| u.fbs == FbsId(0)));
    }

    #[test]
    fn fig5_scenario_matches_paper() {
        let s = Scenario::interfering_fig5(&SimConfig::default());
        assert_eq!(s.num_users(), 9);
        assert_eq!(s.num_fbss(), 3);
        assert!(s.has_interference());
        assert_eq!(s.graph.max_degree(), 2);
        for i in 0..3 {
            let count = s.users.iter().filter(|u| u.fbs == FbsId(i)).count();
            assert_eq!(count, 3, "fbs {i} should serve 3 users");
        }
    }

    #[test]
    fn links_differ_across_users() {
        let s = Scenario::single_fbs(&SimConfig::default());
        let sinrs: Vec<f64> = s.users.iter().map(|u| u.fbs_link.mean_sinr()).collect();
        assert!(sinrs[0] != sinrs[1] && sinrs[1] != sinrs[2]);
        // MBS links are weaker than FBS links for every user.
        for u in &s.users {
            assert!(u.mbs_link.mean_sinr() < u.fbs_link.mean_sinr());
        }
    }

    #[test]
    fn fig1_matches_the_papers_illustration() {
        let s = Scenario::fig1(&SimConfig::default());
        assert_eq!(s.num_fbss(), 4);
        assert_eq!(s.num_users(), 12);
        assert_eq!(s.graph.edges(), vec![(FbsId(2), FbsId(3))]);
        assert_eq!(s.graph.max_degree(), 1, "Theorem 2 bound: 1/2");
        assert!(s.has_interference());
    }

    #[test]
    fn from_topology_derives_links_from_geometry() {
        let cfg = SimConfig::default();
        let topo = fcr_net::scenarios::paper_fig5();
        let scenario =
            Scenario::from_topology(&topo, &Sequence::PAPER_TRIO, &RadioParams::default(), &cfg);
        assert_eq!(scenario.num_users(), 9);
        assert_eq!(scenario.num_fbss(), 3);
        // The geometric path graph carries over.
        assert_eq!(scenario.graph.max_degree(), 2);
        // Every user's FBS link beats its MBS link (femto is near, the
        // MBS is 120 m away).
        for u in &scenario.users {
            assert!(
                u.fbs_link.mean_sinr() > u.mbs_link.mean_sinr(),
                "femto link should dominate: {u:?}"
            );
        }
        // Sequences cycle.
        assert_eq!(scenario.users[0].sequence, Sequence::Bus);
        assert_eq!(scenario.users[3].sequence, Sequence::Bus);
        assert_eq!(scenario.users[4].sequence, Sequence::Mobile);
    }

    #[test]
    fn from_topology_attaches_uncovered_users_to_the_nearest_fbs() {
        use fcr_net::geometry::Point;
        use fcr_net::node::{CrUser, Fbs};
        let cfg = SimConfig::default();
        let topo = fcr_net::topology::Topology::new(
            Point::ORIGIN,
            vec![
                Fbs::new(Point::new(-50.0, 0.0), 20.0),
                Fbs::new(Point::new(50.0, 0.0), 20.0),
            ],
            vec![CrUser::new(Point::new(20.0, 0.0))], // outside both disks
        );
        let scenario =
            Scenario::from_topology(&topo, &[Sequence::Bus], &RadioParams::default(), &cfg);
        // Nearest is FBS 1 (30 m vs 70 m).
        assert_eq!(scenario.users[0].fbs, FbsId(1));
    }

    #[test]
    fn geometric_scenario_runs_end_to_end() {
        let cfg = SimConfig {
            gops: 2,
            ..SimConfig::default()
        };
        let topo = fcr_net::scenarios::single_fbs(3);
        let scenario =
            Scenario::from_topology(&topo, &Sequence::PAPER_TRIO, &RadioParams::default(), &cfg);
        let r = crate::engine::run(
            &scenario,
            &cfg,
            crate::scheme::Scheme::Proposed,
            &fcr_stats::rng::SeedSequence::new(3),
            0,
            crate::engine::TraceMode::Off,
        )
        .result;
        assert_eq!(r.per_user_psnr.len(), 3);
        assert!(r.mean_psnr() > 20.0);
    }

    #[test]
    #[should_panic(expected = "at least one sequence")]
    fn from_topology_rejects_empty_sequences() {
        let cfg = SimConfig::default();
        let topo = fcr_net::scenarios::single_fbs(2);
        let _ = Scenario::from_topology(&topo, &[], &RadioParams::default(), &cfg);
    }

    #[test]
    fn uniform_reproduces_the_paper_constructors_exactly() {
        let cfg = SimConfig::default();
        assert_eq!(
            Scenario::uniform(
                InterferenceGraph::new(4, &[(FbsId(2), FbsId(3))]),
                3,
                &Sequence::PAPER_TRIO,
                &cfg
            ),
            Scenario::fig1(&cfg)
        );
        assert_eq!(
            Scenario::uniform(
                InterferenceGraph::edgeless(1),
                3,
                &Sequence::PAPER_TRIO,
                &cfg
            ),
            Scenario::single_fbs(&cfg)
        );
    }

    #[test]
    fn uniform_cycles_sequences_per_fbs_and_spreads_sinr_globally() {
        let cfg = SimConfig::default();
        let s = Scenario::uniform(
            InterferenceGraph::edgeless(2),
            4,
            &[Sequence::Foreman, Sequence::News],
            &cfg,
        );
        assert_eq!(s.num_users(), 8);
        // Sequences restart at each FBS...
        assert_eq!(s.users[4].sequence, Sequence::Foreman);
        assert_eq!(s.users[5].sequence, Sequence::News);
        // ...but the SINR spread is keyed by the global index, so the
        // second cell's first user is NOT a copy of the first cell's.
        assert_ne!(
            s.users[0].fbs_link.mean_sinr(),
            s.users[4].fbs_link.mean_sinr()
        );
    }

    #[test]
    fn custom_sequences() {
        let s = Scenario::single_fbs_with_users(
            &SimConfig::default(),
            &[Sequence::Foreman, Sequence::News],
        );
        assert_eq!(s.num_users(), 2);
        assert_eq!(s.users[1].sequence, Sequence::News);
    }
}
