//! Per-run results and their aggregation.

use fcr_stats::ci::{ConfidenceInterval, Level};
use fcr_stats::fairness;

/// Everything measured in one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Mean Y-PSNR (dB) per user, averaged over completed GOPs — the
    /// quantity the paper's figures plot.
    pub per_user_psnr: Vec<f64>,
    /// Fraction of channel-slots where CR transmission collided with a
    /// primary user (must stay ≤ γ).
    pub collision_rate: f64,
    /// Mean `G_t` (expected available channels) over slots.
    pub mean_expected_available: f64,
    /// Mean of the greedy objective `Q(π_L)` over interfering slots
    /// (`None` outside the proposed scheme / interfering scenarios).
    pub mean_greedy_objective: Option<f64>,
    /// Mean of the eq.-(23) upper bound over interfering slots.
    pub mean_eq23_bound: Option<f64>,
}

impl RunResult {
    /// Mean Y-PSNR over all users.
    pub fn mean_psnr(&self) -> f64 {
        if self.per_user_psnr.is_empty() {
            return 0.0;
        }
        self.per_user_psnr.iter().sum::<f64>() / self.per_user_psnr.len() as f64
    }

    /// Jain fairness index of the per-user PSNRs.
    pub fn jain_index(&self) -> Option<f64> {
        fairness::jain_index(&self.per_user_psnr)
    }
}

/// Aggregate of several runs of one scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeSummary {
    /// Per-user mean-PSNR confidence intervals (user-id order).
    pub per_user: Vec<ConfidenceInterval>,
    /// Overall mean-PSNR confidence interval.
    pub overall: ConfidenceInterval,
    /// Collision-rate confidence interval.
    pub collision: ConfidenceInterval,
    /// Mean Jain index across runs.
    pub jain: f64,
}

impl SchemeSummary {
    /// Aggregates run results (the paper's 10-run averages with 95%
    /// confidence intervals).
    ///
    /// # Panics
    ///
    /// Panics if `runs` is empty or runs disagree on the user count.
    pub fn from_runs(runs: &[RunResult]) -> Self {
        assert!(!runs.is_empty(), "need at least one run");
        let k = runs[0].per_user_psnr.len();
        assert!(
            runs.iter().all(|r| r.per_user_psnr.len() == k),
            "runs disagree on user count"
        );
        let per_user = (0..k)
            .map(|j| {
                let samples: Vec<f64> = runs.iter().map(|r| r.per_user_psnr[j]).collect();
                ConfidenceInterval::from_samples(&samples, Level::P95)
            })
            .collect();
        let overall_samples: Vec<f64> = runs.iter().map(RunResult::mean_psnr).collect();
        let collision_samples: Vec<f64> = runs.iter().map(|r| r.collision_rate).collect();
        let jains: Vec<f64> = runs.iter().filter_map(RunResult::jain_index).collect();
        let jain = if jains.is_empty() {
            0.0
        } else {
            jains.iter().sum::<f64>() / jains.len() as f64
        };
        Self {
            per_user,
            overall: ConfidenceInterval::from_samples(&overall_samples, Level::P95),
            collision: ConfidenceInterval::from_samples(&collision_samples, Level::P95),
            jain,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(psnrs: &[f64], collision: f64) -> RunResult {
        RunResult {
            per_user_psnr: psnrs.to_vec(),
            collision_rate: collision,
            mean_expected_available: 2.0,
            mean_greedy_objective: None,
            mean_eq23_bound: None,
        }
    }

    #[test]
    fn mean_and_jain() {
        let r = run(&[30.0, 34.0, 38.0], 0.1);
        assert!((r.mean_psnr() - 34.0).abs() < 1e-12);
        let j = r.jain_index().unwrap();
        assert!(j > 0.98 && j <= 1.0);
        assert_eq!(run(&[], 0.0).mean_psnr(), 0.0);
        assert_eq!(run(&[], 0.0).jain_index(), None);
    }

    #[test]
    fn summary_aggregates_across_runs() {
        let runs = vec![
            run(&[30.0, 34.0], 0.10),
            run(&[31.0, 35.0], 0.12),
            run(&[32.0, 33.0], 0.11),
        ];
        let s = SchemeSummary::from_runs(&runs);
        assert_eq!(s.per_user.len(), 2);
        assert!((s.per_user[0].mean() - 31.0).abs() < 1e-12);
        assert!((s.overall.mean() - 32.5).abs() < 1e-12);
        assert!(s.collision.contains(0.11));
        assert!(s.jain > 0.9);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn empty_runs_panic() {
        let _ = SchemeSummary::from_runs(&[]);
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn mismatched_user_counts_panic() {
        let _ = SchemeSummary::from_runs(&[run(&[30.0], 0.1), run(&[30.0, 31.0], 0.1)]);
    }
}
