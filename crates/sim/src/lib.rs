//! Slot-level simulator for MGS video streaming over femtocell CR
//! networks — the machinery behind every figure of Section V.
//!
//! Each time slot executes the paper's phase structure end to end:
//!
//! 1. **primary evolution** — the licensed channels' Markov occupancy
//!    advances;
//! 2. **sensing** — every FBS senses all channels, every CR user senses
//!    one (round-robin), all with (ε, δ) errors;
//! 3. **fusion** — per-channel Bayesian availability posteriors
//!    (eqs. (2)–(4));
//! 4. **access** — the collision-bounded rule (eq. (7)) yields the
//!    available set `A(t)` and `G_t`;
//! 5. **allocation** — the scheme under test (proposed / heuristic 1 /
//!    heuristic 2 / upper bound) splits channels and slot time;
//! 6. **transmission** — packet losses ξ and *true* channel occupancy
//!    are realized; the per-user PSNR recursion advances, capped at
//!    each stream's full-quality ceiling;
//! 7. **accounting** — GOP deadlines record Y-PSNRs; collisions with
//!    primary users are tallied against γ.
//!
//! Modules: [`config`] (parameters, defaults = the paper's baseline,
//! plus the ablation switches: prior mode, access mode, sensing
//! strategy, scalability flavour), [`scenario`] (who is where, link
//! qualities hand-set or derived from geometry, interference graph),
//! [`scheme`] (the four allocation policies), [`engine`] (the fluid
//! slot loop, with optional per-slot [`trace`]s),
//! [`packet_engine`] (the NAL-unit-granular validation mode),
//! [`metrics`] (per-run results), [`report`] (table rendering),
//! [`pool`] (typed simulation jobs on the process-wide
//! [`fcr_runtime`] worker pool), and [`session`] (the builder-style
//! [`session::SimSession`] entry point that shards each run into
//! GOP-aligned slot windows on the elastic pool and can tag a whole
//! session with a scheduling [`fcr_runtime::Priority`]).
//!
//! # Examples
//!
//! ```
//! use fcr_sim::config::SimConfig;
//! use fcr_sim::scenario::Scenario;
//! use fcr_sim::scheme::Scheme;
//! use fcr_sim::engine;
//! use fcr_stats::rng::SeedSequence;
//!
//! let cfg = SimConfig { gops: 2, ..SimConfig::default() };
//! let scenario = Scenario::single_fbs(&cfg);
//! let out = engine::run(
//!     &scenario,
//!     &cfg,
//!     Scheme::Proposed,
//!     &SeedSequence::new(7),
//!     0,
//!     engine::TraceMode::Off,
//! );
//! assert_eq!(out.result.per_user_psnr.len(), 3);
//! assert!(out.result.collision_rate <= cfg.gamma + 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod config;
pub mod engine;
pub mod massive;
pub mod metrics;
pub mod packet_engine;
pub mod pool;
pub mod report;
pub mod scenario;
pub mod scheme;
pub mod session;
pub mod stream;
pub mod trace;

pub use config::SimConfig;
pub use engine::{run, RunOutput, TraceMode};
pub use metrics::RunResult;
pub use packet_engine::{run_packet_level, PacketRunResult};
pub use pool::SimJob;
pub use scenario::{Scenario, UserSpec};
pub use scheme::Scheme;
pub use session::{PacketSessionResult, SessionResult, SimSession};
pub use stream::{CompletedWindow, RunStream, ShardCounters, WindowTask};
pub use trace::{SimTrace, SlotRecord};
