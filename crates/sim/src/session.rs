//! `SimSession` — the unified builder-style entry point for running
//! simulations, serial or sharded, fluid or packet-level.
//!
//! One type replaces the old `Experiment::run_scheme` /
//! `try_run_scheme` / `summarize` / free-function `sweep` sprawl:
//!
//! ```
//! use fcr_sim::config::SimConfig;
//! use fcr_sim::scenario::Scenario;
//! use fcr_sim::scheme::Scheme;
//! use fcr_sim::session::SimSession;
//!
//! let cfg = SimConfig { gops: 2, ..SimConfig::default() };
//! let result = SimSession::new(Scenario::single_fbs(&cfg))
//!     .config(cfg)
//!     .seed(7)
//!     .runs(3)
//!     .run(Scheme::Proposed);
//! assert_eq!(result.results().len(), 3);
//! assert!(result.summary().overall.mean() > 20.0);
//! ```
//!
//! # Intra-run sharding
//!
//! A session cuts every run into GOP-aligned slot windows per its
//! [`ShardPolicy`] ([`SimSession::shards`], falling back to
//! [`SimConfig::shard`]) and schedules each window as one job on the
//! process-wide worker pool — so even a *single* long run parallelizes
//! across workers. The RNG handoff is deterministic (run-level
//! spectrum streams + per-`(run, gop)` fading/loss substreams, see
//! `fcr_spectrum::streams`), which makes sharded output **bit-identical
//! to serial** for every policy; `tests/determinism.rs` pins this for
//! both the fluid and the packet engine.
//!
//! Before each batch the session lets the elastic pool take one
//! manual autoscale step within its configured bounds (queue-depth and
//! utilization driven; the shared pool additionally runs an always-on
//! background autoscaler) and records every resize — manual and
//! loop-triggered alike — plus one [`fcr_telemetry::ShardRecord`] per
//! executed window, into the global telemetry sink.
//!
//! # Priorities
//!
//! [`SimSession::priority`] tags every window job of the session with
//! a [`Priority`] (service class Urgent/Normal/Bulk plus optional EDF
//! deadline). Priorities steer only *which queued job a worker takes
//! next* — an interactive trace run submitted Urgent overtakes a
//! queued Bulk sweep — while results stay bit-identical because every
//! RNG stream is derived from `(master seed, run, gop)`, never from
//! execution order (`tests/determinism.rs` pins this).

use crate::config::SimConfig;
use crate::engine::{self, RunOutput, SpectrumPlan, TraceMode, WindowOutput};
use crate::metrics::{RunResult, SchemeSummary};
use crate::packet_engine::{self, PacketRunResult, PacketWindowOutput};
use crate::pool::{self, SHARDS_COUNTER, SLOTS_COUNTER, SOLVER_COUNTER};
use crate::scenario::Scenario;
use crate::scheme::Scheme;
use crate::trace::SimTrace;
use fcr_runtime::{JobOutcome, Priority, Runtime, ShardPolicy};
use fcr_stats::rng::SeedSequence;
use fcr_stats::series::Series;
use std::sync::Arc;
use std::time::Instant;

/// Builder-style handle for running one scenario several times.
///
/// Defaults: the paper's 10 runs, master seed 0, the config's
/// [`SimConfig::shard`] policy, and [`TraceMode::Off`].
#[derive(Debug, Clone)]
pub struct SimSession {
    scenario: Arc<Scenario>,
    config: SimConfig,
    runs: u64,
    master_seed: u64,
    shards: Option<ShardPolicy>,
    trace: TraceMode,
    priority: Priority,
    runtime: Option<Arc<Runtime>>,
}

impl SimSession {
    /// Creates a session over `scenario` with the default
    /// [`SimConfig`], the paper's 10 runs, and master seed 0.
    pub fn new(scenario: Scenario) -> Self {
        Self {
            scenario: Arc::new(scenario),
            config: SimConfig::default(),
            runs: 10,
            master_seed: 0,
            shards: None,
            trace: TraceMode::Off,
            priority: Priority::default(),
            runtime: None,
        }
    }

    /// Sets the simulation parameters (builder style).
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the master seed. Each run `r` derives its streams from
    /// `(seed, r)`, never from scheduling order.
    pub fn seed(mut self, master_seed: u64) -> Self {
        self.master_seed = master_seed;
        self
    }

    /// Overrides the number of runs.
    ///
    /// # Panics
    ///
    /// Panics if `runs` is zero.
    pub fn runs(mut self, runs: u64) -> Self {
        assert!(runs > 0, "need at least one run");
        self.runs = runs;
        self
    }

    /// Overrides the shard policy (otherwise [`SimConfig::shard`] is
    /// used). Sharding never changes results, only scheduling.
    pub fn shards(mut self, policy: ShardPolicy) -> Self {
        self.shards = Some(policy);
        self
    }

    /// Sets how much per-slot state each run records
    /// ([`TraceMode::Off`] by default).
    pub fn trace(mut self, mode: TraceMode) -> Self {
        self.trace = mode;
        self
    }

    /// Sets the scheduling [`Priority`] every window job of this
    /// session is submitted under ([`Priority::normal`] by default).
    /// Changes execution order only — never results.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// The scheduling priority in use.
    pub fn priority_ref(&self) -> Priority {
        self.priority
    }

    /// Runs this session's window jobs on a **dedicated** runtime
    /// instead of the process-wide shared pool. The seam `fcr-testkit`
    /// uses to drive sessions through fault-injected pools
    /// ([`fcr_runtime::Runtime::with_faults`]); results are
    /// bit-identical on any pool because every RNG stream derives from
    /// `(master seed, run, gop)`, never from the executing runtime.
    pub fn on_runtime(mut self, runtime: Arc<Runtime>) -> Self {
        self.runtime = Some(runtime);
        self
    }

    /// The runtime this session submits to: the [`Self::on_runtime`]
    /// override, or the process-wide shared pool.
    fn pool(&self) -> &Runtime {
        match &self.runtime {
            Some(rt) => rt,
            None => pool::shared(),
        }
    }

    /// The configuration in use.
    pub fn config_ref(&self) -> &SimConfig {
        &self.config
    }

    /// The scenario in use.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The shard policy the session will resolve against the pool.
    pub fn shard_policy(&self) -> ShardPolicy {
        self.shards.unwrap_or(self.config.shard)
    }

    /// Executes all runs of `scheme` (fluid engine), sharded across
    /// the process-wide pool, returning per-run outcomes in run order.
    ///
    /// Seeds are derived per `(run, gop)`, so sample paths are
    /// identical across schemes (common random numbers) and results
    /// are bit-identical to the serial [`crate::engine::run`] path for
    /// every shard policy and worker count.
    pub fn run(&self, scheme: Scheme) -> SessionResult {
        let seeds = SeedSequence::new(self.master_seed);
        let runtime = self.pool();
        record_pool_resizes(runtime);
        let total_gops = u64::from(self.config.gops);
        let window_gops = self
            .shard_policy()
            .window_gops(total_gops, runtime.active_workers());
        let windows_per_run = total_gops.div_ceil(window_gops);
        let mode = self.trace;

        // Serial spectrum prologue, once per run (cheap and
        // scheme-independent); every shard of the run shares the plan.
        let plans: Vec<Arc<SpectrumPlan>> = (0..self.runs)
            .map(|r| {
                Arc::new(engine::plan_spectrum(
                    &self.scenario,
                    &self.config,
                    &seeds.child("run", r),
                ))
            })
            .collect();

        // One flat batch, run-major then window order — regrouped below
        // in exactly this order.
        let mut jobs = Vec::with_capacity((self.runs * windows_per_run) as usize);
        for r in 0..self.runs {
            let run_seeds = seeds.child("run", r);
            for w in 0..windows_per_run {
                let gop_start = w * window_gops;
                let gops = window_gops.min(total_gops - gop_start) as u32;
                jobs.push(WindowJob {
                    scenario: Arc::clone(&self.scenario),
                    config: self.config,
                    scheme,
                    run_seeds,
                    plan: Arc::clone(&plans[r as usize]),
                    run: r,
                    window: w,
                    gop_start: gop_start as u32,
                    gops,
                    mode,
                });
            }
        }
        let window_outcomes = execute_windows(runtime, self.priority, jobs, |job| job.execute());

        let mut iter = window_outcomes.into_iter();
        let outcomes = (0..self.runs)
            .map(|r| {
                let mut windows = Vec::with_capacity(windows_per_run as usize);
                let mut failure = None;
                for _ in 0..windows_per_run {
                    match iter.next().expect("one outcome per submitted window") {
                        Ok(w) => windows.push(w),
                        Err(e) => failure = Some(e),
                    }
                }
                match failure {
                    Some(e) => Err(e),
                    None => Ok(engine::stitch(
                        &self.config,
                        &plans[r as usize],
                        windows,
                        mode,
                    )),
                }
            })
            .collect();
        SessionResult { scheme, outcomes }
    }

    /// Executes all runs of `scheme` through the packet-level engine
    /// (NAL-unit-granular delivery), sharded like [`SimSession::run`];
    /// bit-identical to the serial
    /// [`crate::packet_engine::run_packet_level`].
    pub fn run_packet(&self, scheme: Scheme) -> PacketSessionResult {
        let seeds = SeedSequence::new(self.master_seed);
        let runtime = self.pool();
        record_pool_resizes(runtime);
        let total_gops = u64::from(self.config.gops);
        let window_gops = self
            .shard_policy()
            .window_gops(total_gops, runtime.active_workers());
        let windows_per_run = total_gops.div_ceil(window_gops);

        let plans: Vec<Arc<SpectrumPlan>> = (0..self.runs)
            .map(|r| {
                Arc::new(packet_engine::plan_packet(
                    &self.scenario,
                    &self.config,
                    &seeds.child("packet-run", r),
                ))
            })
            .collect();

        let mut jobs = Vec::with_capacity((self.runs * windows_per_run) as usize);
        for r in 0..self.runs {
            let run_seeds = seeds.child("packet-run", r);
            for w in 0..windows_per_run {
                let gop_start = w * window_gops;
                let gops = window_gops.min(total_gops - gop_start) as u32;
                jobs.push(PacketWindowJob {
                    scenario: Arc::clone(&self.scenario),
                    config: self.config,
                    scheme,
                    run_seeds,
                    plan: Arc::clone(&plans[r as usize]),
                    run: r,
                    window: w,
                    gop_start: gop_start as u32,
                    gops,
                });
            }
        }
        let window_outcomes = execute_windows(runtime, self.priority, jobs, |job| job.execute());

        let num_users = self.scenario.num_users();
        let mut iter = window_outcomes.into_iter();
        let outcomes = (0..self.runs)
            .map(|_| {
                let mut windows = Vec::with_capacity(windows_per_run as usize);
                let mut failure = None;
                for _ in 0..windows_per_run {
                    match iter.next().expect("one outcome per submitted window") {
                        Ok(w) => windows.push(w),
                        Err(e) => failure = Some(e),
                    }
                }
                match failure {
                    Some(e) => Err(e),
                    None => Ok(packet_engine::stitch_packet(windows, num_users)),
                }
            })
            .collect();
        PacketSessionResult { scheme, outcomes }
    }

    /// Sweeps a parameter: for each `(x, config, scenario)` point,
    /// runs all `schemes` with this session's seed / run count / shard
    /// policy and returns one [`Series`] per scheme with the mean
    /// Y-PSNR samples at every x (the layout of Figs. 4(b), 4(c),
    /// 6(a)–6(c)). The session's own scenario/config act only as the
    /// template; each point supplies its own.
    pub fn sweep(&self, points: &[(f64, SimConfig, Scenario)], schemes: &[Scheme]) -> Vec<Series> {
        let mut series: Vec<Series> = schemes.iter().map(|s| Series::new(s.name())).collect();
        for (x, cfg, scenario) in points {
            let session = SimSession {
                scenario: Arc::new(scenario.clone()),
                config: *cfg,
                runs: self.runs,
                master_seed: self.master_seed,
                shards: self.shards,
                trace: TraceMode::Off,
                priority: self.priority,
                runtime: self.runtime.clone(),
            };
            for (scheme, out) in schemes.iter().zip(series.iter_mut()) {
                let samples: Vec<f64> = session
                    .run(*scheme)
                    .outcomes()
                    .iter()
                    .enumerate()
                    .filter_map(|(run, outcome)| match outcome {
                        Ok(out) => Some(out.result.mean_psnr()),
                        Err(err) => {
                            eprintln!(
                                "sweep point x={x}: run {run} of {} failed: {err}",
                                scheme.name()
                            );
                            None
                        }
                    })
                    .collect();
                out.push(*x, samples);
            }
        }
        series
    }
}

/// One manual elastic step before the batch, then a flush of every
/// buffered loop-triggered resize, all into the telemetry sink — so a
/// JSONL export shows the full sizing history with provenance.
fn record_pool_resizes(runtime: &fcr_runtime::Runtime) {
    if let Some(event) = runtime.autoscale() {
        fcr_telemetry::record_resize(event);
    }
    for event in runtime.drain_resize_events() {
        fcr_telemetry::record_resize(event);
    }
}

/// Submits window jobs as one flat batch on the shared pool under the
/// session's priority, with per-shard telemetry and the domain
/// counters every window feeds.
fn execute_windows<J, T>(
    runtime: &Runtime,
    priority: Priority,
    jobs: Vec<J>,
    execute: impl Fn(&J) -> T + Copy + Send + Sync + 'static,
) -> Vec<JobOutcome<T>>
where
    J: ShardJob + Send + 'static,
    T: Send + 'static,
{
    let slots = runtime.metrics().counter(SLOTS_COUNTER);
    let solves = runtime.metrics().counter(SOLVER_COUNTER);
    let shards = runtime.metrics().counter(SHARDS_COUNTER);
    runtime.run_batch_with(
        priority,
        jobs.into_iter().map(|job| {
            let slots = Arc::clone(&slots);
            let solves = Arc::clone(&solves);
            let shards = Arc::clone(&shards);
            move || {
                use std::sync::atomic::Ordering;
                let started = Instant::now();
                let out = execute(&job);
                let record = job.record(started.elapsed().as_nanos() as u64);
                // One channel-allocation solve happens per simulated slot.
                slots.fetch_add(record.gops * job.slots_per_gop(), Ordering::Relaxed);
                solves.fetch_add(record.gops * job.slots_per_gop(), Ordering::Relaxed);
                shards.fetch_add(1, Ordering::Relaxed);
                fcr_telemetry::record_shard(record);
                out
            }
        }),
    )
}

/// The bookkeeping interface shared by fluid and packet window jobs.
trait ShardJob {
    fn record(&self, wall_ns: u64) -> fcr_telemetry::ShardRecord;
    fn slots_per_gop(&self) -> u64;
}

/// One GOP-aligned fluid-engine window of one run, fully described.
struct WindowJob {
    scenario: Arc<Scenario>,
    config: SimConfig,
    scheme: Scheme,
    run_seeds: SeedSequence,
    plan: Arc<SpectrumPlan>,
    run: u64,
    window: u64,
    gop_start: u32,
    gops: u32,
    mode: TraceMode,
}

impl WindowJob {
    fn execute(&self) -> WindowOutput {
        engine::run_window(
            &self.scenario,
            &self.config,
            self.scheme,
            &self.run_seeds,
            &self.plan,
            self.gop_start,
            self.gops,
            self.mode,
        )
    }
}

impl ShardJob for WindowJob {
    fn record(&self, wall_ns: u64) -> fcr_telemetry::ShardRecord {
        fcr_telemetry::ShardRecord {
            run: self.run,
            window: self.window,
            gop_start: u64::from(self.gop_start),
            gops: u64::from(self.gops),
            wall_ns,
        }
    }

    fn slots_per_gop(&self) -> u64 {
        u64::from(self.config.deadline)
    }
}

/// One GOP-aligned packet-engine window of one run.
struct PacketWindowJob {
    scenario: Arc<Scenario>,
    config: SimConfig,
    scheme: Scheme,
    run_seeds: SeedSequence,
    plan: Arc<SpectrumPlan>,
    run: u64,
    window: u64,
    gop_start: u32,
    gops: u32,
}

impl PacketWindowJob {
    fn execute(&self) -> PacketWindowOutput {
        packet_engine::run_packet_window(
            &self.scenario,
            &self.config,
            self.scheme,
            &self.run_seeds,
            &self.plan,
            self.gop_start,
            self.gops,
        )
    }
}

impl ShardJob for PacketWindowJob {
    fn record(&self, wall_ns: u64) -> fcr_telemetry::ShardRecord {
        fcr_telemetry::ShardRecord {
            run: self.run,
            window: self.window,
            gop_start: u64::from(self.gop_start),
            gops: u64::from(self.gops),
            wall_ns,
        }
    }

    fn slots_per_gop(&self) -> u64 {
        u64::from(self.config.deadline)
    }
}

/// Per-run outcomes of one [`SimSession::run`] invocation.
#[derive(Debug, Clone)]
pub struct SessionResult {
    scheme: Scheme,
    outcomes: Vec<JobOutcome<RunOutput>>,
}

impl SessionResult {
    /// The scheme that produced these outcomes.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Per-run outcomes in run order; a run whose shard panicked
    /// yields `Err(JobError::Panicked(..))` in its slot.
    pub fn outcomes(&self) -> &[JobOutcome<RunOutput>] {
        &self.outcomes
    }

    /// Consumes the result into its per-run outcomes.
    pub fn into_outcomes(self) -> Vec<JobOutcome<RunOutput>> {
        self.outcomes
    }

    /// The successful per-run results, in run order; failed runs are
    /// reported on stderr and dropped.
    ///
    /// # Panics
    ///
    /// Panics if **every** run failed — there is nothing to average.
    /// Use [`SessionResult::outcomes`] to inspect individual failures.
    pub fn results(&self) -> Vec<RunResult> {
        let total = self.outcomes.len();
        let results: Vec<RunResult> = self
            .outcomes
            .iter()
            .enumerate()
            .filter_map(|(run, outcome)| match outcome {
                Ok(out) => Some(out.result.clone()),
                Err(err) => {
                    eprintln!("run {run} of {} failed: {err}", self.scheme.name());
                    None
                }
            })
            .collect();
        assert!(
            !results.is_empty(),
            "all {total} runs of {} failed",
            self.scheme.name()
        );
        results
    }

    /// The per-run traces, in run order (empty unless the session ran
    /// with a recording [`TraceMode`]).
    pub fn traces(&self) -> Vec<&SimTrace> {
        self.outcomes
            .iter()
            .filter_map(|o| o.as_ref().ok().and_then(|out| out.trace.as_ref()))
            .collect()
    }

    /// Aggregates the successful runs (mean ± 95% CI).
    ///
    /// # Panics
    ///
    /// Panics if every run failed (see [`SessionResult::results`]).
    pub fn summary(&self) -> SchemeSummary {
        SchemeSummary::from_runs(&self.results())
    }
}

/// Per-run outcomes of one [`SimSession::run_packet`] invocation.
#[derive(Debug, Clone)]
pub struct PacketSessionResult {
    scheme: Scheme,
    outcomes: Vec<JobOutcome<PacketRunResult>>,
}

impl PacketSessionResult {
    /// The scheme that produced these outcomes.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Per-run outcomes in run order.
    pub fn outcomes(&self) -> &[JobOutcome<PacketRunResult>] {
        &self.outcomes
    }

    /// Consumes the result into its per-run outcomes.
    pub fn into_outcomes(self) -> Vec<JobOutcome<PacketRunResult>> {
        self.outcomes
    }

    /// The successful per-run results, in run order; failed runs are
    /// reported on stderr and dropped.
    ///
    /// # Panics
    ///
    /// Panics if **every** run failed.
    pub fn results(&self) -> Vec<PacketRunResult> {
        let total = self.outcomes.len();
        let results: Vec<PacketRunResult> = self
            .outcomes
            .iter()
            .enumerate()
            .filter_map(|(run, outcome)| match outcome {
                Ok(r) => Some(r.clone()),
                Err(err) => {
                    eprintln!("packet run {run} of {} failed: {err}", self.scheme.name());
                    None
                }
            })
            .collect();
        assert!(
            !results.is_empty(),
            "all {total} packet runs of {} failed",
            self.scheme.name()
        );
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run;
    use crate::packet_engine::run_packet_level;

    fn quick() -> SimSession {
        let cfg = SimConfig {
            gops: 4,
            ..SimConfig::default()
        };
        SimSession::new(Scenario::single_fbs(&cfg))
            .config(cfg)
            .seed(77)
            .runs(3)
    }

    #[test]
    fn session_is_deterministic_and_bit_identical_to_serial() {
        let s = quick();
        let seeds = SeedSequence::new(77);
        for policy in [
            ShardPolicy::Auto,
            ShardPolicy::WholeRun,
            ShardPolicy::Windows(1),
            ShardPolicy::Windows(3),
        ] {
            let result = s.clone().shards(policy).run(Scheme::Proposed);
            let runs = result.results();
            assert_eq!(runs.len(), 3, "{policy:?}");
            for (r, got) in runs.iter().enumerate() {
                let want = run(
                    s.scenario(),
                    s.config_ref(),
                    Scheme::Proposed,
                    &seeds,
                    r as u64,
                    TraceMode::Off,
                )
                .result;
                assert_eq!(*got, want, "{policy:?} run {r}");
            }
        }
    }

    #[test]
    fn sharded_traces_stitch_identically() {
        let s = quick().trace(TraceMode::Slots);
        let serial = s
            .clone()
            .shards(ShardPolicy::WholeRun)
            .run(Scheme::Proposed);
        let sharded = s
            .clone()
            .shards(ShardPolicy::Windows(1))
            .run(Scheme::Proposed);
        assert_eq!(serial.traces().len(), 3);
        for (a, b) in serial.traces().iter().zip(sharded.traces()) {
            assert_eq!(*a, b, "stitched trace differs from serial");
        }
    }

    #[test]
    fn packet_session_matches_serial_packet_engine() {
        let s = quick();
        let seeds = SeedSequence::new(77);
        for policy in [ShardPolicy::WholeRun, ShardPolicy::Windows(1)] {
            let result = s.clone().shards(policy).run_packet(Scheme::Heuristic1);
            let runs = result.results();
            assert_eq!(runs.len(), 3);
            for (r, got) in runs.iter().enumerate() {
                let want = run_packet_level(
                    s.scenario(),
                    s.config_ref(),
                    Scheme::Heuristic1,
                    &seeds,
                    r as u64,
                );
                assert_eq!(*got, want, "{policy:?} run {r}");
            }
        }
    }

    #[test]
    fn session_feeds_shard_counter() {
        let before = pool::snapshot().counter(SHARDS_COUNTER).unwrap_or(0);
        let s = quick().shards(ShardPolicy::Windows(2)); // 4 GOPs → 2 windows/run
        let _ = s.run(Scheme::Heuristic2);
        let after = pool::snapshot()
            .counter(SHARDS_COUNTER)
            .expect("registered");
        assert_eq!(after - before, 3 * 2, "3 runs × 2 windows");
    }

    #[test]
    fn sweep_produces_aligned_series() {
        let base = SimConfig {
            gops: 2,
            ..SimConfig::default()
        };
        let points: Vec<(f64, SimConfig, Scenario)> = [4usize, 6]
            .iter()
            .map(|m| {
                let cfg = SimConfig {
                    num_channels: *m,
                    ..base
                };
                (*m as f64, cfg, Scenario::single_fbs(&cfg))
            })
            .collect();
        let series = SimSession::new(Scenario::single_fbs(&base))
            .config(base)
            .seed(5)
            .runs(2)
            .sweep(&points, &[Scheme::Proposed, Scheme::Heuristic1]);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].name(), "Proposed scheme");
        assert_eq!(series[0].len(), 2);
        assert_eq!(series[1].len(), 2);
    }

    #[test]
    fn priority_changes_order_never_results() {
        let s = quick();
        let normal = s.run(Scheme::Proposed).results();
        let urgent = s
            .clone()
            .priority(Priority::urgent())
            .run(Scheme::Proposed)
            .results();
        let bulk_deadline = s
            .clone()
            .priority(Priority::bulk().deadline_in(std::time::Duration::from_millis(5)))
            .run(Scheme::Proposed)
            .results();
        assert_eq!(normal, urgent, "urgent reordering changed results");
        assert_eq!(normal, bulk_deadline, "bulk+EDF reordering changed results");
        assert_eq!(
            s.clone().priority(Priority::urgent()).priority_ref(),
            Priority::urgent()
        );
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_panics() {
        let _ = quick().runs(0);
    }
}
