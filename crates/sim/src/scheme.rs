//! The allocation schemes compared in Section V.

use fcr_core::allocation::Allocation;
use fcr_core::exhaustive::ExhaustiveAllocator;
use fcr_core::greedy::{GreedyAllocator, GreedyOutcome};
use fcr_core::heuristics;
use fcr_core::interfering::{round_robin_assignment, ChannelAssignment, InterferingProblem};
use fcr_core::problem::{SlotProblem, UserState};
use fcr_core::waterfill::WaterfillingSolver;
use fcr_net::interference::InterferenceGraph;
use std::fmt;

/// An allocation policy under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// The paper's scheme: greedy channel allocation (Table III, when
    /// FBSs interfere) + the optimal time-share solution
    /// (Tables I/II, computed with the fast equivalent solver).
    Proposed,
    /// Heuristic 1: per-user best-channel choice, equal time shares.
    Heuristic1,
    /// Heuristic 2: multiuser diversity — best-link user takes each
    /// base station's whole slot.
    Heuristic2,
    /// Upper-bound reference: *exhaustively optimal* channel
    /// allocation + optimal time shares. The paper plots the eq.-(23)
    /// analytic bound, which dominates this exact optimum
    /// (`Q(greedy) ≤ Q(Ω) ≤ UB₍₂₃₎`, verified in `fcr-core` tests), so
    /// this series is a tighter-or-equal stand-in with the same role:
    /// an overline the proposed scheme must stay under and near.
    UpperBound,
}

impl Scheme {
    /// The three schemes the paper plots in every figure.
    pub const PAPER_TRIO: [Scheme; 3] = [Scheme::Proposed, Scheme::Heuristic1, Scheme::Heuristic2];

    /// All four series of the interfering-FBS figures (Fig. 6).
    pub const WITH_BOUND: [Scheme; 4] = [
        Scheme::UpperBound,
        Scheme::Proposed,
        Scheme::Heuristic1,
        Scheme::Heuristic2,
    ];

    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Proposed => "Proposed scheme",
            Scheme::Heuristic1 => "Heuristic 1",
            Scheme::Heuristic2 => "Heuristic 2",
            Scheme::UpperBound => "Upper bound",
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A scheme's decision for one slot: the channel assignment (in
/// interfering scenarios) and the time-share allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotDecision {
    /// Channel assignment over the slot's available set (`None` in
    /// non-interfering scenarios, where every FBS uses every channel).
    pub assignment: Option<ChannelAssignment>,
    /// Per-user time shares and modes.
    pub allocation: Allocation,
    /// The greedy bookkeeping, when the proposed scheme ran Table III
    /// (drives the eq.-(23) diagnostics).
    pub greedy: Option<GreedyOutcome>,
}

/// Computes one slot's decision for `scheme`.
///
/// * `users` — the per-user slot states;
/// * `graph` — the interference graph;
/// * `channel_weights` — `P^A_m` for each channel in `A(t)`;
/// * `g_shared` — `G_t` when the scenario has no interference (every
///   FBS aggregates the full available set).
///
/// # Panics
///
/// Panics if `users` is empty (problem construction is validated
/// upstream by the engine).
pub fn decide_slot(
    scheme: Scheme,
    users: &[UserState],
    graph: &InterferenceGraph,
    channel_weights: &[f64],
    g_shared: f64,
) -> SlotDecision {
    // The whole per-slot decision is the pipeline's "solver" phase;
    // Table III's greedy allocation (when it runs) opens its own
    // nested `GreedyAlloc` span inside this one.
    let _span = fcr_telemetry::Span::enter(fcr_telemetry::Phase::Solver);
    let n = graph.num_vertices();
    let interfering = graph.max_degree() > 0 && !channel_weights.is_empty();

    if !interfering {
        // Sections IV-A/IV-B: full spatial reuse; G_i = G_t for all i.
        let problem = SlotProblem::new(users.to_vec(), vec![g_shared; n])
            .expect("engine provides valid users");
        let allocation = match scheme {
            Scheme::Proposed | Scheme::UpperBound => WaterfillingSolver::new().solve(&problem),
            Scheme::Heuristic1 => heuristics::equal_allocation(&problem),
            Scheme::Heuristic2 => heuristics::multiuser_diversity(&problem),
        };
        return SlotDecision {
            assignment: None,
            allocation,
            greedy: None,
        };
    }

    // Section IV-C: channels must be divided first.
    let problem = InterferingProblem::new(users.to_vec(), graph.clone(), channel_weights.to_vec())
        .expect("engine provides valid users");
    match scheme {
        Scheme::Proposed => {
            let outcome = GreedyAllocator::new().allocate(&problem);
            SlotDecision {
                assignment: Some(outcome.assignment().clone()),
                allocation: outcome.allocation().clone(),
                greedy: Some(outcome),
            }
        }
        Scheme::UpperBound => {
            let outcome = ExhaustiveAllocator::new().allocate(&problem);
            SlotDecision {
                assignment: Some(outcome.assignment().clone()),
                allocation: outcome.allocation().clone(),
                greedy: None,
            }
        }
        Scheme::Heuristic1 | Scheme::Heuristic2 => {
            let assignment = round_robin_assignment(graph, channel_weights.len());
            let slot_problem = problem.problem_for(&assignment);
            let allocation = if scheme == Scheme::Heuristic1 {
                heuristics::equal_allocation(&slot_problem)
            } else {
                heuristics::multiuser_diversity(&slot_problem)
            };
            SlotDecision {
                assignment: Some(assignment),
                allocation,
                greedy: None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcr_net::node::FbsId;

    fn user(w: f64, fbs: usize) -> UserState {
        UserState::new(w, FbsId(fbs), 0.72, 0.72, 0.5, 0.9).unwrap()
    }

    fn path3() -> InterferenceGraph {
        InterferenceGraph::new(3, &[(FbsId(0), FbsId(1)), (FbsId(1), FbsId(2))])
    }

    #[test]
    fn names_match_paper_legends() {
        assert_eq!(Scheme::Proposed.name(), "Proposed scheme");
        assert_eq!(Scheme::Heuristic1.name(), "Heuristic 1");
        assert_eq!(Scheme::Heuristic2.name(), "Heuristic 2");
        assert_eq!(format!("{}", Scheme::UpperBound), "Upper bound");
        assert_eq!(Scheme::PAPER_TRIO.len(), 3);
        assert_eq!(Scheme::WITH_BOUND.len(), 4);
    }

    #[test]
    fn non_interfering_decision_has_no_assignment() {
        let users = vec![user(30.0, 0), user(28.0, 0)];
        let graph = InterferenceGraph::edgeless(1);
        for scheme in Scheme::WITH_BOUND {
            let d = decide_slot(scheme, &users, &graph, &[0.9, 0.8], 1.7);
            assert!(d.assignment.is_none(), "{scheme}");
            assert_eq!(d.allocation.len(), 2);
            assert!(d.greedy.is_none());
        }
    }

    #[test]
    fn interfering_decisions_are_conflict_free() {
        let users: Vec<UserState> = (0..6).map(|j| user(28.0 + j as f64, j % 3)).collect();
        let graph = path3();
        let weights = [0.9, 0.8, 0.7];
        for scheme in Scheme::WITH_BOUND {
            let d = decide_slot(scheme, &users, &graph, &weights, 0.0);
            let assignment = d.assignment.expect("interfering scenario assigns channels");
            assert!(assignment.is_conflict_free(&graph), "{scheme}");
            assert_eq!(d.allocation.len(), 6);
        }
    }

    #[test]
    fn proposed_records_greedy_bookkeeping() {
        let users: Vec<UserState> = (0..3).map(|j| user(29.0, j)).collect();
        let d = decide_slot(Scheme::Proposed, &users, &path3(), &[0.9, 0.8], 0.0);
        let greedy = d.greedy.expect("proposed runs Table III");
        assert!(greedy.upper_bound() >= greedy.q_value() - 1e-9);
    }

    #[test]
    fn upper_bound_dominates_proposed_objective() {
        let users: Vec<UserState> = (0..6).map(|j| user(27.0 + j as f64, j % 3)).collect();
        let graph = path3();
        let weights = [0.9, 0.8, 0.7];
        let proposed = decide_slot(Scheme::Proposed, &users, &graph, &weights, 0.0);
        let ub = decide_slot(Scheme::UpperBound, &users, &graph, &weights, 0.0);
        let p = InterferingProblem::new(users.clone(), graph.clone(), weights.to_vec()).unwrap();
        let q_proposed = p
            .problem_for(proposed.assignment.as_ref().unwrap())
            .objective(&proposed.allocation);
        let q_ub = p
            .problem_for(ub.assignment.as_ref().unwrap())
            .objective(&ub.allocation);
        assert!(
            q_ub >= q_proposed - 1e-6,
            "exhaustive {q_ub} below greedy {q_proposed}"
        );
    }

    #[test]
    fn empty_available_set_still_allocates_mbs_time() {
        let users = vec![user(30.0, 0), user(28.0, 1), user(29.0, 2)];
        let d = decide_slot(Scheme::Proposed, &users, &path3(), &[], 0.0);
        assert!(d.assignment.is_none(), "no channels to assign");
        // Someone gets the common channel.
        assert!(d.allocation.mbs_load() > 0.0);
    }
}
