//! The process-wide simulation pool: typed [`SimJob`]s executed on the
//! shared [`fcr_runtime::Runtime`].
//!
//! Every multi-run code path ([`crate::session::SimSession`] and the
//! batch helpers here) routes through this module, so the whole
//! process shares **one** elastic worker pool — a hard concurrency
//! cap, replacing the seed's unbounded per-run thread spawning. The
//! shared pool runs the always-on background autoscaler
//! ([`fcr_runtime::AutoscaleConfig`]) so it sizes itself to the
//! workload without callers doing anything; resizes never change
//! results, only parallelism.
//!
//! # Determinism
//!
//! A [`SimJob`] carries everything a run depends on — scenario,
//! config, scheme, master seed, run index — and derives its RNG
//! streams from `SeedSequence::new(master_seed)` exactly like the
//! serial [`crate::engine::run`] path. Combined with the runtime returning batch
//! results in submission order, pooled execution is **bit-identical**
//! to a serial loop regardless of worker count or scheduling, and the
//! common-random-numbers property across schemes is preserved
//! (verified by `tests/determinism.rs`).

use crate::config::SimConfig;
use crate::engine::{run, TraceMode};
use crate::metrics::RunResult;
use crate::scenario::Scenario;
use crate::scheme::Scheme;
use fcr_runtime::{AutoscaleConfig, JobOutcome, MetricsSnapshot, Runtime, RuntimeConfig};
use fcr_stats::rng::SeedSequence;
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};

/// Name of the domain counter tracking simulated channel slots.
pub const SLOTS_COUNTER: &str = "slots_simulated";
/// Name of the domain counter tracking per-slot allocator invocations.
pub const SOLVER_COUNTER: &str = "solver_invocations";
/// Name of the domain counter tracking executed intra-run shard jobs
/// (GOP-aligned slot windows scheduled by [`crate::session::SimSession`]).
pub const SHARDS_COUNTER: &str = "shards_executed";

/// One simulation run, fully described: `(scenario, config, scheme,
/// master seed, run index) → RunResult`.
#[derive(Debug, Clone)]
pub struct SimJob {
    /// Deployment under test (shared across the runs of a batch).
    pub scenario: Arc<Scenario>,
    /// Simulation parameters.
    pub config: SimConfig,
    /// Allocation scheme under test.
    pub scheme: Scheme,
    /// Master seed; per-run streams derive from `(master_seed,
    /// run_index)`, never from scheduling order.
    pub master_seed: u64,
    /// Which run of the experiment this job is.
    pub run_index: u64,
}

impl SimJob {
    /// Executes the run on the calling thread — byte-identical to the
    /// serial path because the seed derivation matches
    /// [`crate::session::SimSession::run`]'s contract.
    pub fn execute(&self) -> RunResult {
        run(
            &self.scenario,
            &self.config,
            self.scheme,
            &SeedSequence::new(self.master_seed),
            self.run_index,
            TraceMode::Off,
        )
        .result
    }
}

/// The process-wide runtime, built on first use and shared by every
/// experiment in the process. Sized by
/// [`std::thread::available_parallelism`], with the always-on
/// background autoscaler started (self-managing between `min_workers`
/// and the parallelism ceiling; a no-op on 1-core hosts).
pub fn shared() -> &'static Runtime {
    static POOL: OnceLock<Runtime> = OnceLock::new();
    POOL.get_or_init(|| {
        Runtime::with_config(RuntimeConfig {
            autoscale: Some(AutoscaleConfig::default()),
            ..RuntimeConfig::default()
        })
    })
}

/// A live snapshot of the shared pool's metrics (jobs, queue depth,
/// wall-time histogram, slots simulated, solver invocations).
pub fn snapshot() -> MetricsSnapshot {
    shared().snapshot()
}

/// Runs a batch of jobs on the shared pool, returning per-job outcomes
/// **in submission order**. A panicking run yields
/// `Err(JobError::Panicked(..))` for that job only; the pool and the
/// remaining jobs are unaffected.
pub fn execute_all(jobs: Vec<SimJob>) -> Vec<JobOutcome<RunResult>> {
    let runtime = shared();
    let slots = runtime.metrics().counter(SLOTS_COUNTER);
    let solves = runtime.metrics().counter(SOLVER_COUNTER);
    runtime.run_batch(jobs.into_iter().map(|job| {
        let slots = Arc::clone(&slots);
        let solves = Arc::clone(&solves);
        move || {
            let total_slots = job.config.total_slots();
            let result = job.execute();
            // One channel-allocation solve happens per simulated slot.
            slots.fetch_add(total_slots, Ordering::Relaxed);
            solves.fetch_add(total_slots, Ordering::Relaxed);
            result
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooled_jobs_match_direct_execution_and_feed_metrics() {
        let config = SimConfig {
            gops: 2,
            ..SimConfig::default()
        };
        let scenario = Arc::new(Scenario::single_fbs(&config));
        let jobs: Vec<SimJob> = (0..3)
            .map(|run_index| SimJob {
                scenario: Arc::clone(&scenario),
                config,
                scheme: Scheme::Proposed,
                master_seed: 4242,
                run_index,
            })
            .collect();
        let serial: Vec<RunResult> = jobs.iter().map(SimJob::execute).collect();
        let before = snapshot().counter(SLOTS_COUNTER).unwrap_or(0);
        let pooled = execute_all(jobs);
        assert_eq!(pooled.len(), 3);
        for (p, s) in pooled.iter().zip(&serial) {
            assert_eq!(p.as_ref().expect("no panics"), s);
        }
        let after = snapshot().counter(SLOTS_COUNTER).expect("registered");
        assert_eq!(after - before, 3 * config.total_slots());
        assert_eq!(
            snapshot().counter(SOLVER_COUNTER).expect("registered") % config.total_slots(),
            after % config.total_slots(),
        );
    }

    #[test]
    fn shared_pool_is_a_singleton() {
        let a = shared() as *const Runtime;
        let b = shared() as *const Runtime;
        assert_eq!(a, b);
        assert!(shared().workers() >= 1);
        assert!(
            shared().autoscaler_running(),
            "shared pool must be self-managing"
        );
    }
}
