//! The deprecated multi-run experiment API, kept as thin shims over
//! [`crate::session::SimSession`].
//!
//! [`Experiment`] and [`sweep`] were the original batch entry points;
//! PR 3 replaced them with the builder-style session (which additionally
//! shards *within* runs on the elastic pool). Every shim delegates to
//! the session, so results stay **bit-identical** to both the old
//! per-run pooled path and the serial [`crate::engine::run`] loop —
//! determinism depends only on seeds, never on batching.

use crate::config::SimConfig;
use crate::metrics::{RunResult, SchemeSummary};
use crate::scenario::Scenario;
use crate::scheme::Scheme;
use crate::session::SimSession;
use fcr_runtime::JobError;
use fcr_stats::series::Series;

/// A repeated-runs experiment of several schemes on one scenario.
#[deprecated(since = "0.1.0", note = "use `SimSession` instead")]
#[derive(Debug, Clone, PartialEq)]
pub struct Experiment {
    scenario: Scenario,
    config: SimConfig,
    runs: u64,
    master_seed: u64,
}

#[allow(deprecated)]
impl Experiment {
    /// Creates an experiment with the paper's 10 runs.
    #[deprecated(since = "0.1.0", note = "use `SimSession::new` instead")]
    pub fn new(scenario: Scenario, config: SimConfig, master_seed: u64) -> Self {
        Self {
            scenario,
            config,
            runs: 10,
            master_seed,
        }
    }

    /// Overrides the number of runs (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `runs` is zero.
    pub fn runs(mut self, runs: u64) -> Self {
        assert!(runs > 0, "need at least one run");
        self.runs = runs;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The scenario in use.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The equivalent session: same scenario, config, run count, and
    /// seed, so results match the historical behaviour bit for bit.
    fn session(&self) -> SimSession {
        SimSession::new(self.scenario.clone())
            .config(self.config)
            .runs(self.runs)
            .seed(self.master_seed)
    }

    /// Executes all runs of one scheme on the shared pool, returning
    /// one outcome per run **in run order**. A run that panics yields
    /// `Err(JobError::Panicked(..))` in its slot; the other runs (and
    /// the pool) are unaffected.
    ///
    /// Seeds are derived per `(scheme, run)`, so the primary-user and
    /// fading sample paths are **identical across schemes** (common
    /// random numbers — the comparison noise the paper's figures would
    /// otherwise carry is removed). Pooled execution is bit-identical
    /// to calling [`crate::engine::run`] serially with the same
    /// seeds.
    #[deprecated(since = "0.1.0", note = "use `SimSession::run` instead")]
    pub fn try_run_scheme(&self, scheme: Scheme) -> Vec<Result<RunResult, JobError>> {
        self.session()
            .run(scheme)
            .into_outcomes()
            .into_iter()
            .map(|outcome| outcome.map(|out| out.result))
            .collect()
    }

    /// Executes all runs of one scheme, in parallel across runs,
    /// discarding failed runs (reported on stderr).
    ///
    /// # Panics
    ///
    /// Panics if **every** run failed — there is nothing to average.
    /// Use [`Experiment::try_run_scheme`] to inspect individual
    /// failures.
    #[deprecated(
        since = "0.1.0",
        note = "use `SimSession::run` + `SessionResult::results` instead"
    )]
    pub fn run_scheme(&self, scheme: Scheme) -> Vec<RunResult> {
        self.session().run(scheme).results()
    }

    /// Runs a scheme and aggregates (mean ± 95% CI).
    #[deprecated(
        since = "0.1.0",
        note = "use `SimSession::run` + `SessionResult::summary` instead"
    )]
    pub fn summarize(&self, scheme: Scheme) -> SchemeSummary {
        self.session().run(scheme).summary()
    }
}

/// Sweeps a parameter: for each `(x, config, scenario)` point, runs all
/// `schemes` and returns one [`Series`] per scheme with the mean
/// Y-PSNR samples at every x (the exact layout of Figs. 4(b), 4(c),
/// 6(a), 6(b), 6(c)).
///
/// Deprecated shim over [`SimSession::sweep`]; failed runs are dropped
/// from their sample set (reported on stderr), and a point whose runs
/// *all* fail contributes an empty sample set.
///
/// # Panics
///
/// Panics if `runs` is zero.
#[deprecated(since = "0.1.0", note = "use `SimSession::sweep` instead")]
pub fn sweep(
    points: &[(f64, SimConfig, Scenario)],
    schemes: &[Scheme],
    runs: u64,
    master_seed: u64,
) -> Vec<Series> {
    assert!(runs > 0, "need at least one run");
    let Some((_, cfg, scenario)) = points.first() else {
        return schemes.iter().map(|s| Series::new(s.name())).collect();
    };
    // The template session carries runs/seed; its scenario/config are
    // superseded point by point.
    SimSession::new(scenario.clone())
        .config(*cfg)
        .runs(runs)
        .seed(master_seed)
        .sweep(points, schemes)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::engine::{run, TraceMode};
    use fcr_stats::rng::SeedSequence;

    fn quick() -> Experiment {
        let cfg = SimConfig {
            gops: 3,
            ..SimConfig::default()
        };
        Experiment::new(Scenario::single_fbs(&cfg), cfg, 77).runs(3)
    }

    #[test]
    fn run_scheme_is_deterministic_and_ordered() {
        let e = quick();
        let a = e.run_scheme(Scheme::Proposed);
        let b = e.run_scheme(Scheme::Proposed);
        assert_eq!(a, b, "same seed, same results");
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn pooled_runs_match_serial_run_once() {
        let e = quick();
        let pooled = e.run_scheme(Scheme::Heuristic2);
        let seeds = SeedSequence::new(77);
        let serial: Vec<RunResult> = (0..3)
            .map(|r| {
                run(
                    e.scenario(),
                    e.config(),
                    Scheme::Heuristic2,
                    &seeds,
                    r,
                    TraceMode::Off,
                )
                .result
            })
            .collect();
        assert_eq!(pooled, serial, "pool must be bit-identical to serial");
    }

    #[test]
    fn try_run_scheme_carries_per_run_outcomes() {
        let e = quick();
        let outcomes = e.try_run_scheme(Scheme::Proposed);
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes.iter().all(Result::is_ok));
    }

    #[test]
    fn schemes_share_sample_paths() {
        // Common random numbers: the collision rate (a function of the
        // primary/sensing/access randomness only, not the allocation)
        // must be identical across schemes for the same run index.
        let e = quick();
        let p = e.run_scheme(Scheme::Proposed);
        let h = e.run_scheme(Scheme::Heuristic1);
        for (a, b) in p.iter().zip(&h) {
            assert_eq!(a.collision_rate, b.collision_rate);
            assert_eq!(a.mean_expected_available, b.mean_expected_available);
        }
    }

    #[test]
    fn summarize_produces_cis() {
        let s = quick().summarize(Scheme::Proposed);
        assert_eq!(s.per_user.len(), 3);
        assert!(s.overall.mean() > 25.0);
        assert!(s.jain > 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_panics() {
        let _ = quick().runs(0);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_run_sweep_panics() {
        let cfg = SimConfig::default();
        let points = vec![(1.0, cfg, Scenario::single_fbs(&cfg))];
        let _ = sweep(&points, &[Scheme::Proposed], 0, 5);
    }

    #[test]
    fn empty_point_sweep_yields_empty_series() {
        let series = sweep(&[], &[Scheme::Proposed, Scheme::Heuristic1], 2, 5);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].len(), 0);
        assert_eq!(series[1].len(), 0);
    }

    #[test]
    fn sweep_builds_aligned_series() {
        let base = SimConfig {
            gops: 2,
            ..SimConfig::default()
        };
        let points: Vec<(f64, SimConfig, Scenario)> = [4usize, 6]
            .iter()
            .map(|m| {
                let cfg = SimConfig {
                    num_channels: *m,
                    ..base
                };
                (*m as f64, cfg, Scenario::single_fbs(&cfg))
            })
            .collect();
        let series = sweep(&points, &[Scheme::Proposed, Scheme::Heuristic1], 2, 5);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].name(), "Proposed scheme");
        assert_eq!(series[0].len(), 2);
        assert_eq!(series[1].len(), 2);
    }

    #[test]
    fn sweep_matches_per_point_experiments() {
        // The single-batch sweep must produce exactly the samples the
        // equivalent per-point Experiment loop produces.
        let base = SimConfig {
            gops: 2,
            ..SimConfig::default()
        };
        let points: Vec<(f64, SimConfig, Scenario)> = [4usize, 8]
            .iter()
            .map(|m| {
                let cfg = SimConfig {
                    num_channels: *m,
                    ..base
                };
                (*m as f64, cfg, Scenario::single_fbs(&cfg))
            })
            .collect();
        let schemes = [Scheme::Proposed, Scheme::UpperBound];
        let batched = sweep(&points, &schemes, 2, 99);
        let mut serial: Vec<Series> = schemes.iter().map(|s| Series::new(s.name())).collect();
        for (x, cfg, scenario) in &points {
            let e = Experiment::new(scenario.clone(), *cfg, 99).runs(2);
            for (scheme, out) in schemes.iter().zip(serial.iter_mut()) {
                let samples: Vec<f64> = e
                    .run_scheme(*scheme)
                    .iter()
                    .map(RunResult::mean_psnr)
                    .collect();
                out.push(*x, samples);
            }
        }
        assert_eq!(batched, serial);
    }
}
