//! Multi-run experiments: the paper's "each point is the average of 10
//! simulation runs" with 95% confidence intervals, parallel across
//! runs.

use crate::config::SimConfig;
use crate::engine::run_once;
use crate::metrics::{RunResult, SchemeSummary};
use crate::scenario::Scenario;
use crate::scheme::Scheme;
use fcr_stats::rng::SeedSequence;
use fcr_stats::series::Series;

/// A repeated-runs experiment of several schemes on one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Experiment {
    scenario: Scenario,
    config: SimConfig,
    runs: u64,
    master_seed: u64,
}

impl Experiment {
    /// Creates an experiment with the paper's 10 runs.
    pub fn new(scenario: Scenario, config: SimConfig, master_seed: u64) -> Self {
        Self {
            scenario,
            config,
            runs: 10,
            master_seed,
        }
    }

    /// Overrides the number of runs (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `runs` is zero.
    pub fn runs(mut self, runs: u64) -> Self {
        assert!(runs > 0, "need at least one run");
        self.runs = runs;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The scenario in use.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Executes all runs of one scheme, in parallel across runs.
    ///
    /// Seeds are derived per `(scheme, run)`, so the primary-user and
    /// fading sample paths are **identical across schemes** (common
    /// random numbers — the comparison noise the paper's figures would
    /// otherwise carry is removed).
    pub fn run_scheme(&self, scheme: Scheme) -> Vec<RunResult> {
        let seeds = SeedSequence::new(self.master_seed);
        let mut results: Vec<Option<RunResult>> = vec![None; self.runs as usize];
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for run in 0..self.runs {
                let scenario = &self.scenario;
                let config = &self.config;
                handles.push((
                    run,
                    scope.spawn(move || run_once(scenario, config, scheme, &seeds, run)),
                ));
            }
            for (run, h) in handles {
                results[run as usize] = Some(h.join().expect("simulation thread panicked"));
            }
        });
        results.into_iter().map(|r| r.expect("all runs filled")).collect()
    }

    /// Runs a scheme and aggregates (mean ± 95% CI).
    pub fn summarize(&self, scheme: Scheme) -> SchemeSummary {
        SchemeSummary::from_runs(&self.run_scheme(scheme))
    }
}

/// Sweeps a parameter: for each `(x, config, scenario)` point, runs all
/// `schemes` and returns one [`Series`] per scheme with the mean
/// Y-PSNR samples at every x (the exact layout of Figs. 4(b), 4(c),
/// 6(a), 6(b), 6(c)).
pub fn sweep(
    points: &[(f64, SimConfig, Scenario)],
    schemes: &[Scheme],
    runs: u64,
    master_seed: u64,
) -> Vec<Series> {
    let mut series: Vec<Series> = schemes.iter().map(|s| Series::new(s.name())).collect();
    for (x, cfg, scenario) in points {
        let experiment = Experiment::new(scenario.clone(), *cfg, master_seed).runs(runs);
        for (scheme, out) in schemes.iter().zip(series.iter_mut()) {
            let samples: Vec<f64> = experiment
                .run_scheme(*scheme)
                .iter()
                .map(RunResult::mean_psnr)
                .collect();
            out.push(*x, samples);
        }
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Experiment {
        let cfg = SimConfig {
            gops: 3,
            ..SimConfig::default()
        };
        Experiment::new(Scenario::single_fbs(&cfg), cfg, 77).runs(3)
    }

    #[test]
    fn run_scheme_is_deterministic_and_ordered() {
        let e = quick();
        let a = e.run_scheme(Scheme::Proposed);
        let b = e.run_scheme(Scheme::Proposed);
        assert_eq!(a, b, "same seed, same results");
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn schemes_share_sample_paths() {
        // Common random numbers: the collision rate (a function of the
        // primary/sensing/access randomness only, not the allocation)
        // must be identical across schemes for the same run index.
        let e = quick();
        let p = e.run_scheme(Scheme::Proposed);
        let h = e.run_scheme(Scheme::Heuristic1);
        for (a, b) in p.iter().zip(&h) {
            assert_eq!(a.collision_rate, b.collision_rate);
            assert_eq!(a.mean_expected_available, b.mean_expected_available);
        }
    }

    #[test]
    fn summarize_produces_cis() {
        let s = quick().summarize(Scheme::Proposed);
        assert_eq!(s.per_user.len(), 3);
        assert!(s.overall.mean() > 25.0);
        assert!(s.jain > 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_panics() {
        let _ = quick().runs(0);
    }

    #[test]
    fn sweep_builds_aligned_series() {
        let base = SimConfig {
            gops: 2,
            ..SimConfig::default()
        };
        let points: Vec<(f64, SimConfig, Scenario)> = [4usize, 6]
            .iter()
            .map(|m| {
                let cfg = SimConfig {
                    num_channels: *m,
                    ..base
                };
                (*m as f64, cfg, Scenario::single_fbs(&cfg))
            })
            .collect();
        let series = sweep(&points, &[Scheme::Proposed, Scheme::Heuristic1], 2, 5);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].name(), "Proposed scheme");
        assert_eq!(series[0].len(), 2);
        assert_eq!(series[1].len(), 2);
    }
}
