//! Fixed-width histograms for PSNR and rate distributions.

use std::fmt;

/// A histogram over `[lo, hi)` with equal-width bins, plus explicit
/// underflow/overflow counters.
///
/// # Examples
///
/// ```
/// use fcr_stats::histogram::Histogram;
///
/// let mut h = Histogram::new(30.0, 40.0, 5)?;
/// for x in [31.0, 31.5, 36.0, 45.0] {
///     h.record(x);
/// }
/// assert_eq!(h.count(0), 2);   // [30, 32)
/// assert_eq!(h.count(3), 1);   // [36, 38)
/// assert_eq!(h.overflow(), 1); // 45.0
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Errors
    ///
    /// Returns an error if `lo ≥ hi`, either bound is not finite, or
    /// `bins` is zero.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, String> {
        if !(lo.is_finite() && hi.is_finite()) {
            return Err(format!("bounds must be finite, got [{lo}, {hi})"));
        }
        if lo >= hi {
            return Err(format!("empty range [{lo}, {hi})"));
        }
        if bins == 0 {
            return Err("need at least one bin".to_string());
        }
        Ok(Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.bins.len() as f64
    }

    /// The `[lo, hi)` range of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins.len(), "bin {i} out of range");
        let w = self.bin_width();
        (self.lo + i as f64 * w, self.lo + (i + 1) as f64 * w)
    }

    /// Records an observation.
    ///
    /// # Panics
    ///
    /// Panics on NaN — silently binning NaN would corrupt the counts.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN observation");
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / self.bin_width()) as usize;
            // Guard the hi-boundary rounding case.
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Count of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded (including out-of-range).
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The mode's bin index, or `None` if empty (ties go to the lowest
    /// bin).
    pub fn mode_bin(&self) -> Option<usize> {
        let max = *self.bins.iter().max()?;
        if max == 0 {
            return None;
        }
        self.bins.iter().position(|c| *c == max)
    }

    /// Folds `other` into `self`: bins, underflow, and overflow add
    /// element-wise. Merging an empty histogram is the identity.
    ///
    /// # Errors
    ///
    /// Returns an error unless both histograms cover the same `[lo,
    /// hi)` range with the same bin count — merging mismatched
    /// layouts would silently misattribute counts.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), String> {
        if self.lo != other.lo || self.hi != other.hi || self.bins.len() != other.bins.len() {
            return Err(format!(
                "histogram layouts differ: [{}, {}) x {} vs [{}, {}) x {}",
                self.lo,
                self.hi,
                self.bins.len(),
                other.lo,
                other.hi,
                other.bins.len()
            ));
        }
        for (mine, theirs) in self.bins.iter_mut().zip(&other.bins) {
            *mine += theirs;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        Ok(())
    }

    /// Renders an ASCII bar chart, one row per bin.
    pub fn render(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, count) in self.bins.iter().enumerate() {
            let (lo, hi) = self.bin_range(i);
            let bar_len = (*count as usize * width) / max as usize;
            out.push_str(&format!(
                "[{lo:>7.2}, {hi:>7.2})  {:>6}  {}\n",
                count,
                "#".repeat(bar_len)
            ));
        }
        out
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(40))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_validates() {
        assert!(Histogram::new(0.0, 10.0, 5).is_ok());
        assert!(Histogram::new(10.0, 0.0, 5).is_err());
        assert!(Histogram::new(0.0, 10.0, 0).is_err());
        assert!(Histogram::new(f64::NAN, 10.0, 5).is_err());
    }

    #[test]
    fn binning_is_exact_at_edges() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.record(0.0); // first bin, inclusive
        h.record(2.0); // second bin's lower edge
        h.record(9.999); // last bin
        h.record(10.0); // overflow (exclusive upper bound)
        h.record(-0.001); // underflow
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(4), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn bin_ranges_tile_the_domain() {
        let h = Histogram::new(30.0, 40.0, 4).unwrap();
        assert_eq!(h.num_bins(), 4);
        assert!((h.bin_width() - 2.5).abs() < 1e-12);
        let (lo, hi) = h.bin_range(1);
        assert!((lo - 32.5).abs() < 1e-12);
        assert!((hi - 35.0).abs() < 1e-12);
    }

    #[test]
    fn mode_detection() {
        let mut h = Histogram::new(0.0, 3.0, 3).unwrap();
        assert_eq!(h.mode_bin(), None);
        h.record(1.5);
        h.record(1.6);
        h.record(0.5);
        assert_eq!(h.mode_bin(), Some(1));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_panics() {
        Histogram::new(0.0, 1.0, 1).unwrap().record(f64::NAN);
    }

    #[test]
    fn bucket_edges_zero_width_bins_and_extremes() {
        // A value exactly on every interior bin edge lands in the bin
        // whose inclusive lower bound it is (upper bounds exclusive).
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        for edge in [0.0, 2.0, 4.0, 6.0, 8.0] {
            h.record(edge);
        }
        for i in 0..5 {
            assert_eq!(h.count(i), 1, "edge of bin {i}");
        }
        // hi itself is exclusive: it must overflow, not wrap to the
        // last bin.
        h.record(10.0);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(4), 1);
        // The largest representable value below hi stays in-range.
        let just_below = f64::from_bits(10.0_f64.to_bits() - 1);
        h.record(just_below);
        assert_eq!(h.count(4), 2);
        // Extremes: ±infinity are finite-checked only at construction;
        // record() routes them to the out-of-range counters.
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 9);
    }

    #[test]
    fn merge_adds_counts_and_rejects_mismatched_layouts() {
        let mut a = Histogram::new(0.0, 10.0, 5).unwrap();
        let mut b = Histogram::new(0.0, 10.0, 5).unwrap();
        a.record(1.0);
        a.record(-1.0);
        b.record(1.5);
        b.record(11.0);
        a.merge(&b).unwrap();
        assert_eq!(a.count(0), 2);
        assert_eq!(a.underflow(), 1);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.total(), 4);

        // Merge of an empty histogram is the identity.
        let before = a.clone();
        a.merge(&Histogram::new(0.0, 10.0, 5).unwrap()).unwrap();
        assert_eq!(a, before);
        let mut empty = Histogram::new(0.0, 10.0, 5).unwrap();
        empty.merge(&before).unwrap();
        assert_eq!(empty, before);

        // Mismatched layouts are rejected, leaving self untouched.
        let other_range = Histogram::new(0.0, 20.0, 5).unwrap();
        let other_bins = Histogram::new(0.0, 10.0, 4).unwrap();
        assert!(a.merge(&other_range).is_err());
        assert!(a.merge(&other_bins).is_err());
        assert_eq!(a, before);
    }

    #[test]
    fn render_has_one_row_per_bin() {
        let mut h = Histogram::new(0.0, 2.0, 2).unwrap();
        h.record(0.5);
        let s = format!("{h}");
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains('#'));
    }

    proptest! {
        #[test]
        fn every_observation_is_counted_once(
            xs in proptest::collection::vec(-100.0..200.0f64, 0..300),
        ) {
            let mut h = Histogram::new(0.0, 100.0, 10).unwrap();
            for x in &xs {
                h.record(*x);
            }
            prop_assert_eq!(h.total(), xs.len() as u64);
        }

        #[test]
        fn in_range_observations_land_in_their_bin(x in 0.0..100.0f64) {
            let mut h = Histogram::new(0.0, 100.0, 10).unwrap();
            h.record(x);
            let expected = ((x / 10.0) as usize).min(9);
            prop_assert_eq!(h.count(expected), 1);
        }
    }
}
