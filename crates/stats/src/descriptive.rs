//! Descriptive statistics: running summaries and order statistics.

use std::fmt;
use std::iter::FromIterator;

/// A running summary of a sample: count, mean, variance, min, max.
///
/// Uses Welford's online algorithm so it is numerically stable for long
/// simulation traces.
///
/// # Examples
///
/// ```
/// use fcr_stats::descriptive::Summary;
///
/// let mut s = Summary::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN; a NaN observation would silently poison every
    /// downstream statistic.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN observation pushed into Summary");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns `true` if no observation has been pushed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sample mean. Returns 0.0 for an empty summary.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`n − 1` denominator).
    ///
    /// Returns 0.0 when fewer than two observations have been pushed.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count as f64 - 1.0)
        }
    }

    /// Population variance (`n` denominator). Returns 0.0 when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Standard error of the mean (`s / √n`). Returns 0.0 when empty.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sample_std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation. Returns `+∞` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation. Returns `−∞` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean(),
            self.sample_std_dev(),
            self.min,
            self.max
        )
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of `values` using linear
/// interpolation between order statistics (type-7 / the default of R and
/// NumPy).
///
/// Returns `None` when `values` is empty.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or any value is NaN.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile level out of range: {q}");
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let h = (sorted.len() as f64 - 1.0) * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        Some(sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo]))
    }
}

/// Returns the median of `values`, or `None` if empty.
pub fn median(values: &[f64]) -> Option<f64> {
    quantile(values, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_summary_is_well_behaved() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
    }

    #[test]
    fn single_observation() {
        let s: Summary = [3.5].into_iter().collect();
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_observation_panics() {
        Summary::new().push(f64::NAN);
    }

    #[test]
    fn merge_matches_sequential() {
        let xs = [1.0, 2.0, 3.0, 10.0, -4.0, 0.5];
        let (a, b) = xs.split_at(3);
        let mut left: Summary = a.iter().copied().collect();
        let right: Summary = b.iter().copied().collect();
        left.merge(&right);
        let all: Summary = xs.iter().copied().collect();
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-12);
        assert!((left.sample_variance() - all.sample_variance()).abs() < 1e-12);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0].into_iter().collect();
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut empty = Summary::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(median(&xs), Some(2.5));
        assert_eq!(quantile(&xs, 0.25), Some(1.75));
    }

    #[test]
    fn quantile_of_empty_is_none() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(median(&[]), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantile_rejects_bad_level() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn display_is_nonempty() {
        let s: Summary = [1.0].into_iter().collect();
        assert!(!format!("{s}").is_empty());
    }

    proptest! {
        #[test]
        fn mean_lies_between_min_and_max(xs in proptest::collection::vec(-1e6..1e6f64, 1..200)) {
            let s: Summary = xs.iter().copied().collect();
            prop_assert!(s.min() <= s.mean() + 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
        }

        #[test]
        fn variance_is_nonnegative(xs in proptest::collection::vec(-1e6..1e6f64, 0..200)) {
            let s: Summary = xs.iter().copied().collect();
            prop_assert!(s.sample_variance() >= -1e-9);
        }

        #[test]
        fn merge_is_associative_enough(
            xs in proptest::collection::vec(-1e3..1e3f64, 1..50),
            ys in proptest::collection::vec(-1e3..1e3f64, 1..50),
        ) {
            let mut merged: Summary = xs.iter().copied().collect();
            merged.merge(&ys.iter().copied().collect());
            let all: Summary = xs.iter().chain(ys.iter()).copied().collect();
            prop_assert!((merged.mean() - all.mean()).abs() < 1e-6);
            prop_assert!((merged.sample_variance() - all.sample_variance()).abs() < 1e-6);
        }

        #[test]
        fn quantile_is_monotone(xs in proptest::collection::vec(-1e3..1e3f64, 1..50)) {
            let q1 = quantile(&xs, 0.25).unwrap();
            let q2 = quantile(&xs, 0.75).unwrap();
            prop_assert!(q1 <= q2 + 1e-12);
        }
    }
}
