//! Labelled experiment series: `(x, mean ± ci)` points.
//!
//! Every figure in the paper is a set of curves (one per scheme) over a
//! swept parameter. [`Series`] is the common container the experiment
//! drivers fill and print.

use crate::ci::{ConfidenceInterval, Level};
use crate::descriptive::Summary;
use std::fmt;

/// One point of a series: the swept x value and the y samples collected
/// over simulation runs.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// Swept parameter value (e.g. number of channels, utilization η).
    pub x: f64,
    /// One y sample per simulation run.
    pub samples: Vec<f64>,
}

impl SeriesPoint {
    /// Creates a point from its samples.
    pub fn new(x: f64, samples: Vec<f64>) -> Self {
        Self { x, samples }
    }

    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        self.samples.iter().copied().collect::<Summary>().mean()
    }

    /// 95% confidence interval of the samples.
    pub fn ci95(&self) -> ConfidenceInterval {
        ConfidenceInterval::from_samples(&self.samples, Level::P95)
    }
}

/// A named curve: what the paper plots as one line in a figure.
///
/// # Examples
///
/// ```
/// use fcr_stats::series::Series;
///
/// let mut s = Series::new("Proposed scheme");
/// s.push(4.0, vec![33.0, 33.4]);
/// s.push(6.0, vec![34.0, 34.4]);
/// assert_eq!(s.len(), 2);
/// assert!(s.is_monotone_increasing(0.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    name: String,
    points: Vec<SeriesPoint>,
}

impl Series {
    /// Creates an empty series with a display name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series name (legend label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, samples: Vec<f64>) {
        self.points.push(SeriesPoint::new(x, samples));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterates over points in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, SeriesPoint> {
        self.points.iter()
    }

    /// Mean y values in insertion order.
    pub fn means(&self) -> Vec<f64> {
        self.points.iter().map(SeriesPoint::mean).collect()
    }

    /// Returns `true` if the means are non-decreasing, allowing dips of
    /// up to `tolerance` (simulation noise).
    pub fn is_monotone_increasing(&self, tolerance: f64) -> bool {
        self.means().windows(2).all(|w| w[1] >= w[0] - tolerance)
    }

    /// Returns `true` if the means are non-increasing, allowing bumps of
    /// up to `tolerance`.
    pub fn is_monotone_decreasing(&self, tolerance: f64) -> bool {
        self.means().windows(2).all(|w| w[1] <= w[0] + tolerance)
    }

    /// Mean gap `self − other` averaged over matching points.
    ///
    /// # Panics
    ///
    /// Panics if the two series have different lengths or mismatched x
    /// values — comparing misaligned curves is a caller bug.
    pub fn mean_gap(&self, other: &Series) -> f64 {
        assert_eq!(self.len(), other.len(), "series length mismatch");
        let mut total = 0.0;
        for (a, b) in self.points.iter().zip(other.points.iter()) {
            assert!(
                (a.x - b.x).abs() < 1e-9,
                "series x mismatch: {} vs {}",
                a.x,
                b.x
            );
            total += a.mean() - b.mean();
        }
        total / self.len() as f64
    }
}

impl fmt::Display for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# {}", self.name)?;
        for p in &self.points {
            let ci = p.ci95();
            writeln!(
                f,
                "{:>10.4}  {:>10.4} ± {:.4}",
                p.x,
                p.mean(),
                ci.half_width()
            )?;
        }
        Ok(())
    }
}

/// Renders several series side by side as an aligned text table, the
/// format the experiment binary prints for each figure.
pub fn render_table(x_label: &str, series: &[Series]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:>12}", x_label));
    for s in series {
        out.push_str(&format!("  {:>24}", s.name()));
    }
    out.push('\n');
    let rows = series.first().map_or(0, Series::len);
    for i in 0..rows {
        let x = series[0].points[i].x;
        out.push_str(&format!("{x:>12.4}"));
        for s in series {
            let p = &s.points[i];
            let ci = p.ci95();
            out.push_str(&format!("  {:>15.3} ± {:>6.3}", p.mean(), ci.half_width()));
        }
        out.push('\n');
    }
    out
}

/// Renders several series as CSV: header `x,<name> mean,<name> ci95,…`
/// then one row per point — for piping figure data into external
/// plotting tools.
pub fn render_csv(x_label: &str, series: &[Series]) -> String {
    let mut out = String::new();
    out.push_str(x_label);
    for s in series {
        out.push_str(&format!(",{} mean,{} ci95", s.name(), s.name()));
    }
    out.push('\n');
    let rows = series.first().map_or(0, Series::len);
    for i in 0..rows {
        out.push_str(&format!("{}", series[0].points[i].x));
        for s in series {
            let p = &s.points[i];
            out.push_str(&format!(",{},{}", p.mean(), p.ci95().half_width()));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Series {
        let mut s = Series::new("demo");
        s.push(1.0, vec![10.0, 12.0]);
        s.push(2.0, vec![13.0, 15.0]);
        s.push(3.0, vec![15.0, 17.0]);
        s
    }

    #[test]
    fn push_and_iterate() {
        let s = demo();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        let xs: Vec<f64> = s.iter().map(|p| p.x).collect();
        assert_eq!(xs, vec![1.0, 2.0, 3.0]);
        assert_eq!(s.means(), vec![11.0, 14.0, 16.0]);
    }

    #[test]
    fn monotonicity_checks() {
        let s = demo();
        assert!(s.is_monotone_increasing(0.0));
        assert!(!s.is_monotone_decreasing(0.0));
        // Tolerance forgives small dips.
        let mut noisy = Series::new("noisy");
        noisy.push(1.0, vec![10.0]);
        noisy.push(2.0, vec![9.9]);
        noisy.push(3.0, vec![11.0]);
        assert!(!noisy.is_monotone_increasing(0.0));
        assert!(noisy.is_monotone_increasing(0.2));
    }

    #[test]
    fn mean_gap_between_aligned_series() {
        let a = demo();
        let mut b = Series::new("other");
        b.push(1.0, vec![9.0]);
        b.push(2.0, vec![12.0]);
        b.push(3.0, vec![14.0]);
        let gap = a.mean_gap(&b);
        assert!((gap - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mean_gap_rejects_mismatched_lengths() {
        let a = demo();
        let b = Series::new("empty");
        let _ = a.mean_gap(&b);
    }

    #[test]
    fn render_table_has_all_rows_and_headers() {
        let table = render_table("M", &[demo()]);
        assert!(table.contains("demo"));
        assert_eq!(table.lines().count(), 4);
        assert!(table.contains('±'));
    }

    #[test]
    fn display_includes_name() {
        assert!(format!("{}", demo()).contains("# demo"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = render_csv("M", &[demo()]);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("M,demo mean,demo ci95"));
        assert_eq!(csv.lines().count(), 4);
        let first_row = csv.lines().nth(1).unwrap();
        assert!(first_row.starts_with("1,11,"));
    }

    #[test]
    fn csv_of_empty_series_is_header_only() {
        let csv = render_csv("x", &[Series::new("empty")]);
        assert_eq!(csv.lines().count(), 1);
    }
}
