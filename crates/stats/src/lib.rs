//! Statistics substrate for the `fcr` workspace.
//!
//! This crate bundles the numerical utilities shared by the femtocell
//! cognitive-radio simulator and the resource-allocation library:
//!
//! * [`rng`] — deterministic, splittable random-number streams so every
//!   simulation run is reproducible from a single `u64` seed;
//! * [`descriptive`] — running means, variances, and order statistics;
//! * [`ci`] — Student-t confidence intervals (the paper reports 95%
//!   confidence intervals over 10 simulation runs);
//! * [`fairness`] — Jain's fairness index, used to quantify the
//!   "well balanced among the three users" observation in Fig. 3;
//! * [`series`] — labelled (x, y ± ci) series used by the experiment
//!   drivers to print paper-style figure data.
//!
//! # Examples
//!
//! ```
//! use fcr_stats::descriptive::Summary;
//!
//! let summary: Summary = [34.1_f64, 35.0, 34.6].iter().copied().collect();
//! assert!((summary.mean() - 34.5667).abs() < 1e-3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod ci;
pub mod descriptive;
pub mod fairness;
pub mod histogram;
pub mod rng;
pub mod series;
pub mod special;

pub use ci::ConfidenceInterval;
pub use descriptive::Summary;
pub use fairness::jain_index;
pub use histogram::Histogram;
pub use rng::SeedSequence;
pub use series::{Series, SeriesPoint};
