//! Student-t confidence intervals.
//!
//! The paper averages every plotted point over 10 simulation runs and
//! shows 95% confidence intervals ("generally negligible"); this module
//! provides the same machinery.

use crate::descriptive::Summary;
use std::fmt;

/// Two-sided critical values t*(df) for 95% confidence.
///
/// Entries 1..=30; beyond 30 degrees of freedom we fall back to the
/// normal value 1.96 (standard practice).
const T95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// Two-sided critical values t*(df) for 99% confidence.
const T99: [f64; 30] = [
    63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169, 3.106, 3.055, 3.012,
    2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779,
    2.771, 2.763, 2.756, 2.750,
];

/// Confidence level supported by [`ConfidenceInterval`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Level {
    /// 95% two-sided confidence (the paper's choice).
    #[default]
    P95,
    /// 99% two-sided confidence.
    P99,
}

impl Level {
    /// Returns the two-sided critical value for `df` degrees of freedom.
    ///
    /// # Panics
    ///
    /// Panics if `df == 0` (a confidence interval needs at least two
    /// observations).
    pub fn critical_value(self, df: u64) -> f64 {
        assert!(df >= 1, "confidence interval requires at least 2 samples");
        let table = match self {
            Level::P95 => &T95,
            Level::P99 => &T99,
        };
        if df as usize <= table.len() {
            table[df as usize - 1]
        } else {
            match self {
                Level::P95 => 1.960,
                Level::P99 => 2.576,
            }
        }
    }
}

/// A symmetric confidence interval `mean ± half_width`.
///
/// # Examples
///
/// ```
/// use fcr_stats::ci::{ConfidenceInterval, Level};
/// use fcr_stats::descriptive::Summary;
///
/// let s: Summary = [34.0_f64, 34.5, 35.0, 34.2, 34.8].into_iter().collect();
/// let ci = ConfidenceInterval::from_summary(&s, Level::P95);
/// assert!(ci.contains(s.mean()));
/// assert!(ci.half_width() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    mean: f64,
    half_width: f64,
    level: Level,
}

impl ConfidenceInterval {
    /// Builds the interval from a [`Summary`].
    ///
    /// A summary with fewer than two observations yields a degenerate
    /// interval of half-width zero centred on the mean.
    pub fn from_summary(summary: &Summary, level: Level) -> Self {
        let mean = summary.mean();
        let half_width = if summary.count() < 2 {
            0.0
        } else {
            level.critical_value(summary.count() - 1) * summary.std_error()
        };
        Self {
            mean,
            half_width,
            level,
        }
    }

    /// Builds the interval directly from samples.
    pub fn from_samples(samples: &[f64], level: Level) -> Self {
        let summary: Summary = samples.iter().copied().collect();
        Self::from_summary(&summary, level)
    }

    /// Interval centre (the sample mean).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        self.half_width
    }

    /// Lower endpoint.
    pub fn lower(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper endpoint.
    pub fn upper(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Confidence level of the interval.
    pub fn level(&self) -> Level {
        self.level
    }

    /// Returns `true` if `x` lies inside the closed interval.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lower() && x <= self.upper()
    }

    /// Returns `true` if this interval overlaps `other`.
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        self.lower() <= other.upper() && other.lower() <= self.upper()
    }
}

impl fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ± {:.3}", self.mean, self.half_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::RngExt;
    use rand::SeedableRng;

    #[test]
    fn critical_values_match_tables() {
        assert!((Level::P95.critical_value(9) - 2.262).abs() < 1e-9); // 10 runs
        assert!((Level::P95.critical_value(1) - 12.706).abs() < 1e-9);
        assert!((Level::P95.critical_value(1000) - 1.960).abs() < 1e-9);
        assert!((Level::P99.critical_value(9) - 3.250).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least 2 samples")]
    fn zero_df_panics() {
        Level::P95.critical_value(0);
    }

    #[test]
    fn degenerate_interval_for_single_sample() {
        let ci = ConfidenceInterval::from_samples(&[5.0], Level::P95);
        assert_eq!(ci.half_width(), 0.0);
        assert_eq!(ci.mean(), 5.0);
        assert!(ci.contains(5.0));
        assert!(!ci.contains(5.1));
    }

    #[test]
    fn p99_is_wider_than_p95() {
        let samples = [1.0, 2.0, 3.0, 4.0, 5.0];
        let a = ConfidenceInterval::from_samples(&samples, Level::P95);
        let b = ConfidenceInterval::from_samples(&samples, Level::P99);
        assert!(b.half_width() > a.half_width());
        assert!(b.overlaps(&a));
    }

    #[test]
    fn coverage_is_roughly_nominal() {
        // Draw many size-10 samples from a known mean and check ~95% of
        // intervals contain it. Uses a fixed seed: deterministic.
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let true_mean = 10.0;
        let trials = 2_000;
        let mut covered = 0;
        for _ in 0..trials {
            let samples: Vec<f64> = (0..10)
                .map(|_| {
                    // Approximate normal via sum of 12 uniforms (Irwin–Hall).
                    let s: f64 = (0..12).map(|_| rng.random::<f64>()).sum::<f64>() - 6.0;
                    true_mean + s
                })
                .collect();
            if ConfidenceInterval::from_samples(&samples, Level::P95).contains(true_mean) {
                covered += 1;
            }
        }
        let rate = covered as f64 / trials as f64;
        assert!((0.92..=0.98).contains(&rate), "coverage {rate}");
    }

    #[test]
    fn display_formats() {
        let ci = ConfidenceInterval::from_samples(&[1.0, 2.0, 3.0], Level::P95);
        assert!(format!("{ci}").contains('±'));
    }

    proptest! {
        #[test]
        fn interval_contains_its_mean(xs in proptest::collection::vec(-1e3..1e3f64, 2..40)) {
            let ci = ConfidenceInterval::from_samples(&xs, Level::P95);
            prop_assert!(ci.contains(ci.mean()));
            prop_assert!(ci.lower() <= ci.upper());
        }

        #[test]
        fn constant_samples_give_zero_width(x in -1e3..1e3f64, n in 2usize..20) {
            let xs = vec![x; n];
            let ci = ConfidenceInterval::from_samples(&xs, Level::P95);
            prop_assert!(ci.half_width() < 1e-9);
        }
    }
}
