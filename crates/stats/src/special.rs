//! Special functions: log-gamma and the regularized incomplete gamma
//! function, the numerical backbone of Nakagami-m fading (the
//! generalization of the Rayleigh model the paper's eq. (8) uses).
//!
//! Implementations follow the classic series/continued-fraction split
//! (Numerical Recipes §6.2) with a Lanczos log-gamma; accurate to
//! ~1e-12 over the parameter ranges the simulator uses.

/// Natural log of the gamma function for `x > 0` (Lanczos
/// approximation, g = 7, 9 coefficients).
///
/// # Panics
///
/// Panics if `x ≤ 0` or not finite.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0 && x.is_finite(), "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps the Lanczos sum in its sweet spot.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut sum = COEF[0];
    for (i, c) in COEF.iter().enumerate().skip(1) {
        sum += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + sum.ln()
}

/// Regularized lower incomplete gamma function
/// `P(a, x) = γ(a, x) / Γ(a)` for `a > 0`, `x ≥ 0`.
///
/// This is the CDF of a Gamma(shape `a`, scale 1) random variable —
/// and with `a = m`, `x = m·H/SINR̄`, the packet-loss probability of a
/// Nakagami-m fading link at threshold `H`.
///
/// # Panics
///
/// Panics if `a ≤ 0`, `x < 0`, or either is not finite.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && a.is_finite(), "gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0 && x.is_finite(), "gamma_p requires x ≥ 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_continued_fraction(a, x)
    }
}

/// Series representation, converges fast for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut n = a;
    for _ in 0..500 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    (sum.ln() + a * x.ln() - x - ln_gamma(a)).exp()
}

/// Continued fraction for the upper function `Q(a, x)`, `x ≥ a + 1`
/// (modified Lentz).
fn gamma_q_continued_fraction(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (a * x.ln() - x - ln_gamma(a)).exp() * h
}

/// Error function via the incomplete gamma identity
/// `erf(x) = sign(x)·P(1/2, x²)`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let p = gamma_p(0.5, x * x);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n−1)!
        let mut factorial = 1.0_f64;
        for n in 1..12u32 {
            if n > 1 {
                factorial *= f64::from(n - 1);
            }
            assert!(
                (ln_gamma(f64::from(n)) - factorial.ln()).abs() < 1e-10,
                "n = {n}"
            );
        }
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
        // Γ(3/2) = √π / 2.
        let expected = 0.5 * std::f64::consts::PI.sqrt();
        assert!((ln_gamma(1.5) - expected.ln()).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 − e^{−x} (the Rayleigh-power CDF of eq. (8)).
        for x in [0.0_f64, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
            let expected = 1.0 - (-x).exp();
            assert!(
                (gamma_p(1.0, x) - expected).abs() < 1e-12,
                "x = {x}: {} vs {expected}",
                gamma_p(1.0, x)
            );
        }
    }

    #[test]
    fn gamma_p_known_values() {
        // Reference values (Abramowitz & Stegun / scipy.special.gammainc).
        let cases = [
            (2.0, 2.0, 0.593_994_150_290_162),
            (3.0, 5.0, 0.875_347_980_516_918),
            (0.5, 0.5, 0.682_689_492_137_086),
            (10.0, 8.0, 0.283_375_741_712_724),
            (5.0, 15.0, 0.999_143_358_789_220),
        ];
        for (a, x, expected) in cases {
            let got = gamma_p(a, x);
            assert!(
                (got - expected).abs() < 1e-9,
                "P({a}, {x}) = {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn erf_known_values() {
        let cases = [
            (0.0, 0.0),
            (0.5, 0.520_499_877_813_047),
            (1.0, 0.842_700_792_949_715),
            (2.0, 0.995_322_265_018_953),
            (-1.0, -0.842_700_792_949_715),
        ];
        for (x, expected) in cases {
            assert!((erf(x) - expected).abs() < 1e-9, "erf({x})");
        }
    }

    proptest! {
        #[test]
        fn gamma_p_is_a_cdf(a in 0.1..50.0f64, x in 0.0..200.0f64) {
            let p = gamma_p(a, x);
            prop_assert!((0.0..=1.0).contains(&p), "P({a},{x}) = {p}");
        }

        #[test]
        fn gamma_p_is_monotone_in_x(a in 0.1..30.0f64, x1 in 0.0..100.0f64, x2 in 0.0..100.0f64) {
            let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
            prop_assert!(gamma_p(a, lo) <= gamma_p(a, hi) + 1e-12);
        }

        #[test]
        fn gamma_p_mean_is_near_half(a in 2.0..40.0f64) {
            // For moderate shapes the Gamma(a, 1) median sits just below
            // the mean a, so P(a, a) lies a little above 1/2.
            let p = gamma_p(a, a);
            prop_assert!((0.5..0.62).contains(&p), "P({a},{a}) = {p}");
        }

        #[test]
        fn erf_is_odd_and_bounded(x in -5.0..5.0f64) {
            prop_assert!((erf(x) + erf(-x)).abs() < 1e-12);
            prop_assert!(erf(x).abs() <= 1.0);
        }
    }
}
