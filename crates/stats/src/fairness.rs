//! Fairness indices.
//!
//! The paper's proportional-fair objective ("maximize the sum of the
//! logarithms of received PSNRs", after Kelly et al.) is motivated by
//! balance across users; Fig. 3 argues the proposed scheme is "well
//! balanced among the three users". Jain's index quantifies that claim.

/// Jain's fairness index of an allocation.
///
/// `J(x) = (Σx)² / (n · Σx²)`, ranges in `(0, 1]`; 1 means perfectly
/// equal, `1/n` means one user gets everything.
///
/// Returns `None` for an empty slice or when all values are zero (the
/// index is undefined there).
///
/// # Panics
///
/// Panics if any value is negative or NaN — fairness over signed
/// quantities is meaningless.
///
/// # Examples
///
/// ```
/// use fcr_stats::fairness::jain_index;
///
/// assert_eq!(jain_index(&[1.0, 1.0, 1.0]), Some(1.0));
/// let skewed = jain_index(&[3.0, 0.0, 0.0]).unwrap();
/// assert!((skewed - 1.0 / 3.0).abs() < 1e-12);
/// ```
pub fn jain_index(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for &v in values {
        assert!(
            v >= 0.0 && !v.is_nan(),
            "fairness values must be nonnegative, got {v}"
        );
        sum += v;
        sum_sq += v * v;
    }
    if sum_sq == 0.0 {
        return None;
    }
    Some(sum * sum / (values.len() as f64 * sum_sq))
}

/// The proportional-fairness utility `Σ ln(x_i)` used as the paper's
/// objective (eq. (10) with PSNR in place of rate).
///
/// Returns `None` if any value is non-positive (the log utility is
/// undefined there).
pub fn log_sum_utility(values: &[f64]) -> Option<f64> {
    let mut total = 0.0;
    for &v in values {
        if v <= 0.0 || v.is_nan() {
            return None;
        }
        total += v.ln();
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn equal_allocation_is_perfectly_fair() {
        assert_eq!(jain_index(&[5.0; 7]), Some(1.0));
    }

    #[test]
    fn single_user_monopolies_score_one_over_n() {
        for n in 1..10usize {
            let mut xs = vec![0.0; n];
            xs[0] = 2.0;
            let j = jain_index(&xs).unwrap();
            assert!((j - 1.0 / n as f64).abs() < 1e-12, "n={n} j={j}");
        }
    }

    #[test]
    fn empty_and_all_zero_are_none() {
        assert_eq!(jain_index(&[]), None);
        assert_eq!(jain_index(&[0.0, 0.0]), None);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_values_panic() {
        let _ = jain_index(&[1.0, -1.0]);
    }

    #[test]
    fn log_sum_utility_basics() {
        assert_eq!(log_sum_utility(&[1.0, 1.0]), Some(0.0));
        assert_eq!(log_sum_utility(&[0.0, 1.0]), None);
        assert_eq!(log_sum_utility(&[-1.0]), None);
        let u = log_sum_utility(&[std::f64::consts::E]).unwrap();
        assert!((u - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn jain_is_in_unit_interval(xs in proptest::collection::vec(0.01..1e3f64, 1..50)) {
            let j = jain_index(&xs).unwrap();
            let n = xs.len() as f64;
            prop_assert!(j >= 1.0 / n - 1e-12);
            prop_assert!(j <= 1.0 + 1e-12);
        }

        #[test]
        fn jain_is_scale_invariant(xs in proptest::collection::vec(0.01..1e3f64, 1..50), k in 0.1..100.0f64) {
            let j1 = jain_index(&xs).unwrap();
            let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
            let j2 = jain_index(&scaled).unwrap();
            prop_assert!((j1 - j2).abs() < 1e-9);
        }

        #[test]
        fn log_sum_prefers_balance(total in 1.0..100.0f64, skew in 0.01..0.49f64) {
            // Splitting a fixed total equally always beats a skewed split.
            let equal = log_sum_utility(&[total / 2.0, total / 2.0]).unwrap();
            let uneven = log_sum_utility(&[total * skew, total * (1.0 - skew)]).unwrap();
            prop_assert!(equal >= uneven - 1e-12);
        }
    }
}
