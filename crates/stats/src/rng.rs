//! Deterministic, splittable random-number streams.
//!
//! Every stochastic component of the simulator (primary-user Markov
//! chains, sensing errors, fading, packet losses) draws from its own
//! independent stream derived from a single master seed. This makes a
//! whole multi-run experiment reproducible from one `u64`, while keeping
//! the streams statistically independent of each other (each substream is
//! keyed by a label hashed with SplitMix64, a well-tested 64-bit mixer).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A master seed from which labelled, independent substreams are derived.
///
/// # Examples
///
/// ```
/// use fcr_stats::rng::SeedSequence;
/// use rand::RngExt;
///
/// let seeds = SeedSequence::new(42);
/// let mut fading = seeds.stream("fading", 0);
/// let mut sensing = seeds.stream("sensing", 0);
/// // Streams with different labels are different...
/// assert_ne!(fading.random::<u64>(), sensing.random::<u64>());
/// // ...and the derivation is deterministic.
/// let mut fading2 = SeedSequence::new(42).stream("fading", 0);
/// assert_eq!(fading2.random::<u64>(), SeedSequence::new(42).stream("fading", 0).random::<u64>());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// Creates a seed sequence from a master seed.
    pub fn new(master: u64) -> Self {
        Self { master }
    }

    /// Returns the master seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derives the seed for the substream identified by `(label, index)`.
    ///
    /// The label is hashed with FNV-1a and the result is mixed with the
    /// master seed and index through SplitMix64, so distinct
    /// `(label, index)` pairs land in well-separated points of the seed
    /// space.
    pub fn derive(&self, label: &str, index: u64) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV offset basis
        for byte in label.as_bytes() {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3); // FNV prime
        }
        let mut z = self
            .master
            .wrapping_add(h)
            .wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        // SplitMix64 finalizer.
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Creates a seeded [`StdRng`] for the substream `(label, index)`.
    ///
    /// `index` typically identifies a simulation run, a channel, or a
    /// user, so that e.g. run 3 of an experiment always sees the same
    /// randomness regardless of whether runs 0–2 executed before it.
    pub fn stream(&self, label: &str, index: u64) -> StdRng {
        StdRng::seed_from_u64(self.derive(label, index))
    }

    /// Derives a child [`SeedSequence`] (e.g. one per simulation run).
    pub fn child(&self, label: &str, index: u64) -> SeedSequence {
        SeedSequence::new(self.derive(label, index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;
    use std::collections::HashSet;

    #[test]
    fn derivation_is_deterministic() {
        let a = SeedSequence::new(7).derive("x", 3);
        let b = SeedSequence::new(7).derive("x", 3);
        assert_eq!(a, b);
    }

    #[test]
    fn labels_and_indices_separate_streams() {
        let s = SeedSequence::new(7);
        let mut seen = HashSet::new();
        for label in ["a", "b", "c", "fading", "sensing"] {
            for idx in 0..100 {
                assert!(
                    seen.insert(s.derive(label, idx)),
                    "collision at {label}/{idx}"
                );
            }
        }
    }

    #[test]
    fn master_seed_changes_all_streams() {
        assert_ne!(
            SeedSequence::new(1).derive("x", 0),
            SeedSequence::new(2).derive("x", 0)
        );
    }

    #[test]
    fn child_sequences_are_independent_of_parent() {
        let parent = SeedSequence::new(9);
        let child = parent.child("run", 5);
        assert_ne!(parent.derive("x", 0), child.derive("x", 0));
    }

    #[test]
    fn streams_produce_plausibly_uniform_bits() {
        let mut rng = SeedSequence::new(1234).stream("uniformity", 0);
        let n = 10_000;
        let mut ones = 0u64;
        for _ in 0..n {
            ones += u64::from(rng.random::<bool>());
        }
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "bit fraction {frac}");
    }

    #[test]
    fn master_accessor_roundtrips() {
        assert_eq!(SeedSequence::new(77).master(), 77);
    }
}
