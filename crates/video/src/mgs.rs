//! The MGS rate–PSNR model `W(R) = α + β·R` (eq. (9)).
//!
//! `α` is the base-layer quality (PSNR received with zero enhancement
//! rate) and `β` the marginal quality per Mbps of MGS enhancement data.
//! Both are per-sequence, per-codec constants; the paper cites Wien,
//! Schwarz & Oelbaum for the model and notes that `W(R)` is an *average*
//! PSNR that already folds in decoding dependencies and error
//! propagation.

use crate::error::{check_positive, VideoError};
use crate::quality::{Mbps, Psnr};

/// Linear MGS rate–quality model for one encoded sequence.
///
/// # Examples
///
/// ```
/// use fcr_video::mgs::MgsRateModel;
/// use fcr_video::quality::{Mbps, Psnr};
///
/// let model = MgsRateModel::new(Psnr::new(30.0)?, 24.0)?;
/// let w = model.psnr(Mbps::new(0.25)?);
/// assert!((w.db() - 36.0).abs() < 1e-12);
/// // Inverse: what rate reaches 36 dB?
/// let r = model.rate_for(Psnr::new(36.0)?);
/// assert!((r.value() - 0.25).abs() < 1e-12);
/// # Ok::<(), fcr_video::VideoError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MgsRateModel {
    alpha: Psnr,
    beta: f64,
}

impl MgsRateModel {
    /// Creates a model with base quality `alpha` (dB) and slope `beta`
    /// (dB per Mbps).
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::NonPositive`] if `beta` is not strictly
    /// positive — a non-increasing rate–quality curve cannot drive the
    /// allocator.
    pub fn new(alpha: Psnr, beta: f64) -> Result<Self, VideoError> {
        Ok(Self {
            alpha,
            beta: check_positive("beta", beta)?,
        })
    }

    /// Base-layer quality α.
    pub fn alpha(&self) -> Psnr {
        self.alpha
    }

    /// Slope β in dB per Mbps.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Reconstructed quality at received rate `rate` (eq. (9)).
    pub fn psnr(&self, rate: Mbps) -> Psnr {
        Psnr::new(self.alpha.db() + self.beta * rate.value())
            .expect("alpha ≥ 0 and beta·rate ≥ 0 imply a valid PSNR")
    }

    /// Inverse of eq. (9): the rate needed to reach `target` quality.
    /// Targets at or below α need zero enhancement rate.
    pub fn rate_for(&self, target: Psnr) -> Mbps {
        let gap = (target.db() - self.alpha.db()).max(0.0);
        Mbps::new(gap / self.beta).expect("nonnegative by construction")
    }

    /// The per-slot quality-increment constant of problem (10):
    /// `R_{i,j} = β_j · B_i / T` in dB per (full slot of bandwidth
    /// `B_i`), where `T` is the GOP delivery deadline in slots.
    ///
    /// When a user receives a fraction ρ of slot `t` on a resource with
    /// bandwidth `B_i`, its PSNR advances by `ρ · R_{i,j}` (times the
    /// loss indicator ξ and, on the FBS side, the channel count `G_t`).
    ///
    /// # Panics
    ///
    /// Panics if `deadline_slots` is zero.
    pub fn slot_increment(&self, bandwidth: Mbps, deadline_slots: u32) -> Psnr {
        assert!(deadline_slots > 0, "GOP deadline must be at least one slot");
        Psnr::new(self.beta * bandwidth.value() / f64::from(deadline_slots))
            .expect("nonnegative by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model() -> MgsRateModel {
        MgsRateModel::new(Psnr::new(30.0).unwrap(), 24.0).unwrap()
    }

    #[test]
    fn eq9_at_zero_rate_gives_alpha() {
        assert_eq!(model().psnr(Mbps::ZERO), model().alpha());
    }

    #[test]
    fn eq9_is_linear() {
        let m = model();
        let w1 = m.psnr(Mbps::new(0.1).unwrap()).db();
        let w2 = m.psnr(Mbps::new(0.2).unwrap()).db();
        let w3 = m.psnr(Mbps::new(0.3).unwrap()).db();
        assert!((w2 - w1 - (w3 - w2)).abs() < 1e-12);
        assert!((w2 - w1 - 2.4).abs() < 1e-12);
    }

    #[test]
    fn inverse_roundtrips() {
        let m = model();
        for r in [0.0, 0.05, 0.3, 1.0] {
            let rate = Mbps::new(r).unwrap();
            let back = m.rate_for(m.psnr(rate));
            assert!((back.value() - r).abs() < 1e-12, "r={r}");
        }
        // Below-alpha targets clamp to zero rate.
        assert_eq!(m.rate_for(Psnr::new(10.0).unwrap()), Mbps::ZERO);
    }

    #[test]
    fn slot_increment_matches_formula() {
        let m = model();
        // R = β·B/T = 24·0.3/10 = 0.72 dB per full slot.
        let inc = m.slot_increment(Mbps::new(0.3).unwrap(), 10);
        assert!((inc.db() - 0.72).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_deadline_panics() {
        let _ = model().slot_increment(Mbps::new(0.3).unwrap(), 0);
    }

    #[test]
    fn construction_validates_beta() {
        assert!(MgsRateModel::new(Psnr::new(30.0).unwrap(), 0.0).is_err());
        assert!(MgsRateModel::new(Psnr::new(30.0).unwrap(), -3.0).is_err());
    }

    #[test]
    fn accessors() {
        let m = model();
        assert_eq!(m.alpha().db(), 30.0);
        assert_eq!(m.beta(), 24.0);
    }

    proptest! {
        #[test]
        fn psnr_is_monotone_in_rate(
            alpha in 20.0..40.0f64,
            beta in 1.0..50.0f64,
            r1 in 0.0..5.0f64,
            r2 in 0.0..5.0f64,
        ) {
            let m = MgsRateModel::new(Psnr::new(alpha).unwrap(), beta).unwrap();
            let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
            let w_lo = m.psnr(Mbps::new(lo).unwrap());
            let w_hi = m.psnr(Mbps::new(hi).unwrap());
            prop_assert!(w_lo <= w_hi);
        }

        #[test]
        fn total_gop_increment_is_deadline_invariant(
            beta in 1.0..50.0f64,
            bw in 0.01..2.0f64,
            t in 1u32..60,
        ) {
            // T slots at full share must add β·B regardless of T.
            let m = MgsRateModel::new(Psnr::new(30.0).unwrap(), beta).unwrap();
            let inc = m.slot_increment(Mbps::new(bw).unwrap(), t);
            let total = inc.db() * f64::from(t);
            prop_assert!((total - beta * bw).abs() < 1e-9);
        }
    }
}
