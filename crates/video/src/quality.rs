//! Strongly-typed video-quality and rate quantities.
//!
//! PSNR (decibels) and bit rate (Mbps) are both `f64` under the hood;
//! the newtypes keep the optimizer from ever adding a rate to a PSNR
//! without going through the rate–PSNR model.

use crate::error::{check_nonnegative, VideoError};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// Peak signal-to-noise ratio in decibels.
///
/// # Examples
///
/// ```
/// use fcr_video::quality::Psnr;
///
/// let base = Psnr::new(30.0)?;
/// let improved = base + Psnr::new(4.3)?;
/// assert!((improved.db() - 34.3).abs() < 1e-12);
/// # Ok::<(), fcr_video::VideoError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Psnr(f64);

impl Psnr {
    /// Creates a PSNR value.
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::Negative`] if `db` is negative or not
    /// finite; a negative PSNR has no physical meaning for video quality.
    pub fn new(db: f64) -> Result<Self, VideoError> {
        Ok(Self(check_nonnegative("psnr_db", db)?))
    }

    /// Zero decibels.
    pub const ZERO: Psnr = Psnr(0.0);

    /// The value in decibels.
    pub fn db(&self) -> f64 {
        self.0
    }

    /// Natural logarithm of the dB value — the per-user term of the
    /// paper's proportional-fair objective `Σ log(W_j)`.
    ///
    /// # Panics
    ///
    /// Panics if the PSNR is zero (log-utility is undefined); sessions
    /// always start from `α > 0` so this indicates a construction bug.
    pub fn log_utility(&self) -> f64 {
        assert!(self.0 > 0.0, "log utility of zero PSNR");
        self.0.ln()
    }

    /// Mean squared error of an 8-bit video implied by this PSNR:
    /// `MSE = 255² / 10^(PSNR/10)`.
    pub fn to_mse(&self) -> f64 {
        255.0 * 255.0 / 10f64.powf(self.0 / 10.0)
    }

    /// PSNR of an 8-bit video with the given mean squared error:
    /// `PSNR = 10·log10(255²/MSE)`.
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::NonPositive`] if `mse` is not strictly
    /// positive (a zero-MSE reconstruction has infinite PSNR).
    pub fn from_mse(mse: f64) -> Result<Self, VideoError> {
        if mse <= 0.0 || !mse.is_finite() {
            return Err(VideoError::NonPositive {
                name: "mse",
                value: mse,
            });
        }
        let db = 10.0 * (255.0 * 255.0 / mse).log10();
        // Very large MSE (> 255²) implies a nonsensical negative PSNR.
        Psnr::new(db)
    }
}

impl Add for Psnr {
    type Output = Psnr;
    fn add(self, rhs: Psnr) -> Psnr {
        Psnr(self.0 + rhs.0)
    }
}

impl AddAssign for Psnr {
    fn add_assign(&mut self, rhs: Psnr) {
        self.0 += rhs.0;
    }
}

impl Sub for Psnr {
    type Output = Psnr;
    /// Saturating difference: quality gaps below zero clamp to zero.
    fn sub(self, rhs: Psnr) -> Psnr {
        Psnr((self.0 - rhs.0).max(0.0))
    }
}

impl Sum for Psnr {
    fn sum<I: Iterator<Item = Psnr>>(iter: I) -> Psnr {
        iter.fold(Psnr::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Psnr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dB", self.0)
    }
}

/// A bit rate in megabits per second.
///
/// # Examples
///
/// ```
/// use fcr_video::quality::Mbps;
///
/// let b0 = Mbps::new(0.3)?;
/// assert_eq!(b0.value(), 0.3);
/// # Ok::<(), fcr_video::VideoError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Mbps(f64);

impl Mbps {
    /// Creates a rate.
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::Negative`] if `value` is negative or not
    /// finite.
    pub fn new(value: f64) -> Result<Self, VideoError> {
        Ok(Self(check_nonnegative("mbps", value)?))
    }

    /// Zero rate.
    pub const ZERO: Mbps = Mbps(0.0);

    /// The value in Mbps.
    pub fn value(&self) -> f64 {
        self.0
    }

    /// Scales the rate by a nonnegative factor (e.g. a time share ρ or
    /// an expected channel count `G_t`).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn scale(&self, factor: f64) -> Mbps {
        assert!(
            factor >= 0.0 && !factor.is_nan(),
            "invalid scale factor {factor}"
        );
        Mbps(self.0 * factor)
    }
}

impl Add for Mbps {
    type Output = Mbps;
    fn add(self, rhs: Mbps) -> Mbps {
        Mbps(self.0 + rhs.0)
    }
}

impl AddAssign for Mbps {
    fn add_assign(&mut self, rhs: Mbps) {
        self.0 += rhs.0;
    }
}

impl Sum for Mbps {
    fn sum<I: Iterator<Item = Mbps>>(iter: I) -> Mbps {
        iter.fold(Mbps::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Mbps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} Mbps", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn psnr_construction_and_accessors() {
        let p = Psnr::new(34.5).unwrap();
        assert_eq!(p.db(), 34.5);
        assert!(Psnr::new(-1.0).is_err());
        assert!(Psnr::new(f64::INFINITY).is_err());
        assert_eq!(Psnr::ZERO.db(), 0.0);
    }

    #[test]
    fn psnr_arithmetic() {
        let a = Psnr::new(30.0).unwrap();
        let b = Psnr::new(4.0).unwrap();
        assert_eq!((a + b).db(), 34.0);
        assert_eq!((b - a).db(), 0.0, "saturating subtraction");
        assert_eq!((a - b).db(), 26.0);
        let mut c = a;
        c += b;
        assert_eq!(c.db(), 34.0);
        let total: Psnr = [a, b].into_iter().sum();
        assert_eq!(total.db(), 34.0);
    }

    #[test]
    fn psnr_ordering_and_display() {
        assert!(Psnr::new(30.0).unwrap() < Psnr::new(31.0).unwrap());
        assert_eq!(format!("{}", Psnr::new(34.25).unwrap()), "34.25 dB");
    }

    #[test]
    fn log_utility_matches_ln() {
        let p = Psnr::new(std::f64::consts::E).unwrap();
        assert!((p.log_utility() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "log utility of zero")]
    fn log_utility_of_zero_panics() {
        let _ = Psnr::ZERO.log_utility();
    }

    #[test]
    fn mbps_construction_and_scaling() {
        let r = Mbps::new(0.3).unwrap();
        assert_eq!(r.value(), 0.3);
        assert!((r.scale(0.5).value() - 0.15).abs() < 1e-12);
        assert_eq!(r.scale(0.0), Mbps::ZERO);
        assert!(Mbps::new(-0.1).is_err());
    }

    #[test]
    #[should_panic(expected = "invalid scale factor")]
    fn negative_scale_panics() {
        let _ = Mbps::new(1.0).unwrap().scale(-1.0);
    }

    #[test]
    fn mbps_sum_and_display() {
        let total: Mbps = [Mbps::new(0.1).unwrap(), Mbps::new(0.2).unwrap()]
            .into_iter()
            .sum();
        assert!((total.value() - 0.3).abs() < 1e-12);
        assert_eq!(format!("{}", Mbps::new(0.3).unwrap()), "0.300 Mbps");
    }

    #[test]
    fn psnr_mse_conversions() {
        // 8-bit identity cases: PSNR 48.13 dB ↔ MSE 1.0.
        let p = Psnr::from_mse(1.0).unwrap();
        assert!((p.db() - 48.1308).abs() < 1e-3);
        assert!((p.to_mse() - 1.0).abs() < 1e-9);
        // Typical streaming quality: 35 dB ≈ MSE 20.5.
        let q = Psnr::new(35.0).unwrap();
        assert!((q.to_mse() - 20.56).abs() < 0.01);
        // Errors.
        assert!(Psnr::from_mse(0.0).is_err());
        assert!(Psnr::from_mse(-5.0).is_err());
        assert!(Psnr::from_mse(f64::INFINITY).is_err());
        // MSE larger than 255² would need a negative PSNR.
        assert!(Psnr::from_mse(100_000.0).is_err());
    }

    proptest! {
        #[test]
        fn psnr_mse_roundtrips(db in 0.1..60.0f64) {
            let p = Psnr::new(db).unwrap();
            let back = Psnr::from_mse(p.to_mse()).unwrap();
            prop_assert!((back.db() - db).abs() < 1e-9);
        }

        #[test]
        fn higher_psnr_means_lower_mse(a in 0.0..60.0f64, b in 0.0..60.0f64) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let mse_lo = Psnr::new(lo).unwrap().to_mse();
            let mse_hi = Psnr::new(hi).unwrap().to_mse();
            prop_assert!(mse_hi <= mse_lo + 1e-12);
        }

        #[test]
        fn psnr_addition_is_commutative(a in 0.0..100.0f64, b in 0.0..100.0f64) {
            let x = Psnr::new(a).unwrap();
            let y = Psnr::new(b).unwrap();
            prop_assert_eq!(x + y, y + x);
        }

        #[test]
        fn mbps_scale_composes(r in 0.0..10.0f64, f1 in 0.0..5.0f64, f2 in 0.0..5.0f64) {
            let rate = Mbps::new(r).unwrap();
            let a = rate.scale(f1).scale(f2).value();
            let b = rate.scale(f1 * f2).value();
            prop_assert!((a - b).abs() < 1e-9);
        }
    }
}
