//! NAL-unit packetization and the significance-ordered transmission
//! queue.
//!
//! MGS scalability is *Network Abstraction Layer unit*-grained: the
//! encoder emits, per GOP, one base-layer unit followed by a ladder of
//! enhancement units, each refining the reconstruction. Section III-E
//! prescribes the transmission discipline this module implements:
//! "Video packets are transmitted in the decreasing order of their
//! significances in improving the quality of reconstructed video, with
//! retransmissions if necessary. Overdue packets will be discarded."
//!
//! The optimizer in `fcr-core` works at the rate level (eq. (9) is linear
//! in rate); this packet layer exists so examples and the simulator can
//! account for unit-level delivery, retransmission, and deadline
//! expiry — the mechanism that makes the MGS model's "received rate"
//! concrete.

use crate::error::VideoError;
use crate::gop::GopConfig;
use crate::mgs::MgsRateModel;
use crate::quality::{Mbps, Psnr};
use std::collections::VecDeque;

/// One NAL unit of an MGS-encoded GOP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NalUnit {
    /// Which GOP this unit belongs to.
    pub gop_index: u64,
    /// 0 = base layer; `1..` = MGS enhancement rungs, most significant
    /// first.
    pub layer: u16,
    /// Payload size in bits.
    pub size_bits: u64,
    /// Marginal quality this unit contributes when decoded (requires all
    /// lower layers of the same GOP, which the in-order queue
    /// guarantees).
    pub psnr_gain: Psnr,
    /// Absolute slot index after which the unit is overdue.
    pub deadline_slot: u64,
}

impl NalUnit {
    /// Returns `true` if the unit is the GOP's base layer.
    pub fn is_base_layer(&self) -> bool {
        self.layer == 0
    }

    /// Returns `true` if the unit can still be delivered at
    /// `current_slot`.
    pub fn is_live(&self, current_slot: u64) -> bool {
        current_slot <= self.deadline_slot
    }
}

/// Splits each GOP of an MGS stream into significance-ordered NAL units.
///
/// # Examples
///
/// ```
/// use fcr_video::packet::Packetizer;
/// use fcr_video::sequences::Sequence;
/// use fcr_video::quality::Mbps;
///
/// let p = Packetizer::new(
///     Sequence::Bus.model(),
///     Sequence::Bus.gop(),
///     Mbps::new(0.5)?, // full-quality enhancement rate
///     8,               // MGS rungs per GOP
/// )?;
/// let units = p.packetize(0, 0);
/// assert_eq!(units.len(), 9); // base + 8 enhancement rungs
/// assert!(units[0].is_base_layer());
/// # Ok::<(), fcr_video::VideoError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packetizer {
    model: MgsRateModel,
    gop: GopConfig,
    enhancement_rate: Mbps,
    rungs: u16,
}

impl Packetizer {
    /// Creates a packetizer for one encoded stream.
    ///
    /// `enhancement_rate` is the rate of the full MGS enhancement ladder
    /// (per GOP-second); `rungs` is how many NAL units it is split into
    /// (MGS granularity — the paper contrasts this with FGS's
    /// bit-level granularity).
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::NonPositive`] if `rungs` is zero or
    /// `enhancement_rate` is zero.
    pub fn new(
        model: MgsRateModel,
        gop: GopConfig,
        enhancement_rate: Mbps,
        rungs: u16,
    ) -> Result<Self, VideoError> {
        if rungs == 0 {
            return Err(VideoError::NonPositive {
                name: "rungs",
                value: 0.0,
            });
        }
        if enhancement_rate.value() <= 0.0 {
            return Err(VideoError::NonPositive {
                name: "enhancement_rate",
                value: enhancement_rate.value(),
            });
        }
        Ok(Self {
            model,
            gop,
            enhancement_rate,
            rungs,
        })
    }

    /// Number of enhancement rungs per GOP.
    pub fn rungs(&self) -> u16 {
        self.rungs
    }

    /// GOP duration in seconds (frames / 30 fps), the horizon the
    /// enhancement rate is integrated over.
    pub fn gop_seconds(&self) -> f64 {
        f64::from(self.gop.frames()) / 30.0
    }

    /// Emits the NAL units of GOP `gop_index`, most significant first.
    ///
    /// `first_slot` is the absolute index of the GOP's first
    /// transmission slot; every unit carries the deadline
    /// `first_slot + T − 1`.
    pub fn packetize(&self, gop_index: u64, first_slot: u64) -> Vec<NalUnit> {
        let deadline = first_slot + u64::from(self.gop.deadline_slots()) - 1;
        let gop_seconds = self.gop_seconds();
        let rung_rate = self.enhancement_rate.value() / f64::from(self.rungs);
        let rung_bits = (rung_rate * 1e6 * gop_seconds).round() as u64;
        let rung_gain = Psnr::new(self.model.beta() * rung_rate).expect("nonnegative");

        let mut units = Vec::with_capacity(usize::from(self.rungs) + 1);
        // Base layer: carries α; size modeled as one rung's worth of bits
        // (base layers of MGS streams are small relative to enhancement).
        units.push(NalUnit {
            gop_index,
            layer: 0,
            size_bits: rung_bits,
            psnr_gain: self.model.alpha(),
            deadline_slot: deadline,
        });
        for layer in 1..=self.rungs {
            units.push(NalUnit {
                gop_index,
                layer,
                size_bits: rung_bits,
                psnr_gain: rung_gain,
                deadline_slot: deadline,
            });
        }
        units
    }
}

/// Statistics the queue keeps about unit-level delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Units delivered (acknowledged).
    pub delivered: u64,
    /// Units discarded at their deadline.
    pub expired: u64,
    /// Delivery attempts that failed and will be retransmitted.
    pub retransmissions: u64,
}

/// Significance-ordered transmission queue with deadline expiry.
///
/// Units are served strictly in the order the packetizer emitted them
/// (decreasing significance); a failed attempt leaves the unit at the
/// head for retransmission; [`TransmissionQueue::expire`] drops overdue
/// units.
#[derive(Debug, Clone, Default)]
pub struct TransmissionQueue {
    queue: VecDeque<NalUnit>,
    delivered_gain: Psnr,
    stats: QueueStats,
}

impl TransmissionQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a GOP's units (already significance-ordered).
    pub fn enqueue_gop(&mut self, units: Vec<NalUnit>) {
        self.queue.extend(units);
    }

    /// Number of queued units.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The next unit to send, if any (highest remaining significance).
    pub fn head(&self) -> Option<&NalUnit> {
        self.queue.front()
    }

    /// Records one transmission attempt of the head unit.
    ///
    /// `success` is the realized loss indicator ξ; on success the unit is
    /// removed and its quality gain credited, on failure it stays for
    /// retransmission. Returns the unit if it was delivered.
    pub fn attempt(&mut self, success: bool) -> Option<NalUnit> {
        if success {
            let unit = self.queue.pop_front()?;
            self.delivered_gain += unit.psnr_gain;
            self.stats.delivered += 1;
            Some(unit)
        } else {
            if !self.queue.is_empty() {
                self.stats.retransmissions += 1;
            }
            None
        }
    }

    /// Discards every queued unit whose deadline has passed at
    /// `current_slot`; returns how many were dropped.
    pub fn expire(&mut self, current_slot: u64) -> usize {
        let before = self.queue.len();
        self.queue.retain(|u| u.is_live(current_slot));
        let dropped = before - self.queue.len();
        self.stats.expired += dropped as u64;
        dropped
    }

    /// Total quality credited from delivered units.
    pub fn delivered_gain(&self) -> Psnr {
        self.delivered_gain
    }

    /// Delivery statistics.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequences::Sequence;
    use proptest::prelude::*;

    fn packetizer() -> Packetizer {
        Packetizer::new(
            Sequence::Bus.model(),
            Sequence::Bus.gop(),
            Mbps::new(0.5).unwrap(),
            8,
        )
        .unwrap()
    }

    #[test]
    fn packetize_emits_base_then_enhancements() {
        let units = packetizer().packetize(3, 100);
        assert_eq!(units.len(), 9);
        assert!(units[0].is_base_layer());
        for (i, u) in units.iter().enumerate() {
            assert_eq!(u.layer as usize, i);
            assert_eq!(u.gop_index, 3);
            assert_eq!(u.deadline_slot, 109); // 100 + T(=10) − 1
        }
    }

    #[test]
    fn enhancement_gains_sum_to_beta_times_rate() {
        let p = packetizer();
        let units = p.packetize(0, 0);
        let total: f64 = units[1..].iter().map(|u| u.psnr_gain.db()).sum();
        // β·R = 24 · 0.5 = 12 dB across the full ladder.
        assert!((total - 12.0).abs() < 1e-9, "total {total}");
        // Base layer carries α.
        assert!((units[0].psnr_gain.db() - 30.2).abs() < 1e-12);
    }

    #[test]
    fn unit_sizes_match_rate_and_gop_duration() {
        let p = packetizer();
        let units = p.packetize(0, 0);
        // GOP of 16 frames at 30 fps = 0.5333 s; 0.5 Mbps / 8 rungs each.
        let expected_bits = (0.5_f64 / 8.0 * 1e6 * (16.0 / 30.0)).round() as u64;
        assert!(units.iter().all(|u| u.size_bits == expected_bits));
        assert!((p.gop_seconds() - 16.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn packetizer_validation() {
        let m = Sequence::Bus.model();
        let g = Sequence::Bus.gop();
        assert!(Packetizer::new(m, g, Mbps::new(0.5).unwrap(), 0).is_err());
        assert!(Packetizer::new(m, g, Mbps::ZERO, 8).is_err());
    }

    #[test]
    fn queue_serves_in_significance_order() {
        let mut q = TransmissionQueue::new();
        q.enqueue_gop(packetizer().packetize(0, 0));
        assert_eq!(q.len(), 9);
        let first = q.attempt(true).unwrap();
        assert!(first.is_base_layer());
        let second = q.attempt(true).unwrap();
        assert_eq!(second.layer, 1);
        assert_eq!(q.stats().delivered, 2);
    }

    #[test]
    fn failed_attempts_retransmit_the_head() {
        let mut q = TransmissionQueue::new();
        q.enqueue_gop(packetizer().packetize(0, 0));
        assert!(q.attempt(false).is_none());
        assert!(q.attempt(false).is_none());
        assert_eq!(q.stats().retransmissions, 2);
        let delivered = q.attempt(true).unwrap();
        assert!(delivered.is_base_layer(), "head must not change on failure");
    }

    #[test]
    fn expire_drops_only_overdue_units() {
        let p = packetizer();
        let mut q = TransmissionQueue::new();
        q.enqueue_gop(p.packetize(0, 0)); // deadline slot 9
        q.enqueue_gop(p.packetize(1, 10)); // deadline slot 19
        assert_eq!(q.len(), 18);
        let dropped = q.expire(10); // GOP 0 overdue
        assert_eq!(dropped, 9);
        assert_eq!(q.len(), 9);
        assert_eq!(q.head().unwrap().gop_index, 1);
        assert_eq!(q.stats().expired, 9);
        assert_eq!(q.expire(10), 0, "idempotent at same slot");
    }

    #[test]
    fn delivered_gain_accumulates() {
        let mut q = TransmissionQueue::new();
        q.enqueue_gop(packetizer().packetize(0, 0));
        q.attempt(true);
        q.attempt(true);
        let expected = 30.2 + 24.0 * 0.5 / 8.0;
        assert!((q.delivered_gain().db() - expected).abs() < 1e-9);
    }

    #[test]
    fn empty_queue_attempt_is_none() {
        let mut q = TransmissionQueue::new();
        assert!(q.attempt(true).is_none());
        assert!(q.attempt(false).is_none());
        assert_eq!(
            q.stats().retransmissions,
            0,
            "no retransmission counted on empty queue"
        );
        assert!(q.head().is_none());
        assert!(q.is_empty());
    }

    proptest! {
        #[test]
        fn conservation_of_units(
            successes in proptest::collection::vec(proptest::bool::ANY, 0..40),
            expire_at in 0u64..20,
        ) {
            let p = packetizer();
            let mut q = TransmissionQueue::new();
            q.enqueue_gop(p.packetize(0, 0));
            let initial = q.len() as u64;
            for s in successes {
                q.attempt(s);
            }
            let dropped = q.expire(expire_at) as u64;
            let stats = q.stats();
            prop_assert_eq!(stats.delivered + dropped + q.len() as u64, initial);
        }
    }
}
