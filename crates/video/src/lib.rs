//! MGS scalable-video substrate (Section III-E of Hu & Mao,
//! ICDCS 2011).
//!
//! The paper streams H.264/SVC **medium grain scalability (MGS)** videos
//! and models the quality of the reconstructed video with the linear
//! rate–PSNR law `W(R) = α + β·R` (eq. (9)), where `R` is the received
//! rate and `(α, β)` are per-sequence codec constants. This crate
//! provides:
//!
//! * [`quality`] — strongly-typed [`quality::Psnr`] and [`quality::Mbps`]
//!   newtypes so decibels and megabits cannot be confused;
//! * [`mgs`] — the rate–PSNR model itself, plus the per-slot PSNR
//!   increment constants `R_{i,j} = β_j·B_i/T` used by problem (10);
//! * [`sequences`] — presets for the CIF test sequences the paper
//!   streams (Bus, Mobile, Harbor) and a few extras;
//! * [`gop`] — group-of-pictures structure and the `T`-slot delivery
//!   deadline;
//! * [`packet`] — NAL-unit packetization with significance ordering
//!   ("video packets are transmitted in the decreasing order of their
//!   significances");
//! * [`session`] — the per-user PSNR recursion
//!   `W^t = W^{t−1} + ξ·ρ·R` over a GOP, the quantity the whole
//!   optimization maximizes.
//!
//! # Examples
//!
//! ```
//! use fcr_video::sequences::Sequence;
//! use fcr_video::quality::Mbps;
//!
//! let bus = Sequence::Bus.model();
//! let w = bus.psnr(Mbps::new(0.3)?);
//! assert!(w.db() > bus.alpha().db());
//! # Ok::<(), fcr_video::VideoError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod gop;
pub mod mgs;
pub mod packet;
pub mod quality;
pub mod sequences;
pub mod session;

mod error;

pub use error::VideoError;
pub use gop::{GopClock, GopConfig};
pub use mgs::MgsRateModel;
pub use packet::{NalUnit, Packetizer, TransmissionQueue};
pub use quality::{Mbps, Psnr};
pub use sequences::{Scalability, Sequence};
pub use session::VideoSession;
