//! Error type for video-model construction.

use std::error::Error;
use std::fmt;

/// Error returned when a video model is constructed with an invalid
/// parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum VideoError {
    /// A quantity that must be nonnegative and finite was not.
    Negative {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A quantity that must be strictly positive was not.
    NonPositive {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for VideoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VideoError::Negative { name, value } => {
                write!(
                    f,
                    "parameter `{name}` must be nonnegative and finite, got {value}"
                )
            }
            VideoError::NonPositive { name, value } => {
                write!(f, "parameter `{name}` must be positive, got {value}")
            }
        }
    }
}

impl Error for VideoError {}

pub(crate) fn check_nonnegative(name: &'static str, value: f64) -> Result<f64, VideoError> {
    if value >= 0.0 && value.is_finite() {
        Ok(value)
    } else {
        Err(VideoError::Negative { name, value })
    }
}

pub(crate) fn check_positive(name: &'static str, value: f64) -> Result<f64, VideoError> {
    if value > 0.0 && value.is_finite() {
        Ok(value)
    } else {
        Err(VideoError::NonPositive { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_helpers() {
        assert!(check_nonnegative("x", 0.0).is_ok());
        assert!(check_nonnegative("x", -1.0).is_err());
        assert!(check_nonnegative("x", f64::NAN).is_err());
        assert!(check_positive("x", 1.0).is_ok());
        assert!(check_positive("x", 0.0).is_err());
    }

    #[test]
    fn display_is_informative() {
        let e = check_positive("beta", -3.0).unwrap_err();
        assert!(format!("{e}").contains("beta"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<VideoError>();
    }
}
