//! Group-of-pictures structure and the real-time delivery deadline.
//!
//! "Due to real-time constraint, each Group of Pictures (GOP) of a video
//! stream must be delivered in the next `T` time slots … Overdue packets
//! will be discarded." (Section III-E). [`GopConfig`] carries the static
//! structure; [`GopClock`] tracks which slot of which GOP the simulation
//! is in and signals deadline boundaries.

use crate::error::VideoError;

/// Static GOP parameters: frames per GOP and the delivery deadline `T`
/// in time slots.
///
/// # Examples
///
/// ```
/// use fcr_video::gop::GopConfig;
///
/// let g = GopConfig::new(16, 10)?; // the paper's values
/// assert_eq!(g.frames(), 16);
/// assert_eq!(g.deadline_slots(), 10);
/// # Ok::<(), fcr_video::VideoError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GopConfig {
    frames: u32,
    deadline_slots: u32,
}

impl GopConfig {
    /// Creates a GOP configuration.
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::NonPositive`] if either parameter is zero.
    pub fn new(frames: u32, deadline_slots: u32) -> Result<Self, VideoError> {
        if frames == 0 {
            return Err(VideoError::NonPositive {
                name: "frames",
                value: 0.0,
            });
        }
        if deadline_slots == 0 {
            return Err(VideoError::NonPositive {
                name: "deadline_slots",
                value: 0.0,
            });
        }
        Ok(Self {
            frames,
            deadline_slots,
        })
    }

    /// Frames per GOP (16 in the paper).
    pub fn frames(&self) -> u32 {
        self.frames
    }

    /// Delivery deadline `T` in slots (10 in the paper).
    pub fn deadline_slots(&self) -> u32 {
        self.deadline_slots
    }
}

/// Tracks GOP progress across time slots.
///
/// # Examples
///
/// ```
/// use fcr_video::gop::{GopClock, GopConfig};
///
/// let mut clock = GopClock::new(GopConfig::new(16, 3)?);
/// assert_eq!(clock.slot_in_gop(), 0);
/// assert!(!clock.advance()); // slot 1 of 3
/// assert!(!clock.advance()); // slot 2 of 3
/// assert!(clock.advance());  // deadline: GOP complete
/// assert_eq!(clock.completed_gops(), 1);
/// assert_eq!(clock.slot_in_gop(), 0);
/// # Ok::<(), fcr_video::VideoError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GopClock {
    config: GopConfig,
    slot_in_gop: u32,
    completed: u64,
}

impl GopClock {
    /// Creates a clock at slot 0 of GOP 0.
    pub fn new(config: GopConfig) -> Self {
        Self {
            config,
            slot_in_gop: 0,
            completed: 0,
        }
    }

    /// The GOP configuration.
    pub fn config(&self) -> GopConfig {
        self.config
    }

    /// Slot index within the current GOP, `0..T`.
    pub fn slot_in_gop(&self) -> u32 {
        self.slot_in_gop
    }

    /// Paper-style 1-based slot index `t ∈ 1..=T` of the *next*
    /// transmission slot.
    pub fn paper_slot(&self) -> u32 {
        self.slot_in_gop + 1
    }

    /// Number of GOP deadlines passed so far.
    pub fn completed_gops(&self) -> u64 {
        self.completed
    }

    /// Remaining slots (including the one about to run) before the
    /// deadline.
    pub fn slots_remaining(&self) -> u32 {
        self.config.deadline_slots - self.slot_in_gop
    }

    /// Returns `true` if the slot about to run is the last before the
    /// deadline.
    pub fn is_last_slot(&self) -> bool {
        self.slots_remaining() == 1
    }

    /// Advances one slot; returns `true` when this crossing completes a
    /// GOP (the deadline fires and the per-GOP PSNR should be recorded).
    pub fn advance(&mut self) -> bool {
        self.slot_in_gop += 1;
        if self.slot_in_gop == self.config.deadline_slots {
            self.slot_in_gop = 0;
            self.completed += 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn config_validation() {
        assert!(GopConfig::new(16, 10).is_ok());
        assert!(GopConfig::new(0, 10).is_err());
        assert!(GopConfig::new(16, 0).is_err());
    }

    #[test]
    fn clock_cycles_through_deadlines() {
        let mut clock = GopClock::new(GopConfig::new(16, 10).unwrap());
        let mut deadlines = 0;
        for slot in 0..35 {
            assert_eq!(clock.slot_in_gop(), (slot % 10) as u32);
            assert_eq!(clock.paper_slot(), (slot % 10) as u32 + 1);
            if clock.advance() {
                deadlines += 1;
            }
        }
        assert_eq!(deadlines, 3);
        assert_eq!(clock.completed_gops(), 3);
        assert_eq!(clock.slot_in_gop(), 5);
    }

    #[test]
    fn last_slot_detection() {
        let mut clock = GopClock::new(GopConfig::new(16, 3).unwrap());
        assert!(!clock.is_last_slot());
        assert_eq!(clock.slots_remaining(), 3);
        clock.advance();
        clock.advance();
        assert!(clock.is_last_slot());
        assert_eq!(clock.slots_remaining(), 1);
    }

    #[test]
    fn single_slot_deadline_fires_every_advance() {
        let mut clock = GopClock::new(GopConfig::new(16, 1).unwrap());
        for _ in 0..5 {
            assert!(clock.is_last_slot());
            assert!(clock.advance());
        }
        assert_eq!(clock.completed_gops(), 5);
    }

    proptest! {
        #[test]
        fn completed_gops_counts_slots_over_t(t in 1u32..30, steps in 0u32..300) {
            let mut clock = GopClock::new(GopConfig::new(16, t).unwrap());
            for _ in 0..steps {
                clock.advance();
            }
            prop_assert_eq!(clock.completed_gops(), u64::from(steps / t));
            prop_assert_eq!(clock.slot_in_gop(), steps % t);
        }
    }
}
