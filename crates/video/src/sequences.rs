//! Preset rate–PSNR parameters for the standard CIF test sequences.
//!
//! The paper streams three Common Intermediate Format (352×288, 30 fps)
//! sequences with JSVM 9.13: **Bus** to user 1, **Mobile** to user 2 and
//! **Harbor** to user 3, all with GOP size 16. We do not ship the actual
//! YUV bitstreams; instead each sequence carries `(α, β)` constants for
//! eq. (9), chosen to match the well-known relative coding difficulty of
//! the sequences (Mobile is hardest — most spatial detail — Harbor
//! intermediate, Bus easiest) and calibrated so simulated Y-PSNRs land
//! in the paper's 27–45 dB plotting range. See DESIGN.md §2 for the
//! substitution rationale.

use crate::gop::GopConfig;
use crate::mgs::MgsRateModel;
use crate::quality::Psnr;
use std::fmt;

/// The scalable-coding flavour of the enhancement layer.
///
/// The paper adopts MGS specifically because it "can achieve better
/// rate-distortion performance over FGS, although MGS only has Network
/// Abstraction Layer unit-based granularity" (Section I, citing Wien,
/// Schwarz & Oelbaum). The FGS presets here encode that trade-off: a
/// lower base quality and a flatter slope (≈1–1.5 dB worse across the
/// operating range), in exchange for bit-level granularity — which the
/// packet-level simulator models as a much finer NAL ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scalability {
    /// Medium grain scalability (H.264/SVC MGS) — the paper's choice.
    #[default]
    Mgs,
    /// Fine granularity scalability (MPEG-4 FGS) — the comparison
    /// point.
    Fgs,
}

/// A video test sequence with known MGS coding parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sequence {
    /// "Bus" CIF — moderate motion, easiest of the paper's three.
    Bus,
    /// "Mobile" CIF — dense texture and motion, hardest to encode.
    Mobile,
    /// "Harbor" CIF (a.k.a. Harbour) — intermediate difficulty.
    Harbor,
    /// "Foreman" CIF — extra sequence for larger scenarios.
    Foreman,
    /// "Coastguard" CIF — extra sequence for larger scenarios.
    Coastguard,
    /// "News" CIF — low-motion extra sequence.
    News,
}

impl Sequence {
    /// The three sequences the paper streams, in user-index order
    /// (user 1 → Bus, user 2 → Mobile, user 3 → Harbor).
    pub const PAPER_TRIO: [Sequence; 3] = [Sequence::Bus, Sequence::Mobile, Sequence::Harbor];

    /// All built-in sequences.
    pub const ALL: [Sequence; 6] = [
        Sequence::Bus,
        Sequence::Mobile,
        Sequence::Harbor,
        Sequence::Foreman,
        Sequence::Coastguard,
        Sequence::News,
    ];

    /// The sequence name as used in the SVC test-set literature.
    pub fn name(&self) -> &'static str {
        match self {
            Sequence::Bus => "Bus",
            Sequence::Mobile => "Mobile",
            Sequence::Harbor => "Harbor",
            Sequence::Foreman => "Foreman",
            Sequence::Coastguard => "Coastguard",
            Sequence::News => "News",
        }
    }

    /// Eq.-(9) parameters `(α dB, β dB/Mbps)` for the MGS encoding.
    ///
    /// Ordering constraints encoded here (and asserted in tests):
    /// harder content ⇒ lower α (worse base layer at equal rate) and
    /// steeper β is *not* implied — β reflects how much each enhancement
    /// Mbps buys, which is flatter for hard content.
    pub fn model(&self) -> MgsRateModel {
        self.model_for(Scalability::Mgs)
    }

    /// Eq.-(9) parameters for the chosen scalable-coding flavour.
    ///
    /// FGS presets sit ≈0.7 dB below MGS at zero enhancement rate and
    /// lose a further ≈12% of slope, reproducing the ~1–1.5 dB MGS
    /// advantage across the 0–0.5 Mbps operating range that motivates
    /// the paper's codec choice.
    pub fn model_for(&self, scalability: Scalability) -> MgsRateModel {
        let (alpha, beta) = match self {
            Sequence::Bus => (30.2, 24.0),
            Sequence::Mobile => (27.6, 21.0),
            Sequence::Harbor => (28.8, 22.5),
            Sequence::Foreman => (32.0, 26.0),
            Sequence::Coastguard => (29.5, 23.0),
            Sequence::News => (34.0, 28.0),
        };
        let (alpha, beta) = match scalability {
            Scalability::Mgs => (alpha, beta),
            Scalability::Fgs => (alpha - 0.7, beta * 0.88),
        };
        MgsRateModel::new(Psnr::new(alpha).expect("preset alpha valid"), beta)
            .expect("preset beta valid")
    }

    /// GOP structure used by the paper: 16 frames per GOP.
    pub fn gop(&self) -> GopConfig {
        GopConfig::new(16, 10).expect("preset GOP valid")
    }

    /// The full MGS enhancement-ladder rate of the encoding, in Mbps:
    /// once this much enhancement data of a GOP has been delivered, the
    /// stream has no more bits to send and extra slot time is wasted.
    /// This is the ceiling that makes quality-blind schedulers (like
    /// Heuristic 2's winner-takes-the-slot rule) overshoot.
    pub fn full_rate(&self) -> crate::quality::Mbps {
        let rate = match self {
            Sequence::Bus => 0.40,
            Sequence::Mobile => 0.45,
            Sequence::Harbor => 0.42,
            Sequence::Foreman => 0.38,
            Sequence::Coastguard => 0.40,
            Sequence::News => 0.32,
        };
        crate::quality::Mbps::new(rate).expect("preset rate valid")
    }

    /// The full-quality ceiling `α + β·full_rate`: the highest PSNR the
    /// encoding can reach no matter how much air time it is given.
    pub fn max_psnr(&self) -> Psnr {
        self.model().psnr(self.full_rate())
    }

    /// The full-quality ceiling under the chosen scalability flavour.
    pub fn max_psnr_for(&self, scalability: Scalability) -> Psnr {
        self.model_for(scalability).psnr(self.full_rate())
    }

    /// CIF luma resolution (width, height).
    pub fn resolution(&self) -> (u32, u32) {
        (352, 288)
    }

    /// Frame rate in frames per second.
    pub fn frame_rate(&self) -> f64 {
        30.0
    }
}

impl fmt::Display for Sequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::Mbps;

    #[test]
    fn paper_trio_is_bus_mobile_harbor() {
        assert_eq!(
            Sequence::PAPER_TRIO.map(|s| s.name()),
            ["Bus", "Mobile", "Harbor"]
        );
    }

    #[test]
    fn difficulty_ordering_of_base_layers() {
        // Mobile is the hardest sequence: lowest α of the trio.
        let alpha = |s: Sequence| s.model().alpha().db();
        assert!(alpha(Sequence::Mobile) < alpha(Sequence::Harbor));
        assert!(alpha(Sequence::Harbor) < alpha(Sequence::Bus));
    }

    #[test]
    fn all_presets_are_constructible_and_in_plot_range() {
        for s in Sequence::ALL {
            let m = s.model();
            assert!(m.alpha().db() >= 27.0 && m.alpha().db() <= 35.0, "{s}");
            // At 0.5 Mbps every sequence stays within the paper's axes.
            let w = m.psnr(Mbps::new(0.5).unwrap());
            assert!(w.db() < 50.0, "{s}: {w}");
        }
    }

    #[test]
    fn gop_matches_paper() {
        let g = Sequence::Bus.gop();
        assert_eq!(g.frames(), 16);
        assert_eq!(g.deadline_slots(), 10);
    }

    #[test]
    fn cif_metadata() {
        assert_eq!(Sequence::Mobile.resolution(), (352, 288));
        assert_eq!(Sequence::Mobile.frame_rate(), 30.0);
        assert_eq!(format!("{}", Sequence::Harbor), "Harbor");
    }

    #[test]
    fn mgs_dominates_fgs_across_the_operating_range() {
        // The paper's motivating claim (Section I / Wien et al.).
        for s in Sequence::ALL {
            let mgs = s.model_for(Scalability::Mgs);
            let fgs = s.model_for(Scalability::Fgs);
            for k in 0..=10 {
                let rate = Mbps::new(0.05 * k as f64).unwrap();
                assert!(
                    mgs.psnr(rate) > fgs.psnr(rate),
                    "{s} at {rate}: MGS {} vs FGS {}",
                    mgs.psnr(rate),
                    fgs.psnr(rate)
                );
            }
            // The gap stays in the ~0.7–1.5 dB range the SVC literature
            // reports over the paper's operating rates.
            let gap_mid =
                mgs.psnr(Mbps::new(0.3).unwrap()).db() - fgs.psnr(Mbps::new(0.3).unwrap()).db();
            assert!(
                (0.5..=2.5).contains(&gap_mid),
                "{s}: mid-rate gap {gap_mid}"
            );
            assert!(s.max_psnr_for(Scalability::Fgs) < s.max_psnr_for(Scalability::Mgs));
        }
        // Default flavour is MGS.
        assert_eq!(
            Sequence::Bus.model(),
            Sequence::Bus.model_for(Scalability::Mgs)
        );
    }

    #[test]
    fn quality_ceilings_are_plausible() {
        for s in Sequence::ALL {
            let cap = s.max_psnr();
            assert!(cap > s.model().alpha(), "{s}: ceiling above base layer");
            assert!(
                cap.db() < 48.0,
                "{s}: ceiling within the paper's axis range"
            );
            assert!(s.full_rate().value() > 0.0);
        }
        // The ceiling is exactly the model evaluated at the full rate.
        let bus = Sequence::Bus;
        let expected = bus.model().alpha().db() + bus.model().beta() * bus.full_rate().value();
        assert!((bus.max_psnr().db() - expected).abs() < 1e-12);
    }

    #[test]
    fn sequences_are_distinct() {
        let mut names: Vec<_> = Sequence::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Sequence::ALL.len());
    }
}
