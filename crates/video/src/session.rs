//! Per-user streaming session: the PSNR recursion of problem (10).
//!
//! Within a GOP, user `j`'s quality evolves as
//!
//! ```text
//! W^t_j = W^{t−1}_j + ξ^t_{0,j}·ρ^t_{0,j}·R_{0,j} + ξ^t_{1,j}·ρ^t_{1,j}·G^t·R_{1,j}
//! ```
//!
//! starting from `W^0_j = α_j` (the base layer) and ending at the GOP
//! deadline `t = T`, where `W^T_j` is the Y-PSNR of that GOP's
//! reconstruction. [`VideoSession`] owns this recursion and the per-GOP
//! history the experiments average.

use crate::gop::{GopClock, GopConfig};
use crate::mgs::MgsRateModel;
use crate::quality::{Mbps, Psnr};
use crate::sequences::Sequence;

/// One user's ongoing MGS stream.
///
/// # Examples
///
/// ```
/// use fcr_video::session::VideoSession;
/// use fcr_video::sequences::Sequence;
/// use fcr_video::quality::Mbps;
///
/// let mut session = VideoSession::for_sequence(Sequence::Bus);
/// let alpha = session.current_psnr();
/// // Full slot on the common channel (B0 = 0.3 Mbps), delivered.
/// let inc = session.mbs_increment(1.0, Mbps::new(0.3)?);
/// session.credit(inc);
/// assert!(session.current_psnr() > alpha);
/// # Ok::<(), fcr_video::VideoError>(())
/// ```
#[derive(Debug, Clone)]
pub struct VideoSession {
    model: MgsRateModel,
    clock: GopClock,
    current: Psnr,
    history: Vec<Psnr>,
}

impl VideoSession {
    /// Creates a session from an explicit model and GOP structure.
    pub fn new(model: MgsRateModel, gop: GopConfig) -> Self {
        Self {
            model,
            clock: GopClock::new(gop),
            current: model.alpha(),
            history: Vec::new(),
        }
    }

    /// Creates a session for one of the preset sequences.
    pub fn for_sequence(sequence: Sequence) -> Self {
        Self::new(sequence.model(), sequence.gop())
    }

    /// The rate–PSNR model of the encoded stream.
    pub fn model(&self) -> MgsRateModel {
        self.model
    }

    /// The GOP clock (slot within GOP, completed GOPs).
    pub fn clock(&self) -> GopClock {
        self.clock
    }

    /// The running quality `w^t_j` of the in-flight GOP.
    pub fn current_psnr(&self) -> Psnr {
        self.current
    }

    /// Quality increment for receiving fraction `rho` of a slot from the
    /// MBS on the common channel of bandwidth `b0`:
    /// `ρ·R_{0,j}` with `R_{0,j} = β_j·B_0/T`.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is outside `[0, 1]` (a time share).
    pub fn mbs_increment(&self, rho: f64, b0: Mbps) -> Psnr {
        assert!(
            (0.0..=1.0).contains(&rho),
            "time share must be in [0,1], got {rho}"
        );
        Psnr::new(
            self.model
                .slot_increment(b0, self.clock.config().deadline_slots())
                .db()
                * rho,
        )
        .expect("nonnegative")
    }

    /// Quality increment for receiving fraction `rho` of a slot from an
    /// FBS aggregating `g` expected licensed channels of bandwidth `b1`
    /// each: `ρ·G^t·R_{1,j}`.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is outside `[0, 1]` or `g` is negative.
    pub fn fbs_increment(&self, rho: f64, g: f64, b1: Mbps) -> Psnr {
        assert!(
            (0.0..=1.0).contains(&rho),
            "time share must be in [0,1], got {rho}"
        );
        assert!(
            g >= 0.0,
            "expected channel count must be nonnegative, got {g}"
        );
        Psnr::new(
            self.model
                .slot_increment(b1, self.clock.config().deadline_slots())
                .db()
                * rho
                * g,
        )
        .expect("nonnegative")
    }

    /// Credits a delivered quality increment (the `ξ = 1` branch of the
    /// recursion; on loss simply do not call this).
    pub fn credit(&mut self, increment: Psnr) {
        self.current += increment;
    }

    /// Ends the current slot. At a GOP deadline the finished GOP's
    /// quality is recorded and returned, and the recursion restarts at
    /// `α_j` for the next GOP.
    pub fn end_slot(&mut self) -> Option<Psnr> {
        if self.clock.advance() {
            let finished = self.current;
            self.history.push(finished);
            self.current = self.model.alpha();
            Some(finished)
        } else {
            None
        }
    }

    /// Qualities of all completed GOPs, in order.
    pub fn gop_history(&self) -> &[Psnr] {
        &self.history
    }

    /// Mean quality over completed GOPs, or `None` before the first
    /// deadline.
    pub fn mean_gop_psnr(&self) -> Option<Psnr> {
        if self.history.is_empty() {
            return None;
        }
        let sum: f64 = self.history.iter().map(Psnr::db).sum();
        Some(Psnr::new(sum / self.history.len() as f64).expect("mean of valid PSNRs"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn session() -> VideoSession {
        VideoSession::for_sequence(Sequence::Bus) // α=30.2, β=24, T=10
    }

    #[test]
    fn starts_at_alpha() {
        let s = session();
        assert_eq!(s.current_psnr(), s.model().alpha());
        assert!(s.gop_history().is_empty());
        assert_eq!(s.mean_gop_psnr(), None);
    }

    #[test]
    fn mbs_increment_matches_r0j() {
        let s = session();
        // R0 = β·B0/T = 24·0.3/10 = 0.72; half a slot → 0.36.
        let inc = s.mbs_increment(0.5, Mbps::new(0.3).unwrap());
        assert!((inc.db() - 0.36).abs() < 1e-12);
    }

    #[test]
    fn fbs_increment_scales_with_g() {
        let s = session();
        // R1 = 0.72; ρ=0.25, G=3 → 0.54.
        let inc = s.fbs_increment(0.25, 3.0, Mbps::new(0.3).unwrap());
        assert!((inc.db() - 0.54).abs() < 1e-12);
        assert_eq!(
            s.fbs_increment(0.5, 0.0, Mbps::new(0.3).unwrap()),
            Psnr::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "time share")]
    fn rho_above_one_panics() {
        let _ = session().mbs_increment(1.5, Mbps::new(0.3).unwrap());
    }

    #[test]
    fn full_gop_accumulates_and_resets() {
        let mut s = session();
        let b0 = Mbps::new(0.3).unwrap();
        for slot in 0..10 {
            let inc = s.mbs_increment(1.0, b0);
            s.credit(inc);
            let finished = s.end_slot();
            if slot < 9 {
                assert!(finished.is_none());
            } else {
                // Full share for all T slots: W = α + β·B0 = 30.2 + 7.2.
                let f = finished.unwrap();
                assert!((f.db() - 37.4).abs() < 1e-9);
            }
        }
        assert_eq!(s.current_psnr(), s.model().alpha(), "reset after deadline");
        assert_eq!(s.gop_history().len(), 1);
        assert!((s.mean_gop_psnr().unwrap().db() - 37.4).abs() < 1e-9);
    }

    #[test]
    fn losses_leave_quality_unchanged() {
        let mut s = session();
        // ξ = 0: no credit call.
        for _ in 0..9 {
            assert!(s.end_slot().is_none());
        }
        let finished = s.end_slot().unwrap();
        assert_eq!(
            finished,
            s.model().alpha(),
            "all-loss GOP decodes base layer only"
        );
    }

    #[test]
    fn mean_over_multiple_gops() {
        let mut s = session();
        let b0 = Mbps::new(0.3).unwrap();
        for gop in 0..3 {
            for _ in 0..10 {
                if gop == 1 {
                    let inc = s.mbs_increment(1.0, b0);
                    s.credit(inc);
                }
                s.end_slot();
            }
        }
        assert_eq!(s.gop_history().len(), 3);
        let mean = s.mean_gop_psnr().unwrap().db();
        // GOPs: α, α+7.2, α → mean = α + 2.4.
        assert!((mean - (30.2 + 2.4)).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn quality_is_monotone_within_a_gop(
            shares in proptest::collection::vec(0.0..=1.0f64, 1..9),
        ) {
            let mut s = session();
            let b1 = Mbps::new(0.3).unwrap();
            let mut last = s.current_psnr();
            for rho in shares {
                let inc = s.fbs_increment(rho, 2.5, b1);
                s.credit(inc);
                prop_assert!(s.current_psnr() >= last);
                last = s.current_psnr();
                s.end_slot();
            }
        }

        #[test]
        fn gop_quality_equals_alpha_plus_credits(
            credit_dbs in proptest::collection::vec(0.0..2.0f64, 10),
        ) {
            let mut s = session();
            let mut total = 0.0;
            let mut finished = None;
            for db in &credit_dbs {
                s.credit(Psnr::new(*db).unwrap());
                total += db;
                finished = s.end_slot();
            }
            let f = finished.expect("10 slots complete one GOP");
            prop_assert!((f.db() - (30.2 + total)).abs() < 1e-9);
        }
    }
}
