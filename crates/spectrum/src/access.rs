//! Collision-bounded opportunistic channel access
//! (Section III-C, eqs. (5)–(7)).
//!
//! After fusion, each licensed channel `m` has an availability posterior
//! `P^A_m`. The CR network decides to treat the channel as idle
//! (`D_m(t) = 0`) with probability `P^D_m`, chosen as large as possible
//! subject to the primary-user protection constraint
//!
//! ```text
//! [1 − P^A_m(Θ⃗)] · P^D_m(Θ⃗) ≤ γ_m                               (eq. 6)
//! P^D_m(Θ⃗) = min{ γ_m / [1 − P^A_m(Θ⃗)], 1 }                     (eq. 7)
//! ```
//!
//! The channels decided idle form the available set `A(t)`; the expected
//! number of available channels is `G_t = Σ_{m∈A(t)} P^A_m`.

use crate::error::{check_probability, SpectrumError};
use crate::primary::ChannelId;
use rand::{Rng, RngExt};

/// The probabilistic access rule of eq. (7), parameterized by the
/// maximum allowable collision probability γ.
///
/// # Examples
///
/// ```
/// use fcr_spectrum::access::AccessPolicy;
///
/// let policy = AccessPolicy::new(0.2)?;
/// // Nearly-surely-idle channel: always access.
/// assert_eq!(policy.access_probability(0.95), 1.0);
/// // Certainly busy channel: access with probability γ (the cap binds).
/// assert!((policy.access_probability(0.0) - 0.2).abs() < 1e-12);
/// # Ok::<(), fcr_spectrum::SpectrumError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessPolicy {
    gamma: f64,
}

impl AccessPolicy {
    /// Creates a policy with collision bound `gamma`.
    ///
    /// # Errors
    ///
    /// Returns [`SpectrumError::InvalidProbability`] if `gamma` is outside
    /// `[0, 1]`.
    pub fn new(gamma: f64) -> Result<Self, SpectrumError> {
        Ok(Self {
            gamma: check_probability("gamma", gamma)?,
        })
    }

    /// The collision bound γ.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// `P^D_m` of eq. (7): the probability of declaring the channel idle
    /// given availability posterior `p_available`.
    ///
    /// # Panics
    ///
    /// Panics if `p_available` is not a probability — posteriors come from
    /// [`crate::fusion::AvailabilityPosterior`] and are guaranteed valid,
    /// so an out-of-range value is a caller bug.
    pub fn access_probability(&self, p_available: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p_available),
            "availability must be a probability, got {p_available}"
        );
        let p_busy = 1.0 - p_available;
        if p_busy <= self.gamma {
            // Even deterministic access keeps expected collisions ≤ γ.
            1.0
        } else {
            self.gamma / p_busy
        }
    }

    /// Expected collision probability with the primary user under this
    /// policy: the left side of eq. (6). Always ≤ γ by construction.
    pub fn expected_collision(&self, p_available: f64) -> f64 {
        (1.0 - p_available) * self.access_probability(p_available)
    }

    /// Draws the access decision `D_m(t)` for one channel: `true` means
    /// the channel joins the available set `A(t)`.
    pub fn decide<R: Rng + ?Sized>(&self, p_available: f64, rng: &mut R) -> bool {
        rng.random_bool(self.access_probability(p_available))
    }
}

/// Hard-threshold access: declare the channel idle iff
/// `P^A_m ≥ 1 − γ` — the deterministic alternative to eq. (7).
///
/// It satisfies the same collision bound (a channel is only accessed
/// when `1 − P^A ≤ γ`), but wastes every opportunity whose posterior
/// is merely *probably* idle, which is why the paper's probabilistic
/// rule recovers more throughput at the same protection level (the
/// `ablation` bench quantifies the gap).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdPolicy {
    gamma: f64,
}

impl ThresholdPolicy {
    /// Creates a threshold policy with collision bound `gamma`.
    ///
    /// # Errors
    ///
    /// Returns [`SpectrumError::InvalidProbability`] if `gamma` is
    /// outside `[0, 1]`.
    pub fn new(gamma: f64) -> Result<Self, SpectrumError> {
        Ok(Self {
            gamma: check_probability("gamma", gamma)?,
        })
    }

    /// The collision bound γ.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Deterministic access decision: `true` iff `1 − p_available ≤ γ`.
    ///
    /// # Panics
    ///
    /// Panics if `p_available` is not a probability.
    pub fn decide(&self, p_available: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p_available),
            "availability must be a probability, got {p_available}"
        );
        1.0 - p_available <= self.gamma
    }

    /// Expected collision under this policy — `1 − P^A` when accessed,
    /// zero otherwise. Always ≤ γ.
    pub fn expected_collision(&self, p_available: f64) -> f64 {
        if self.decide(p_available) {
            1.0 - p_available
        } else {
            0.0
        }
    }
}

/// Configuration of the access stage beyond γ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessConfig {
    /// The access rule (γ).
    pub policy: AccessPolicy,
    /// When `true`, compute `G_t` from the *first* observation's
    /// posterior only, as eq. literally printed in the paper
    /// (`G_t = Σ P^A_m(Θ^m_1)`); when `false` (default), use the fully
    /// fused posterior (see DESIGN.md §7 for why we read the paper's
    /// formula as a typo).
    pub first_observation_only: bool,
}

impl AccessConfig {
    /// Creates a config with the fused-posterior `G_t` (the default).
    pub fn new(policy: AccessPolicy) -> Self {
        Self {
            policy,
            first_observation_only: false,
        }
    }
}

/// Outcome of the access stage for one time slot.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessOutcome {
    available: Vec<(ChannelId, f64)>,
    expected_available: f64,
}

impl AccessOutcome {
    /// Runs the access stage over all channels.
    ///
    /// `posteriors[m]` is the fused availability `P^A_m`; when
    /// `first_obs_posteriors` is provided (paper-literal mode) it is used
    /// for the `G_t` sum instead, while decisions still use the fused
    /// values.
    pub fn decide_all<R: Rng + ?Sized>(
        policy: AccessPolicy,
        posteriors: &[f64],
        first_obs_posteriors: Option<&[f64]>,
        rng: &mut R,
    ) -> Self {
        let _span = fcr_telemetry::Span::enter(fcr_telemetry::Phase::Access);
        if let Some(first) = first_obs_posteriors {
            assert_eq!(
                first.len(),
                posteriors.len(),
                "first-observation posterior length mismatch"
            );
        }
        let mut available = Vec::new();
        let mut expected = 0.0;
        for (m, &p) in posteriors.iter().enumerate() {
            if policy.decide(p, rng) {
                let weight = first_obs_posteriors.map_or(p, |f| f[m]);
                available.push((ChannelId(m), weight));
                expected += weight;
            }
        }
        Self {
            available,
            expected_available: expected,
        }
    }

    /// Runs the access stage with the deterministic [`ThresholdPolicy`]
    /// instead of eq. (7); same outputs, no randomness.
    pub fn decide_all_threshold(
        policy: ThresholdPolicy,
        posteriors: &[f64],
        first_obs_posteriors: Option<&[f64]>,
    ) -> Self {
        let _span = fcr_telemetry::Span::enter(fcr_telemetry::Phase::Access);
        if let Some(first) = first_obs_posteriors {
            assert_eq!(
                first.len(),
                posteriors.len(),
                "first-observation posterior length mismatch"
            );
        }
        let mut available = Vec::new();
        let mut expected = 0.0;
        for (m, &p) in posteriors.iter().enumerate() {
            if policy.decide(p) {
                let weight = first_obs_posteriors.map_or(p, |f| f[m]);
                available.push((ChannelId(m), weight));
                expected += weight;
            }
        }
        Self {
            available,
            expected_available: expected,
        }
    }

    /// The available set `A(t)` with each channel's availability weight.
    pub fn available(&self) -> &[(ChannelId, f64)] {
        &self.available
    }

    /// Channel ids in `A(t)`.
    pub fn channel_ids(&self) -> Vec<ChannelId> {
        self.available.iter().map(|(id, _)| *id).collect()
    }

    /// `G_t`: the expected number of available channels.
    pub fn expected_available(&self) -> f64 {
        self.expected_available
    }

    /// Number of channels in `A(t)`.
    pub fn len(&self) -> usize {
        self.available.len()
    }

    /// Returns `true` when no channel was declared idle.
    pub fn is_empty(&self) -> bool {
        self.available.is_empty()
    }

    /// Returns `true` if channel `id` is in `A(t)`.
    pub fn contains(&self, id: ChannelId) -> bool {
        self.available.iter().any(|(c, _)| *c == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcr_stats::rng::SeedSequence;
    use proptest::prelude::*;

    #[test]
    fn access_probability_matches_eq7() {
        let policy = AccessPolicy::new(0.2).unwrap();
        // p_busy = 0.5 > γ: P^D = γ / p_busy = 0.4.
        assert!((policy.access_probability(0.5) - 0.4).abs() < 1e-12);
        // p_busy = 0.1 ≤ γ: P^D = 1.
        assert_eq!(policy.access_probability(0.9), 1.0);
        // boundary p_busy = γ exactly.
        assert_eq!(policy.access_probability(0.8), 1.0);
    }

    #[test]
    fn collision_constraint_eq6_holds_with_equality_when_binding() {
        let policy = AccessPolicy::new(0.2).unwrap();
        for p_avail in [0.0, 0.1, 0.3, 0.5, 0.7, 0.79] {
            let collision = policy.expected_collision(p_avail);
            assert!(
                (collision - 0.2).abs() < 1e-12,
                "binding region should hit γ exactly, got {collision} at {p_avail}"
            );
        }
        // Non-binding region: collision = 1 − P^A < γ.
        assert!((policy.expected_collision(0.9) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn gamma_zero_blocks_uncertain_channels() {
        let policy = AccessPolicy::new(0.0).unwrap();
        assert_eq!(policy.access_probability(0.5), 0.0);
        // A certainly idle channel is still always accessible.
        assert_eq!(policy.access_probability(1.0), 1.0);
    }

    #[test]
    fn gamma_one_allows_everything() {
        let policy = AccessPolicy::new(1.0).unwrap();
        for p in [0.0, 0.3, 1.0] {
            assert_eq!(policy.access_probability(p), 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "must be a probability")]
    fn invalid_posterior_panics() {
        let _ = AccessPolicy::new(0.2).unwrap().access_probability(1.5);
    }

    #[test]
    fn empirical_collision_rate_respects_gamma() {
        // Simulate the decision on a channel whose true busy prob equals
        // the posterior's busy prob; count collisions (access ∧ busy).
        let policy = AccessPolicy::new(0.2).unwrap();
        let mut rng = SeedSequence::new(17).stream("access", 0);
        let p_avail = 0.55;
        let n = 200_000;
        let mut collisions = 0u64;
        for _ in 0..n {
            let busy = rng.random_bool(1.0 - p_avail);
            let access = policy.decide(p_avail, &mut rng);
            collisions += u64::from(busy && access);
        }
        let rate = collisions as f64 / n as f64;
        assert!(rate <= 0.2 + 0.01, "collision rate {rate} exceeds γ");
        assert!(
            rate >= 0.2 - 0.01,
            "binding constraint should be tight, got {rate}"
        );
    }

    #[test]
    fn decide_all_builds_available_set_and_gt() {
        let policy = AccessPolicy::new(1.0).unwrap(); // access everything
        let posteriors = [0.9, 0.2, 0.7];
        let mut rng = SeedSequence::new(2).stream("access", 1);
        let outcome = AccessOutcome::decide_all(policy, &posteriors, None, &mut rng);
        assert_eq!(outcome.len(), 3);
        assert!(!outcome.is_empty());
        assert!((outcome.expected_available() - 1.8).abs() < 1e-12);
        assert!(outcome.contains(ChannelId(0)));
        assert_eq!(
            outcome.channel_ids(),
            vec![ChannelId(0), ChannelId(1), ChannelId(2)]
        );
    }

    #[test]
    fn first_observation_mode_changes_weights_not_membership() {
        let policy = AccessPolicy::new(1.0).unwrap();
        let fused = [0.9, 0.8];
        let first = [0.6, 0.5];
        let mut rng = SeedSequence::new(2).stream("access", 2);
        let outcome = AccessOutcome::decide_all(policy, &fused, Some(&first), &mut rng);
        assert_eq!(outcome.len(), 2);
        assert!((outcome.expected_available() - 1.1).abs() < 1e-12);
    }

    #[test]
    fn access_config_default_uses_fused_posterior() {
        let cfg = AccessConfig::new(AccessPolicy::new(0.2).unwrap());
        assert!(!cfg.first_observation_only);
        assert_eq!(cfg.policy.gamma(), 0.2);
    }

    #[test]
    fn threshold_decide_all_selects_exactly_the_safe_channels() {
        let policy = ThresholdPolicy::new(0.2).unwrap();
        let posteriors = [0.9, 0.5, 0.81, 0.79];
        let outcome = AccessOutcome::decide_all_threshold(policy, &posteriors, None);
        assert_eq!(outcome.channel_ids(), vec![ChannelId(0), ChannelId(2)]);
        assert!((outcome.expected_available() - 1.71).abs() < 1e-12);
    }

    #[test]
    fn threshold_policy_is_deterministic_and_safe() {
        let policy = ThresholdPolicy::new(0.2).unwrap();
        assert_eq!(policy.gamma(), 0.2);
        assert!(policy.decide(0.85));
        assert!(policy.decide(0.8)); // boundary: 1 − 0.8 = γ exactly
        assert!(!policy.decide(0.79));
        assert_eq!(
            policy.expected_collision(0.5),
            0.0,
            "blocked channel cannot collide"
        );
        assert!((policy.expected_collision(0.9) - 0.1).abs() < 1e-12);
        assert!(ThresholdPolicy::new(1.5).is_err());
    }

    #[test]
    fn threshold_is_more_conservative_than_probabilistic() {
        // At the same γ the probabilistic rule accesses strictly more in
        // expectation whenever the posterior is below the threshold.
        let prob = AccessPolicy::new(0.2).unwrap();
        let hard = ThresholdPolicy::new(0.2).unwrap();
        for p_avail in [0.1, 0.3, 0.5, 0.7, 0.79] {
            assert!(!hard.decide(p_avail));
            assert!(prob.access_probability(p_avail) > 0.0);
        }
        // Above the threshold both access with certainty.
        assert!(hard.decide(0.9));
        assert_eq!(prob.access_probability(0.9), 1.0);
    }

    proptest! {
        #[test]
        fn threshold_never_violates_gamma(gamma in 0.0..=1.0f64, p_avail in 0.0..=1.0f64) {
            let policy = ThresholdPolicy::new(gamma).unwrap();
            prop_assert!(policy.expected_collision(p_avail) <= gamma + 1e-12);
        }

        #[test]
        fn eq6_never_violated(gamma in 0.0..=1.0f64, p_avail in 0.0..=1.0f64) {
            let policy = AccessPolicy::new(gamma).unwrap();
            prop_assert!(policy.expected_collision(p_avail) <= gamma + 1e-12);
        }

        #[test]
        fn access_probability_is_monotone_in_availability(
            gamma in 0.01..=1.0f64,
            p1 in 0.0..=1.0f64,
            p2 in 0.0..=1.0f64,
        ) {
            let policy = AccessPolicy::new(gamma).unwrap();
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(policy.access_probability(lo) <= policy.access_probability(hi) + 1e-12);
        }

        #[test]
        fn gt_is_bounded_by_set_size(
            posteriors in proptest::collection::vec(0.0..=1.0f64, 1..20),
            seed in 0u64..1000,
        ) {
            let policy = AccessPolicy::new(0.2).unwrap();
            let mut rng = SeedSequence::new(seed).stream("access-prop", 0);
            let outcome = AccessOutcome::decide_all(policy, &posteriors, None, &mut rng);
            prop_assert!(outcome.expected_available() <= outcome.len() as f64 + 1e-12);
            prop_assert!(outcome.expected_available() >= 0.0);
        }
    }
}
