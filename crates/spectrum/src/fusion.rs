//! Bayesian fusion of sensing results into the channel-availability
//! posterior `P^A_m(Θ⃗)` (Section III-B, eqs. (2)–(4)).
//!
//! Given prior busy probability η (the channel utilization) and `L`
//! sensing results `Θ^m_1 … Θ^m_L` from sensors with error profiles
//! (ε_i, δ_i), the probability that channel `m` is available is
//!
//! ```text
//!                        ⎡      η     L   δ_i^{1−Θ_i} (1−δ_i)^{Θ_i} ⎤ −1
//! P^A_m(Θ⃗) =  ⎢ 1 + ──────  Π  ───────────────────────────── ⎥        (eq. 2)
//!                        ⎣    1 − η  i=1  ε_i^{Θ_i} (1−ε_i)^{1−Θ_i} ⎦
//! ```
//!
//! The paper decomposes this into the iterative updates (3)–(4) so the
//! posterior can be refined as results arrive over the common channel;
//! [`AvailabilityPosterior::update`] implements exactly that recursion.
//! Internally the state is kept as a **log-likelihood ratio**, which is
//! algebraically identical but immune to the overflow/underflow that the
//! literal product form suffers with many observations or extreme ε/δ.

use crate::error::{check_probability, SpectrumError};
use crate::sensing::{Observation, SensorProfile};

/// Incrementally fused availability posterior for one channel.
///
/// # Examples
///
/// ```
/// use fcr_spectrum::fusion::AvailabilityPosterior;
/// use fcr_spectrum::sensing::{Observation, SensorProfile};
///
/// let sensor = SensorProfile::new(0.3, 0.3)?;
/// let mut p = AvailabilityPosterior::new(0.4)?;
/// assert!((p.probability() - 0.6).abs() < 1e-12); // prior: 1 − η
/// p.update(&sensor, Observation::Idle);
/// assert!(p.probability() > 0.6); // an idle report raises availability
/// # Ok::<(), fcr_spectrum::SpectrumError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvailabilityPosterior {
    /// log( Pr{busy} / Pr{idle} ): the log-odds of H1 over H0.
    log_odds_busy: f64,
    /// Number of fused observations.
    observations: usize,
}

impl AvailabilityPosterior {
    /// Starts from the prior: busy with probability `eta` (the channel
    /// utilization of eq. (1)).
    ///
    /// # Errors
    ///
    /// Returns [`SpectrumError::InvalidProbability`] if `eta` is outside
    /// `[0, 1]`.
    pub fn new(eta: f64) -> Result<Self, SpectrumError> {
        let eta = check_probability("eta", eta)?;
        Ok(Self {
            log_odds_busy: ln_odds(eta),
            observations: 0,
        })
    }

    /// Number of observations fused so far (`L`).
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// Folds in one sensing result (the recursion of eqs. (3)–(4)).
    ///
    /// Each update multiplies the busy-vs-idle odds by the observation's
    /// likelihood ratio `Pr{Θ|H1} / Pr{Θ|H0}`; in log domain that is one
    /// addition.
    pub fn update(&mut self, sensor: &SensorProfile, obs: Observation) {
        let num = sensor.likelihood_given_busy(obs);
        let den = sensor.likelihood_given_idle(obs);
        self.log_odds_busy += ln_ratio(num, den);
        self.observations += 1;
    }

    /// The fused availability probability `P^A_m(Θ⃗) = Pr{H0 | Θ⃗}`.
    pub fn probability(&self) -> f64 {
        // P(idle) = 1 / (1 + odds_busy) = sigmoid(−log_odds_busy).
        sigmoid(-self.log_odds_busy)
    }

    /// The complementary busy probability `1 − P^A_m`.
    pub fn busy_probability(&self) -> f64 {
        sigmoid(self.log_odds_busy)
    }

    /// One-shot batch evaluation of eq. (2): fuses all `results` at once.
    ///
    /// Exposed separately so tests can check that the iterative recursion
    /// of (3)–(4) reproduces the closed form of (2) exactly.
    ///
    /// # Errors
    ///
    /// Returns an error if `eta` is not a probability.
    pub fn batch(eta: f64, results: &[(SensorProfile, Observation)]) -> Result<f64, SpectrumError> {
        let mut p = Self::new(eta)?;
        for (sensor, obs) in results {
            p.update(sensor, *obs);
        }
        Ok(p.probability())
    }

    /// Literal product-form evaluation of eq. (2) as printed in the
    /// paper, **without** log-domain protection.
    ///
    /// Kept as a cross-check (and to document why the log-domain form is
    /// the production path): with hundreds of observations the raw
    /// product under/overflows while the log form does not.
    ///
    /// # Errors
    ///
    /// Returns an error if `eta` is not a probability.
    pub fn batch_product_form(
        eta: f64,
        results: &[(SensorProfile, Observation)],
    ) -> Result<f64, SpectrumError> {
        let eta = check_probability("eta", eta)?;
        if eta == 1.0 {
            return Ok(0.0);
        }
        let mut ratio = eta / (1.0 - eta);
        for (sensor, obs) in results {
            let num = sensor.likelihood_given_busy(*obs);
            let den = sensor.likelihood_given_idle(*obs);
            if den == 0.0 {
                // Idle-likelihood zero: the observation rules out H0.
                return Ok(if num == 0.0 { f64::NAN } else { 0.0 });
            }
            ratio *= num / den;
        }
        Ok(1.0 / (1.0 + ratio))
    }
}

/// Result of fusing one channel's observations in a slot: the fully
/// fused availability posterior and (when at least one observation was
/// fused) the single-observation posterior `P^A_m(Θ^m_1)` the
/// paper-literal `G_t` mode weights by.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusedChannel {
    /// `P^A_m(Θ⃗)`: the availability posterior after fusing every
    /// observation.
    pub posterior: f64,
    /// `P^A_m(Θ^m_1)`: the posterior after the *first* observation
    /// only; `None` when no observations were provided.
    pub first_observation: Option<f64>,
}

/// Fuses one slot's observations of a single channel (all from sensors
/// sharing `sensor`'s error profile) under one
/// [`fcr_telemetry::Phase::Fusion`] span.
///
/// This is the per-channel fusion step of the slot pipeline: the
/// recursion of eqs. (3)–(4) applied to `observations` in order,
/// starting from busy prior `eta`. Splitting it from the observation
/// draws lets the simulator time sensing and fusion as separate phases
/// without altering either computation.
///
/// # Errors
///
/// Returns [`SpectrumError::InvalidProbability`] if `eta` is outside
/// `[0, 1]`.
pub fn fuse_channel(
    eta: f64,
    sensor: &SensorProfile,
    observations: &[Observation],
) -> Result<FusedChannel, SpectrumError> {
    let _span = fcr_telemetry::Span::enter(fcr_telemetry::Phase::Fusion);
    let mut posterior = AvailabilityPosterior::new(eta)?;
    let mut first_observation = None;
    for obs in observations {
        posterior.update(sensor, *obs);
        if first_observation.is_none() {
            let mut p = AvailabilityPosterior::new(eta)?;
            p.update(sensor, *obs);
            first_observation = Some(p.probability());
        }
    }
    Ok(FusedChannel {
        posterior: posterior.probability(),
        first_observation,
    })
}

/// Natural log of the odds `p / (1 − p)`, with the conventional ±∞ at
/// the endpoints.
fn ln_odds(p: f64) -> f64 {
    if p <= 0.0 {
        f64::NEG_INFINITY
    } else if p >= 1.0 {
        f64::INFINITY
    } else {
        (p / (1.0 - p)).ln()
    }
}

/// `ln(num / den)` with correct ±∞ conventions for zero endpoints.
fn ln_ratio(num: f64, den: f64) -> f64 {
    match (num == 0.0, den == 0.0) {
        (true, true) => 0.0, // impossible observation: no information
        (true, false) => f64::NEG_INFINITY,
        (false, true) => f64::INFINITY,
        (false, false) => (num / den).ln(),
    }
}

/// Numerically stable logistic function.
fn sigmoid(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn baseline_sensor() -> SensorProfile {
        SensorProfile::new(0.3, 0.3).unwrap()
    }

    #[test]
    fn prior_with_no_observations() {
        let p = AvailabilityPosterior::new(0.4).unwrap();
        assert_eq!(p.observations(), 0);
        assert!((p.probability() - 0.6).abs() < 1e-12);
        assert!((p.busy_probability() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn idle_reports_raise_availability_busy_reports_lower_it() {
        let s = baseline_sensor();
        let mut p = AvailabilityPosterior::new(0.5).unwrap();
        let before = p.probability();
        p.update(&s, Observation::Idle);
        let after_idle = p.probability();
        assert!(after_idle > before);
        p.update(&s, Observation::Busy);
        // Symmetric sensor: busy exactly cancels idle.
        assert!((p.probability() - before).abs() < 1e-12);
    }

    #[test]
    fn matches_hand_computed_single_observation() {
        // eq. (3) with η=0.4, ε=δ=0.3, Θ=0 (idle):
        // ratio = 0.4/0.6 · δ/(1−ε) = (2/3)·(0.3/0.7) = 2/7
        // P^A = 1/(1 + 2/7) = 7/9.
        let s = baseline_sensor();
        let mut p = AvailabilityPosterior::new(0.4).unwrap();
        p.update(&s, Observation::Idle);
        assert!((p.probability() - 7.0 / 9.0).abs() < 1e-12);

        // Θ=1 (busy): ratio = (2/3)·((1−δ)/ε) = (2/3)·(0.7/0.3) = 14/9
        // P^A = 9/23.
        let mut q = AvailabilityPosterior::new(0.4).unwrap();
        q.update(&s, Observation::Busy);
        assert!((q.probability() - 9.0 / 23.0).abs() < 1e-12);
    }

    #[test]
    fn iterative_equals_batch_equals_product_form() {
        let sensors = [
            SensorProfile::new(0.3, 0.3).unwrap(),
            SensorProfile::new(0.2, 0.48).unwrap(),
            SensorProfile::new(0.48, 0.2).unwrap(),
        ];
        let observations = [Observation::Idle, Observation::Busy, Observation::Idle];
        let results: Vec<_> = sensors.iter().copied().zip(observations).collect();

        let mut iterative = AvailabilityPosterior::new(0.4).unwrap();
        for (s, o) in &results {
            iterative.update(s, *o);
        }
        let batch = AvailabilityPosterior::batch(0.4, &results).unwrap();
        let product = AvailabilityPosterior::batch_product_form(0.4, &results).unwrap();
        assert!((iterative.probability() - batch).abs() < 1e-12);
        assert!((batch - product).abs() < 1e-12);
    }

    #[test]
    fn log_domain_survives_many_observations() {
        // 10 000 consistent idle reports: product form saturates, log form
        // converges cleanly to 1.
        let s = baseline_sensor();
        let mut p = AvailabilityPosterior::new(0.5).unwrap();
        for _ in 0..10_000 {
            p.update(&s, Observation::Idle);
        }
        assert!((p.probability() - 1.0).abs() < 1e-12);
        assert_eq!(p.observations(), 10_000);
    }

    #[test]
    fn certain_priors_are_absorbing() {
        let s = baseline_sensor();
        let mut always_busy = AvailabilityPosterior::new(1.0).unwrap();
        always_busy.update(&s, Observation::Idle);
        assert_eq!(always_busy.probability(), 0.0);

        let mut always_idle = AvailabilityPosterior::new(0.0).unwrap();
        always_idle.update(&s, Observation::Busy);
        assert_eq!(always_idle.probability(), 1.0);
    }

    #[test]
    fn perfect_sensor_is_decisive() {
        let s = SensorProfile::perfect();
        let mut p = AvailabilityPosterior::new(0.4).unwrap();
        p.update(&s, Observation::Idle);
        assert_eq!(p.probability(), 1.0);
        let mut q = AvailabilityPosterior::new(0.4).unwrap();
        q.update(&s, Observation::Busy);
        assert_eq!(q.probability(), 0.0);
    }

    #[test]
    fn uninformative_sensor_leaves_posterior_unchanged() {
        let s = SensorProfile::new(0.5, 0.5).unwrap();
        let mut p = AvailabilityPosterior::new(0.4).unwrap();
        for obs in [Observation::Idle, Observation::Busy, Observation::Busy] {
            p.update(&s, obs);
        }
        assert!((p.probability() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn posterior_is_calibrated_against_simulation() {
        // Bayesian calibration: among trials where the fused posterior
        // lands in a bucket, the empirical idle frequency must match the
        // bucket's posterior. This validates eq. (2) end to end against
        // the actual generative process.
        use fcr_stats::rng::SeedSequence;
        use rand::RngExt;
        let mut rng = SeedSequence::new(31).stream("calibration", 0);
        let eta = 4.0 / 7.0;
        let sensor = SensorProfile::new(0.3, 0.3).unwrap();
        let buckets = 10;
        let mut idle_counts = vec![0u64; buckets];
        let mut totals = vec![0u64; buckets];
        for _ in 0..200_000 {
            let idle = !rng.random_bool(eta);
            let mut posterior = AvailabilityPosterior::new(eta).unwrap();
            for _ in 0..3 {
                let obs = if idle {
                    if rng.random_bool(0.3) {
                        Observation::Busy
                    } else {
                        Observation::Idle
                    }
                } else if rng.random_bool(0.3) {
                    Observation::Idle
                } else {
                    Observation::Busy
                };
                posterior.update(&sensor, obs);
            }
            let b = ((posterior.probability() * buckets as f64) as usize).min(buckets - 1);
            idle_counts[b] += u64::from(idle);
            totals[b] += 1;
        }
        for b in 0..buckets {
            if totals[b] < 2_000 {
                continue; // not enough mass for a tight check
            }
            let empirical = idle_counts[b] as f64 / totals[b] as f64;
            let bucket_mid = (b as f64 + 0.5) / buckets as f64;
            assert!(
                (empirical - bucket_mid).abs() < 0.06,
                "bucket {b}: empirical idle rate {empirical} vs posterior ≈ {bucket_mid}"
            );
        }
    }

    #[test]
    fn fuse_channel_matches_manual_recursion() {
        let s = baseline_sensor();
        let obs = [Observation::Idle, Observation::Busy, Observation::Idle];
        let fused = fuse_channel(0.4, &s, &obs).unwrap();
        let mut manual = AvailabilityPosterior::new(0.4).unwrap();
        let mut first = AvailabilityPosterior::new(0.4).unwrap();
        first.update(&s, obs[0]);
        for o in obs {
            manual.update(&s, o);
        }
        assert_eq!(fused.posterior, manual.probability());
        assert_eq!(fused.first_observation, Some(first.probability()));
        // No observations: prior posterior, no first-obs value.
        let empty = fuse_channel(0.4, &s, &[]).unwrap();
        assert!((empty.posterior - 0.6).abs() < 1e-12);
        assert_eq!(empty.first_observation, None);
        assert!(fuse_channel(1.2, &s, &obs).is_err());
    }

    #[test]
    fn invalid_eta_rejected() {
        assert!(AvailabilityPosterior::new(-0.1).is_err());
        assert!(AvailabilityPosterior::new(1.1).is_err());
        assert!(AvailabilityPosterior::batch(2.0, &[]).is_err());
    }

    /// ε/δ operating points the property suites sweep: the paper's
    /// baseline (0.3, 0.3) and the asymmetric fig.-4 trade-off points
    /// (0.2, 0.48) / (0.48, 0.2), padded with corner-ish profiles.
    /// Every entry satisfies ε + δ < 1 (better than chance), the
    /// regime the monotonicity property is stated in.
    const SENSING_GRID: &[(f64, f64)] = &[
        (0.3, 0.3),
        (0.2, 0.48),
        (0.48, 0.2),
        (0.1, 0.1),
        (0.05, 0.45),
        (0.45, 0.05),
        (0.25, 0.25),
    ];

    proptest! {
        #[test]
        fn posterior_is_always_a_probability(
            eta in 0.0..=1.0f64,
            eps in 0.001..0.999f64,
            delta in 0.001..0.999f64,
            obs_bits in proptest::collection::vec(proptest::bool::ANY, 0..50),
        ) {
            let s = SensorProfile::new(eps, delta).unwrap();
            let mut p = AvailabilityPosterior::new(eta).unwrap();
            for b in obs_bits {
                p.update(&s, if b { Observation::Busy } else { Observation::Idle });
            }
            let prob = p.probability();
            prop_assert!((0.0..=1.0).contains(&prob), "posterior {prob}");
            prop_assert!((prob + p.busy_probability() - 1.0).abs() < 1e-9);
        }

        #[test]
        fn iterative_matches_product_form_generally(
            eta in 0.05..0.95f64,
            eps in 0.05..0.95f64,
            delta in 0.05..0.95f64,
            obs_bits in proptest::collection::vec(proptest::bool::ANY, 0..20),
        ) {
            let s = SensorProfile::new(eps, delta).unwrap();
            let results: Vec<_> = obs_bits
                .iter()
                .map(|b| (s, if *b { Observation::Busy } else { Observation::Idle }))
                .collect();
            let a = AvailabilityPosterior::batch(eta, &results).unwrap();
            let b = AvailabilityPosterior::batch_product_form(eta, &results).unwrap();
            prop_assert!((a - b).abs() < 1e-9, "log {a} vs product {b}");
        }

        #[test]
        fn good_sensor_idle_observations_only_increase_availability(
            eta in 0.05..0.95f64,
            eps in 0.01..0.49f64,
            delta in 0.01..0.49f64,
            n in 1usize..30,
        ) {
            // For a better-than-chance sensor (ε + δ < 1), each idle report
            // must raise P^A monotonically.
            let s = SensorProfile::new(eps, delta).unwrap();
            let mut p = AvailabilityPosterior::new(eta).unwrap();
            let mut last = p.probability();
            for _ in 0..n {
                p.update(&s, Observation::Idle);
                let cur = p.probability();
                prop_assert!(cur >= last - 1e-12);
                last = cur;
            }
        }

        #[test]
        fn posterior_is_monotone_in_the_number_of_idle_reports(
            grid_idx in 0usize..7,
            eta in 0.05..0.95f64,
            total in 1usize..25,
        ) {
            // Across the ε/δ grid (paper operating points included):
            // with L fixed, P^A as a function of the *count* of idle
            // reports among the L must be non-decreasing and bounded in
            // [0, 1]; and since eq. (2) is a product, the order of the
            // reports must not matter.
            let (eps, delta) = SENSING_GRID[grid_idx];
            let s = SensorProfile::new(eps, delta).unwrap();
            let mut last: Option<f64> = None;
            for idle in 0..=total {
                let forward: Vec<_> = (0..total)
                    .map(|i| {
                        let o = if i < idle { Observation::Idle } else { Observation::Busy };
                        (s, o)
                    })
                    .collect();
                let p = AvailabilityPosterior::batch(eta, &forward).unwrap();
                prop_assert!((0.0..=1.0).contains(&p), "posterior {p} out of range");
                let mut reversed = forward.clone();
                reversed.reverse();
                let q = AvailabilityPosterior::batch(eta, &reversed).unwrap();
                prop_assert!((p - q).abs() < 1e-9, "order dependence: {p} vs {q}");
                if let Some(prev) = last {
                    prop_assert!(
                        p >= prev - 1e-12,
                        "ε={eps} δ={delta} η={eta}: {idle}/{total} idle gave {p} < {prev}"
                    );
                }
                last = Some(p);
            }
        }

        #[test]
        fn degenerate_priors_absorb_any_evidence(
            grid_idx in 0usize..7,
            obs_bits in proptest::collection::vec(proptest::bool::ANY, 0..40),
        ) {
            // η ∈ {0, 1} is absorbing under any imperfect sensor: no
            // finite evidence can move a certain prior (the likelihood
            // ratios are finite, the prior log-odds are not).
            let (eps, delta) = SENSING_GRID[grid_idx];
            let s = SensorProfile::new(eps, delta).unwrap();
            let mut certainly_busy = AvailabilityPosterior::new(1.0).unwrap();
            let mut certainly_idle = AvailabilityPosterior::new(0.0).unwrap();
            for b in &obs_bits {
                let o = if *b { Observation::Busy } else { Observation::Idle };
                certainly_busy.update(&s, o);
                certainly_idle.update(&s, o);
            }
            prop_assert_eq!(certainly_busy.probability(), 0.0);
            prop_assert_eq!(certainly_idle.probability(), 1.0);
            prop_assert_eq!(certainly_busy.observations(), obs_bits.len());
        }
    }
}
