//! Deterministic RNG-substream derivation for sharded simulation runs.
//!
//! The engine's per-slot pipeline consumes five independent RNG
//! streams. For intra-run sharding (splitting one run into per-GOP
//! slot windows scheduled in parallel) the streams must be derivable
//! at a **fixed granularity that does not depend on how the run is
//! partitioned** — otherwise different window sizes would consume
//! different sample paths and sharded results could not be
//! bit-identical to serial ones.
//!
//! The handoff scheme is therefore two-level:
//!
//! * **Run-level streams** ([`spectrum_streams`]): the primary-user
//!   Markov chain, sensing observations, and access decisions evolve
//!   sequentially across the whole run (the chain carries state from
//!   slot to slot). They are consumed by the serial *spectrum
//!   prologue* that every shard shares, so they stay per-run streams —
//!   exactly the streams the pre-sharding engine used, draw for draw.
//! * **Per-GOP streams** ([`gop_streams`]): link fading and packet
//!   loss are consumed *inside* slot windows. Each GOP `g` of run `r`
//!   derives them from `(master_seed, "run"/r, "gop"/g)`, so any
//!   GOP-aligned window can reconstruct its draws without knowing how
//!   many draws earlier windows made. (Loss draws are
//!   allocation-dependent in number; per-GOP derivation plus
//!   GOP-aligned windows make that safe.)

use fcr_stats::rng::SeedSequence;
use rand::rngs::StdRng;

/// The run-level streams consumed by the serial spectrum prologue
/// (sensing → fusion → access), in the order the engine draws from
/// them.
#[derive(Debug)]
pub struct SpectrumStreams {
    /// Primary-user Markov chain: initialization + one step per slot.
    pub primary: StdRng,
    /// Sensing observations: one draw per observation per channel per
    /// slot.
    pub sensing: StdRng,
    /// Opportunistic access decisions: per-slot draws (probabilistic
    /// mode only).
    pub access: StdRng,
}

/// Derives the run-level spectrum streams from an already-derived
/// per-run seed sequence (`seeds.child("run", r)` or
/// `seeds.child("packet-run", r)`).
pub fn spectrum_streams(run_seeds: &SeedSequence) -> SpectrumStreams {
    SpectrumStreams {
        primary: run_seeds.stream("primary", 0),
        sensing: run_seeds.stream("sensing", 0),
        access: run_seeds.stream("access", 0),
    }
}

/// The per-GOP streams consumed inside a slot window.
#[derive(Debug)]
pub struct GopStreams {
    /// Block-fading link qualities: two draws per user per slot.
    pub fading: StdRng,
    /// Transmission losses: a variable, allocation-dependent number of
    /// Bernoulli draws per slot.
    pub loss: StdRng,
}

/// Derives the streams for GOP `gop` of a run from its per-run seed
/// sequence. Every shard of the run derives the same streams for the
/// same GOP, regardless of window size.
pub fn gop_streams(run_seeds: &SeedSequence, gop: u64) -> GopStreams {
    let gop_seeds = run_seeds.child("gop", gop);
    GopStreams {
        fading: gop_seeds.stream("fading", 0),
        loss: gop_seeds.stream("loss", 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    fn draws(rng: &mut StdRng, n: usize) -> Vec<u64> {
        (0..n).map(|_| rng.random::<u64>()).collect()
    }

    #[test]
    fn derivation_is_deterministic() {
        let run = SeedSequence::new(42).child("run", 3);
        let mut a = spectrum_streams(&run);
        let mut b = spectrum_streams(&run);
        assert_eq!(draws(&mut a.primary, 8), draws(&mut b.primary, 8));
        assert_eq!(draws(&mut a.sensing, 8), draws(&mut b.sensing, 8));
        let mut ga = gop_streams(&run, 5);
        let mut gb = gop_streams(&run, 5);
        assert_eq!(draws(&mut ga.fading, 8), draws(&mut gb.fading, 8));
        assert_eq!(draws(&mut ga.loss, 8), draws(&mut gb.loss, 8));
    }

    #[test]
    fn streams_are_pairwise_distinct() {
        let run = SeedSequence::new(42).child("run", 0);
        let mut s = spectrum_streams(&run);
        let mut g0 = gop_streams(&run, 0);
        let mut g1 = gop_streams(&run, 1);
        let heads = [
            draws(&mut s.primary, 4),
            draws(&mut s.sensing, 4),
            draws(&mut s.access, 4),
            draws(&mut g0.fading, 4),
            draws(&mut g0.loss, 4),
            draws(&mut g1.fading, 4),
            draws(&mut g1.loss, 4),
        ];
        for i in 0..heads.len() {
            for j in (i + 1)..heads.len() {
                assert_ne!(heads[i], heads[j], "streams {i} and {j} collide");
            }
        }
    }

    #[test]
    fn gop_streams_are_independent_of_run_level_consumption() {
        // A shard that never touches the run-level streams still
        // derives the same per-GOP draws.
        let run = SeedSequence::new(7).child("run", 1);
        let mut consumed = spectrum_streams(&run);
        let _ = draws(&mut consumed.primary, 100);
        let mut a = gop_streams(&run, 2);
        let mut b = gop_streams(&SeedSequence::new(7).child("run", 1), 2);
        assert_eq!(draws(&mut a.fading, 16), draws(&mut b.fading, 16));
    }
}
