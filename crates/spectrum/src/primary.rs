//! The primary network: `M` licensed channels evolved slot by slot
//! (Section III-A).
//!
//! The spectrum consists of `M + 1` channels: channel 0 is the common,
//! unlicensed channel reserved for CR users (always "idle" from the
//! primary network's perspective); channels `1..=M` are licensed to the
//! primary network and follow independent two-state Markov processes.
//! This module tracks only the licensed channels; the common channel
//! needs no state.

use crate::markov::{ChannelState, TwoStateMarkov};
use rand::Rng;
use std::fmt;

/// Identifier of a licensed channel, `0..M` (code is 0-based; the paper
/// indexes licensed channels `1..=M`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub usize);

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// The set of `M` licensed channels with their occupancy processes and
/// current states.
///
/// # Examples
///
/// ```
/// use fcr_spectrum::primary::PrimaryNetwork;
/// use fcr_spectrum::markov::TwoStateMarkov;
/// use rand::SeedableRng;
///
/// let chain = TwoStateMarkov::new(0.4, 0.3)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut primary = PrimaryNetwork::homogeneous(8, chain, &mut rng);
/// primary.step(&mut rng);
/// assert_eq!(primary.num_channels(), 8);
/// assert_eq!(primary.states().len(), 8);
/// # Ok::<(), fcr_spectrum::SpectrumError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PrimaryNetwork {
    chains: Vec<TwoStateMarkov>,
    states: Vec<ChannelState>,
    slot: u64,
}

impl PrimaryNetwork {
    /// Creates a network whose channels all follow the same chain, with
    /// initial states drawn from the stationary distribution.
    ///
    /// # Panics
    ///
    /// Panics if `num_channels == 0`; a CR network with no licensed
    /// channel has nothing to sense.
    pub fn homogeneous<R: Rng + ?Sized>(
        num_channels: usize,
        chain: TwoStateMarkov,
        rng: &mut R,
    ) -> Self {
        Self::heterogeneous(vec![chain; num_channels], rng)
    }

    /// Creates a network with per-channel chains, initial states drawn
    /// from each chain's stationary distribution.
    ///
    /// # Panics
    ///
    /// Panics if `chains` is empty.
    pub fn heterogeneous<R: Rng + ?Sized>(chains: Vec<TwoStateMarkov>, rng: &mut R) -> Self {
        assert!(
            !chains.is_empty(),
            "primary network needs at least one channel"
        );
        let states = chains.iter().map(|c| c.sample_stationary(rng)).collect();
        Self {
            chains,
            states,
            slot: 0,
        }
    }

    /// Number of licensed channels `M`.
    pub fn num_channels(&self) -> usize {
        self.chains.len()
    }

    /// Current slot index (number of [`step`](Self::step) calls so far).
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// Current occupancy vector `S⃗(t)`.
    pub fn states(&self) -> &[ChannelState] {
        &self.states
    }

    /// Occupancy of one channel.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn state(&self, id: ChannelId) -> ChannelState {
        self.states[id.0]
    }

    /// The Markov chain of one channel.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn chain(&self, id: ChannelId) -> &TwoStateMarkov {
        &self.chains[id.0]
    }

    /// Stationary utilization η of one channel.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn utilization(&self, id: ChannelId) -> f64 {
        self.chains[id.0].utilization()
    }

    /// Advances every channel by one slot (channels evolve independently,
    /// per Section III-A).
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for (chain, state) in self.chains.iter().zip(self.states.iter_mut()) {
            *state = chain.step(*state, rng);
        }
        self.slot += 1;
    }

    /// Iterator over `(ChannelId, ChannelState)` pairs for the current slot.
    pub fn iter(&self) -> impl Iterator<Item = (ChannelId, ChannelState)> + '_ {
        self.states
            .iter()
            .enumerate()
            .map(|(i, s)| (ChannelId(i), *s))
    }

    /// Channels currently idle (true spectrum opportunities).
    pub fn idle_channels(&self) -> Vec<ChannelId> {
        self.iter()
            .filter(|(_, s)| s.is_idle())
            .map(|(id, _)| id)
            .collect()
    }

    /// Number of channels currently busy.
    pub fn busy_count(&self) -> usize {
        self.states.iter().filter(|s| s.is_busy()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcr_stats::rng::SeedSequence;

    fn baseline() -> TwoStateMarkov {
        TwoStateMarkov::new(0.4, 0.3).unwrap()
    }

    #[test]
    fn homogeneous_construction() {
        let mut rng = SeedSequence::new(3).stream("primary", 0);
        let net = PrimaryNetwork::homogeneous(8, baseline(), &mut rng);
        assert_eq!(net.num_channels(), 8);
        assert_eq!(net.slot(), 0);
        for i in 0..8 {
            assert!((net.utilization(ChannelId(i)) - 4.0 / 7.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_panics() {
        let mut rng = SeedSequence::new(3).stream("primary", 0);
        let _ = PrimaryNetwork::homogeneous(0, baseline(), &mut rng);
    }

    #[test]
    fn step_advances_slot_counter() {
        let mut rng = SeedSequence::new(3).stream("primary", 1);
        let mut net = PrimaryNetwork::homogeneous(4, baseline(), &mut rng);
        for expected in 1..=10 {
            net.step(&mut rng);
            assert_eq!(net.slot(), expected);
        }
    }

    #[test]
    fn idle_and_busy_partition_channels() {
        let mut rng = SeedSequence::new(3).stream("primary", 2);
        let mut net = PrimaryNetwork::homogeneous(12, baseline(), &mut rng);
        for _ in 0..50 {
            net.step(&mut rng);
            assert_eq!(net.idle_channels().len() + net.busy_count(), 12);
        }
    }

    #[test]
    fn heterogeneous_channels_keep_their_chains() {
        let mut rng = SeedSequence::new(3).stream("primary", 3);
        let chains = vec![
            TwoStateMarkov::new(0.1, 0.9).unwrap(),
            TwoStateMarkov::new(0.9, 0.1).unwrap(),
        ];
        let net = PrimaryNetwork::heterogeneous(chains, &mut rng);
        assert!(net.utilization(ChannelId(0)) < 0.2);
        assert!(net.utilization(ChannelId(1)) > 0.8);
        assert_eq!(net.chain(ChannelId(0)).p01(), 0.1);
    }

    #[test]
    fn long_run_occupancy_matches_eta_per_channel() {
        let mut rng = SeedSequence::new(11).stream("primary", 4);
        let mut net = PrimaryNetwork::homogeneous(3, baseline(), &mut rng);
        let slots = 100_000;
        let mut busy = [0u64; 3];
        for _ in 0..slots {
            net.step(&mut rng);
            for (i, b) in busy.iter_mut().enumerate() {
                *b += u64::from(net.state(ChannelId(i)).is_busy());
            }
        }
        for (i, b) in busy.iter().enumerate() {
            let emp = *b as f64 / slots as f64;
            assert!((emp - 4.0 / 7.0).abs() < 0.02, "channel {i}: {emp}");
        }
    }

    #[test]
    fn channel_id_displays() {
        assert_eq!(format!("{}", ChannelId(3)), "ch3");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut rng = SeedSequence::new(seed).stream("primary", 0);
            let mut net = PrimaryNetwork::homogeneous(6, baseline(), &mut rng);
            let mut history = Vec::new();
            for _ in 0..20 {
                net.step(&mut rng);
                history.push(net.states().to_vec());
            }
            history
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
