//! Imperfect spectrum sensing (Section III-B).
//!
//! A sensor observing channel `m` reports [`Observation::Busy`] or
//! [`Observation::Idle`], with two error modes:
//!
//! * **false alarm** — an idle channel reported busy, probability ε:
//!   `Pr{Θ = 1 | H0} = ε`;
//! * **miss detection** — a busy channel reported idle, probability δ:
//!   `Pr{Θ = 0 | H1} = δ`.
//!
//! The paper's baseline sets ε = δ = 0.3 for all sensors; Fig. 6(b)
//! sweeps the pairs {(0.2, 0.48), (0.24, 0.38), (0.3, 0.3), (0.38, 0.24),
//! (0.48, 0.2)}, trading false alarms for miss detections along a
//! receiver operating characteristic.

use crate::error::{check_probability, SpectrumError};
use crate::markov::ChannelState;
use rand::{Rng, RngExt};

/// A single sensing result `Θ^m_i` on some channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Observation {
    /// Sensor reports the channel idle (`Θ = 0`).
    Idle,
    /// Sensor reports the channel busy (`Θ = 1`).
    Busy,
}

impl Observation {
    /// Returns the paper's 0/1 encoding.
    pub fn as_bit(self) -> u8 {
        match self {
            Observation::Idle => 0,
            Observation::Busy => 1,
        }
    }

    /// Returns `true` for [`Observation::Busy`].
    pub fn is_busy(self) -> bool {
        matches!(self, Observation::Busy)
    }
}

/// Error profile of one sensor: false-alarm probability ε and
/// miss-detection probability δ.
///
/// # Examples
///
/// ```
/// use fcr_spectrum::sensing::SensorProfile;
///
/// let s = SensorProfile::new(0.3, 0.3)?;
/// assert_eq!(s.false_alarm(), 0.3);
/// assert_eq!(s.miss_detection(), 0.3);
/// # Ok::<(), fcr_spectrum::SpectrumError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorProfile {
    epsilon: f64,
    delta: f64,
}

impl SensorProfile {
    /// Creates a profile with false-alarm probability `epsilon` and
    /// miss-detection probability `delta`.
    ///
    /// # Errors
    ///
    /// Returns [`SpectrumError::InvalidProbability`] if either probability
    /// is outside `[0, 1]`.
    pub fn new(epsilon: f64, delta: f64) -> Result<Self, SpectrumError> {
        Ok(Self {
            epsilon: check_probability("epsilon", epsilon)?,
            delta: check_probability("delta", delta)?,
        })
    }

    /// A hypothetical error-free sensor (useful in tests and ablations).
    pub fn perfect() -> Self {
        Self {
            epsilon: 0.0,
            delta: 0.0,
        }
    }

    /// False-alarm probability ε.
    pub fn false_alarm(&self) -> f64 {
        self.epsilon
    }

    /// Miss-detection probability δ.
    pub fn miss_detection(&self) -> f64 {
        self.delta
    }

    /// Returns `true` when the sensor is informative, i.e. its likelihood
    /// ratio actually moves the posterior (ε + δ < 1 for the usual
    /// better-than-chance regime; ε + δ > 1 is "inverted but still
    /// informative"; ε + δ = 1 is pure noise).
    pub fn is_informative(&self) -> bool {
        (self.epsilon + self.delta - 1.0).abs() > f64::EPSILON
    }

    /// Draws one observation of a channel in the given true state.
    ///
    /// Idle channels are reported busy with probability ε; busy channels
    /// are reported idle with probability δ.
    pub fn observe<R: Rng + ?Sized>(&self, truth: ChannelState, rng: &mut R) -> Observation {
        match truth {
            ChannelState::Idle => {
                if rng.random_bool(self.epsilon) {
                    Observation::Busy
                } else {
                    Observation::Idle
                }
            }
            ChannelState::Busy => {
                if rng.random_bool(self.delta) {
                    Observation::Idle
                } else {
                    Observation::Busy
                }
            }
        }
    }

    /// Draws `count` independent observations of a channel in the given
    /// true state, under one [`fcr_telemetry::Phase::Sensing`] span.
    ///
    /// Byte-for-byte equivalent to calling [`SensorProfile::observe`]
    /// `count` times with the same RNG — the batched form exists so the
    /// per-channel sensing work of a slot is timed as one span without
    /// changing the RNG call sequence.
    pub fn observe_many<R: Rng + ?Sized>(
        &self,
        truth: ChannelState,
        count: usize,
        rng: &mut R,
    ) -> Vec<Observation> {
        let _span = fcr_telemetry::Span::enter(fcr_telemetry::Phase::Sensing);
        (0..count).map(|_| self.observe(truth, rng)).collect()
    }

    /// Likelihood `Pr{Θ = obs | H1 (busy)}`.
    pub fn likelihood_given_busy(&self, obs: Observation) -> f64 {
        match obs {
            Observation::Idle => self.delta,
            Observation::Busy => 1.0 - self.delta,
        }
    }

    /// Likelihood `Pr{Θ = obs | H0 (idle)}`.
    pub fn likelihood_given_idle(&self, obs: Observation) -> f64 {
        match obs {
            Observation::Idle => 1.0 - self.epsilon,
            Observation::Busy => self.epsilon,
        }
    }
}

/// The (ε, δ) operating points swept in Fig. 6(b).
pub const FIG6B_OPERATING_POINTS: [(f64, f64); 5] = [
    (0.20, 0.48),
    (0.24, 0.38),
    (0.30, 0.30),
    (0.38, 0.24),
    (0.48, 0.20),
];

#[cfg(test)]
mod tests {
    use super::*;
    use fcr_stats::rng::SeedSequence;
    use proptest::prelude::*;

    #[test]
    fn encoding_matches_paper() {
        assert_eq!(Observation::Idle.as_bit(), 0);
        assert_eq!(Observation::Busy.as_bit(), 1);
        assert!(Observation::Busy.is_busy());
        assert!(!Observation::Idle.is_busy());
    }

    #[test]
    fn constructor_validates_probabilities() {
        assert!(SensorProfile::new(0.3, 0.3).is_ok());
        assert!(SensorProfile::new(-0.1, 0.3).is_err());
        assert!(SensorProfile::new(0.3, 1.5).is_err());
    }

    #[test]
    fn perfect_sensor_never_errs() {
        let s = SensorProfile::perfect();
        let mut rng = SeedSequence::new(0).stream("sensing", 0);
        for _ in 0..100 {
            assert_eq!(s.observe(ChannelState::Idle, &mut rng), Observation::Idle);
            assert_eq!(s.observe(ChannelState::Busy, &mut rng), Observation::Busy);
        }
    }

    #[test]
    fn error_rates_are_empirically_correct() {
        let s = SensorProfile::new(0.3, 0.2).unwrap();
        let mut rng = SeedSequence::new(8).stream("sensing", 1);
        let n = 100_000;
        let mut false_alarms = 0u64;
        let mut misses = 0u64;
        for _ in 0..n {
            false_alarms += u64::from(s.observe(ChannelState::Idle, &mut rng).is_busy());
            misses += u64::from(!s.observe(ChannelState::Busy, &mut rng).is_busy());
        }
        let fa = false_alarms as f64 / n as f64;
        let md = misses as f64 / n as f64;
        assert!((fa - 0.3).abs() < 0.01, "false alarm rate {fa}");
        assert!((md - 0.2).abs() < 0.01, "miss rate {md}");
    }

    #[test]
    fn likelihoods_sum_to_one_per_hypothesis() {
        let s = SensorProfile::new(0.3, 0.2).unwrap();
        let sum_busy =
            s.likelihood_given_busy(Observation::Idle) + s.likelihood_given_busy(Observation::Busy);
        let sum_idle =
            s.likelihood_given_idle(Observation::Idle) + s.likelihood_given_idle(Observation::Busy);
        assert!((sum_busy - 1.0).abs() < 1e-12);
        assert!((sum_idle - 1.0).abs() < 1e-12);
    }

    #[test]
    fn informativeness() {
        assert!(SensorProfile::new(0.3, 0.3).unwrap().is_informative());
        assert!(!SensorProfile::new(0.5, 0.5).unwrap().is_informative());
        assert!(!SensorProfile::new(0.2, 0.8).unwrap().is_informative());
        assert!(SensorProfile::new(0.9, 0.9).unwrap().is_informative()); // inverted
    }

    #[test]
    fn fig6b_points_are_valid_profiles() {
        for (eps, delta) in FIG6B_OPERATING_POINTS {
            let s = SensorProfile::new(eps, delta).unwrap();
            assert!(s.is_informative(), "({eps},{delta}) should be informative");
        }
    }

    proptest! {
        #[test]
        fn likelihoods_are_probabilities(
            eps in 0.0..=1.0f64,
            delta in 0.0..=1.0f64,
        ) {
            let s = SensorProfile::new(eps, delta).unwrap();
            for obs in [Observation::Idle, Observation::Busy] {
                prop_assert!((0.0..=1.0).contains(&s.likelihood_given_busy(obs)));
                prop_assert!((0.0..=1.0).contains(&s.likelihood_given_idle(obs)));
            }
        }
    }
}
