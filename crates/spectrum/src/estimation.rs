//! Maximum-likelihood estimation of the primary-user Markov model from
//! observed occupancy sequences.
//!
//! The paper takes `(P01, P10)` as given, citing the measurement
//! studies of Motamedi & Bahai and Geirhofer et al. for the two-state
//! Markov structure. This module is the operational counterpart: fit
//! those parameters from monitored channel states, so deployments can
//! calibrate the model the allocator relies on.

use crate::error::SpectrumError;
use crate::markov::{ChannelState, TwoStateMarkov};

/// Transition counts accumulated from an observed state sequence.
///
/// # Examples
///
/// ```
/// use fcr_spectrum::estimation::TransitionCounts;
/// use fcr_spectrum::markov::ChannelState::{Busy, Idle};
///
/// let mut counts = TransitionCounts::new();
/// counts.observe_sequence(&[Idle, Busy, Idle, Idle, Busy]);
/// assert_eq!(counts.transitions(), 4);
/// let chain = counts.mle()?;
/// assert!(chain.p01() > 0.0 && chain.p10() > 0.0);
/// # Ok::<(), fcr_spectrum::SpectrumError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransitionCounts {
    idle_to_idle: u64,
    idle_to_busy: u64,
    busy_to_idle: u64,
    busy_to_busy: u64,
}

impl TransitionCounts {
    /// Creates empty counts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observed transition.
    pub fn observe(&mut self, from: ChannelState, to: ChannelState) {
        match (from, to) {
            (ChannelState::Idle, ChannelState::Idle) => self.idle_to_idle += 1,
            (ChannelState::Idle, ChannelState::Busy) => self.idle_to_busy += 1,
            (ChannelState::Busy, ChannelState::Idle) => self.busy_to_idle += 1,
            (ChannelState::Busy, ChannelState::Busy) => self.busy_to_busy += 1,
        }
    }

    /// Records every consecutive pair of a state sequence.
    pub fn observe_sequence(&mut self, states: &[ChannelState]) {
        for w in states.windows(2) {
            self.observe(w[0], w[1]);
        }
    }

    /// Total transitions observed.
    pub fn transitions(&self) -> u64 {
        self.idle_to_idle + self.idle_to_busy + self.busy_to_idle + self.busy_to_busy
    }

    /// Transitions that left the idle state.
    pub fn from_idle(&self) -> u64 {
        self.idle_to_idle + self.idle_to_busy
    }

    /// Transitions that left the busy state.
    pub fn from_busy(&self) -> u64 {
        self.busy_to_idle + self.busy_to_busy
    }

    /// Merges another set of counts (e.g. from a second monitoring
    /// period or another sensor).
    pub fn merge(&mut self, other: &TransitionCounts) {
        self.idle_to_idle += other.idle_to_idle;
        self.idle_to_busy += other.idle_to_busy;
        self.busy_to_idle += other.busy_to_idle;
        self.busy_to_busy += other.busy_to_busy;
    }

    /// Maximum-likelihood estimate: `P̂01 = n(0→1)/n(0→·)`,
    /// `P̂10 = n(1→0)/n(1→·)`.
    ///
    /// # Errors
    ///
    /// Returns [`SpectrumError::DegenerateChain`] when either state was
    /// never observed as a source (the MLE is undefined there) or both
    /// estimated probabilities are zero.
    pub fn mle(&self) -> Result<TwoStateMarkov, SpectrumError> {
        if self.from_idle() == 0 || self.from_busy() == 0 {
            return Err(SpectrumError::DegenerateChain);
        }
        let p01 = self.idle_to_busy as f64 / self.from_idle() as f64;
        let p10 = self.busy_to_idle as f64 / self.from_busy() as f64;
        TwoStateMarkov::new(p01, p10)
    }

    /// MLE with add-one (Laplace) smoothing: always defined, biased
    /// toward 1/2 for scarce data. Useful while a monitor is warming up.
    pub fn smoothed_mle(&self) -> TwoStateMarkov {
        let p01 = (self.idle_to_busy + 1) as f64 / (self.from_idle() + 2) as f64;
        let p10 = (self.busy_to_idle + 1) as f64 / (self.from_busy() + 2) as f64;
        TwoStateMarkov::new(p01, p10).expect("smoothed estimates are in (0, 1)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcr_stats::rng::SeedSequence;

    #[test]
    fn hand_counted_sequence() {
        use ChannelState::{Busy, Idle};
        let mut c = TransitionCounts::new();
        c.observe_sequence(&[Idle, Busy, Busy, Idle, Idle]);
        // Transitions: I→B, B→B, B→I, I→I.
        assert_eq!(c.transitions(), 4);
        assert_eq!(c.from_idle(), 2);
        assert_eq!(c.from_busy(), 2);
        let chain = c.mle().unwrap();
        assert!((chain.p01() - 0.5).abs() < 1e-12);
        assert!((chain.p10() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mle_recovers_the_true_chain_from_a_long_trace() {
        let truth = TwoStateMarkov::new(0.4, 0.3).unwrap();
        let mut rng = SeedSequence::new(71).stream("estimation", 0);
        let mut state = truth.sample_stationary(&mut rng);
        let mut counts = TransitionCounts::new();
        for _ in 0..200_000 {
            let next = truth.step(state, &mut rng);
            counts.observe(state, next);
            state = next;
        }
        let estimate = counts.mle().unwrap();
        assert!(
            (estimate.p01() - 0.4).abs() < 0.01,
            "p01 {}",
            estimate.p01()
        );
        assert!(
            (estimate.p10() - 0.3).abs() < 0.01,
            "p10 {}",
            estimate.p10()
        );
        assert!((estimate.utilization() - truth.utilization()).abs() < 0.01);
    }

    #[test]
    fn degenerate_sources_are_rejected() {
        use ChannelState::Idle;
        let mut c = TransitionCounts::new();
        assert_eq!(c.mle().unwrap_err(), SpectrumError::DegenerateChain);
        c.observe_sequence(&[Idle, Idle, Idle]);
        // Never left busy: still degenerate.
        assert_eq!(c.mle().unwrap_err(), SpectrumError::DegenerateChain);
        // Smoothed version is always defined.
        let s = c.smoothed_mle();
        assert!(s.p01() > 0.0 && s.p10() > 0.0);
    }

    #[test]
    fn smoothing_shrinks_toward_half() {
        use ChannelState::{Busy, Idle};
        let mut c = TransitionCounts::new();
        c.observe(Idle, Busy);
        c.observe(Busy, Busy);
        // Raw MLE: p01 = 1.0, p10 = 0.0; smoothed pulls both inward.
        let s = c.smoothed_mle();
        assert!((s.p01() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.p10() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn merge_is_equivalent_to_joint_counting() {
        use ChannelState::{Busy, Idle};
        let seq = [Idle, Busy, Idle, Idle, Busy, Busy, Idle];
        let mut joint = TransitionCounts::new();
        joint.observe_sequence(&seq);
        let mut a = TransitionCounts::new();
        a.observe_sequence(&seq[..4]);
        let mut b = TransitionCounts::new();
        b.observe_sequence(&seq[3..]);
        a.merge(&b);
        assert_eq!(a, joint);
    }

    #[test]
    fn short_sequences_are_handled() {
        let mut c = TransitionCounts::new();
        c.observe_sequence(&[]);
        c.observe_sequence(&[ChannelState::Idle]);
        assert_eq!(c.transitions(), 0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn to_states(bits: &[bool]) -> Vec<ChannelState> {
            bits.iter()
                .map(|b| {
                    if *b {
                        ChannelState::Busy
                    } else {
                        ChannelState::Idle
                    }
                })
                .collect()
        }

        proptest! {
            #[test]
            fn counts_match_sequence_length(bits in proptest::collection::vec(proptest::bool::ANY, 0..200)) {
                let mut c = TransitionCounts::new();
                c.observe_sequence(&to_states(&bits));
                prop_assert_eq!(c.transitions() as usize, bits.len().saturating_sub(1));
                prop_assert_eq!(c.from_idle() + c.from_busy(), c.transitions());
            }

            #[test]
            fn mle_probabilities_are_valid(bits in proptest::collection::vec(proptest::bool::ANY, 2..200)) {
                let mut c = TransitionCounts::new();
                c.observe_sequence(&to_states(&bits));
                if let Ok(chain) = c.mle() {
                    prop_assert!((0.0..=1.0).contains(&chain.p01()));
                    prop_assert!((0.0..=1.0).contains(&chain.p10()));
                }
                // The smoothed estimate is always strictly interior.
                let s = c.smoothed_mle();
                prop_assert!(s.p01() > 0.0 && s.p01() < 1.0);
                prop_assert!(s.p10() > 0.0 && s.p10() < 1.0);
            }

            #[test]
            fn merge_commutes(
                a_bits in proptest::collection::vec(proptest::bool::ANY, 2..60),
                b_bits in proptest::collection::vec(proptest::bool::ANY, 2..60),
            ) {
                let mut a1 = TransitionCounts::new();
                a1.observe_sequence(&to_states(&a_bits));
                let mut b1 = TransitionCounts::new();
                b1.observe_sequence(&to_states(&b_bits));
                let mut ab = a1;
                ab.merge(&b1);
                let mut ba = b1;
                ba.merge(&a1);
                prop_assert_eq!(ab, ba);
            }
        }
    }
}
