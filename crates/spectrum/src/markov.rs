//! Two-state discrete-time Markov model of primary-user channel
//! occupancy (Section III-A, eq. (1)).
//!
//! Each licensed channel is either **idle** (`S_m(t) = 0`) or **busy**
//! (`S_m(t) = 1`), with transition probabilities `P01` (idle → busy) and
//! `P10` (busy → idle). The long-run fraction of busy slots — the
//! *channel utilization* with respect to primary transmissions — is
//!
//! ```text
//! η_m = P01 / (P01 + P10)                                    (eq. 1)
//! ```

use crate::error::{check_probability, SpectrumError};
use rand::{Rng, RngExt};

/// Occupancy state of a licensed channel in one time slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ChannelState {
    /// No primary-user transmission (`S_m(t) = 0`).
    #[default]
    Idle,
    /// Primary user transmitting (`S_m(t) = 1`).
    Busy,
}

impl ChannelState {
    /// Returns the paper's 0/1 encoding.
    pub fn as_bit(self) -> u8 {
        match self {
            ChannelState::Idle => 0,
            ChannelState::Busy => 1,
        }
    }

    /// Returns `true` for [`ChannelState::Idle`].
    pub fn is_idle(self) -> bool {
        matches!(self, ChannelState::Idle)
    }

    /// Returns `true` for [`ChannelState::Busy`].
    pub fn is_busy(self) -> bool {
        matches!(self, ChannelState::Busy)
    }
}

/// A two-state discrete-time Markov chain with transition probabilities
/// `p01` (idle → busy) and `p10` (busy → idle).
///
/// # Examples
///
/// ```
/// use fcr_spectrum::markov::TwoStateMarkov;
///
/// // The paper's baseline: P01 = 0.4, P10 = 0.3 ⇒ η = 4/7.
/// let chain = TwoStateMarkov::new(0.4, 0.3)?;
/// assert!((chain.utilization() - 4.0 / 7.0).abs() < 1e-12);
/// # Ok::<(), fcr_spectrum::SpectrumError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoStateMarkov {
    p01: f64,
    p10: f64,
}

impl TwoStateMarkov {
    /// Creates a chain from its transition probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`SpectrumError::InvalidProbability`] if either argument is
    /// outside `[0, 1]`, and [`SpectrumError::DegenerateChain`] if both are
    /// zero (no unique stationary distribution).
    pub fn new(p01: f64, p10: f64) -> Result<Self, SpectrumError> {
        let p01 = check_probability("p01", p01)?;
        let p10 = check_probability("p10", p10)?;
        if p01 == 0.0 && p10 == 0.0 {
            return Err(SpectrumError::DegenerateChain);
        }
        Ok(Self { p01, p10 })
    }

    /// Creates a chain with a target utilization η, holding `p10` fixed.
    ///
    /// This is how the paper sweeps η in Figs. 4(c) and 6(a): `P10` stays
    /// at its baseline and `P01` is solved from eq. (1):
    /// `p01 = η·p10 / (1 − η)`.
    ///
    /// # Errors
    ///
    /// Returns an error if η is not in `[0, 1)` or the implied `p01`
    /// exceeds 1 (η too large for the given `p10`).
    pub fn with_utilization(eta: f64, p10: f64) -> Result<Self, SpectrumError> {
        let eta = check_probability("eta", eta)?;
        let p10 = check_probability("p10", p10)?;
        if eta >= 1.0 {
            return Err(SpectrumError::InvalidProbability {
                name: "eta",
                value: eta,
            });
        }
        let p01 = eta * p10 / (1.0 - eta);
        Self::new(p01, p10)
    }

    /// Transition probability idle → busy.
    pub fn p01(&self) -> f64 {
        self.p01
    }

    /// Transition probability busy → idle.
    pub fn p10(&self) -> f64 {
        self.p10
    }

    /// Stationary utilization `η = p01 / (p01 + p10)` (eq. (1)).
    pub fn utilization(&self) -> f64 {
        self.p01 / (self.p01 + self.p10)
    }

    /// Draws the initial state from the stationary distribution.
    pub fn sample_stationary<R: Rng + ?Sized>(&self, rng: &mut R) -> ChannelState {
        if rng.random_bool(self.utilization()) {
            ChannelState::Busy
        } else {
            ChannelState::Idle
        }
    }

    /// Advances one slot from `state`, drawing the transition from `rng`.
    pub fn step<R: Rng + ?Sized>(&self, state: ChannelState, rng: &mut R) -> ChannelState {
        let flip = match state {
            ChannelState::Idle => rng.random_bool(self.p01),
            ChannelState::Busy => rng.random_bool(self.p10),
        };
        match (state, flip) {
            (ChannelState::Idle, true) => ChannelState::Busy,
            (ChannelState::Idle, false) => ChannelState::Idle,
            (ChannelState::Busy, true) => ChannelState::Idle,
            (ChannelState::Busy, false) => ChannelState::Busy,
        }
    }

    /// One-slot-ahead busy probability given the current state.
    ///
    /// Useful for predictive access policies (an extension ablated in the
    /// benches); the paper itself uses the stationary η as the sensing
    /// prior.
    pub fn busy_probability_after(&self, state: ChannelState) -> f64 {
        match state {
            ChannelState::Idle => self.p01,
            ChannelState::Busy => 1.0 - self.p10,
        }
    }

    /// Propagates a busy-probability *belief* one slot forward through
    /// the chain: `b′ = b·(1 − p10) + (1 − b)·p01`.
    ///
    /// This is the belief-tracking extension: instead of resetting the
    /// sensing prior to the stationary η each slot (the paper's choice),
    /// carry yesterday's fused posterior through the transition kernel.
    /// The stationary η is the unique fixed point of this map.
    ///
    /// # Panics
    ///
    /// Panics if `busy_belief` is not a probability.
    pub fn propagate_belief(&self, busy_belief: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&busy_belief),
            "belief must be a probability, got {busy_belief}"
        );
        busy_belief * (1.0 - self.p10) + (1.0 - busy_belief) * self.p01
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcr_stats::rng::SeedSequence;
    use proptest::prelude::*;

    #[test]
    fn state_encoding_matches_paper() {
        assert_eq!(ChannelState::Idle.as_bit(), 0);
        assert_eq!(ChannelState::Busy.as_bit(), 1);
        assert!(ChannelState::Idle.is_idle());
        assert!(ChannelState::Busy.is_busy());
        assert_eq!(ChannelState::default(), ChannelState::Idle);
    }

    #[test]
    fn baseline_utilization_matches_eq1() {
        let chain = TwoStateMarkov::new(0.4, 0.3).unwrap();
        assert!((chain.utilization() - 0.4 / 0.7).abs() < 1e-12);
        assert_eq!(chain.p01(), 0.4);
        assert_eq!(chain.p10(), 0.3);
    }

    #[test]
    fn with_utilization_inverts_eq1() {
        for eta in [0.3, 0.4, 0.5, 0.6, 0.7] {
            let chain = TwoStateMarkov::with_utilization(eta, 0.3).unwrap();
            assert!(
                (chain.utilization() - eta).abs() < 1e-12,
                "eta={eta} got {}",
                chain.utilization()
            );
        }
    }

    #[test]
    fn with_utilization_rejects_impossible_targets() {
        // η = 0.9 with p10 = 0.3 would need p01 = 2.7 > 1.
        assert!(TwoStateMarkov::with_utilization(0.9, 0.3).is_err());
        assert!(TwoStateMarkov::with_utilization(1.0, 0.3).is_err());
        assert!(TwoStateMarkov::with_utilization(-0.1, 0.3).is_err());
    }

    #[test]
    fn constructor_validates() {
        assert!(TwoStateMarkov::new(1.5, 0.3).is_err());
        assert!(TwoStateMarkov::new(0.4, -0.1).is_err());
        assert_eq!(
            TwoStateMarkov::new(0.0, 0.0).unwrap_err(),
            SpectrumError::DegenerateChain
        );
    }

    #[test]
    fn empirical_utilization_converges_to_eta() {
        let chain = TwoStateMarkov::new(0.4, 0.3).unwrap();
        let mut rng = SeedSequence::new(5).stream("markov", 0);
        let mut state = chain.sample_stationary(&mut rng);
        let slots = 200_000;
        let mut busy = 0u64;
        for _ in 0..slots {
            state = chain.step(state, &mut rng);
            busy += u64::from(state.is_busy());
        }
        let empirical = busy as f64 / slots as f64;
        assert!(
            (empirical - chain.utilization()).abs() < 0.01,
            "empirical {empirical} vs analytical {}",
            chain.utilization()
        );
    }

    #[test]
    fn absorbing_states_behave() {
        // p01 = 0: once idle, always idle.
        let chain = TwoStateMarkov::new(0.0, 1.0).unwrap();
        let mut rng = SeedSequence::new(1).stream("markov", 1);
        let mut state = ChannelState::Busy;
        state = chain.step(state, &mut rng); // must flip to idle
        assert!(state.is_idle());
        for _ in 0..100 {
            state = chain.step(state, &mut rng);
            assert!(state.is_idle());
        }
        assert_eq!(chain.utilization(), 0.0);
    }

    #[test]
    fn predictive_busy_probability() {
        let chain = TwoStateMarkov::new(0.4, 0.3).unwrap();
        assert!((chain.busy_probability_after(ChannelState::Idle) - 0.4).abs() < 1e-12);
        assert!((chain.busy_probability_after(ChannelState::Busy) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn stationary_eta_is_the_belief_fixed_point() {
        let chain = TwoStateMarkov::new(0.4, 0.3).unwrap();
        let eta = chain.utilization();
        assert!((chain.propagate_belief(eta) - eta).abs() < 1e-12);
    }

    #[test]
    fn belief_propagation_contracts_toward_eta() {
        let chain = TwoStateMarkov::new(0.4, 0.3).unwrap();
        let eta = chain.utilization();
        let mut belief = 0.99;
        let mut last_gap = (belief - eta).abs();
        for _ in 0..20 {
            belief = chain.propagate_belief(belief);
            let gap = (belief - eta).abs();
            assert!(gap <= last_gap + 1e-12, "belief must contract toward η");
            last_gap = gap;
        }
        assert!(last_gap < 1e-6);
    }

    #[test]
    #[should_panic(expected = "belief must be a probability")]
    fn invalid_belief_panics() {
        let _ = TwoStateMarkov::new(0.4, 0.3).unwrap().propagate_belief(1.5);
    }

    proptest! {
        #[test]
        fn propagated_belief_stays_a_probability(
            p01 in 0.0..=1.0f64,
            p10 in 0.0..=1.0f64,
            b in 0.0..=1.0f64,
        ) {
            prop_assume!(p01 > 0.0 || p10 > 0.0);
            let chain = TwoStateMarkov::new(p01, p10).unwrap();
            let out = chain.propagate_belief(b);
            prop_assert!((0.0..=1.0).contains(&out));
        }

        #[test]
        fn utilization_is_a_probability(p01 in 0.0..=1.0f64, p10 in 0.0..=1.0f64) {
            prop_assume!(p01 > 0.0 || p10 > 0.0);
            let chain = TwoStateMarkov::new(p01, p10).unwrap();
            let eta = chain.utilization();
            prop_assert!((0.0..=1.0).contains(&eta));
        }

        #[test]
        fn stationarity_is_preserved_in_expectation(
            p01 in 0.01..=1.0f64,
            p10 in 0.01..=1.0f64,
        ) {
            // π_busy · p10 = π_idle · p01 (detailed balance for 2 states).
            let chain = TwoStateMarkov::new(p01, p10).unwrap();
            let eta = chain.utilization();
            prop_assert!((eta * p10 - (1.0 - eta) * p01).abs() < 1e-12);
        }

        #[test]
        fn with_utilization_roundtrips(eta in 0.0..0.74f64) {
            let chain = TwoStateMarkov::with_utilization(eta, 0.3).unwrap();
            prop_assert!((chain.utilization() - eta).abs() < 1e-9);
        }
    }
}
