//! Error type for spectrum-model construction.

use std::error::Error;
use std::fmt;

/// Error returned when a spectrum model is constructed with an invalid
/// parameter (a probability outside `[0, 1]`, a non-positive bandwidth,
/// and so on).
#[derive(Debug, Clone, PartialEq)]
pub enum SpectrumError {
    /// A probability parameter was outside `[0, 1]`.
    InvalidProbability {
        /// Name of the offending parameter (paper notation, e.g. `"epsilon"`).
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A parameter that must be strictly positive was not.
    NonPositive {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A Markov chain was configured with both transition probabilities
    /// zero, which has no unique stationary distribution.
    DegenerateChain,
}

impl fmt::Display for SpectrumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpectrumError::InvalidProbability { name, value } => {
                write!(f, "probability `{name}` must be in [0, 1], got {value}")
            }
            SpectrumError::NonPositive { name, value } => {
                write!(f, "parameter `{name}` must be positive, got {value}")
            }
            SpectrumError::DegenerateChain => {
                write!(
                    f,
                    "markov chain with p01 = p10 = 0 has no unique stationary distribution"
                )
            }
        }
    }
}

impl Error for SpectrumError {}

/// Validates that `value` is a probability in `[0, 1]`.
pub(crate) fn check_probability(name: &'static str, value: f64) -> Result<f64, SpectrumError> {
    if (0.0..=1.0).contains(&value) {
        Ok(value)
    } else {
        Err(SpectrumError::InvalidProbability { name, value })
    }
}

/// Validates that `value` is strictly positive and finite.
pub(crate) fn check_positive(name: &'static str, value: f64) -> Result<f64, SpectrumError> {
    if value > 0.0 && value.is_finite() {
        Ok(value)
    } else {
        Err(SpectrumError::NonPositive { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_bounds() {
        assert!(check_probability("x", 0.0).is_ok());
        assert!(check_probability("x", 1.0).is_ok());
        assert!(check_probability("x", -0.1).is_err());
        assert!(check_probability("x", 1.1).is_err());
        assert!(check_probability("x", f64::NAN).is_err());
    }

    #[test]
    fn positivity() {
        assert!(check_positive("x", 1e-9).is_ok());
        assert!(check_positive("x", 0.0).is_err());
        assert!(check_positive("x", -2.0).is_err());
        assert!(check_positive("x", f64::INFINITY).is_err());
    }

    #[test]
    fn display_mentions_parameter_name() {
        let err = check_probability("epsilon", 2.0).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("epsilon"));
        assert!(msg.contains('2'));
        assert!(!format!("{:?}", SpectrumError::DegenerateChain).is_empty());
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<SpectrumError>();
    }
}
