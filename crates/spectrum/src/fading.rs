//! Block-fading wireless links with SINR-threshold decoding
//! (Section III-D, eq. (8)).
//!
//! The paper assumes independent block fading: the channel gain is
//! constant within a time slot and independent across slots, and a packet
//! from base station `i` to CR user `j` is decoded iff the received SINR
//! exceeds a threshold `H`, so the per-slot loss probability is the SINR
//! CDF at `H`:
//!
//! ```text
//! P^F_{i,j} = Pr{X ≤ H} = F^{i,j}_X(H)                            (eq. 8)
//! ```
//!
//! We realize this with a standard two-time-scale model:
//!
//! * **slow scale** (per slot): a log-normal shadowing multiplier, drawn
//!   once per slot and known to the scheduler — this is what makes the
//!   "channel condition" of Heuristics 1 and 2 vary across users and
//!   slots (multiuser diversity);
//! * **fast scale** (within a slot): Rayleigh fading, averaged
//!   analytically into the conditional loss probability
//!   `P^F(t) = 1 − exp(−H / (SINR̄ · shadow_t))` — the exponential-power
//!   CDF evaluated at the threshold.
//!
//! Distances map to mean SINR through a log-distance path-loss model.

use crate::error::{check_positive, check_probability, SpectrumError};
use rand::{Rng, RngExt};

/// Log-distance path-loss model:
/// `PL(d) = PL(d0) + 10·n·log10(d/d0)` dB.
///
/// # Examples
///
/// ```
/// use fcr_spectrum::fading::PathLoss;
///
/// // Indoor femtocell-ish: exponent 3, 37 dB at 1 m.
/// let pl = PathLoss::new(3.0, 37.0, 1.0)?;
/// let loss_10m = pl.loss_db(10.0);
/// assert!((loss_10m - 67.0).abs() < 1e-9);
/// # Ok::<(), fcr_spectrum::SpectrumError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathLoss {
    exponent: f64,
    reference_loss_db: f64,
    reference_distance: f64,
}

impl PathLoss {
    /// Creates a model with path-loss `exponent`, loss
    /// `reference_loss_db` at `reference_distance` (metres).
    ///
    /// # Errors
    ///
    /// Returns an error if `exponent` or `reference_distance` is not
    /// strictly positive.
    pub fn new(
        exponent: f64,
        reference_loss_db: f64,
        reference_distance: f64,
    ) -> Result<Self, SpectrumError> {
        Ok(Self {
            exponent: check_positive("exponent", exponent)?,
            reference_loss_db,
            reference_distance: check_positive("reference_distance", reference_distance)?,
        })
    }

    /// Path loss in dB at distance `d` metres (clamped at the reference
    /// distance so very small `d` does not produce gain).
    pub fn loss_db(&self, d: f64) -> f64 {
        let d = d.max(self.reference_distance);
        self.reference_loss_db + 10.0 * self.exponent * (d / self.reference_distance).log10()
    }

    /// Mean received SINR (linear) for a transmitter at `tx_power_dbm`
    /// over distance `d` with noise-plus-interference floor
    /// `noise_dbm`.
    pub fn mean_sinr(&self, tx_power_dbm: f64, noise_dbm: f64, d: f64) -> f64 {
        let sinr_db = tx_power_dbm - self.loss_db(d) - noise_dbm;
        10f64.powf(sinr_db / 10.0)
    }
}

/// A fading link model: mean SINR, decoding threshold `H`, and
/// shadowing spread.
///
/// # Examples
///
/// ```
/// use fcr_spectrum::fading::RayleighBlockFading;
/// use rand::SeedableRng;
///
/// let link = RayleighBlockFading::new(20.0, 3.0, 4.0)?; // SINR̄=20, H=3, σ=4 dB
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let q = link.draw_slot(&mut rng);
/// assert!(q.loss_probability() > 0.0 && q.loss_probability() < 1.0);
/// # Ok::<(), fcr_spectrum::SpectrumError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RayleighBlockFading {
    mean_sinr: f64,
    threshold: f64,
    shadowing_sigma_db: f64,
}

impl RayleighBlockFading {
    /// Creates a link with mean SINR (linear), decoding threshold `H`
    /// (linear), and log-normal shadowing standard deviation in dB
    /// (0 disables the slow scale: every slot sees the same `P^F`).
    ///
    /// # Errors
    ///
    /// Returns an error if `mean_sinr` or `threshold` is not strictly
    /// positive, or `shadowing_sigma_db` is negative.
    pub fn new(
        mean_sinr: f64,
        threshold: f64,
        shadowing_sigma_db: f64,
    ) -> Result<Self, SpectrumError> {
        if shadowing_sigma_db < 0.0 || !shadowing_sigma_db.is_finite() {
            return Err(SpectrumError::NonPositive {
                name: "shadowing_sigma_db",
                value: shadowing_sigma_db,
            });
        }
        Ok(Self {
            mean_sinr: check_positive("mean_sinr", mean_sinr)?,
            threshold: check_positive("threshold", threshold)?,
            shadowing_sigma_db,
        })
    }

    /// Mean SINR (linear).
    pub fn mean_sinr(&self) -> f64 {
        self.mean_sinr
    }

    /// Decoding threshold `H` (linear).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The marginal (all-fading-averaged) loss probability
    /// `P^F = 1 − exp(−H / SINR̄)` of eq. (8) under pure Rayleigh fading
    /// (ignoring shadowing).
    pub fn marginal_loss_probability(&self) -> f64 {
        1.0 - (-self.threshold / self.mean_sinr).exp()
    }

    /// Draws the slot's shadowing state and returns the conditional link
    /// quality for the slot (constant within the slot, per the paper's
    /// block-fading assumption).
    pub fn draw_slot<R: Rng + ?Sized>(&self, rng: &mut R) -> LinkQuality {
        let shadow = if self.shadowing_sigma_db == 0.0 {
            1.0
        } else {
            let z = standard_normal(rng);
            10f64.powf(z * self.shadowing_sigma_db / 10.0)
        };
        let conditional_mean = self.mean_sinr * shadow;
        let pf = 1.0 - (-self.threshold / conditional_mean).exp();
        LinkQuality::new(pf).expect("Rayleigh CDF is a probability")
    }
}

/// Nakagami-m block-fading link: the standard generalization of
/// Rayleigh fading (`m = 1`) toward line-of-sight-like channels
/// (`m > 1`, shallower fades) or worse-than-Rayleigh scattering
/// (`0.5 ≤ m < 1`).
///
/// The received power of a Nakagami-m channel is Gamma-distributed
/// with shape `m` and mean SINR̄, so the eq.-(8) loss probability at
/// threshold `H` is the regularized incomplete gamma function
/// `P(m, m·H/SINR̄)`.
///
/// # Examples
///
/// ```
/// use fcr_spectrum::fading::{NakagamiBlockFading, RayleighBlockFading};
///
/// // m = 1 is exactly Rayleigh.
/// let nak = NakagamiBlockFading::new(1.0, 20.0, 3.0, 0.0)?;
/// let ray = RayleighBlockFading::new(20.0, 3.0, 0.0)?;
/// assert!((nak.marginal_loss_probability() - ray.marginal_loss_probability()).abs() < 1e-12);
/// // A line-of-sight-ish m = 4 link fades less below threshold.
/// let los = NakagamiBlockFading::new(4.0, 20.0, 3.0, 0.0)?;
/// assert!(los.marginal_loss_probability() < nak.marginal_loss_probability());
/// # Ok::<(), fcr_spectrum::SpectrumError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NakagamiBlockFading {
    m: f64,
    mean_sinr: f64,
    threshold: f64,
    shadowing_sigma_db: f64,
}

impl NakagamiBlockFading {
    /// Creates a link with Nakagami shape `m ≥ 0.5`, mean SINR
    /// (linear), decoding threshold `H` (linear), and log-normal
    /// shadowing spread in dB.
    ///
    /// # Errors
    ///
    /// Returns an error if `m < 0.5` (the Nakagami shape's physical
    /// lower limit), or the other parameters are invalid as in
    /// [`RayleighBlockFading::new`].
    pub fn new(
        m: f64,
        mean_sinr: f64,
        threshold: f64,
        shadowing_sigma_db: f64,
    ) -> Result<Self, SpectrumError> {
        if !(m >= 0.5 && m.is_finite()) {
            return Err(SpectrumError::NonPositive {
                name: "nakagami_m",
                value: m,
            });
        }
        // Reuse the Rayleigh constructor's validation for the rest.
        let base = RayleighBlockFading::new(mean_sinr, threshold, shadowing_sigma_db)?;
        Ok(Self {
            m,
            mean_sinr: base.mean_sinr,
            threshold: base.threshold,
            shadowing_sigma_db: base.shadowing_sigma_db,
        })
    }

    /// The Nakagami shape parameter `m`.
    pub fn m(&self) -> f64 {
        self.m
    }

    /// Mean SINR (linear).
    pub fn mean_sinr(&self) -> f64 {
        self.mean_sinr
    }

    /// The marginal loss probability `P(m, m·H/SINR̄)` (eq. (8) with a
    /// Gamma-distributed received power; `m = 1` reduces to the
    /// Rayleigh expression).
    pub fn marginal_loss_probability(&self) -> f64 {
        fcr_stats::special::gamma_p(self.m, self.m * self.threshold / self.mean_sinr)
    }

    /// Draws the slot's shadowing state and returns the conditional
    /// link quality (the Nakagami fast fading is averaged analytically,
    /// mirroring [`RayleighBlockFading::draw_slot`]).
    pub fn draw_slot<R: Rng + ?Sized>(&self, rng: &mut R) -> LinkQuality {
        let shadow = if self.shadowing_sigma_db == 0.0 {
            1.0
        } else {
            let z = standard_normal(rng);
            10f64.powf(z * self.shadowing_sigma_db / 10.0)
        };
        let conditional_mean = self.mean_sinr * shadow;
        let pf = fcr_stats::special::gamma_p(self.m, self.m * self.threshold / conditional_mean);
        LinkQuality::new(pf.clamp(0.0, 1.0)).expect("gamma CDF is a probability")
    }
}

/// A block-fading link of either flavour, so deployments can mix
/// Rayleigh (rich scattering) and Nakagami-m (e.g. near-LOS femtocell)
/// links behind one type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BlockFadingLink {
    /// Rayleigh fading (the paper's implicit model).
    Rayleigh(RayleighBlockFading),
    /// Nakagami-m fading.
    Nakagami(NakagamiBlockFading),
}

impl BlockFadingLink {
    /// Mean SINR (linear).
    pub fn mean_sinr(&self) -> f64 {
        match self {
            BlockFadingLink::Rayleigh(l) => l.mean_sinr(),
            BlockFadingLink::Nakagami(l) => l.mean_sinr(),
        }
    }

    /// Marginal (all-fading-averaged) loss probability.
    pub fn marginal_loss_probability(&self) -> f64 {
        match self {
            BlockFadingLink::Rayleigh(l) => l.marginal_loss_probability(),
            BlockFadingLink::Nakagami(l) => l.marginal_loss_probability(),
        }
    }

    /// Draws the slot's link quality.
    pub fn draw_slot<R: Rng + ?Sized>(&self, rng: &mut R) -> LinkQuality {
        match self {
            BlockFadingLink::Rayleigh(l) => l.draw_slot(rng),
            BlockFadingLink::Nakagami(l) => l.draw_slot(rng),
        }
    }
}

impl From<RayleighBlockFading> for BlockFadingLink {
    fn from(l: RayleighBlockFading) -> Self {
        BlockFadingLink::Rayleigh(l)
    }
}

impl From<NakagamiBlockFading> for BlockFadingLink {
    fn from(l: NakagamiBlockFading) -> Self {
        BlockFadingLink::Nakagami(l)
    }
}

/// A slot's realized link quality: the loss probability `P^F_{i,j}(t)`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct LinkQuality {
    loss_probability: f64,
}

impl LinkQuality {
    /// Creates a link quality from a loss probability.
    ///
    /// # Errors
    ///
    /// Returns [`SpectrumError::InvalidProbability`] if `loss_probability`
    /// is outside `[0, 1]`.
    pub fn new(loss_probability: f64) -> Result<Self, SpectrumError> {
        Ok(Self {
            loss_probability: check_probability("loss_probability", loss_probability)?,
        })
    }

    /// A lossless link (`P^F = 0`); handy in tests.
    pub fn perfect() -> Self {
        Self {
            loss_probability: 0.0,
        }
    }

    /// The loss probability `P^F`.
    pub fn loss_probability(&self) -> f64 {
        self.loss_probability
    }

    /// The success probability `P̄^F = 1 − P^F` (the coefficient that
    /// multiplies each log term in problem (12)).
    pub fn success_probability(&self) -> f64 {
        1.0 - self.loss_probability
    }

    /// Realizes the packet-loss indicator `ξ` for one transmission:
    /// `true` means delivered.
    pub fn realize<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.random_bool(self.success_probability())
    }
}

/// Standard normal sample via Box–Muller (avoids a dependency on
/// `rand_distr`, which is outside the approved crate list).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.random();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcr_stats::descriptive::Summary;
    use fcr_stats::rng::SeedSequence;
    use proptest::prelude::*;

    #[test]
    fn path_loss_log_distance() {
        let pl = PathLoss::new(3.0, 37.0, 1.0).unwrap();
        assert!((pl.loss_db(1.0) - 37.0).abs() < 1e-12);
        assert!((pl.loss_db(100.0) - 97.0).abs() < 1e-9);
        // Below the reference distance: clamped, no gain.
        assert!((pl.loss_db(0.01) - 37.0).abs() < 1e-12);
    }

    #[test]
    fn path_loss_to_sinr() {
        let pl = PathLoss::new(3.0, 37.0, 1.0).unwrap();
        // 10 dBm tx, -80 dBm noise, 10 m → SINR = 10 − 67 + 80 = 23 dB.
        let sinr = pl.mean_sinr(10.0, -80.0, 10.0);
        assert!((10.0 * sinr.log10() - 23.0).abs() < 1e-9);
    }

    #[test]
    fn path_loss_validation() {
        assert!(PathLoss::new(0.0, 37.0, 1.0).is_err());
        assert!(PathLoss::new(3.0, 37.0, 0.0).is_err());
    }

    #[test]
    fn marginal_loss_matches_rayleigh_cdf() {
        let link = RayleighBlockFading::new(10.0, 3.0, 0.0).unwrap();
        let expected = 1.0 - (-0.3f64).exp();
        assert!((link.marginal_loss_probability() - expected).abs() < 1e-12);
    }

    #[test]
    fn zero_shadowing_gives_constant_slots() {
        let link = RayleighBlockFading::new(10.0, 3.0, 0.0).unwrap();
        let mut rng = SeedSequence::new(3).stream("fading", 0);
        let q1 = link.draw_slot(&mut rng);
        let q2 = link.draw_slot(&mut rng);
        assert_eq!(q1, q2);
        assert!((q1.loss_probability() - link.marginal_loss_probability()).abs() < 1e-12);
    }

    #[test]
    fn shadowing_varies_slots() {
        let link = RayleighBlockFading::new(10.0, 3.0, 4.0).unwrap();
        let mut rng = SeedSequence::new(3).stream("fading", 1);
        let samples: Vec<f64> = (0..50)
            .map(|_| link.draw_slot(&mut rng).loss_probability())
            .collect();
        let s: Summary = samples.iter().copied().collect();
        assert!(s.sample_std_dev() > 0.0, "shadowing should vary P^F");
        assert!(samples.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn better_sinr_means_fewer_losses() {
        let weak = RayleighBlockFading::new(2.0, 3.0, 0.0).unwrap();
        let strong = RayleighBlockFading::new(50.0, 3.0, 0.0).unwrap();
        assert!(strong.marginal_loss_probability() < weak.marginal_loss_probability());
    }

    #[test]
    fn link_quality_accessors_and_realize() {
        let q = LinkQuality::new(0.25).unwrap();
        assert_eq!(q.loss_probability(), 0.25);
        assert_eq!(q.success_probability(), 0.75);
        let mut rng = SeedSequence::new(4).stream("fading", 2);
        let n = 100_000;
        let delivered = (0..n).filter(|_| q.realize(&mut rng)).count();
        let rate = delivered as f64 / n as f64;
        assert!((rate - 0.75).abs() < 0.01, "delivery rate {rate}");
    }

    #[test]
    fn perfect_link_never_loses() {
        let q = LinkQuality::perfect();
        let mut rng = SeedSequence::new(4).stream("fading", 3);
        assert!((0..1000).all(|_| q.realize(&mut rng)));
    }

    #[test]
    fn link_quality_validation() {
        assert!(LinkQuality::new(-0.1).is_err());
        assert!(LinkQuality::new(1.1).is_err());
        assert!(RayleighBlockFading::new(0.0, 3.0, 0.0).is_err());
        assert!(RayleighBlockFading::new(10.0, 0.0, 0.0).is_err());
        assert!(RayleighBlockFading::new(10.0, 3.0, -1.0).is_err());
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = SeedSequence::new(5).stream("fading", 4);
        let s: Summary = (0..100_000).map(|_| standard_normal(&mut rng)).collect();
        assert!(s.mean().abs() < 0.02, "mean {}", s.mean());
        assert!(
            (s.sample_std_dev() - 1.0).abs() < 0.02,
            "sd {}",
            s.sample_std_dev()
        );
    }

    #[test]
    fn nakagami_m1_matches_rayleigh_slotwise() {
        // Same σ, same RNG stream ⇒ identical per-slot loss probs.
        let nak = NakagamiBlockFading::new(1.0, 12.0, 3.0, 3.0).unwrap();
        let ray = RayleighBlockFading::new(12.0, 3.0, 3.0).unwrap();
        let mut rng1 = SeedSequence::new(6).stream("nakagami", 0);
        let mut rng2 = SeedSequence::new(6).stream("nakagami", 0);
        for _ in 0..50 {
            let a = nak.draw_slot(&mut rng1).loss_probability();
            let b = ray.draw_slot(&mut rng2).loss_probability();
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn higher_m_means_shallower_fades_below_threshold() {
        // With SINR̄ well above H, increasing m reduces outages
        // (deep fades become rarer as the channel hardens).
        let mut last = 1.0;
        for m in [0.5, 1.0, 2.0, 4.0, 8.0] {
            let link = NakagamiBlockFading::new(m, 20.0, 3.0, 0.0).unwrap();
            let pf = link.marginal_loss_probability();
            assert!(pf < last, "m={m}: {pf} should fall below {last}");
            last = pf;
        }
        // Conversely, with SINR̄ below H, hardening hurts.
        let soft = NakagamiBlockFading::new(1.0, 2.0, 3.0, 0.0).unwrap();
        let hard = NakagamiBlockFading::new(8.0, 2.0, 3.0, 0.0).unwrap();
        assert!(hard.marginal_loss_probability() > soft.marginal_loss_probability());
    }

    #[test]
    fn nakagami_validation() {
        assert!(NakagamiBlockFading::new(0.4, 10.0, 3.0, 0.0).is_err());
        assert!(NakagamiBlockFading::new(1.0, 0.0, 3.0, 0.0).is_err());
        assert!(NakagamiBlockFading::new(f64::NAN, 10.0, 3.0, 0.0).is_err());
        let l = NakagamiBlockFading::new(2.0, 10.0, 3.0, 1.0).unwrap();
        assert_eq!(l.m(), 2.0);
        assert_eq!(l.mean_sinr(), 10.0);
    }

    #[test]
    fn block_fading_link_enum_dispatches() {
        let ray: BlockFadingLink = RayleighBlockFading::new(15.0, 3.0, 0.0).unwrap().into();
        let nak: BlockFadingLink = NakagamiBlockFading::new(3.0, 15.0, 3.0, 0.0)
            .unwrap()
            .into();
        assert_eq!(ray.mean_sinr(), 15.0);
        assert_eq!(nak.mean_sinr(), 15.0);
        assert!(nak.marginal_loss_probability() < ray.marginal_loss_probability());
        let mut rng = SeedSequence::new(7).stream("enum", 0);
        let q = nak.draw_slot(&mut rng);
        assert!((0.0..=1.0).contains(&q.loss_probability()));
    }

    proptest! {
        #[test]
        fn nakagami_slot_loss_is_always_a_probability(
            m in 0.5..10.0f64,
            sinr in 0.1..1e4f64,
            h in 0.1..100.0f64,
            sigma in 0.0..12.0f64,
            seed in 0u64..200,
        ) {
            let link = NakagamiBlockFading::new(m, sinr, h, sigma).unwrap();
            let mut rng = SeedSequence::new(seed).stream("nakagami-prop", 0);
            let q = link.draw_slot(&mut rng);
            prop_assert!((0.0..=1.0).contains(&q.loss_probability()));
        }

        #[test]
        fn slot_loss_is_always_a_probability(
            sinr in 0.1..1e4f64,
            h in 0.1..100.0f64,
            sigma in 0.0..12.0f64,
            seed in 0u64..500,
        ) {
            let link = RayleighBlockFading::new(sinr, h, sigma).unwrap();
            let mut rng = SeedSequence::new(seed).stream("fading-prop", 0);
            let q = link.draw_slot(&mut rng);
            prop_assert!((0.0..=1.0).contains(&q.loss_probability()));
            prop_assert!((q.loss_probability() + q.success_probability() - 1.0).abs() < 1e-12);
        }

        #[test]
        fn path_loss_is_monotone_in_distance(
            d1 in 1.0..1e4f64,
            d2 in 1.0..1e4f64,
        ) {
            let pl = PathLoss::new(3.0, 37.0, 1.0).unwrap();
            let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
            prop_assert!(pl.loss_db(lo) <= pl.loss_db(hi) + 1e-9);
        }
    }
}
