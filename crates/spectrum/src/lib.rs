//! Cognitive-radio spectrum substrate (Section III of Hu & Mao,
//! ICDCS 2011).
//!
//! This crate models everything between the physical spectrum and the
//! resource allocator:
//!
//! * [`markov`] — each licensed channel's primary-user occupancy as a
//!   two-state discrete-time Markov chain (eq. (1));
//! * [`primary`] — the collection of `M` licensed channels plus the
//!   common unlicensed channel, evolved slot by slot;
//! * [`sensing`] — imperfect spectrum sensors with false-alarm
//!   probability ε and miss-detection probability δ;
//! * [`fusion`] — the Bayesian availability posterior
//!   `P^A_m(Θ⃗)` of eqs. (2)–(4), in batch, iterative, and log-domain
//!   forms;
//! * [`access`] — the collision-bounded probabilistic access rule of
//!   eqs. (5)–(7) producing the available set `A(t)` and the expected
//!   number of available channels `G_t`;
//! * [`fading`] — Rayleigh block fading with SINR-threshold decoding
//!   (eq. (8)) and a log-distance path-loss model.
//!
//! # Examples
//!
//! Sense a channel, fuse three noisy observations, and decide access:
//!
//! ```
//! use fcr_spectrum::fusion::AvailabilityPosterior;
//! use fcr_spectrum::sensing::{Observation, SensorProfile};
//! use fcr_spectrum::access::AccessPolicy;
//!
//! let sensor = SensorProfile::new(0.3, 0.3)?; // ε = δ = 0.3
//! let mut posterior = AvailabilityPosterior::new(0.4)?; // prior busy prob. η = 0.4
//! for obs in [Observation::Idle, Observation::Idle, Observation::Busy] {
//!     posterior.update(&sensor, obs);
//! }
//! let policy = AccessPolicy::new(0.2)?; // γ = 0.2
//! let p_access = policy.access_probability(posterior.probability());
//! assert!((0.0..=1.0).contains(&p_access));
//! # Ok::<(), fcr_spectrum::SpectrumError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod access;
pub mod estimation;
pub mod fading;
pub mod fusion;
pub mod markov;
pub mod primary;
pub mod sensing;
pub mod streams;

mod error;

pub use access::{AccessConfig, AccessOutcome, AccessPolicy, ThresholdPolicy};
pub use error::SpectrumError;
pub use estimation::TransitionCounts;
pub use fading::{
    BlockFadingLink, LinkQuality, NakagamiBlockFading, PathLoss, RayleighBlockFading,
};
pub use fusion::AvailabilityPosterior;
pub use markov::{ChannelState, TwoStateMarkov};
pub use primary::{ChannelId, PrimaryNetwork};
pub use sensing::{Observation, SensorProfile};
pub use streams::{gop_streams, spectrum_streams, GopStreams, SpectrumStreams};
