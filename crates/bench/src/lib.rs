//! `fcr-bench` — the benchmark subsystem: the standing `fcr-bench`
//! runner, the shared `BENCH_<area>.json` artifact machinery, the
//! perf-budget gate, plus shared fixtures for the Criterion benches.
//!
//! # The standing harness
//!
//! The `fcr-bench` binary runs named [`areas`] (`solver`, `runtime`,
//! `serve`, `scenario`), each emitting one `BENCH_<area>.json` on the shared
//! [`fcr_telemetry::BenchEnvelope`] schema; `fcr-bench check` diffs
//! fresh artifacts against the in-tree thresholds
//! ([`budgets`], `bench/budgets.json`) and exits nonzero on any
//! regression — the CI `bench-smoke` job is exactly `run --all
//! --scale smoke` followed by `check`. Artifacts are parsed back with
//! the std-only reader in [`json`] (the container is offline; no
//! serde).
//!
//! # Criterion benches
//!
//! The human-facing micro benches live in `benches/`:
//!
//! * `figures` — times the full pipeline behind each paper figure at a
//!   reduced scale (the full-scale tables are printed by the
//!   `experiments` binary);
//! * `micro` — hot inner kernels: Markov stepping, Bayesian fusion,
//!   access decisions, water-filling, the dual loop, greedy/exhaustive
//!   channel allocation;
//! * `ablation` — the design-choice comparisons DESIGN.md calls out:
//!   dual vs. water-filling inner solver, fused vs. first-observation
//!   posterior, greedy vs. round-robin vs. exhaustive channel split.

#![forbid(unsafe_code)]

pub mod areas;
pub mod budgets;
pub mod json;

pub use areas::{run_area, Scale, ALL_AREAS};
pub use budgets::{check, Budget, BudgetFile, Violation};
pub use json::{parse_envelope, Json};

use fcr_core::interfering::InterferingProblem;
use fcr_core::problem::{SlotProblem, UserState};
use fcr_net::interference::InterferenceGraph;
use fcr_net::node::FbsId;

/// The paper's three-user single-FBS slot problem (Fig. 3 flavour).
pub fn single_fbs_problem() -> SlotProblem {
    SlotProblem::single_fbs(
        vec![
            UserState::new(30.2, FbsId(0), 0.72, 0.72, 0.9, 0.85).expect("valid"),
            UserState::new(27.6, FbsId(0), 0.63, 0.63, 0.8, 0.9).expect("valid"),
            UserState::new(28.8, FbsId(0), 0.675, 0.675, 0.85, 0.8).expect("valid"),
        ],
        3.0,
    )
    .expect("valid")
}

/// The Fig. 5 interfering instance: path graph, nine users, four
/// available channels.
pub fn fig5_problem() -> InterferingProblem {
    let graph = InterferenceGraph::new(3, &[(FbsId(0), FbsId(1)), (FbsId(1), FbsId(2))]);
    let users: Vec<UserState> = (0..9)
        .map(|j| {
            UserState::new(
                27.0 + j as f64 * 0.7,
                FbsId(j / 3),
                0.72,
                0.72,
                0.5 + 0.04 * (j % 3) as f64,
                0.95 - 0.05 * (j % 3) as f64,
            )
            .expect("valid")
        })
        .collect();
    InterferingProblem::new(users, graph, vec![0.9, 0.8, 0.75, 0.7]).expect("valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        assert_eq!(single_fbs_problem().num_users(), 3);
        let p = fig5_problem();
        assert_eq!(p.num_fbss(), 3);
        assert_eq!(p.num_channels(), 4);
    }
}
