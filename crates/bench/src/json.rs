//! JSON reading for the benchmark subsystem.
//!
//! The recursive-descent [`Json`] reader itself lives in
//! [`fcr_telemetry::json`] (it is shared with `fcr-scenario`'s pack
//! parser); this module re-exports it and adds the envelope-specific
//! decoding: the `fcr-bench check` gate and the schema round-trip
//! tests parse `BENCH_<area>.json` and `bench/budgets.json` through
//! [`parse_envelope`].

pub use fcr_telemetry::json::Json;

use fcr_telemetry::{BenchEnvelope, BenchValue};

/// Parses a rendered `BENCH_<area>.json` document back into a
/// [`BenchEnvelope`]. Integral non-negative numbers come back as
/// `U64`, everything else numeric as `F64` — semantically lossless
/// for the envelope's metric comparisons ([`BenchEnvelope::metric_value`]
/// widens both to `f64`).
pub fn parse_envelope(text: &str) -> Result<BenchEnvelope, String> {
    let doc = Json::parse(text)?;
    let schema_version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("missing schema_version")? as u32;
    let area = doc
        .get("area")
        .and_then(Json::as_str)
        .ok_or("missing area")?;
    let seed = doc
        .get("seed")
        .and_then(Json::as_u64)
        .ok_or("missing seed")?;
    let wall_seconds = doc
        .get("wall_seconds")
        .and_then(Json::as_f64)
        .ok_or("missing wall_seconds")?;
    let mut envelope = BenchEnvelope::new(area, seed).wall_seconds(wall_seconds);
    envelope.schema_version = schema_version;
    let map = |name: &str| -> Result<Vec<(String, BenchValue)>, String> {
        doc.get(name)
            .and_then(Json::fields)
            .ok_or(format!("missing {name} object"))
            .map(|fields| {
                fields
                    .iter()
                    .map(|(k, v)| (k.clone(), to_bench_value(v)))
                    .collect()
            })
    };
    envelope.workload = map("workload")?;
    envelope.metrics = map("metrics")?;
    Ok(envelope)
}

fn to_bench_value(v: &Json) -> BenchValue {
    match v {
        Json::Null => BenchValue::Null,
        Json::Bool(b) => BenchValue::Bool(*b),
        Json::Num(n) => v.as_u64().map_or(BenchValue::F64(*n), BenchValue::U64),
        Json::Str(s) => BenchValue::Str(s.clone()),
        // Nested containers never appear in the envelope's flat maps.
        Json::Arr(_) | Json::Obj(_) => BenchValue::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_json_shapes_the_artifacts_use() {
        let doc = Json::parse(
            r#"{"a": 1, "b": -2.5, "c": [true, false, null], "d": {"x": "y\n\"z\""}, "e": 1e3}"#,
        )
        .expect("parse");
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("b").and_then(Json::as_f64), Some(-2.5));
        assert_eq!(doc.get("e").and_then(Json::as_f64), Some(1000.0));
        assert_eq!(
            doc.get("c"),
            Some(&Json::Arr(vec![
                Json::Bool(true),
                Json::Bool(false),
                Json::Null
            ]))
        );
        assert_eq!(
            doc.get("d").and_then(|d| d.get("x")).and_then(Json::as_str),
            Some("y\n\"z\"")
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\":1} trailing",
            "\"unterminated",
            "nul",
            "{\"a\" 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn envelope_round_trips_through_render_and_parse() {
        let original = BenchEnvelope::new("solver", 99)
            .wall_seconds(0.75)
            .workload("runs", 10u64)
            .workload("scale", "smoke")
            .metric("slots_per_sec", 123.25)
            .metric("iterations_max", 870u64)
            .metric("p50_us", Option::<u64>::None)
            .metric("converged", true);
        let parsed = parse_envelope(&original.to_json()).expect("round trip");
        assert_eq!(parsed, original);
        // And the re-render is byte-identical: the shape is stable.
        assert_eq!(parsed.to_json(), original.to_json());
    }

    #[test]
    fn envelope_parse_reports_missing_fields() {
        let err = parse_envelope("{\"area\": \"x\"}").unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }
}
