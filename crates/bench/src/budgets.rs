//! Perf budgets: the in-tree thresholds `fcr-bench check` holds fresh
//! `BENCH_<area>.json` artifacts to.
//!
//! The machine-readable source of truth is `bench/budgets.json`
//! (prose rationale in `docs/perf_budgets.md`):
//!
//! ```text
//! {
//!   "schema_version": 1,
//!   "budgets": {
//!     "serve": {
//!       "windows_retried": { "max": 0 },
//!       "sessions_per_sec": { "min": 0.5 }
//!     }
//!   }
//! }
//! ```
//!
//! Each budget bounds one envelope metric with an inclusive `min`
//! and/or `max`. [`check`] diffs a set of envelopes against the file
//! and returns every violation — a missing artifact for a budgeted
//! area, a missing or non-numeric metric, a schema-version mismatch,
//! or a bound breach — each rendering as a diff-style line naming the
//! metric, the budget, and the measured value.

use crate::json::Json;
use fcr_telemetry::{BenchEnvelope, BENCH_SCHEMA_VERSION};

/// One metric bound: `min`/`max` are inclusive; either may be absent.
#[derive(Debug, Clone, PartialEq)]
pub struct Budget {
    /// The benchmark area the metric lives in.
    pub area: String,
    /// The envelope metric name this budget bounds.
    pub metric: String,
    /// Inclusive lower bound (throughput floors, invariant flags).
    pub min: Option<f64>,
    /// Inclusive upper bound (latency ceilings, error counts).
    pub max: Option<f64>,
}

/// The parsed `bench/budgets.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetFile {
    /// Envelope schema version the budgets were written against.
    pub schema_version: u32,
    /// Every budget, in document order.
    pub budgets: Vec<Budget>,
}

impl BudgetFile {
    /// Parses the `bench/budgets.json` document.
    pub fn parse(text: &str) -> Result<BudgetFile, String> {
        let doc = Json::parse(text)?;
        let schema_version = doc
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("budgets: missing schema_version")? as u32;
        let areas = doc
            .get("budgets")
            .and_then(Json::fields)
            .ok_or("budgets: missing budgets object")?;
        let mut budgets = Vec::new();
        for (area, metrics) in areas {
            let metrics = metrics
                .fields()
                .ok_or(format!("budgets: area {area:?} is not an object"))?;
            for (metric, bound) in metrics {
                let min = bound.get("min").and_then(Json::as_f64);
                let max = bound.get("max").and_then(Json::as_f64);
                if min.is_none() && max.is_none() {
                    return Err(format!("budgets: {area}/{metric} has neither min nor max"));
                }
                budgets.push(Budget {
                    area: area.clone(),
                    metric: metric.clone(),
                    min,
                    max,
                });
            }
        }
        Ok(BudgetFile {
            schema_version,
            budgets,
        })
    }

    /// The areas this file budgets, deduplicated in document order.
    pub fn areas(&self) -> Vec<&str> {
        let mut areas: Vec<&str> = Vec::new();
        for b in &self.budgets {
            if !areas.contains(&b.area.as_str()) {
                areas.push(&b.area);
            }
        }
        areas
    }
}

/// One budget breach (or structural problem), renderable as the
/// diff-style line the CI job fails with.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The budgeted area.
    pub area: String,
    /// The budgeted metric (empty for whole-artifact problems).
    pub metric: String,
    /// What went wrong, naming the budget and the measured value.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.metric.is_empty() {
            write!(f, "FAIL {}: {}", self.area, self.message)
        } else {
            write!(f, "FAIL {}/{}: {}", self.area, self.metric, self.message)
        }
    }
}

/// Diffs `envelopes` against `budgets`: every budgeted area must have
/// an envelope at the current schema version, and every budgeted
/// metric must exist, be numeric, and sit within its bounds. Returns
/// all violations (empty = the run passes the gate).
pub fn check(budgets: &BudgetFile, envelopes: &[BenchEnvelope]) -> Vec<Violation> {
    let mut violations = Vec::new();
    for area in budgets.areas() {
        let Some(envelope) = envelopes.iter().find(|e| e.area == area) else {
            violations.push(Violation {
                area: area.to_string(),
                metric: String::new(),
                message: format!("no BENCH_{area}.json artifact for budgeted area"),
            });
            continue;
        };
        if envelope.schema_version != BENCH_SCHEMA_VERSION {
            violations.push(Violation {
                area: area.to_string(),
                metric: String::new(),
                message: format!(
                    "{}: schema_version {} != expected {BENCH_SCHEMA_VERSION} \
                     (stale artifact — regenerate with `fcr-bench run --area {area}`)",
                    envelope.file_name(),
                    envelope.schema_version
                ),
            });
            continue;
        }
        for budget in budgets.budgets.iter().filter(|b| b.area == area) {
            let Some(measured) = envelope.metric_value(&budget.metric) else {
                violations.push(Violation {
                    area: area.to_string(),
                    metric: budget.metric.clone(),
                    message: "metric missing or non-numeric in artifact".to_string(),
                });
                continue;
            };
            // NaN compares false against every bound, so `< min` /
            // `> max` alone would wave a poisoned metric through the
            // gate. Reject it outright.
            if measured.is_nan() {
                violations.push(Violation {
                    area: area.to_string(),
                    metric: budget.metric.clone(),
                    message: "measured NaN violates every bound".to_string(),
                });
                continue;
            }
            if let Some(min) = budget.min {
                if measured < min {
                    violations.push(Violation {
                        area: area.to_string(),
                        metric: budget.metric.clone(),
                        message: format!("measured {measured} < budget min {min}"),
                    });
                }
            }
            if let Some(max) = budget.max {
                if measured > max {
                    violations.push(Violation {
                        area: area.to_string(),
                        metric: budget.metric.clone(),
                        message: format!("measured {measured} > budget max {max}"),
                    });
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
      "schema_version": 1,
      "budgets": {
        "solver": {
          "waterfill_solves_per_sec": { "min": 10.0 },
          "dual_iterations_max": { "max": 5000 }
        },
        "serve": {
          "windows_retried": { "max": 0 }
        }
      }
    }"#;

    fn passing_solver() -> BenchEnvelope {
        BenchEnvelope::new("solver", 1)
            .metric("waterfill_solves_per_sec", 100.0)
            .metric("dual_iterations_max", 870u64)
    }

    #[test]
    fn parses_budget_files() {
        let file = BudgetFile::parse(SAMPLE).expect("parse");
        assert_eq!(file.schema_version, 1);
        assert_eq!(file.budgets.len(), 3);
        assert_eq!(file.areas(), vec!["solver", "serve"]);
        assert_eq!(file.budgets[0].min, Some(10.0));
        assert_eq!(file.budgets[1].max, Some(5000.0));
    }

    #[test]
    fn empty_bounds_are_rejected() {
        let err =
            BudgetFile::parse(r#"{"schema_version": 1, "budgets": {"x": {"m": {}}}}"#).unwrap_err();
        assert!(err.contains("neither min nor max"), "{err}");
    }

    #[test]
    fn clean_run_passes() {
        let file = BudgetFile::parse(SAMPLE).expect("parse");
        let envelopes = [
            passing_solver(),
            BenchEnvelope::new("serve", 2).metric("windows_retried", 0u64),
        ];
        assert_eq!(check(&file, &envelopes), Vec::new());
    }

    #[test]
    fn injected_regression_fails_naming_metric_budget_and_value() {
        let file = BudgetFile::parse(SAMPLE).expect("parse");
        let envelopes = [
            BenchEnvelope::new("solver", 1)
                .metric("waterfill_solves_per_sec", 2.5)
                .metric("dual_iterations_max", 9000u64),
            BenchEnvelope::new("serve", 2).metric("windows_retried", 3u64),
        ];
        let violations = check(&file, &envelopes);
        assert_eq!(violations.len(), 3, "{violations:?}");
        let lines: Vec<String> = violations.iter().map(ToString::to_string).collect();
        assert_eq!(
            lines[0],
            "FAIL solver/waterfill_solves_per_sec: measured 2.5 < budget min 10"
        );
        assert_eq!(
            lines[1],
            "FAIL solver/dual_iterations_max: measured 9000 > budget max 5000"
        );
        assert_eq!(
            lines[2],
            "FAIL serve/windows_retried: measured 3 > budget max 0"
        );
    }

    #[test]
    fn a_nan_metric_is_a_violation_not_a_pass() {
        let file = BudgetFile::parse(SAMPLE).expect("parse");
        let envelopes = [
            BenchEnvelope::new("solver", 1)
                .metric("waterfill_solves_per_sec", f64::NAN)
                .metric("dual_iterations_max", f64::NAN),
            BenchEnvelope::new("serve", 2).metric("windows_retried", 0u64),
        ];
        let violations = check(&file, &envelopes);
        assert_eq!(violations.len(), 2, "{violations:?}");
        for v in &violations {
            assert!(v.to_string().contains("NaN"), "{v}");
        }
    }

    #[test]
    fn missing_artifact_metric_and_schema_mismatch_all_fail() {
        let file = BudgetFile::parse(SAMPLE).expect("parse");
        // Missing serve artifact entirely.
        let violations = check(&file, &[passing_solver()]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].to_string().contains("no BENCH_serve.json"));

        // Metric absent from the artifact.
        let violations = check(&file, &[passing_solver(), BenchEnvelope::new("serve", 2)]);
        assert!(violations[0]
            .to_string()
            .contains("metric missing or non-numeric"));

        // Wrong schema version short-circuits the area's metric checks.
        let mut stale = BenchEnvelope::new("serve", 2).metric("windows_retried", 0u64);
        stale.schema_version = 99;
        let violations = check(&file, &[passing_solver(), stale]);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].to_string().contains("schema_version 99"));
    }
}
