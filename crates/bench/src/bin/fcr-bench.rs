//! The standing benchmark runner and regression gate.
//!
//! ```text
//! fcr-bench run  [--all | --area NAME ...] [--scale smoke|full]
//!                [--seed N] [--out DIR]
//! fcr-bench check [--dir DIR] [--budgets PATH] [--area NAME ...]
//! fcr-bench list
//! ```
//!
//! `run` executes each requested area and writes one
//! `BENCH_<area>.json` per area into `--out` (default `.`). `check`
//! reads those artifacts back and diffs them against the in-tree
//! budgets (`bench/budgets.json` by default), printing one diff-style
//! `FAIL area/metric: measured X > budget max Y` line per violation
//! and exiting nonzero on any. `list` prints the known areas.

use fcr_bench::{check, parse_envelope, run_area, BudgetFile, Scale, ALL_AREAS};
use std::path::{Path, PathBuf};

fn die(msg: &str) -> ! {
    eprintln!("fcr-bench: {msg}");
    std::process::exit(2)
}

fn usage() -> ! {
    eprintln!(
        "usage: fcr-bench run [--all | --area NAME ...] [--scale smoke|full] [--seed N] [--out DIR]\n\
         \x20      fcr-bench check [--dir DIR] [--budgets PATH] [--area NAME ...]\n\
         \x20      fcr-bench list"
    );
    std::process::exit(2)
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("run") => cmd_run(args.collect()),
        Some("check") => cmd_check(args.collect()),
        Some("list") => {
            for area in ALL_AREAS {
                println!("{area}");
            }
        }
        Some("--help" | "-h") | None => usage(),
        Some(other) => die(&format!("unknown command {other:?}")),
    }
}

fn cmd_run(args: Vec<String>) {
    let mut areas: Vec<String> = Vec::new();
    let mut scale = Scale::Full;
    let mut seed = 20110620u64; // the experiments' default master seed
    let mut out = PathBuf::from(".");
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{name} expects a value")))
        };
        match arg.as_str() {
            "--all" => areas = ALL_AREAS.iter().map(ToString::to_string).collect(),
            "--area" => areas.push(val("--area")),
            "--scale" => {
                scale = val("--scale").parse().unwrap_or_else(|e: String| die(&e));
            }
            "--seed" => {
                seed = val("--seed")
                    .parse()
                    .unwrap_or_else(|_| die("--seed expects an integer"));
            }
            "--out" => out = PathBuf::from(val("--out")),
            _ => usage(),
        }
    }
    if areas.is_empty() {
        die("nothing to run: pass --all or --area NAME");
    }
    std::fs::create_dir_all(&out)
        .unwrap_or_else(|e| die(&format!("cannot create {}: {e}", out.display())));
    for area in &areas {
        println!("fcr-bench: running {area} ({})...", scale.name());
        let envelope = run_area(area, scale, seed).unwrap_or_else(|e| die(&e));
        let path = out.join(envelope.file_name());
        std::fs::write(&path, envelope.to_json())
            .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", path.display())));
        println!(
            "fcr-bench: {} — {:.2}s wall, {} metrics -> {}",
            area,
            envelope.wall_seconds,
            envelope.metrics.len(),
            path.display()
        );
    }
}

fn cmd_check(args: Vec<String>) {
    let mut dir = PathBuf::from(".");
    let mut budgets_path = PathBuf::from("bench/budgets.json");
    let mut only: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{name} expects a value")))
        };
        match arg.as_str() {
            "--dir" => dir = PathBuf::from(val("--dir")),
            "--budgets" => budgets_path = PathBuf::from(val("--budgets")),
            "--area" => only.push(val("--area")),
            _ => usage(),
        }
    }
    let mut budgets = load_budgets(&budgets_path);
    if !only.is_empty() {
        for area in &only {
            if !budgets.areas().contains(&area.as_str()) {
                die(&format!(
                    "no budgets for area {area:?} in {}",
                    budgets_path.display()
                ));
            }
        }
        budgets.budgets.retain(|b| only.contains(&b.area));
    }
    let mut envelopes = Vec::new();
    for area in budgets.areas() {
        let path = dir.join(format!("BENCH_{area}.json"));
        match std::fs::read_to_string(&path) {
            Ok(text) => match parse_envelope(&text) {
                Ok(envelope) => envelopes.push(envelope),
                Err(e) => die(&format!("cannot parse {}: {e}", path.display())),
            },
            // Let check() report the missing artifact as a violation.
            Err(_) => eprintln!("fcr-bench: missing {}", path.display()),
        }
    }
    let violations = check(&budgets, &envelopes);
    if violations.is_empty() {
        println!(
            "fcr-bench: check PASS — {} budgets across {} areas, {} artifacts within bounds",
            budgets.budgets.len(),
            budgets.areas().len(),
            envelopes.len()
        );
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!(
            "fcr-bench: check FAIL — {} violation(s) against {}",
            violations.len(),
            budgets_path.display()
        );
        std::process::exit(1);
    }
}

fn load_budgets(path: &Path) -> BudgetFile {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(&format!("cannot read budgets {}: {e}", path.display())));
    BudgetFile::parse(&text)
        .unwrap_or_else(|e| die(&format!("cannot parse budgets {}: {e}", path.display())))
}
