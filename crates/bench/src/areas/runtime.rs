//! The `runtime` area: worker-pool throughput and latency.
//!
//! Runs batches of real solver jobs (water-filling on the canonical
//! fixture) on a **dedicated** pool — never the shared one, so the
//! numbers are not polluted by other areas — and reads the results
//! from the pool's own `MetricsSnapshot`: jobs/sec, p50/p99 job wall
//! time from the runtime histogram, steal/failure counts, and worker
//! utilization.

use crate::single_fbs_problem;
use fcr_core::waterfill::WaterfillingSolver;
use fcr_runtime::{Runtime, RuntimeConfig};
use fcr_telemetry::{peak_rss_kb, BenchEnvelope};
use std::time::Instant;

use super::Scale;

/// Workload knobs for the `runtime` area.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeParams {
    /// Sizing preset (recorded in the envelope workload).
    pub scale: Scale,
    /// Recorded in the envelope for like-for-like comparison (the
    /// workload itself is deterministic).
    pub seed: u64,
    /// Worker threads on the dedicated pool (0 = available
    /// parallelism).
    pub workers: usize,
    /// Jobs per batch.
    pub batch_jobs: u64,
    /// Batches submitted back to back.
    pub batches: u64,
}

impl RuntimeParams {
    /// The preset for `scale`.
    pub fn at(scale: Scale, seed: u64) -> Self {
        match scale {
            Scale::Smoke => RuntimeParams {
                scale,
                seed,
                workers: 2,
                batch_jobs: 100,
                batches: 3,
            },
            Scale::Full => RuntimeParams {
                scale,
                seed,
                workers: 0,
                batch_jobs: 5_000,
                batches: 10,
            },
        }
    }
}

/// Runs the runtime area and returns its envelope.
pub fn run(params: &RuntimeParams) -> BenchEnvelope {
    let started = Instant::now();
    let mut config = RuntimeConfig::default();
    if params.workers > 0 {
        config.workers = params.workers;
        config.max_workers = params.workers;
    }
    let runtime = Runtime::with_config(config);

    let problem = single_fbs_problem();
    let solver = WaterfillingSolver::new();
    let t = Instant::now();
    let mut ok = 0u64;
    for _ in 0..params.batches {
        let outcomes = runtime.run_batch((0..params.batch_jobs).map(|_| {
            let problem = problem.clone();
            move || std::hint::black_box(solver.solve(&problem))
        }));
        ok += outcomes.iter().filter(|o| o.is_ok()).count() as u64;
    }
    let batch_secs = t.elapsed().as_secs_f64();

    let snap = runtime.snapshot();
    let total = params.batch_jobs * params.batches;
    let utilization_mean = if snap.per_worker.is_empty() {
        0.0
    } else {
        snap.per_worker
            .iter()
            .map(fcr_runtime::WorkerSnapshot::utilization)
            .sum::<f64>()
            / snap.per_worker.len() as f64
    };
    BenchEnvelope::new("runtime", params.seed)
        .wall_seconds(started.elapsed().as_secs_f64())
        .workload("scale", params.scale.name())
        .workload("workers", snap.workers)
        .workload("batch_jobs", params.batch_jobs)
        .workload("batches", params.batches)
        .metric("jobs_total", total)
        .metric("jobs_ok", ok)
        .metric(
            "jobs_per_sec",
            if batch_secs > 0.0 {
                ok as f64 / batch_secs
            } else {
                0.0
            },
        )
        .metric("jobs_submitted", snap.jobs_submitted)
        .metric("jobs_completed", snap.jobs_completed)
        .metric("jobs_failed", snap.jobs_failed)
        .metric("jobs_stolen", snap.jobs_stolen)
        .metric("jobs_rejected", snap.jobs_rejected)
        .metric("job_p50_us", snap.job_wall_time.percentile_micros(0.50))
        .metric("job_p99_us", snap.job_wall_time.percentile_micros(0.99))
        .metric("worker_utilization_mean", utilization_mean)
        .metric("peak_rss_kb", peak_rss_kb())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_area_measures_a_dedicated_pool() {
        let mut params = RuntimeParams::at(Scale::Smoke, 3);
        params.batch_jobs = 20;
        params.batches = 2;
        let env = run(&params);
        assert_eq!(env.area, "runtime");
        assert_eq!(env.metric_value("jobs_total"), Some(40.0));
        assert_eq!(env.metric_value("jobs_ok"), Some(40.0));
        assert_eq!(env.metric_value("jobs_failed"), Some(0.0));
        assert_eq!(env.metric_value("jobs_rejected"), Some(0.0));
        assert!(env.metric_value("jobs_per_sec").unwrap() > 0.0);
        assert!(env.metric_value("job_p99_us").is_some());
        assert!(env.metric_value("job_p99_us").unwrap() >= env.metric_value("job_p50_us").unwrap());
        // The dedicated pool saw exactly this workload, nothing else.
        assert_eq!(env.metric_value("jobs_submitted"), Some(40.0));
    }
}
