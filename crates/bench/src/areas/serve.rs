//! The `serve` area: the always-on service at steady state.
//!
//! Admits a population of small sessions on a **dedicated** pool,
//! steps the slot clock unpaced until every session resolves (bounded
//! by `max_steps` — a stuck service fails loudly, it does not hang the
//! bench), then drains and builds the same `BENCH_serve.json` envelope
//! the `serve` daemon's `--bench-out` writes, via
//! [`fcr_serve::bench_envelope`]. One schema, two emitters.

use fcr_runtime::{Runtime, RuntimeConfig};
use fcr_serve::{bench_envelope, AdmitOutcome, ServeBenchRun, ServeConfig, Service, SessionSpec};
use fcr_sim::config::SimConfig;
use fcr_sim::Scenario;
use fcr_telemetry::BenchEnvelope;
use std::sync::Arc;
use std::time::Instant;

use super::Scale;

/// Workload knobs for the `serve` area.
#[derive(Debug, Clone, Copy)]
pub struct ServeParams {
    /// Sizing preset (recorded in the envelope workload).
    pub scale: Scale,
    /// Master seed for per-session seeds.
    pub seed: u64,
    /// Sessions admitted up front.
    pub sessions: usize,
    /// Worker threads on the dedicated pool (0 = available
    /// parallelism).
    pub workers: usize,
    /// Step-count ceiling before the run is declared stuck.
    pub max_steps: u64,
}

impl ServeParams {
    /// The preset for `scale`.
    pub fn at(scale: Scale, seed: u64) -> Self {
        match scale {
            Scale::Smoke => ServeParams {
                scale,
                seed,
                sessions: 24,
                workers: 2,
                max_steps: 100_000,
            },
            Scale::Full => ServeParams {
                scale,
                seed,
                sessions: 2_000,
                workers: 0,
                max_steps: 10_000_000,
            },
        }
    }
}

/// Runs the serve area and returns its envelope.
///
/// # Panics
///
/// Panics when the service fails to resolve every session within
/// `max_steps` — a stuck run must fail, not report a bogus trajectory
/// point.
pub fn run(params: &ServeParams) -> BenchEnvelope {
    let mut config = RuntimeConfig::default();
    if params.workers > 0 {
        config.workers = params.workers;
        config.max_workers = params.workers;
    }
    let runtime = Arc::new(Runtime::with_config(config));
    let service = Service::new(
        ServeConfig {
            mbs_budget: params.sessions as f64,
            max_sessions: params.sessions.max(1),
            completed_buffer: 64,
            // Unpaced stepping over-commits the pool by design; keep
            // backpressure at the defer stage (the shed ladder has its
            // own tests).
            shed_after: 1_000_000,
            ..ServeConfig::default()
        },
        Arc::clone(&runtime),
    );

    // Small sessions, mirroring the daemon's per-session shape at
    // reduced GOP count.
    let sim = SimConfig {
        gops: 2,
        deadline: 2,
        num_channels: 2,
        ..SimConfig::default()
    };
    let scenario = Arc::new(Scenario::single_fbs(&sim));

    let started = Instant::now();
    let mut seed_state = params.seed;
    for _ in 0..params.sessions {
        seed_state = seed_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let spec = SessionSpec::new(Arc::clone(&scenario), sim)
            .seed(seed_state)
            .base_runs(1)
            .enhancement_runs(1);
        match service.admit(spec) {
            AdmitOutcome::Admitted(_) => {}
            AdmitOutcome::Rejected(reason) => panic!("bench admission rejected: {reason}"),
        }
    }
    let mut peak_concurrent = service.snapshot().active;

    let slots_before = pool_slots(&runtime);
    let mut resolved = false;
    for _ in 0..params.max_steps {
        let report = service.step();
        peak_concurrent = peak_concurrent.max(report.active);
        if report.active == 0 && report.pending == 0 {
            resolved = true;
            break;
        }
        std::thread::yield_now();
    }
    assert!(
        resolved,
        "serve bench failed to resolve {} sessions within {} steps",
        params.sessions, params.max_steps
    );
    let wall_seconds = started.elapsed().as_secs_f64();

    let snap = service.snapshot();
    assert!(snap.accounting_holds(), "accounting identity violated");
    let pool = runtime.snapshot();
    bench_envelope(
        &ServeBenchRun {
            seed: params.seed,
            wall_seconds,
            target_sessions: params.sessions,
            slot_ms: 0,
            peak_concurrent,
            slots_simulated: pool_slots(&runtime).saturating_sub(slots_before),
        },
        &snap,
        &pool,
    )
    .workload("scale", params.scale.name())
}

fn pool_slots(runtime: &Runtime) -> u64 {
    runtime
        .snapshot()
        .counter(fcr_sim::pool::SLOTS_COUNTER)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::areas::tests::telemetry_serial;

    #[test]
    fn serve_area_resolves_and_reports_the_shared_shape() {
        let _g = telemetry_serial();
        let mut params = ServeParams::at(Scale::Smoke, 11);
        params.sessions = 6;
        let env = run(&params);
        assert_eq!(env.area, "serve");
        assert_eq!(env.file_name(), "BENCH_serve.json");
        assert_eq!(env.metric_value("sessions_admitted"), Some(6.0));
        assert_eq!(env.metric_value("peak_concurrent"), Some(6.0));
        assert_eq!(env.metric_value("accounting_holds"), Some(1.0));
        assert_eq!(env.metric_value("windows_retried"), Some(0.0));
        assert_eq!(env.metric_value("sessions_shed"), Some(0.0));
        // admitted == completed + retired + shed (nothing retired here).
        assert_eq!(
            env.metric_value("sessions_admitted"),
            env.metric_value("sessions_completed")
        );
        assert!(env.metric_value("slots_per_sec").unwrap() > 0.0);
        assert!(env.metric_value("steps").unwrap() > 0.0);
    }
}
