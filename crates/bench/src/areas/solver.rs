//! The `solver` area: allocation kernels + figure pipelines.
//!
//! Kernels are timed in a tight loop on the canonical fixtures
//! (`single_fbs_problem` for water-filling and the dual loop,
//! `fig5_problem` for greedy channel assignment); the fig-3/4a/6a
//! pipelines run through `fcr-experiments` on the shared simulation
//! pool, with throughput read as the `slots_simulated` counter delta.
//! Solver iteration statistics (the paper's Tables I/II quantities)
//! come from the `SolveRecord` telemetry channel, which the dual
//! solver feeds whenever telemetry is enabled.

use crate::{fig5_problem, single_fbs_problem};
use fcr_core::dual::{DualConfig, DualSolver};
use fcr_core::greedy::GreedyAllocator;
use fcr_core::waterfill::WaterfillingSolver;
use fcr_experiments::ExperimentOpts;
use fcr_sim::massive::{generate_problem, perturb_problem, MassiveConfig, MassiveDriver};
use fcr_telemetry::{peak_rss_kb, BenchEnvelope};
use std::time::{Duration, Instant};

use super::Scale;

/// Workload knobs for the `solver` area.
#[derive(Debug, Clone, Copy)]
pub struct SolverParams {
    /// Sizing preset (recorded in the envelope workload).
    pub scale: Scale,
    /// Master seed for the pipelines.
    pub seed: u64,
    /// Iterations of each kernel's timing loop.
    pub kernel_reps: u64,
    /// Simulation runs per pipeline point.
    pub runs: u64,
    /// GOPs per pipeline run.
    pub gops: u32,
    /// Also run the fig-6a utilization sweep (the interfering-FBS
    /// pipeline with the exhaustive upper-bound series — an order of
    /// magnitude heavier than fig-3/4a, so only the `full` preset
    /// includes it).
    pub sweep_pipeline: bool,
    /// FBS count of the massive-N slot workload (the ROADMAP's
    /// N=1000 target at every scale — the per-slot cost is what the
    /// budget bounds, so smoke must measure the same N).
    pub massive_fbss: usize,
    /// Consecutive slots driven through one warm-start lineage (slot 0
    /// solves cold; later slots are perturbed and solve warm).
    pub massive_slots: u64,
}

impl SolverParams {
    /// The preset for `scale`.
    pub fn at(scale: Scale, seed: u64) -> Self {
        match scale {
            Scale::Smoke => SolverParams {
                scale,
                seed,
                kernel_reps: 50,
                runs: 2,
                gops: 2,
                sweep_pipeline: false,
                massive_fbss: 1000,
                massive_slots: 4,
            },
            Scale::Full => SolverParams {
                scale,
                seed,
                kernel_reps: 2_000,
                runs: 10,
                gops: 20,
                sweep_pipeline: true,
                massive_fbss: 1000,
                massive_slots: 16,
            },
        }
    }
}

/// Runs the solver area and returns its envelope.
pub fn run(params: &SolverParams) -> BenchEnvelope {
    let started = Instant::now();
    fcr_telemetry::enable();
    let _ = fcr_telemetry::drain(); // start from a clean channel

    // --- Kernels. ---
    let problem = single_fbs_problem();
    let waterfill = WaterfillingSolver::new();
    let t = Instant::now();
    for _ in 0..params.kernel_reps {
        std::hint::black_box(waterfill.solve(std::hint::black_box(&problem)));
    }
    let waterfill_secs = t.elapsed().as_secs_f64();

    let dual = DualSolver::new(DualConfig::default());
    let t = Instant::now();
    for _ in 0..params.kernel_reps {
        std::hint::black_box(dual.solve(std::hint::black_box(&problem)));
    }
    let dual_secs = t.elapsed().as_secs_f64();

    let interfering = fig5_problem();
    let greedy = GreedyAllocator::new();
    let t = Instant::now();
    for _ in 0..params.kernel_reps {
        std::hint::black_box(greedy.allocate(std::hint::black_box(&interfering)));
    }
    let greedy_secs = t.elapsed().as_secs_f64();

    // --- Massive-N slot driver: partitioned parallel greedy plus the
    // warm-started global dual (DESIGN §15). Slot 0 is the cold
    // anchor; each later slot perturbs the channel state by 0.1% and
    // solves warm, with a cold re-solve of the same slot problem
    // (timed separately) as the iteration-count reference.
    let massive_cfg = MassiveConfig {
        num_fbss: params.massive_fbss,
        ..MassiveConfig::default()
    };
    let mut driver = MassiveDriver::new(massive_cfg);
    let runtime = fcr_sim::pool::shared();
    let mut problem = generate_problem(&massive_cfg, params.seed);
    let mut massive_secs = Duration::ZERO;
    let mut warm_iterations = 0u64;
    let mut cold_iterations = 0u64;
    let mut massive_clusters = 0u64;
    for slot in 0..params.massive_slots {
        let t = Instant::now();
        let outcome = driver.solve_slot(runtime, &problem);
        massive_secs += t.elapsed();
        massive_clusters = outcome.num_clusters as u64;
        if slot > 0 {
            warm_iterations += outcome.solution.iterations() as u64;
            let cold = DualSolver::new(massive_cfg.dual_for(params.massive_fbss))
                .solve(&problem.problem_for(&outcome.assignment));
            cold_iterations += cold.iterations() as u64;
        }
        problem = perturb_problem(&problem, params.seed.wrapping_add(slot + 1), 1e-3);
    }
    let warm_slots = params.massive_slots.saturating_sub(1).max(1);
    let warm_iterations_mean = warm_iterations as f64 / warm_slots as f64;
    let cold_iterations_mean = cold_iterations as f64 / warm_slots as f64;
    let warm_iteration_ratio = if cold_iterations > 0 {
        warm_iterations as f64 / cold_iterations as f64
    } else {
        0.0
    };

    // --- Figure pipelines on the shared simulation pool. ---
    let opts = ExperimentOpts {
        runs: params.runs,
        gops: params.gops,
        seed: params.seed,
        csv: true,
    };
    let slots_before = pool_slots();
    let t = Instant::now();
    std::hint::black_box(fcr_experiments::fig3(&opts));
    std::hint::black_box(fcr_experiments::fig4a(&opts));
    if params.sweep_pipeline {
        std::hint::black_box(fcr_experiments::fig6a(&opts));
    }
    let pipeline_secs = t.elapsed().as_secs_f64();
    let pipeline_slots = pool_slots().saturating_sub(slots_before);

    // --- Solver convergence statistics from the telemetry channel. ---
    let telemetry = fcr_telemetry::drain();
    let iterations: Vec<u64> = telemetry
        .solves
        .iter()
        .map(|s| s.iterations as u64)
        .collect();
    let iterations_mean = if iterations.is_empty() {
        0.0
    } else {
        iterations.iter().sum::<u64>() as f64 / iterations.len() as f64
    };
    let converged = telemetry.solves.iter().filter(|s| s.converged).count();
    let converged_ratio = if telemetry.solves.is_empty() {
        0.0
    } else {
        converged as f64 / telemetry.solves.len() as f64
    };

    let rate = |reps: u64, secs: f64| {
        if secs > 0.0 {
            reps as f64 / secs
        } else {
            0.0
        }
    };
    BenchEnvelope::new("solver", params.seed)
        .wall_seconds(started.elapsed().as_secs_f64())
        .workload("scale", params.scale.name())
        .workload("kernel_reps", params.kernel_reps)
        .workload("runs", params.runs)
        .workload("gops", u64::from(params.gops))
        .workload("sweep_pipeline", params.sweep_pipeline)
        .workload("massive_fbss", params.massive_fbss as u64)
        .workload("massive_slots", params.massive_slots)
        .metric(
            "waterfill_solves_per_sec",
            rate(params.kernel_reps, waterfill_secs),
        )
        .metric("dual_solves_per_sec", rate(params.kernel_reps, dual_secs))
        .metric(
            "greedy_allocs_per_sec",
            rate(params.kernel_reps, greedy_secs),
        )
        .metric("pipeline_seconds", pipeline_secs)
        .metric("pipeline_slots", pipeline_slots)
        .metric(
            "pipeline_slots_per_sec",
            if pipeline_secs > 0.0 {
                pipeline_slots as f64 / pipeline_secs
            } else {
                0.0
            },
        )
        .metric(
            "massive_slots_per_sec",
            rate(params.massive_slots, massive_secs.as_secs_f64()),
        )
        .metric("massive_clusters", massive_clusters)
        .metric("massive_warm_iterations_mean", warm_iterations_mean)
        .metric("massive_cold_iterations_mean", cold_iterations_mean)
        .metric("massive_warm_iteration_ratio", warm_iteration_ratio)
        .metric("solve_records", telemetry.solves.len())
        .metric("dual_iterations_mean", iterations_mean)
        .metric(
            "dual_iterations_max",
            iterations.iter().copied().max().unwrap_or(0),
        )
        .metric("dual_converged_ratio", converged_ratio)
        .metric("peak_rss_kb", peak_rss_kb())
}

/// The shared simulation pool's `slots_simulated` counter.
fn pool_slots() -> u64 {
    fcr_sim::pool::snapshot()
        .counter(fcr_sim::pool::SLOTS_COUNTER)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::areas::tests::telemetry_serial;

    #[test]
    fn solver_area_reports_kernels_pipelines_and_iterations() {
        let _g = telemetry_serial();
        let mut params = SolverParams::at(Scale::Smoke, 7);
        params.kernel_reps = 3;
        params.runs = 1;
        params.gops = 2;
        params.massive_fbss = 16;
        params.massive_slots = 2;
        let env = run(&params);
        assert_eq!(env.area, "solver");
        assert_eq!(env.seed, 7);
        assert!(env.wall_seconds > 0.0);
        assert!(env.metric_value("waterfill_solves_per_sec").unwrap() > 0.0);
        assert!(env.metric_value("dual_solves_per_sec").unwrap() > 0.0);
        assert!(env.metric_value("greedy_allocs_per_sec").unwrap() > 0.0);
        assert!(env.metric_value("pipeline_slots").unwrap() > 0.0);
        // The dual kernel ran kernel_reps times with telemetry enabled,
        // so the SolveRecord channel saw at least that many records.
        assert!(env.metric_value("solve_records").unwrap() >= 3.0);
        assert!(env.metric_value("dual_iterations_mean").unwrap() > 0.0);
        assert!(
            env.metric_value("dual_iterations_max").unwrap()
                >= env.metric_value("dual_iterations_mean").unwrap()
        );
        assert_eq!(env.metric_value("dual_converged_ratio"), Some(1.0));
        // Massive-N workload: 16 FBSs in clusters of 4, one cold and
        // one warm slot — and the warm solve must actually be cheaper.
        assert!(env.metric_value("massive_slots_per_sec").unwrap() > 0.0);
        assert_eq!(env.metric_value("massive_clusters"), Some(4.0));
        let ratio = env.metric_value("massive_warm_iteration_ratio").unwrap();
        assert!((0.0..1.0).contains(&ratio), "warm must beat cold: {ratio}");
    }
}
