//! The `scenario` area: a declarative pack's full churn replay —
//! mobility walks, handovers, PU-burst admissions — against a live
//! service on a dedicated pool. This is the pack-driven counterpart of
//! the `serve` area: same service machinery, but the workload comes
//! from `scenarios/*.json` instead of hand-coded specs, so a pack edit
//! shows up in the perf trajectory without a code change.

use fcr_runtime::{Runtime, RuntimeConfig};
use fcr_scenario::{ChurnDriver, ChurnSchedule, Pack};
use fcr_serve::{ServeConfig, Service};
use fcr_telemetry::{peak_rss_kb, BenchEnvelope};
use std::sync::Arc;
use std::time::Instant;

use super::Scale;

/// Workload knobs for the `scenario` area.
#[derive(Debug, Clone)]
pub struct ScenarioParams {
    /// Sizing preset (recorded in the envelope workload).
    pub scale: Scale,
    /// Master seed; at full scale the shipped pack is re-seeded with
    /// it so trajectory points vary the walk, not the shape.
    pub seed: u64,
    /// The pack to replay.
    pub pack: Pack,
    /// Worker threads on the dedicated pool.
    pub workers: usize,
}

impl ScenarioParams {
    /// The preset for `scale`: the shipped mobility/churn pack, at
    /// smoke scale verbatim (so CI measures exactly what the goldens
    /// pin), at full scale re-seeded for a fresh walk.
    pub fn at(scale: Scale, seed: u64) -> Self {
        let mut pack = fcr_scenario::shipped::mobility_churn();
        if let Scale::Full = scale {
            pack.seed = seed & ((1 << 53) - 1);
            pack.name = format!("mobility_churn_{}", pack.seed);
        }
        ScenarioParams {
            scale,
            seed,
            pack,
            workers: 2,
        }
    }
}

/// Runs the scenario area and returns its envelope.
///
/// # Panics
///
/// Panics when the replay leaves the service's conservation identity
/// violated — a broken replay must fail, not report a bogus point.
pub fn run(params: &ScenarioParams) -> BenchEnvelope {
    let churn = params
        .pack
        .churn
        .expect("scenario area needs a pack with a churn section");
    let service = Service::new(
        ServeConfig {
            mbs_budget: churn.mbs_budget,
            max_sessions: churn.max_sessions as usize,
            ..ServeConfig::default()
        },
        Arc::new(Runtime::with_config(RuntimeConfig {
            workers: params.workers,
            max_workers: params.workers,
            ..RuntimeConfig::default()
        })),
    );
    let schedule = ChurnSchedule::generate(&params.pack);

    let started = Instant::now();
    let report = ChurnDriver::run(&params.pack, &service);
    let wall_seconds = started.elapsed().as_secs_f64();

    let snap = service.snapshot();
    assert_eq!(
        snap.admitted,
        snap.completed + snap.retired + snap.shed,
        "conservation violated after churn replay"
    );
    BenchEnvelope::new("scenario", params.seed)
        .wall_seconds(wall_seconds)
        .workload("pack", params.pack.name.as_str())
        .workload("scale", params.scale.name())
        .workload("slots", churn.slots)
        .workload("scheduled_sessions", schedule.sessions)
        .metric("arrivals", report.arrivals)
        .metric("admitted", report.admitted)
        .metric("rejected_admissions", report.rejected_admissions)
        .metric("handovers_attempted", report.handovers_attempted)
        .metric("handovers_completed", report.handovers_completed)
        .metric("steps", snap.steps)
        .metric(
            "slots_per_sec",
            if wall_seconds > 0.0 {
                snap.steps as f64 / wall_seconds
            } else {
                0.0
            },
        )
        .metric("peak_rss_kb", peak_rss_kb())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_area_replays_the_shipped_pack() {
        let params = ScenarioParams::at(Scale::Smoke, 11);
        let envelope = run(&params);
        assert_eq!(envelope.file_name(), "BENCH_scenario.json");
        assert!(envelope.metric_value("arrivals").unwrap_or(0.0) > 0.0);
        let parsed = crate::json::parse_envelope(&envelope.to_json()).expect("round trip");
        assert_eq!(
            parsed.metric_value("admitted"),
            envelope.metric_value("admitted")
        );
    }
}
