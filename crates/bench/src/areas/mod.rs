//! Benchmark areas: one module per named workload the `fcr-bench`
//! runner can execute, each producing a [`BenchEnvelope`] on the
//! shared schema.
//!
//! - [`solver`] — the allocation kernels (water-filling, dual
//!   decomposition, greedy channel assignment) plus the fig-3/4/6
//!   experiment pipelines, with solver iteration counts pulled from
//!   the `SolveRecord` telemetry channel;
//! - [`runtime`] — worker-pool throughput and latency on a dedicated
//!   pool (no cross-area pollution), measured from `MetricsSnapshot`;
//! - [`serve`] — the always-on service at steady state on its own
//!   pool, emitting the same `BENCH_serve.json` shape as the `serve`
//!   daemon's `--bench-out`;
//! - [`scenario`] — a declarative pack's full churn replay (mobility
//!   walks, handovers, PU bursts) against a live service, so pack
//!   edits show up in the perf trajectory without a code change.
//!
//! Every area takes a params struct with [`Scale`]-derived
//! constructors: `smoke` is sized for CI (seconds, debug builds
//! included), `full` for a real perf trajectory point on a developer
//! machine.

use fcr_telemetry::BenchEnvelope;

pub mod runtime;
pub mod scenario;
pub mod serve;
pub mod solver;

/// Workload sizing preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-sized: completes in seconds, debug builds included.
    Smoke,
    /// Trajectory-sized: the scale `EXPERIMENTS.md`'s perf table rows
    /// are measured at.
    Full,
}

impl Scale {
    /// The preset's name as it appears in the envelope workload map.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Full => "full",
        }
    }
}

impl std::str::FromStr for Scale {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "smoke" => Ok(Scale::Smoke),
            "full" => Ok(Scale::Full),
            other => Err(format!("unknown scale {other:?} (want smoke|full)")),
        }
    }
}

/// Every area name the runner knows, in `run --all` order.
pub const ALL_AREAS: [&str; 4] = ["solver", "runtime", "serve", "scenario"];

/// Runs one named area at `scale` with `seed`. Unknown names error.
pub fn run_area(name: &str, scale: Scale, seed: u64) -> Result<BenchEnvelope, String> {
    match name {
        "solver" => Ok(solver::run(&solver::SolverParams::at(scale, seed))),
        "runtime" => Ok(runtime::run(&runtime::RuntimeParams::at(scale, seed))),
        "serve" => Ok(serve::run(&serve::ServeParams::at(scale, seed))),
        "scenario" => Ok(scenario::run(&scenario::ScenarioParams::at(scale, seed))),
        other => Err(format!(
            "unknown area {other:?} (want one of {})",
            ALL_AREAS.join("|")
        )),
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use std::sync::{Mutex, MutexGuard};

    /// Serializes tests that touch the process-global telemetry sink
    /// (the solver area drains it; concurrent drains would race).
    static TELEMETRY: Mutex<()> = Mutex::new(());

    pub(crate) fn telemetry_serial() -> MutexGuard<'static, ()> {
        TELEMETRY
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}
