//! One benchmark per paper figure: times the exact pipeline that
//! regenerates it, at a reduced scale (1 run, 2 GOPs per iteration).
//! Run the `experiments` binary for the full-scale tables; these
//! benches guard the figure pipelines against performance regressions
//! and double as smoke tests that every figure still produces output.

use criterion::{criterion_group, criterion_main, Criterion};
use fcr_experiments::{fig3, fig4a, fig4b, fig4c, fig6a, fig6b, fig6c, ExperimentOpts};
use std::hint::black_box;

fn tiny() -> ExperimentOpts {
    ExperimentOpts {
        runs: 1,
        gops: 2,
        seed: 1,
        csv: false,
    }
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("fig3_single_fbs", |b| b.iter(|| black_box(fig3(&tiny()))));
    group.bench_function("fig4a_dual_convergence", |b| {
        b.iter(|| black_box(fig4a(&tiny())))
    });
    group.bench_function("fig4b_channels_sweep", |b| {
        b.iter(|| black_box(fig4b(&tiny())))
    });
    group.bench_function("fig4c_utilization_sweep", |b| {
        b.iter(|| black_box(fig4c(&tiny())))
    });
    group.bench_function("fig6a_interfering_utilization", |b| {
        b.iter(|| black_box(fig6a(&tiny())))
    });
    group.bench_function("fig6b_sensing_errors", |b| {
        b.iter(|| black_box(fig6b(&tiny())))
    });
    group.bench_function("fig6c_common_bandwidth", |b| {
        b.iter(|| black_box(fig6c(&tiny())))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
