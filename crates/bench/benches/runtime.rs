//! Throughput benchmarks of the scheduling runtime: a multi-run sweep
//! executed (a) as one batch on the shared worker pool, (b) serially
//! on the calling thread, and (c) with the seed's per-run
//! `thread::scope` spawning — the baseline the pool replaced.
//!
//! Record `slots/sec = runs × total_slots / mean wall time` in
//! EXPERIMENTS.md when the numbers move.

use criterion::{criterion_group, criterion_main, Criterion};
use fcr_runtime::Runtime;
use fcr_sim::config::SimConfig;
use fcr_sim::engine::{run, TraceMode};
use fcr_sim::pool::{self, SimJob};
use fcr_sim::scenario::Scenario;
use fcr_sim::scheme::Scheme;
use fcr_stats::rng::SeedSequence;
use std::hint::black_box;

/// The pre-merge `run_once` shape on the unified `engine::run` API.
fn run_off(
    scenario: &Scenario,
    cfg: &SimConfig,
    scheme: Scheme,
    seeds: &SeedSequence,
    run_index: u64,
) -> fcr_sim::metrics::RunResult {
    run(scenario, cfg, scheme, seeds, run_index, TraceMode::Off).result
}
use std::sync::Arc;

const RUNS: u64 = 8;
const SEED: u64 = 2011;

fn bench_config() -> SimConfig {
    SimConfig {
        gops: 2,
        ..SimConfig::default()
    }
}

fn jobs(scenario: &Arc<Scenario>, config: SimConfig) -> Vec<SimJob> {
    (0..RUNS)
        .map(|run_index| SimJob {
            scenario: Arc::clone(scenario),
            config,
            scheme: Scheme::Proposed,
            master_seed: SEED,
            run_index,
        })
        .collect()
}

fn bench_runtime_throughput(c: &mut Criterion) {
    let config = bench_config();
    let scenario = Arc::new(Scenario::single_fbs(&config));
    let mut group = c.benchmark_group("runtime");
    group.sample_size(10);

    // (a) One batch of RUNS jobs on the shared fixed-size pool.
    group.bench_function("sweep_8runs_pooled", |b| {
        b.iter(|| {
            let outcomes = pool::execute_all(jobs(&scenario, config));
            assert!(outcomes.iter().all(Result::is_ok));
            black_box(outcomes)
        })
    });

    // (b) The same runs serially on the calling thread (lower bound on
    // overhead, no parallelism).
    group.bench_function("sweep_8runs_serial", |b| {
        let seeds = SeedSequence::new(SEED);
        b.iter(|| {
            let results: Vec<_> = (0..RUNS)
                .map(|run| run_off(&scenario, &config, Scheme::Proposed, &seeds, run))
                .collect();
            black_box(results)
        })
    });

    // (c) The seed's original strategy: one OS thread per run, created
    // and torn down every batch.
    group.bench_function("sweep_8runs_thread_per_run", |b| {
        let seeds = SeedSequence::new(SEED);
        b.iter(|| {
            let mut results = Vec::with_capacity(RUNS as usize);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..RUNS)
                    .map(|run| {
                        let scenario = &scenario;
                        let config = &config;
                        let seeds = &seeds;
                        scope.spawn(move || run_off(scenario, config, Scheme::Proposed, seeds, run))
                    })
                    .collect();
                for h in handles {
                    results.push(h.join().expect("bench run panicked"));
                }
            });
            black_box(results)
        })
    });
    group.finish();
}

fn bench_pool_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_overhead");

    // Pure scheduling cost: trivial jobs, so the numbers are all
    // queue/wakeup/handle overhead.
    group.bench_function("noop_batch_64", |b| {
        let runtime = pool::shared();
        b.iter(|| {
            let outcomes = runtime.run_batch((0..64u64).map(|i| move || i));
            black_box(outcomes)
        })
    });

    group.bench_function("pool_construction_teardown", |b| {
        b.iter(|| {
            let runtime = Runtime::new();
            black_box(runtime.workers());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_runtime_throughput, bench_pool_overhead);
criterion_main!(benches);
