//! Ablations of the design choices DESIGN.md calls out. Each group
//! prints its quality numbers once (so the trade-off is visible in the
//! bench log) and then times the alternatives.

use criterion::{criterion_group, criterion_main, Criterion};
use fcr_bench::{fig5_problem, single_fbs_problem};
use fcr_core::dual::{DualConfig, DualSolver, StepSchedule};
use fcr_core::exhaustive::ExhaustiveAllocator;
use fcr_core::greedy::GreedyAllocator;
use fcr_core::interfering::round_robin_assignment;
use fcr_core::waterfill::WaterfillingSolver;
use fcr_sim::config::SimConfig;
use fcr_sim::engine::{run, TraceMode};
use fcr_sim::scenario::Scenario;
use fcr_sim::scheme::Scheme;
use fcr_stats::rng::SeedSequence;
use std::hint::black_box;

/// The pre-merge `run_once` shape on the unified `engine::run` API.
fn run_off(
    scenario: &Scenario,
    cfg: &SimConfig,
    scheme: Scheme,
    seeds: &SeedSequence,
    run_index: u64,
) -> fcr_sim::metrics::RunResult {
    run(scenario, cfg, scheme, seeds, run_index, TraceMode::Off).result
}

/// Ablation 1 — inner solver: the paper's distributed subgradient loop
/// (constant and diminishing steps) vs. the centralized water-filling
/// equivalent. Same optimum, very different cost — which is why the
/// greedy's `O(N²M²)` inner evaluations use water-filling.
fn ablation_solver(c: &mut Criterion) {
    let problem = single_fbs_problem();
    let wf = WaterfillingSolver::new();
    let dual_dim = DualSolver::new(DualConfig::default());
    let dual_const = DualSolver::new(DualConfig {
        step: StepSchedule::Constant(5e-4),
        max_iterations: 20_000,
        ..DualConfig::default()
    });

    let v_wf = problem.objective(&wf.solve(&problem));
    let v_dim = dual_dim.solve(&problem).objective();
    let v_const = dual_const.solve(&problem).objective();
    println!("[ablation:solver] objective waterfill={v_wf:.6} dual(diminishing)={v_dim:.6} dual(constant)={v_const:.6}");

    let mut group = c.benchmark_group("ablation_solver");
    group.bench_function("waterfill", |b| b.iter(|| black_box(wf.solve(&problem))));
    group.bench_function("dual_diminishing", |b| {
        b.iter(|| black_box(dual_dim.solve(&problem)))
    });
    group.bench_function("dual_constant", |b| {
        b.iter(|| black_box(dual_const.solve(&problem)))
    });
    group.finish();
}

/// Ablation 2 — posterior for `G_t`: fully fused (our reading) vs. the
/// first observation only (the formula as literally printed in
/// Section III-C). Prints the end-to-end quality difference.
fn ablation_posterior(c: &mut Criterion) {
    let fused_cfg = SimConfig {
        gops: 4,
        ..SimConfig::default()
    };
    let first_cfg = SimConfig {
        first_observation_only: true,
        ..fused_cfg
    };
    let scenario = Scenario::single_fbs(&fused_cfg);
    let seeds = SeedSequence::new(9);

    let fused = run_off(&scenario, &fused_cfg, Scheme::Proposed, &seeds, 0);
    let first = run_off(&scenario, &first_cfg, Scheme::Proposed, &seeds, 0);
    println!(
        "[ablation:posterior] mean PSNR fused={:.3} first-obs={:.3}",
        fused.mean_psnr(),
        first.mean_psnr()
    );

    let mut group = c.benchmark_group("ablation_posterior");
    group.sample_size(10);
    group.bench_function("fused_gt", |b| {
        b.iter(|| black_box(run_off(&scenario, &fused_cfg, Scheme::Proposed, &seeds, 0)))
    });
    group.bench_function("first_observation_gt", |b| {
        b.iter(|| black_box(run_off(&scenario, &first_cfg, Scheme::Proposed, &seeds, 0)))
    });
    group.finish();
}

/// Ablation 3 — channel-allocation layer: Table III's greedy vs. the
/// quality-blind round-robin split vs. the exhaustive optimum, on the
/// Fig. 5 instance. Prints the Q values so the near-optimality of the
/// greedy is visible next to its speed advantage.
fn ablation_channel_allocation(c: &mut Criterion) {
    let problem = fig5_problem();
    let solver = WaterfillingSolver::new();

    let greedy = GreedyAllocator::new().allocate(&problem);
    let optimal = ExhaustiveAllocator::new().allocate(&problem);
    let rr = round_robin_assignment(problem.graph(), problem.num_channels());
    let q_rr = problem.q_value(&rr, &solver);
    println!(
        "[ablation:channels] Q greedy={:.6} exhaustive={:.6} round-robin={:.6} eq23-bound={:.6}",
        greedy.q_value(),
        optimal.q_value(),
        q_rr,
        greedy.upper_bound()
    );

    let mut group = c.benchmark_group("ablation_channel_allocation");
    group.sample_size(20);
    group.bench_function("greedy", |b| {
        let a = GreedyAllocator::new();
        b.iter(|| black_box(a.allocate(&problem)))
    });
    group.bench_function("round_robin", |b| {
        b.iter(|| {
            let assignment = round_robin_assignment(problem.graph(), problem.num_channels());
            black_box(problem.q_value(&assignment, &solver))
        })
    });
    group.bench_function("exhaustive", |b| {
        let a = ExhaustiveAllocator::new();
        b.iter(|| black_box(a.allocate(&problem)))
    });
    group.finish();
}

/// Ablation 4 — sensing prior: the paper's stationary-η reset vs. the
/// belief-tracking extension (yesterday's posterior propagated through
/// the Markov kernel). Prints quality and spectrum usage.
fn ablation_prior(c: &mut Criterion) {
    let stationary = SimConfig {
        gops: 4,
        ..SimConfig::default()
    };
    let tracked = SimConfig {
        prior_mode: fcr_sim::config::PriorMode::BeliefTracking,
        ..stationary
    };
    let scenario = Scenario::single_fbs(&stationary);
    let seeds = SeedSequence::new(13);
    let a = run_off(&scenario, &stationary, Scheme::Proposed, &seeds, 0);
    let b = run_off(&scenario, &tracked, Scheme::Proposed, &seeds, 0);
    println!(
        "[ablation:prior] stationary: psnr={:.3} G={:.3} coll={:.4} | tracking: psnr={:.3} G={:.3} coll={:.4}",
        a.mean_psnr(),
        a.mean_expected_available,
        a.collision_rate,
        b.mean_psnr(),
        b.mean_expected_available,
        b.collision_rate
    );

    let mut group = c.benchmark_group("ablation_prior");
    group.sample_size(10);
    group.bench_function("stationary_eta", |b| {
        b.iter(|| black_box(run_off(&scenario, &stationary, Scheme::Proposed, &seeds, 0)))
    });
    group.bench_function("belief_tracking", |b2| {
        b2.iter(|| black_box(run_off(&scenario, &tracked, Scheme::Proposed, &seeds, 0)))
    });
    group.finish();
}

/// Ablation 5 — access rule: the paper's probabilistic eq. (7) vs. the
/// deterministic threshold. Prints the spectrum-usage trade-off at the
/// same γ.
fn ablation_access(c: &mut Criterion) {
    let probabilistic = SimConfig {
        gops: 4,
        ..SimConfig::default()
    };
    let threshold = SimConfig {
        access_mode: fcr_sim::config::AccessMode::Threshold,
        ..probabilistic
    };
    let scenario = Scenario::single_fbs(&probabilistic);
    let seeds = SeedSequence::new(14);
    let a = run_off(&scenario, &probabilistic, Scheme::Proposed, &seeds, 0);
    let b = run_off(&scenario, &threshold, Scheme::Proposed, &seeds, 0);
    println!(
        "[ablation:access] eq.(7): psnr={:.3} G={:.3} coll={:.4} | threshold: psnr={:.3} G={:.3} coll={:.4}",
        a.mean_psnr(),
        a.mean_expected_available,
        a.collision_rate,
        b.mean_psnr(),
        b.mean_expected_available,
        b.collision_rate
    );

    let mut group = c.benchmark_group("ablation_access");
    group.sample_size(10);
    group.bench_function("probabilistic_eq7", |b2| {
        b2.iter(|| {
            black_box(run_off(
                &scenario,
                &probabilistic,
                Scheme::Proposed,
                &seeds,
                0,
            ))
        })
    });
    group.bench_function("hard_threshold", |b2| {
        b2.iter(|| black_box(run_off(&scenario, &threshold, Scheme::Proposed, &seeds, 0)))
    });
    group.finish();
}

criterion_group!(
    benches,
    ablation_solver,
    ablation_posterior,
    ablation_channel_allocation,
    ablation_prior,
    ablation_access
);
criterion_main!(benches);
