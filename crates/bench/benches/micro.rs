//! Micro-benchmarks of the hot inner kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use fcr_bench::{fig5_problem, single_fbs_problem};
use fcr_core::dual::{DualConfig, DualSolver};
use fcr_core::exhaustive::ExhaustiveAllocator;
use fcr_core::greedy::GreedyAllocator;
use fcr_core::heuristics;
use fcr_core::waterfill::WaterfillingSolver;
use fcr_spectrum::access::AccessPolicy;
use fcr_spectrum::fusion::AvailabilityPosterior;
use fcr_spectrum::markov::TwoStateMarkov;
use fcr_spectrum::sensing::{Observation, SensorProfile};
use fcr_stats::rng::SeedSequence;
use std::hint::black_box;

fn bench_spectrum_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("spectrum");
    let chain = TwoStateMarkov::new(0.4, 0.3).expect("valid");
    let sensor = SensorProfile::new(0.3, 0.3).expect("valid");
    let policy = AccessPolicy::new(0.2).expect("valid");
    let mut rng = SeedSequence::new(1).stream("bench", 0);

    group.bench_function("markov_step", |b| {
        let mut state = chain.sample_stationary(&mut rng);
        b.iter(|| {
            state = chain.step(state, &mut rng);
            black_box(state)
        })
    });

    group.bench_function("fusion_update_x8", |b| {
        b.iter(|| {
            let mut p = AvailabilityPosterior::new(0.571).expect("valid");
            for i in 0..8 {
                let obs = if i % 3 == 0 {
                    Observation::Busy
                } else {
                    Observation::Idle
                };
                p.update(&sensor, obs);
            }
            black_box(p.probability())
        })
    });

    group.bench_function("access_probability", |b| {
        b.iter(|| black_box(policy.access_probability(black_box(0.63))))
    });
    group.finish();
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers");
    let single = single_fbs_problem();

    group.bench_function("waterfill_solve_3users", |b| {
        let solver = WaterfillingSolver::new();
        b.iter(|| black_box(solver.solve(&single)))
    });

    group.bench_function("dual_solve_3users", |b| {
        let solver = DualSolver::new(DualConfig::default());
        b.iter(|| black_box(solver.solve(&single)))
    });

    group.bench_function("heuristic1_3users", |b| {
        b.iter(|| black_box(heuristics::equal_allocation(&single)))
    });

    group.bench_function("heuristic2_3users", |b| {
        b.iter(|| black_box(heuristics::multiuser_diversity(&single)))
    });
    group.finish();
}

fn bench_engines(c: &mut Criterion) {
    use fcr_sim::config::SimConfig;
    use fcr_sim::engine::{run, TraceMode};
    use fcr_sim::packet_engine::run_packet_level;
    use fcr_sim::scenario::Scenario;
    use fcr_sim::scheme::Scheme;

    let cfg = SimConfig {
        gops: 2,
        ..SimConfig::default()
    };
    let scenario = Scenario::single_fbs(&cfg);
    let seeds = SeedSequence::new(2);

    let mut group = c.benchmark_group("engines");
    group.sample_size(10);
    group.bench_function("fluid_2gops", |b| {
        b.iter(|| {
            black_box(run(&scenario, &cfg, Scheme::Proposed, &seeds, 0, TraceMode::Off).result)
        })
    });
    group.bench_function("packet_2gops", |b| {
        b.iter(|| {
            black_box(run_packet_level(
                &scenario,
                &cfg,
                Scheme::Proposed,
                &seeds,
                0,
            ))
        })
    });
    group.finish();
}

fn bench_channel_allocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel_allocation");
    group.sample_size(20);
    let problem = fig5_problem();

    group.bench_function("greedy_table3_9users_4ch", |b| {
        let allocator = GreedyAllocator::new();
        b.iter(|| black_box(allocator.allocate(&problem)))
    });

    group.bench_function("exhaustive_9users_4ch", |b| {
        let allocator = ExhaustiveAllocator::new();
        b.iter(|| black_box(allocator.allocate(&problem)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_spectrum_kernels,
    bench_solvers,
    bench_engines,
    bench_channel_allocation
);
criterion_main!(benches);
