//! Schema round-trip and invariant tests for the benchmark artifacts.
//!
//! These are the checks CI used to run as inline python over
//! `bench_serve.json` (accounting identity, zero retries/sheds, peak
//! population), promoted into `cargo test` so they run on every tier-1
//! pass, plus the budget-gate contract: the in-tree
//! `bench/budgets.json` passes on a clean run and demonstrably fails
//! on an injected regression.

use fcr_bench::areas::{runtime, scenario, serve, solver, Scale};
use fcr_bench::{check, parse_envelope, BudgetFile};
use fcr_telemetry::{BenchEnvelope, BenchValue, BENCH_SCHEMA_VERSION};
use std::path::PathBuf;

fn in_tree_budgets() -> BudgetFile {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../bench/budgets.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    BudgetFile::parse(&text).expect("bench/budgets.json parses")
}

fn metric(envelope: &BenchEnvelope, name: &str) -> f64 {
    envelope
        .metric_value(name)
        .unwrap_or_else(|| panic!("metric {name} missing from {}", envelope.file_name()))
}

/// One full smoke pass through every area, asserting everything the
/// old CI python step asserted plus the schema and gate contracts.
/// A single test (not one per area) because the solver area drains the
/// process-global telemetry channel.
#[test]
fn smoke_run_satisfies_schema_invariants_and_budget_gate() {
    let mut solver_params = solver::SolverParams::at(Scale::Smoke, 2011);
    solver_params.kernel_reps = 5;
    solver_params.runs = 1;
    // Debug-build tests can't afford the preset's N=1000 slots; the
    // budgets are throughput floors, so a smaller N only passes more
    // easily while exercising the same code path.
    solver_params.massive_fbss = 32;
    solver_params.massive_slots = 2;
    let mut runtime_params = runtime::RuntimeParams::at(Scale::Smoke, 2011);
    runtime_params.batch_jobs = 50;
    runtime_params.batches = 2;
    let mut serve_params = serve::ServeParams::at(Scale::Smoke, 2011);
    serve_params.sessions = 10;

    let scenario_params = scenario::ScenarioParams::at(Scale::Smoke, 2011);

    let envelopes = [
        solver::run(&solver_params),
        runtime::run(&runtime_params),
        serve::run(&serve_params),
        scenario::run(&scenario_params),
    ];

    // --- One schema version across every artifact. ---
    for envelope in &envelopes {
        assert_eq!(envelope.schema_version, BENCH_SCHEMA_VERSION);
        assert!(envelope.wall_seconds > 0.0, "{}", envelope.file_name());
        assert!(metric(envelope, "peak_rss_kb") > 0.0);

        // Round-trip: render → parse → byte-identical re-render (an
        // integral F64 legitimately comes back as U64 — same JSON
        // number, so the bytes and every comparison still agree).
        let rendered = envelope.to_json();
        let parsed = parse_envelope(&rendered)
            .unwrap_or_else(|e| panic!("{} does not re-parse: {e}", envelope.file_name()));
        assert_eq!(parsed.to_json(), rendered, "{}", envelope.file_name());
        assert_eq!(parsed.area, envelope.area);
        assert_eq!(parsed.seed, envelope.seed);
        assert_eq!(parsed.schema_version, envelope.schema_version);
        for (name, _) in &envelope.metrics {
            assert_eq!(
                parsed.metric_value(name),
                envelope.metric_value(name),
                "{name} diverged through the round trip"
            );
        }
    }

    // --- The serve invariants that were inline python in ci.yml. ---
    let serve_env = &envelopes[2];
    assert_eq!(
        metric(serve_env, "peak_concurrent"),
        serve_params.sessions as f64,
        "never held the target population"
    );
    assert_eq!(metric(serve_env, "sessions_shed"), 0.0, "sessions shed");
    assert_eq!(metric(serve_env, "windows_retried"), 0.0, "windows retried");
    assert_eq!(
        metric(serve_env, "sessions_admitted"),
        metric(serve_env, "sessions_completed")
            + metric(serve_env, "sessions_retired")
            + metric(serve_env, "sessions_shed"),
        "accounting identity violated"
    );
    assert_eq!(metric(serve_env, "accounting_holds"), 1.0);

    // --- The in-tree budgets pass on a clean run... ---
    let budgets = in_tree_budgets();
    assert_eq!(budgets.schema_version, BENCH_SCHEMA_VERSION);
    let violations = check(&budgets, &envelopes);
    assert!(
        violations.is_empty(),
        "clean smoke run breaches in-tree budgets:\n{}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );

    // --- ...and an injected regression demonstrably fails. ---
    let mut regressed = envelopes.to_vec();
    for (name, value) in &mut regressed[2].metrics {
        if name == "windows_retried" {
            *value = BenchValue::U64(7);
        }
    }
    let violations = check(&budgets, &regressed);
    assert_eq!(violations.len(), 1, "{violations:?}");
    let line = violations[0].to_string();
    // The diff-style message names the metric, the measured value, and
    // the budget it breached.
    assert_eq!(
        line,
        "FAIL serve/windows_retried: measured 7 > budget max 0"
    );

    // --- A NaN metric must breach, not sail through both bounds. ---
    let mut poisoned = envelopes.to_vec();
    for (name, value) in &mut poisoned[0].metrics {
        if name == "massive_slots_per_sec" {
            *value = BenchValue::F64(f64::NAN);
        }
    }
    let violations = check(&budgets, &poisoned);
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(
        violations[0].to_string(),
        "FAIL solver/massive_slots_per_sec: measured NaN violates every bound"
    );

    // --- A stale artifact is named by file, with the fix spelled out. ---
    let mut stale = envelopes.to_vec();
    stale[2].schema_version = BENCH_SCHEMA_VERSION + 1;
    let violations = check(&budgets, &stale);
    assert_eq!(violations.len(), 1, "{violations:?}");
    let line = violations[0].to_string();
    assert!(line.contains("BENCH_serve.json"), "{line}");
    assert!(line.contains("fcr-bench run --area serve"), "{line}");
}

/// The budget file itself stays well-formed: every budgeted area is
/// one the runner knows, so `check` can never wait on an artifact no
/// area produces.
#[test]
fn in_tree_budgets_cover_only_known_areas() {
    let budgets = in_tree_budgets();
    for area in budgets.areas() {
        assert!(
            fcr_bench::ALL_AREAS.contains(&area),
            "budgets.json names unknown area {area:?}"
        );
    }
    assert!(!budgets.budgets.is_empty());
}
