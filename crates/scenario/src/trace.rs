//! Canonical pack traces: the JSONL document a pack's golden-trace
//! conformance pins down.
//!
//! A pack trace has three parts, every one a deterministic function of
//! the pack alone:
//!
//! 1. a header echoing the pack identity,
//! 2. one line per `(scheme, run)` of batch results — bit-identical
//!    under every [`ShardPolicy`], which the conformance suite asserts
//!    by rendering under `WholeRun` and `Windows(3)` and comparing
//!    bytes,
//! 3. the churn schedule (arrivals, handovers, retires, PU-burst
//!    windows), which is a pure function of the pack seed.
//!
//! Live serve outcomes (admission decisions, handover completions) are
//! deliberately *not* in the trace: they depend on pool timing, and
//! goldens must never flake. The live path is covered by the
//! timing-robust property suites instead.

use crate::churn::{ChurnEventKind, ChurnSchedule};
use crate::pack::{Pack, PACK_SCHEMA_VERSION};
use fcr_runtime::ShardPolicy;
use fcr_serve::HandoverKind;

/// Shortest round-trip float rendering (Rust's `Display`), matching
/// the golden-trace convention used across the workspace.
fn f(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn f_list(vs: &[f64]) -> String {
    let parts: Vec<String> = vs.iter().map(|v| f(*v)).collect();
    format!("[{}]", parts.join(","))
}

fn opt_f(v: Option<f64>) -> String {
    v.map(f).unwrap_or_else(|| "null".to_string())
}

/// Renders the canonical JSONL trace of `pack` under `shard`.
///
/// The output is byte-stable across renders, processes, and shard
/// policies; golden conformance pins it per shipped pack.
pub fn render_trace(pack: &Pack, shard: ShardPolicy) -> String {
    let mut out = String::new();
    let schedule = ChurnSchedule::generate(pack);
    out.push_str(&format!(
        "{{\"pack\":\"{}\",\"schema_version\":{},\"seed\":{},\"runs\":{},\"sessions\":{}}}\n",
        pack.name, PACK_SCHEMA_VERSION, pack.seed, pack.runs, schedule.sessions
    ));
    let session = pack.session().shards(shard);
    for scheme in &pack.schemes {
        let result = session.run(*scheme);
        for (run, r) in result.results().iter().enumerate() {
            out.push_str(&format!(
                "{{\"scheme\":\"{}\",\"run\":{},\"mean_psnr\":{},\"per_user_psnr\":{},\"collision_rate\":{},\"mean_expected_available\":{},\"mean_greedy_objective\":{},\"mean_eq23_bound\":{}}}\n",
                scheme.name(),
                run,
                f(r.mean_psnr()),
                f_list(&r.per_user_psnr),
                f(r.collision_rate),
                f(r.mean_expected_available),
                opt_f(r.mean_greedy_objective),
                opt_f(r.mean_eq23_bound),
            ));
        }
    }
    for &(start, end) in schedule.pu_windows.windows() {
        out.push_str(&format!(
            "{{\"pu_burst\":{{\"start\":{start},\"end\":{end}}}}}\n"
        ));
    }
    for e in &schedule.events {
        let body = match e.kind {
            ChurnEventKind::Arrive { during_pu_burst } => {
                format!("\"kind\":\"arrive\",\"during_pu_burst\":{during_pu_burst}")
            }
            ChurnEventKind::Retire => "\"kind\":\"retire\"".to_string(),
            ChurnEventKind::Handover {
                kind,
                from,
                to,
                demand_factor,
            } => {
                let kind_name = match kind {
                    HandoverKind::FbsToFbs => "fbs_to_fbs",
                    HandoverKind::FbsToMbs => "fbs_to_mbs",
                    HandoverKind::MbsToFbs => "mbs_to_fbs",
                };
                let cell = |c: Option<fcr_net::node::FbsId>| {
                    c.map(|id| id.0.to_string())
                        .unwrap_or_else(|| "null".to_string())
                };
                format!(
                    "\"kind\":\"handover\",\"handover\":\"{kind_name}\",\"from\":{},\"to\":{},\"demand_factor\":{}",
                    cell(from),
                    cell(to),
                    f(demand_factor)
                )
            }
        };
        out.push_str(&format!(
            "{{\"slot\":{},\"session\":{},{body}}}\n",
            e.slot, e.ordinal
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_byte_stable_and_shard_invariant() {
        let mut pack = Pack::generate(11);
        // Keep the smoke run tiny and force a churn section so the
        // schedule part of the trace is exercised.
        pack.channel.gops = Some(1);
        pack.channel.deadline = Some(2);
        pack.channel.num_channels = Some(2);
        pack.runs = 1;
        pack.schemes = vec![fcr_sim::Scheme::Proposed];
        if pack.churn.is_none() {
            pack.churn = Some(crate::pack::ChurnSpec {
                slots: 10,
                arrivals: crate::pack::ArrivalSpec::Poisson { rate_per_slot: 0.5 },
                mean_hold_slots: 4.0,
                mbs_budget: 3.0,
                max_sessions: 8,
                pu_bursts: None,
            });
        }
        pack.validate().expect("still valid");
        let a = render_trace(&pack, ShardPolicy::WholeRun);
        let b = render_trace(&pack, ShardPolicy::WholeRun);
        assert_eq!(a, b, "consecutive renders must be byte-identical");
        let sharded = render_trace(&pack, ShardPolicy::Windows(3));
        assert_eq!(a, sharded, "trace must not depend on the shard policy");
        assert!(
            a.lines().count() > 1,
            "header plus at least one result line"
        );
        assert!(a.starts_with(&format!("{{\"pack\":\"{}\"", pack.name)));
    }
}
