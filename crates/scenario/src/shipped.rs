//! The shipped scenario packs: the Rust definitions of the JSON files
//! under `scenarios/` at the repository root.
//!
//! The *files* are the interface — the CLI, CI smoke jobs, and users
//! load them — and these constructors are their single source of
//! truth: the pack conformance suite asserts every
//! `scenarios/<name>.json` is byte-identical to
//! `shipped()[i].to_json()`, and `FCR_REGEN_GOLDENS=1` rewrites the
//! files from here. Editing either side without the other is a test
//! failure, not silent drift.

use crate::pack::{
    ArrivalSpec, ChannelSpec, ChurnSpec, GeoFbs, MobilitySpec, Pack, PuBurstSpec, TopologySpec,
    TrafficSpec,
};
use fcr_sim::Scheme;
use fcr_video::sequences::Sequence;

/// The seed every shipped pack uses (the paper's publication date).
pub const SHIPPED_SEED: u64 = 20110611;

fn trio_traffic() -> TrafficSpec {
    TrafficSpec {
        sequences: Sequence::PAPER_TRIO.to_vec(),
        base_runs: 1,
        enhancement_runs: 0,
    }
}

/// Smoke-scale channel overrides shared by the churn packs: small
/// GOPs/deadline so a full churn horizon replays in seconds.
fn smoke_channel() -> ChannelSpec {
    ChannelSpec {
        gops: Some(2),
        deadline: Some(4),
        num_channels: Some(4),
        ..ChannelSpec::default()
    }
}

/// The paper's Scenario A: one femtocell, three users, default
/// channel statistics — the single-cell baseline every figure builds
/// on. Bit-identical to `Scenario::single_fbs`.
pub fn single_fbs() -> Pack {
    Pack {
        name: "single_fbs".to_string(),
        description: "Scenario A: one femtocell, three users (Bus/Mobile/Harbor), \
                      paper-default channel statistics"
            .to_string(),
        seed: SHIPPED_SEED,
        runs: 2,
        schemes: Scheme::PAPER_TRIO.to_vec(),
        topology: TopologySpec::SingleFbs { users: 3 },
        channel: ChannelSpec {
            gops: Some(4),
            ..ChannelSpec::default()
        },
        traffic: trio_traffic(),
        mobility: None,
        churn: None,
        faults: None,
    }
}

/// The paper's Fig. 1 network: four femtocells, only FBS 2 and 3
/// overlapping. Bit-identical to `Scenario::fig1`.
pub fn paper_fig1() -> Pack {
    Pack {
        name: "paper_fig1".to_string(),
        description: "The paper's Fig. 1 network: four femtocells, three users each, \
                      only cells 2 and 3 overlap"
            .to_string(),
        seed: SHIPPED_SEED,
        runs: 2,
        schemes: Scheme::PAPER_TRIO.to_vec(),
        topology: TopologySpec::PaperFig1 { users_per_fbs: 3 },
        channel: ChannelSpec {
            gops: Some(4),
            ..ChannelSpec::default()
        },
        traffic: trio_traffic(),
        mobility: None,
        churn: None,
        faults: None,
    }
}

/// The paper's Fig. 5 interfering path: three femtocells in a chain,
/// scored with the eq.-(23) upper bound alongside the paper trio.
/// Bit-identical to `Scenario::interfering_fig5`.
pub fn paper_fig5() -> Pack {
    Pack {
        name: "paper_fig5".to_string(),
        description: "The paper's Fig. 5 interfering chain: three femtocells with 1-2 \
                      and 2-3 overlapping, scored against the eq.-(23) bound"
            .to_string(),
        seed: SHIPPED_SEED,
        runs: 2,
        schemes: Scheme::WITH_BOUND.to_vec(),
        topology: TopologySpec::PaperFig5 { users_per_fbs: 3 },
        channel: ChannelSpec {
            gops: Some(4),
            ..ChannelSpec::default()
        },
        traffic: trio_traffic(),
        mobility: None,
        churn: None,
        faults: None,
    }
}

/// Mobility/handover churn over the Fig. 5 chain: sessions arrive
/// Poisson, walkers roam between cells, and the serve ledger absorbs
/// every FBS→FBS / FBS→MBS / MBS→FBS transition.
pub fn mobility_churn() -> Pack {
    Pack {
        name: "mobility_churn".to_string(),
        description: "Poisson session churn over the Fig. 5 chain with 6 m/slot walkers: \
                      handovers move budget claims under the extended accounting identity"
            .to_string(),
        seed: SHIPPED_SEED,
        runs: 1,
        schemes: vec![Scheme::Proposed],
        topology: TopologySpec::PaperFig5 { users_per_fbs: 2 },
        channel: smoke_channel(),
        traffic: TrafficSpec {
            sequences: Sequence::PAPER_TRIO.to_vec(),
            base_runs: 1,
            enhancement_runs: 1,
        },
        mobility: Some(MobilitySpec {
            step_m: 6.0,
            hysteresis_m: 2.0,
        }),
        churn: Some(ChurnSpec {
            slots: 40,
            arrivals: ArrivalSpec::Poisson { rate_per_slot: 0.6 },
            mean_hold_slots: 12.0,
            mbs_budget: 4.0,
            max_sessions: 24,
            pu_bursts: None,
        }),
        faults: None,
    }
}

/// A flash crowd hitting a random three-cell deployment: baseline
/// trickle, then a 12x arrival burst that drives the admission budget
/// into rejection territory.
pub fn flash_crowd() -> Pack {
    Pack {
        name: "flash_crowd".to_string(),
        description: "Flash-crowd arrivals (0.2/slot baseline, 2.5/slot burst over slots \
                      10-17) on a seeded random three-cell deployment"
            .to_string(),
        seed: SHIPPED_SEED,
        runs: 1,
        schemes: vec![Scheme::Proposed],
        topology: TopologySpec::Random {
            fbss: 3,
            users_per_fbs: 2,
            side: 220.0,
            coverage: 30.0,
        },
        channel: smoke_channel(),
        traffic: TrafficSpec {
            sequences: vec![Sequence::Foreman, Sequence::Coastguard, Sequence::News],
            base_runs: 1,
            enhancement_runs: 0,
        },
        mobility: Some(MobilitySpec {
            step_m: 4.0,
            hysteresis_m: 3.0,
        }),
        churn: Some(ChurnSpec {
            slots: 40,
            arrivals: ArrivalSpec::FlashCrowd {
                base_rate: 0.2,
                burst_rate: 2.5,
                burst_start: 10,
                burst_slots: 8,
            },
            mean_hold_slots: 10.0,
            mbs_budget: 3.0,
            max_sessions: 16,
            pu_bursts: None,
        }),
        faults: None,
    }
}

/// Correlated primary-user bursts over an explicit two-cell geometry:
/// sessions admitted inside a burst model boosted licensed-channel
/// utilization, under diurnal load and a seeded fault plan.
pub fn pu_burst() -> Pack {
    Pack {
        name: "pu_burst".to_string(),
        description: "Diurnal load with correlated primary-user bursts on an explicit \
                      two-cell geometry; burst admissions model +0.15 channel utilization"
            .to_string(),
        seed: SHIPPED_SEED,
        runs: 1,
        schemes: vec![Scheme::Proposed, Scheme::Heuristic1],
        topology: TopologySpec::Geometric {
            mbs: (0.0, 120.0),
            fbss: vec![
                GeoFbs {
                    pos: (-40.0, 0.0),
                    radius: 28.0,
                },
                GeoFbs {
                    pos: (40.0, 0.0),
                    radius: 28.0,
                },
            ],
            users: vec![(-44.0, 3.0), (-35.0, -6.0), (38.0, 5.0), (45.0, -4.0)],
        },
        channel: ChannelSpec {
            epsilon: Some(0.2),
            delta: Some(0.2),
            ..smoke_channel()
        },
        traffic: TrafficSpec {
            sequences: vec![Sequence::Bus, Sequence::Harbor],
            base_runs: 1,
            enhancement_runs: 0,
        },
        mobility: Some(MobilitySpec {
            step_m: 5.0,
            hysteresis_m: 2.0,
        }),
        churn: Some(ChurnSpec {
            slots: 48,
            arrivals: ArrivalSpec::Diurnal {
                base_rate: 0.2,
                peak_rate: 1.0,
                period_slots: 48,
            },
            mean_hold_slots: 10.0,
            mbs_budget: 3.5,
            max_sessions: 16,
            pu_bursts: Some(PuBurstSpec {
                bursts: 2,
                mean_duration_slots: 6.0,
                utilization_boost: 0.15,
            }),
        }),
        faults: Some(crate::pack::FaultsSpec {
            jobs: 32,
            panics: 2,
            delays: 3,
            max_delay_ms: 3,
            resizes: 1,
            worker_min: 1,
            worker_max: 4,
        }),
    }
}

/// Absolute path of the repository's `scenarios/` directory (the
/// shipped pack files live at `scenarios/<name>.json`).
pub fn scenarios_dir() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("crates/scenario sits two levels below the repo root")
        .join("scenarios")
}

/// Every shipped pack, in the order the `scenarios/` directory lists
/// them.
pub fn shipped() -> Vec<Pack> {
    vec![
        single_fbs(),
        paper_fig1(),
        paper_fig5(),
        mobility_churn(),
        flash_crowd(),
        pu_burst(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_packs_are_valid_unique_and_canonical_fixed_points() {
        let packs = shipped();
        assert_eq!(packs.len(), 6);
        let mut names: Vec<&str> = packs.iter().map(|p| p.name.as_str()).collect();
        for pack in &packs {
            pack.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", pack.name));
            let text = pack.to_json();
            let back = Pack::from_json(&text).unwrap_or_else(|e| panic!("{}: {e}", pack.name));
            assert_eq!(&back, pack, "{} round-trips", pack.name);
            assert_eq!(back.to_json(), text, "{} is a fixed point", pack.name);
        }
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), packs.len(), "pack names are unique");
    }

    #[test]
    fn churn_packs_schedule_real_work() {
        for pack in shipped() {
            let schedule = crate::churn::ChurnSchedule::generate(&pack);
            if pack.churn.is_some() {
                assert!(schedule.sessions > 0, "{} schedules no sessions", pack.name);
            } else {
                assert_eq!(schedule.sessions, 0);
            }
        }
    }
}
