//! Pointed pack errors: every failure names the field path it occurred
//! at (`channel.p01`, `topology.fbss[2].radius`, …), so a malformed
//! pack is a one-line fix, not a parser archaeology session.

/// An error raised while parsing or validating a scenario pack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackError {
    /// Dotted path of the offending field (`""` for whole-document
    /// errors such as JSON syntax failures).
    pub path: String,
    /// What went wrong there.
    pub message: String,
}

impl PackError {
    /// An error at `path`.
    pub fn at(path: impl Into<String>, message: impl Into<String>) -> Self {
        PackError {
            path: path.into(),
            message: message.into(),
        }
    }
}

impl std::fmt::Display for PackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.path.is_empty() {
            write!(f, "scenario pack error: {}", self.message)
        } else {
            write!(
                f,
                "scenario pack error at `{}`: {}",
                self.path, self.message
            )
        }
    }
}

impl std::error::Error for PackError {}
