//! `fcr-scenario` — declarative scenario packs for the FCR stack.
//!
//! A **pack** is one JSON file describing a complete workload:
//! topology, channel/sensing statistics, R-D traffic mix, allocation
//! schemes, seeds, and optionally a mobility/handover model, a session
//! churn process (Poisson / diurnal / flash-crowd arrivals, correlated
//! primary-user bursts), and a fault plan. The same file drives the
//! batch simulator (`fcr-experiments scenario`), the always-on service
//! (`fcr-serve` churn replay), and the conformance suites — so "the
//! figure-5 experiment" is a reviewable artifact, not a code path.
//!
//! Guarantees the test suites pin down:
//!
//! - **Bit-identity with the Rust constructors**: packs expressing the
//!   paper topologies build *exactly* the scenario the hand-written
//!   constructors build, on both the fluid and packet engines.
//! - **Canonical form**: [`Pack::to_json`] is a fixed point — parse
//!   then render reproduces a canonical file byte for byte.
//! - **Pointed errors**: malformed packs fail with the dotted path of
//!   the offending field (`channel.p01`, `topology.fbss[2].radius`).
//! - **Determinism**: walks, arrivals, holds, and burst windows are
//!   pure functions of `(pack seed, ordinal)`; the rendered trace is
//!   byte-stable under every [`fcr_runtime::ShardPolicy`].
//!
//! # Quick start
//!
//! ```
//! use fcr_scenario::Pack;
//!
//! let pack = Pack::generate(7); // or Pack::from_json(&file_contents)?
//! let session = pack.session(); // fully configured SimSession
//! let result = session.run(pack.schemes[0]);
//! assert_eq!(result.results().len(), pack.runs as usize);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod arrivals;
pub mod build;
pub mod churn;
pub mod error;
pub mod mobility;
pub mod pack;
pub mod shipped;
pub mod trace;

pub use arrivals::{rate_at, sample_poisson, PuBurstWindows};
pub use churn::{ChurnDriver, ChurnEvent, ChurnEventKind, ChurnReport, ChurnSchedule};
pub use error::PackError;
pub use mobility::{Handover, MobilityModel, Walker};
pub use pack::{
    ArrivalSpec, ChannelSpec, ChurnSpec, FaultsSpec, GeoFbs, MobilitySpec, Pack, PuBurstSpec,
    TopologySpec, TrafficSpec, PACK_SCHEMA_VERSION,
};
pub use trace::render_trace;
