//! Arrival processes and correlated primary-user bursts.
//!
//! Everything here is a pure function of the pack seed: the arrival
//! counts draw from the stream `("arrivals", 0)`, burst placement from
//! `("pu_burst", 0)`. The rate *curves* themselves are deterministic
//! closed forms — only the per-slot counts are sampled.

use crate::pack::{ArrivalSpec, PuBurstSpec};
use fcr_stats::rng::SeedSequence;
use rand::rngs::StdRng;
use rand::{Rng, RngExt};

/// The mean arrival rate at `slot` for the given process.
pub fn rate_at(spec: &ArrivalSpec, slot: u64) -> f64 {
    match *spec {
        ArrivalSpec::Poisson { rate_per_slot } => rate_per_slot,
        ArrivalSpec::Diurnal {
            base_rate,
            peak_rate,
            period_slots,
        } => {
            // Sinusoid from base (slot 0) up to peak at half period.
            let phase = std::f64::consts::TAU * (slot % period_slots) as f64 / period_slots as f64;
            base_rate + (peak_rate - base_rate) * 0.5 * (1.0 - phase.cos())
        }
        ArrivalSpec::FlashCrowd {
            base_rate,
            burst_rate,
            burst_start,
            burst_slots,
        } => {
            if slot >= burst_start && slot < burst_start.saturating_add(burst_slots) {
                burst_rate
            } else {
                base_rate
            }
        }
    }
}

/// One Poisson(λ) draw via Knuth's product method — fine for the
/// smoke-scale per-slot rates packs use (λ well under ~30).
pub fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    let limit = (-lambda).exp();
    let mut count = 0u64;
    let mut product: f64 = 1.0;
    loop {
        product *= rng.random::<f64>();
        if product <= limit {
            return count;
        }
        count += 1;
    }
}

/// The seeded burst windows of a pack's primary-user process:
/// half-open `[start, end)` slot ranges during which the licensed
/// channels run at boosted utilization.
#[derive(Debug, Clone, PartialEq)]
pub struct PuBurstWindows {
    windows: Vec<(u64, u64)>,
    boost: f64,
}

impl PuBurstWindows {
    /// No bursts: utilization never boosted.
    pub fn none() -> Self {
        PuBurstWindows {
            windows: Vec::new(),
            boost: 0.0,
        }
    }

    /// Places `spec.bursts` windows over `[0, slots)` from the pack
    /// seed: starts uniform, durations geometric with the configured
    /// mean (at least one slot). Windows may overlap — utilization is
    /// boosted while *any* window covers the slot.
    pub fn generate(spec: &PuBurstSpec, slots: u64, seed: u64) -> Self {
        let mut rng: StdRng = SeedSequence::new(seed).stream("pu_burst", 0);
        let mut windows: Vec<(u64, u64)> = (0..spec.bursts)
            .map(|_| {
                let start = rng.random_range(0..slots.max(1));
                let duration = sample_geometric(&mut rng, spec.mean_duration_slots);
                (start, start.saturating_add(duration).min(slots))
            })
            .collect();
        windows.sort_unstable();
        PuBurstWindows {
            windows,
            boost: spec.utilization_boost,
        }
    }

    /// Is any burst active at `slot`?
    pub fn active(&self, slot: u64) -> bool {
        self.windows.iter().any(|&(s, e)| slot >= s && slot < e)
    }

    /// The utilization boost at `slot`: the configured `Δη` inside a
    /// burst, zero outside.
    pub fn boost_at(&self, slot: u64) -> f64 {
        if self.active(slot) {
            self.boost
        } else {
            0.0
        }
    }

    /// The burst windows, sorted by start slot.
    pub fn windows(&self) -> &[(u64, u64)] {
        &self.windows
    }
}

/// A geometric draw with the given mean, floored at 1 slot.
fn sample_geometric<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    let p = (1.0 / mean.max(1.0)).clamp(1e-9, 1.0);
    let u: f64 = rng.random::<f64>().max(1e-12);
    (u.ln() / (1.0 - p).ln()).ceil().max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_curves_have_the_declared_shape() {
        let poisson = ArrivalSpec::Poisson { rate_per_slot: 0.4 };
        assert_eq!(rate_at(&poisson, 0), 0.4);
        assert_eq!(rate_at(&poisson, 999), 0.4);

        let diurnal = ArrivalSpec::Diurnal {
            base_rate: 0.2,
            peak_rate: 1.0,
            period_slots: 48,
        };
        assert!(
            (rate_at(&diurnal, 0) - 0.2).abs() < 1e-12,
            "trough at slot 0"
        );
        assert!(
            (rate_at(&diurnal, 24) - 1.0).abs() < 1e-12,
            "peak at half period"
        );
        assert!(
            (rate_at(&diurnal, 48) - rate_at(&diurnal, 0)).abs() < 1e-12,
            "periodic"
        );

        let flash = ArrivalSpec::FlashCrowd {
            base_rate: 0.1,
            burst_rate: 2.0,
            burst_start: 10,
            burst_slots: 5,
        };
        assert_eq!(rate_at(&flash, 9), 0.1);
        assert_eq!(rate_at(&flash, 10), 2.0);
        assert_eq!(rate_at(&flash, 14), 2.0);
        assert_eq!(rate_at(&flash, 15), 0.1);
    }

    #[test]
    fn poisson_sampling_is_seeded_and_roughly_calibrated() {
        let seq = SeedSequence::new(9);
        let mut a: StdRng = seq.stream("arrivals", 0);
        let mut b: StdRng = seq.stream("arrivals", 0);
        let draws_a: Vec<u64> = (0..100).map(|_| sample_poisson(&mut a, 1.5)).collect();
        let draws_b: Vec<u64> = (0..100).map(|_| sample_poisson(&mut b, 1.5)).collect();
        assert_eq!(draws_a, draws_b, "same stream, same draws");
        let mean = draws_a.iter().sum::<u64>() as f64 / draws_a.len() as f64;
        assert!((0.8..2.2).contains(&mean), "mean {mean} wildly off λ=1.5");
        assert_eq!(sample_poisson(&mut a, 0.0), 0, "zero rate, zero arrivals");
    }

    #[test]
    fn burst_windows_are_seeded_bounded_and_boost_only_inside() {
        let spec = PuBurstSpec {
            bursts: 3,
            mean_duration_slots: 6.0,
            utilization_boost: 0.25,
        };
        let w = PuBurstWindows::generate(&spec, 50, 123);
        assert_eq!(w, PuBurstWindows::generate(&spec, 50, 123));
        assert_ne!(w, PuBurstWindows::generate(&spec, 50, 124));
        assert_eq!(w.windows().len(), 3);
        for &(s, e) in w.windows() {
            assert!(s < 50 && e <= 50 && e > s, "window ({s}, {e}) out of range");
        }
        for slot in 0..50 {
            let expect = if w.active(slot) { 0.25 } else { 0.0 };
            assert_eq!(w.boost_at(slot), expect);
        }
        assert!(!PuBurstWindows::none().active(0));
    }
}
