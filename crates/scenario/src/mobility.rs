//! The mobility/handover model: users walk a seeded random path over
//! the pack topology; serving-cell changes become handover events.
//!
//! Every walker is a pure function of `(pack seed, ordinal)` — the
//! walk direction stream is `SeedSequence::stream("walk", ordinal)` —
//! so a mobility trace replays exactly across runs, machines, and
//! shard policies. Cell selection uses hysteresis: a femto-served
//! walker keeps its cell until it leaves the coverage disk *plus* the
//! margin, and a macro-served walker returns to femto service only
//! once firmly inside a disk (radius *minus* the margin). That
//! asymmetry is the standard ping-pong suppression.

use crate::pack::MobilitySpec;
use fcr_net::node::FbsId;
use fcr_net::{Point, Topology};
use fcr_stats::rng::SeedSequence;
use rand::rngs::StdRng;
use rand::RngExt;

/// One serving-cell change observed while stepping a walker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handover {
    /// Previous serving femtocell (`None` = MBS-served).
    pub from: Option<FbsId>,
    /// New serving femtocell (`None` = MBS-served).
    pub to: Option<FbsId>,
}

impl Handover {
    /// The serve-side kind of this transition.
    pub fn kind(&self) -> fcr_serve::HandoverKind {
        match (self.from, self.to) {
            (Some(_), Some(_)) => fcr_serve::HandoverKind::FbsToFbs,
            (Some(_), None) => fcr_serve::HandoverKind::FbsToMbs,
            (None, Some(_)) => fcr_serve::HandoverKind::MbsToFbs,
            (None, None) => unreachable!("MBS→MBS is not a transition"),
        }
    }
}

/// One mobile user: a position, a serving cell, and a private
/// direction stream.
#[derive(Debug)]
pub struct Walker {
    /// The walker's ordinal (its identity across the churn horizon).
    pub ordinal: u64,
    pos: Point,
    serving: Option<FbsId>,
    rng: StdRng,
}

impl Walker {
    /// Current position in meters.
    pub fn position(&self) -> Point {
        self.pos
    }

    /// Current serving femtocell (`None` = MBS-served).
    pub fn serving(&self) -> Option<FbsId> {
        self.serving
    }
}

/// The pack's mobility model: the topology walked on plus the walk
/// step and hysteresis margin.
#[derive(Debug, Clone)]
pub struct MobilityModel {
    topology: Topology,
    spec: MobilitySpec,
}

impl MobilityModel {
    /// A model over `topology` with the pack's mobility parameters.
    pub fn new(topology: Topology, spec: MobilitySpec) -> Self {
        assert!(topology.num_users() > 0, "topology needs at least one user");
        MobilityModel { topology, spec }
    }

    /// The topology being walked on.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Spawns walker `ordinal` for a pack seeded with `seed`: it
    /// starts at user position `ordinal % num_users` and draws
    /// directions from the stream `("walk", ordinal)`. Same inputs,
    /// same walk — always.
    pub fn spawn(&self, seed: u64, ordinal: u64) -> Walker {
        let start = self
            .topology
            .user(fcr_net::node::UserId(
                (ordinal % self.topology.num_users() as u64) as usize,
            ))
            .position();
        Walker {
            ordinal,
            pos: start,
            serving: self.covering_cell(start, 0.0),
            rng: SeedSequence::new(seed).stream("walk", ordinal),
        }
    }

    /// The closest femtocell whose coverage disk (shrunk by `margin`)
    /// contains `pos`.
    fn covering_cell(&self, pos: Point, margin: f64) -> Option<FbsId> {
        (0..self.topology.num_fbss())
            .map(FbsId)
            .filter_map(|id| {
                let fbs = self.topology.fbs(id);
                let d = fbs.position().distance(pos);
                (d <= fbs.coverage_radius() - margin).then_some((id, d))
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are not NaN"))
            .map(|(id, _)| id)
    }

    /// Advances the walker one slot: one step of `step_m` meters in a
    /// seeded uniform direction, then the hysteresis serving-cell
    /// rule. Returns the handover this step triggered, if any.
    pub fn step(&self, w: &mut Walker) -> Option<Handover> {
        let theta = w.rng.random_range(0.0..std::f64::consts::TAU);
        w.pos = Point::new(
            w.pos.x + self.spec.step_m * theta.cos(),
            w.pos.y + self.spec.step_m * theta.sin(),
        );
        let next = match w.serving {
            Some(f) => {
                let fbs = self.topology.fbs(f);
                if fbs.position().distance(w.pos) <= fbs.coverage_radius() + self.spec.hysteresis_m
                {
                    Some(f) // still inside the stretched disk: stay.
                } else {
                    // Out of reach: best covering cell, else the MBS.
                    self.covering_cell(w.pos, 0.0)
                }
            }
            None => self.covering_cell(w.pos, self.spec.hysteresis_m),
        };
        let event = (next != w.serving).then_some(Handover {
            from: w.serving,
            to: next,
        });
        w.serving = next;
        event
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcr_net::node::{CrUser, Fbs};

    fn two_cell_model(step_m: f64, hysteresis_m: f64) -> MobilityModel {
        let topo = Topology::new(
            Point::new(0.0, 200.0),
            vec![
                Fbs::new(Point::new(-20.0, 0.0), 25.0),
                Fbs::new(Point::new(20.0, 0.0), 25.0),
            ],
            vec![
                CrUser::new(Point::new(-20.0, 0.0)),
                CrUser::new(Point::new(20.0, 0.0)),
            ],
        );
        MobilityModel::new(
            topo,
            MobilitySpec {
                step_m,
                hysteresis_m,
            },
        )
    }

    #[test]
    fn walks_replay_exactly_from_the_seed() {
        let model = two_cell_model(5.0, 2.0);
        let mut a = model.spawn(42, 3);
        let mut b = model.spawn(42, 3);
        for _ in 0..200 {
            let ea = model.step(&mut a);
            let eb = model.step(&mut b);
            assert_eq!(ea, eb);
            assert_eq!(a.position(), b.position());
        }
        // A different ordinal walks a different path.
        let mut c = model.spawn(42, 4);
        model.step(&mut c);
        assert_ne!(c.position(), {
            let mut a2 = model.spawn(42, 3);
            model.step(&mut a2);
            a2.position()
        });
    }

    #[test]
    fn handover_events_exactly_track_serving_transitions() {
        let model = two_cell_model(8.0, 1.0);
        let mut w = model.spawn(7, 0);
        let mut serving = w.serving();
        let mut saw_handover = false;
        for _ in 0..500 {
            let event = model.step(&mut w);
            match event {
                Some(h) => {
                    saw_handover = true;
                    assert_eq!(h.from, serving, "from echoes the previous cell");
                    assert_eq!(h.to, w.serving(), "to echoes the new cell");
                    assert_ne!(h.from, h.to, "a handover changes the cell");
                }
                None => assert_eq!(w.serving(), serving, "no event, no change"),
            }
            serving = w.serving();
        }
        assert!(saw_handover, "an 8 m step in 25 m cells must hand over");
    }

    #[test]
    fn a_walker_deep_inside_a_cell_never_hands_over() {
        // 0.1 m steps inside a 25 m disk: 100 slots move at most 10 m.
        let model = two_cell_model(0.1, 2.0);
        let mut w = model.spawn(1, 0);
        assert_eq!(w.serving(), Some(FbsId(0)));
        for _ in 0..100 {
            assert_eq!(model.step(&mut w), None);
        }
    }

    #[test]
    fn hysteresis_blocks_reentry_at_the_cell_edge() {
        // One isolated 25 m cell so no neighbor can catch the walker.
        let topo = Topology::new(
            Point::new(0.0, 200.0),
            vec![Fbs::new(Point::new(0.0, 0.0), 25.0)],
            vec![CrUser::new(Point::new(0.0, 0.0))],
        );
        let model = MobilityModel::new(
            topo,
            MobilitySpec {
                step_m: 1.0,
                hysteresis_m: 10.0,
            },
        );
        // An MBS-served walker exactly on the cell edge is NOT handed
        // back in: re-entry needs radius − hysteresis.
        let edge = Point::new(25.0, 0.0);
        assert_eq!(model.covering_cell(edge, 10.0), None);
        assert_eq!(model.covering_cell(edge, 0.0), Some(FbsId(0)));
        // Firmly inside (closer than radius − hysteresis) it re-enters.
        let inside = Point::new(10.0, 0.0);
        assert_eq!(model.covering_cell(inside, 10.0), Some(FbsId(0)));
    }
}
