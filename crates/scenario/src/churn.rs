//! Session churn: the deterministic schedule a pack's arrival,
//! holding, mobility, and primary-user processes imply, plus the live
//! driver that replays it against an `fcr-serve` [`Service`].
//!
//! The split matters for conformance. [`ChurnSchedule::generate`] is a
//! **pure function of the pack** — golden traces render it byte-stably
//! and property suites interrogate it without ever starting a worker
//! pool. [`ChurnDriver::run`] then replays the same schedule against a
//! live service, where outcomes (admissions, handover completions)
//! additionally depend on the budget — but every transition still runs
//! under the service's extended accounting identity, asserted
//! internally on each admit/handover/retire/step.

use crate::arrivals::{rate_at, sample_poisson, PuBurstWindows};
use crate::mobility::MobilityModel;
use crate::pack::Pack;
use fcr_net::node::FbsId;
use fcr_serve::{AdmitOutcome, HandoverKind, HandoverOutcome, Service, SessionId, SessionSpec};
use fcr_sim::Scenario;
use fcr_stats::rng::SeedSequence;
use rand::RngExt;
use std::collections::HashMap;
use std::sync::Arc;

/// What happens to one session at one slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnEventKind {
    /// The session arrives and requests admission.
    Arrive {
        /// Whether a primary-user burst is active at the arrival slot
        /// (the session then models boosted channel utilization).
        during_pu_burst: bool,
    },
    /// The session's walker changed serving cell.
    Handover {
        /// The serve-side transition kind.
        kind: HandoverKind,
        /// Previous serving femtocell (`None` = MBS).
        from: Option<FbsId>,
        /// New serving femtocell (`None` = MBS).
        to: Option<FbsId>,
        /// Multiplier on the session's base demand for the new cell
        /// (1 for macro transitions — the driver derives the macro
        /// demand from the link budget instead).
        demand_factor: f64,
    },
    /// The session's holding time expires.
    Retire,
}

/// One scheduled churn event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnEvent {
    /// Slot the event fires at.
    pub slot: u64,
    /// The session it applies to (arrival order, from 0).
    pub ordinal: u64,
    /// What happens.
    pub kind: ChurnEventKind,
}

/// The full deterministic churn schedule of a pack.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnSchedule {
    /// All events, slot-ordered; within a slot: retires, then
    /// arrivals, then handovers, each in ascending ordinal order.
    pub events: Vec<ChurnEvent>,
    /// Arrivals drawn at each slot (length = the churn horizon).
    pub arrivals_per_slot: Vec<u64>,
    /// The pack's primary-user burst windows.
    pub pu_windows: PuBurstWindows,
    /// Total sessions over the horizon.
    pub sessions: u64,
}

impl ChurnSchedule {
    /// Generates the schedule implied by `pack` — a pure function of
    /// the pack (same pack, same bytes, forever). Packs without a
    /// `churn` section get an empty schedule.
    pub fn generate(pack: &Pack) -> ChurnSchedule {
        let Some(churn) = pack.churn else {
            return ChurnSchedule {
                events: Vec::new(),
                arrivals_per_slot: Vec::new(),
                pu_windows: PuBurstWindows::none(),
                sessions: 0,
            };
        };
        let seq = SeedSequence::new(pack.seed);
        let pu_windows = match &churn.pu_bursts {
            Some(spec) => PuBurstWindows::generate(spec, churn.slots, pack.seed),
            None => PuBurstWindows::none(),
        };
        let mobility = pack
            .mobility
            .map(|spec| MobilityModel::new(pack.topology(), spec));
        let mut arrival_rng = seq.stream("arrivals", 0);
        let mut hold_rng = seq.stream("hold", 0);
        let mut factor_rng = seq.stream("handover_factor", 0);

        let mut events = Vec::new();
        let mut arrivals_per_slot = Vec::with_capacity(churn.slots as usize);
        // (ordinal, retire_slot, walker) for live sessions.
        let mut active: Vec<(u64, u64, Option<crate::mobility::Walker>)> = Vec::new();
        let mut next_ordinal = 0u64;
        for slot in 0..churn.slots {
            // 1. Retirements due this slot (holding time expired).
            active.retain_mut(|(ordinal, retire_slot, _)| {
                if *retire_slot == slot {
                    events.push(ChurnEvent {
                        slot,
                        ordinal: *ordinal,
                        kind: ChurnEventKind::Retire,
                    });
                    false
                } else {
                    true
                }
            });
            // 2. Arrivals.
            let count = sample_poisson(&mut arrival_rng, rate_at(&churn.arrivals, slot));
            arrivals_per_slot.push(count);
            for _ in 0..count {
                let ordinal = next_ordinal;
                next_ordinal += 1;
                events.push(ChurnEvent {
                    slot,
                    ordinal,
                    kind: ChurnEventKind::Arrive {
                        during_pu_burst: pu_windows.active(slot),
                    },
                });
                // Geometric holding time with the configured mean,
                // at least one slot.
                let u: f64 = hold_rng.random::<f64>().max(1e-12);
                let p = (1.0 / churn.mean_hold_slots.max(1.0)).clamp(1e-9, 1.0);
                let hold = (u.ln() / (1.0 - p).ln()).ceil().max(1.0) as u64;
                let walker = mobility.as_ref().map(|m| m.spawn(pack.seed, ordinal));
                active.push((ordinal, slot + hold, walker));
            }
            // 3. Walks and the handovers they trigger.
            if let Some(model) = &mobility {
                for (ordinal, _, walker) in active.iter_mut() {
                    let Some(w) = walker else { continue };
                    if let Some(h) = model.step(w) {
                        let kind = h.kind();
                        let demand_factor = if kind == HandoverKind::FbsToFbs {
                            // A different femtocell serves a slightly
                            // different link: scale the claim ±15%.
                            0.85 + 0.3 * factor_rng.random::<f64>()
                        } else {
                            1.0
                        };
                        events.push(ChurnEvent {
                            slot,
                            ordinal: *ordinal,
                            kind: ChurnEventKind::Handover {
                                kind,
                                from: h.from,
                                to: h.to,
                                demand_factor,
                            },
                        });
                    }
                }
            }
        }
        // Close out sessions still holding at the horizon so every
        // arrival has exactly one matching retire.
        for (ordinal, _, _) in active {
            events.push(ChurnEvent {
                slot: churn.slots,
                ordinal,
                kind: ChurnEventKind::Retire,
            });
        }
        ChurnSchedule {
            events,
            arrivals_per_slot,
            pu_windows,
            sessions: next_ordinal,
        }
    }
}

/// Outcome counters from replaying a schedule against a live service.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChurnReport {
    /// Sessions that arrived.
    pub arrivals: u64,
    /// Sessions the budget admitted.
    pub admitted: u64,
    /// Sessions the budget (or watermark) rejected.
    pub rejected_admissions: u64,
    /// Handover events issued to the service.
    pub handovers_attempted: u64,
    /// Handovers the service completed.
    pub handovers_completed: u64,
    /// Handovers the service rejected (over budget or wrong cell).
    pub handovers_rejected: u64,
    /// Handover events skipped because the session had already
    /// completed or was never admitted.
    pub handovers_inactive: u64,
    /// Sessions retired by holding-time expiry.
    pub retired: u64,
    /// Sessions that ran to completion under the service.
    pub completed: u64,
}

/// Replays a pack's churn schedule against a live [`Service`].
#[derive(Debug)]
pub struct ChurnDriver;

impl ChurnDriver {
    /// The session spec for `ordinal` under `pack`, with channel
    /// utilization boosted if the session arrives inside a
    /// primary-user burst (clamped to what the Markov chain's `p10`
    /// can express).
    pub fn spec_for(
        pack: &Pack,
        scenario: &Arc<Scenario>,
        ordinal: u64,
        during_pu_burst: bool,
    ) -> SessionSpec {
        let mut spec = pack.session_spec(scenario, ordinal);
        if during_pu_burst {
            if let Some(boost) = pack
                .churn
                .and_then(|c| c.pu_bursts)
                .map(|b| b.utilization_boost)
            {
                let cfg = spec.config;
                let eta0 = cfg.p01 / (cfg.p01 + cfg.p10);
                // p01 = η·p10/(1−η) must stay ≤ 1 ⇒ η ≤ 1/(1+p10).
                let eta_max = 1.0 / (1.0 + cfg.p10) - 1e-6;
                let eta = (eta0 + boost).min(eta_max);
                if eta > eta0 {
                    spec.config = cfg.with_utilization(eta);
                }
            }
        }
        spec
    }

    /// The demand a handover re-requests: macro fallback re-estimates
    /// the claim over the *macro* link budget; femto-to-femto scales
    /// the base claim by the scheduled factor.
    pub fn handover_demand(
        pack: &Pack,
        scenario: &Arc<Scenario>,
        ordinal: u64,
        kind: HandoverKind,
        demand_factor: f64,
    ) -> f64 {
        let spec = pack.session_spec(scenario, ordinal);
        match kind {
            HandoverKind::FbsToMbs => {
                // Served by the MBS: the femto link no longer exists;
                // every user's share prices at the macro SINR.
                let mut macro_spec = spec;
                macro_spec.config.mean_sinr_fbs = macro_spec.config.mean_sinr_mbs;
                Service::estimate_demand(&macro_spec)
            }
            HandoverKind::FbsToFbs => Service::estimate_demand(&spec) * demand_factor,
            HandoverKind::MbsToFbs => Service::estimate_demand(&spec),
        }
    }

    /// Replays `pack`'s schedule against `service`: admissions,
    /// handovers, retirements, one [`Service::step`] per slot, then a
    /// quiesce. The service's extended accounting identity is asserted
    /// internally on every one of these transitions.
    pub fn run(pack: &Pack, service: &Service) -> ChurnReport {
        let schedule = ChurnSchedule::generate(pack);
        let scenario = Arc::new(pack.scenario());
        let mut report = ChurnReport::default();
        let mut ids: HashMap<u64, SessionId> = HashMap::new();
        let slots = pack.churn.map(|c| c.slots).unwrap_or(0);
        let mut cursor = 0usize;
        for slot in 0..=slots {
            while cursor < schedule.events.len() && schedule.events[cursor].slot == slot {
                let event = schedule.events[cursor];
                cursor += 1;
                match event.kind {
                    ChurnEventKind::Arrive { during_pu_burst } => {
                        report.arrivals += 1;
                        let spec = Self::spec_for(pack, &scenario, event.ordinal, during_pu_burst);
                        match service.admit(spec) {
                            AdmitOutcome::Admitted(id) => {
                                report.admitted += 1;
                                ids.insert(event.ordinal, id);
                            }
                            AdmitOutcome::Rejected(_) => report.rejected_admissions += 1,
                        }
                    }
                    ChurnEventKind::Handover {
                        kind,
                        demand_factor,
                        ..
                    } => {
                        let Some(&id) = ids.get(&event.ordinal) else {
                            report.handovers_inactive += 1;
                            continue;
                        };
                        let demand = Self::handover_demand(
                            pack,
                            &scenario,
                            event.ordinal,
                            kind,
                            demand_factor,
                        );
                        report.handovers_attempted += 1;
                        match service.handover(id, demand, kind) {
                            HandoverOutcome::Completed { .. } => report.handovers_completed += 1,
                            HandoverOutcome::Rejected(_) => report.handovers_rejected += 1,
                            HandoverOutcome::NotActive => {
                                report.handovers_attempted -= 1;
                                report.handovers_inactive += 1;
                            }
                        }
                    }
                    ChurnEventKind::Retire => {
                        if let Some(id) = ids.remove(&event.ordinal) {
                            if service.retire(id) {
                                report.retired += 1;
                            }
                        }
                    }
                }
            }
            service.step();
        }
        service.quiesce(100_000);
        report.completed = service.take_completed().len() as u64;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::{ArrivalSpec, ChurnSpec, MobilitySpec, PuBurstSpec, TopologySpec};

    fn churn_pack() -> Pack {
        let mut pack = Pack::generate(3);
        pack.topology = TopologySpec::PaperFig5 { users_per_fbs: 2 };
        pack.mobility = Some(MobilitySpec {
            step_m: 6.0,
            hysteresis_m: 2.0,
        });
        pack.churn = Some(ChurnSpec {
            slots: 30,
            arrivals: ArrivalSpec::Poisson { rate_per_slot: 0.8 },
            mean_hold_slots: 10.0,
            mbs_budget: 4.0,
            max_sessions: 32,
            pu_bursts: Some(PuBurstSpec {
                bursts: 2,
                mean_duration_slots: 5.0,
                utilization_boost: 0.1,
            }),
        });
        pack.validate().expect("valid churn pack");
        pack
    }

    #[test]
    fn schedules_are_pure_functions_of_the_pack() {
        let pack = churn_pack();
        let a = ChurnSchedule::generate(&pack);
        let b = ChurnSchedule::generate(&pack);
        assert_eq!(a, b);
        assert!(a.sessions > 0, "rate 0.8 over 30 slots must arrive someone");
        let mut other = pack.clone();
        other.seed ^= 1;
        assert_ne!(ChurnSchedule::generate(&other), a);
    }

    #[test]
    fn every_arrival_has_exactly_one_retire_after_it() {
        let pack = churn_pack();
        let schedule = ChurnSchedule::generate(&pack);
        let mut arrive: HashMap<u64, u64> = HashMap::new();
        let mut retire: HashMap<u64, u64> = HashMap::new();
        for e in &schedule.events {
            match e.kind {
                ChurnEventKind::Arrive { .. } => {
                    assert!(arrive.insert(e.ordinal, e.slot).is_none(), "double arrival");
                }
                ChurnEventKind::Retire => {
                    assert!(retire.insert(e.ordinal, e.slot).is_none(), "double retire");
                }
                ChurnEventKind::Handover { .. } => {}
            }
        }
        assert_eq!(arrive.len() as u64, schedule.sessions);
        assert_eq!(retire.len(), arrive.len(), "sessions conserved");
        for (ordinal, at) in &arrive {
            assert!(retire[ordinal] > *at, "retire strictly after arrival");
        }
    }

    #[test]
    fn handovers_only_fire_while_their_session_lives() {
        let pack = churn_pack();
        let schedule = ChurnSchedule::generate(&pack);
        let mut arrive: HashMap<u64, u64> = HashMap::new();
        let mut retire: HashMap<u64, u64> = HashMap::new();
        for e in &schedule.events {
            match e.kind {
                ChurnEventKind::Arrive { .. } => drop(arrive.insert(e.ordinal, e.slot)),
                ChurnEventKind::Retire => drop(retire.insert(e.ordinal, e.slot)),
                ChurnEventKind::Handover { .. } => {}
            }
        }
        let mut saw_handover = false;
        for e in &schedule.events {
            match e.kind {
                ChurnEventKind::Arrive { .. } | ChurnEventKind::Retire => {}
                ChurnEventKind::Handover {
                    kind,
                    from,
                    to,
                    demand_factor,
                } => {
                    saw_handover = true;
                    assert!(e.slot >= arrive[&e.ordinal], "handover before arrival");
                    assert!(e.slot < retire[&e.ordinal], "handover after retire");
                    match kind {
                        HandoverKind::FbsToFbs => {
                            assert!(from.is_some() && to.is_some());
                            assert!((0.85..=1.15).contains(&demand_factor));
                        }
                        HandoverKind::FbsToMbs => {
                            assert!(from.is_some() && to.is_none());
                            assert_eq!(demand_factor, 1.0);
                        }
                        HandoverKind::MbsToFbs => {
                            assert!(from.is_none() && to.is_some());
                            assert_eq!(demand_factor, 1.0);
                        }
                    }
                }
            }
        }
        assert!(
            saw_handover,
            "a 6 m walk in 28 m fig-5 cells over 30 slots must hand over"
        );
    }

    #[test]
    fn events_are_slot_ordered_with_retires_before_arrivals() {
        let pack = churn_pack();
        let schedule = ChurnSchedule::generate(&pack);
        let rank = |k: &ChurnEventKind| match k {
            ChurnEventKind::Retire => 0,
            ChurnEventKind::Arrive { .. } => 1,
            ChurnEventKind::Handover { .. } => 2,
        };
        for pair in schedule.events.windows(2) {
            assert!(
                (pair[0].slot, rank(&pair[0].kind)) <= (pair[1].slot, rank(&pair[1].kind)),
                "events out of order: {pair:?}"
            );
        }
    }

    #[test]
    fn pu_burst_arrivals_model_boosted_utilization() {
        let pack = churn_pack();
        let scenario = Arc::new(pack.scenario());
        let plain = ChurnDriver::spec_for(&pack, &scenario, 0, false);
        let boosted = ChurnDriver::spec_for(&pack, &scenario, 0, true);
        let eta = |c: &fcr_sim::SimConfig| c.p01 / (c.p01 + c.p10);
        assert!(
            eta(&boosted.config) > eta(&plain.config),
            "burst admission must see higher utilization"
        );
        assert_eq!(plain.seed, boosted.seed, "the boost never touches seeding");
    }

    #[test]
    fn macro_fallback_demand_prices_at_the_macro_link() {
        let pack = churn_pack();
        let scenario = Arc::new(pack.scenario());
        let base = Service::estimate_demand(&pack.session_spec(&scenario, 0));
        let macro_demand =
            ChurnDriver::handover_demand(&pack, &scenario, 0, HandoverKind::FbsToMbs, 1.0);
        assert!(
            macro_demand >= base,
            "macro link is never better than femto here: {macro_demand} < {base}"
        );
        let scaled = ChurnDriver::handover_demand(&pack, &scenario, 0, HandoverKind::FbsToFbs, 0.9);
        assert!((scaled - base * 0.9).abs() < 1e-12);
    }
}
