//! The scenario-pack schema: parse, validate, render, generate.
//!
//! A pack is one JSON document describing everything a workload needs:
//! topology, channel/sensing statistics, traffic mix, schemes, seeds,
//! and optionally a mobility model, a churn process, and a fault plan.
//! Parsing uses the workspace's no-serde recursive-descent reader
//! ([`fcr_telemetry::json::Json`]); every parse or validation failure
//! is a [`PackError`] naming the dotted path of the offending field.
//!
//! [`Pack::to_json`] is the *canonical* rendering: 2-space indent,
//! fields in schema order, shortest round-trip float formatting. Every
//! shipped pack under `scenarios/` is stored in canonical form, so
//! `parse → to_json` reproduces the file byte for byte — the same
//! discipline the golden traces follow.

use crate::error::PackError;
use fcr_sim::config::{AccessMode, PriorMode, SensingStrategy, SimConfig};
use fcr_sim::Scheme;
use fcr_stats::rng::SeedSequence;
use fcr_telemetry::json::Json;
use fcr_video::sequences::Scalability;
use fcr_video::sequences::Sequence;
use rand::RngExt;

/// Current pack schema version; bumped on breaking schema changes.
pub const PACK_SCHEMA_VERSION: u32 = 1;

/// Largest integer a pack file can carry exactly (JSON numbers are
/// doubles): seeds above this cannot round-trip and are rejected.
pub const JSON_SAFE_MAX: u64 = (1 << 53) - 1;

/// The deployment geometry a pack simulates.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologySpec {
    /// Scenario A: one FBS, `users` CR users, hand-set link SINRs —
    /// bit-identical to [`fcr_sim::Scenario::single_fbs_with_users`].
    SingleFbs {
        /// Number of CR users on the FBS.
        users: u64,
    },
    /// The paper's Fig. 1 network (4 FBSs, only 2–3 overlap),
    /// bit-identical to [`fcr_sim::Scenario::fig1`] at 3 users/FBS
    /// with the paper trio.
    PaperFig1 {
        /// Users per FBS.
        users_per_fbs: u64,
    },
    /// The paper's Fig. 5 path graph (3 FBSs, 1–2 and 2–3 overlap),
    /// bit-identical to [`fcr_sim::Scenario::interfering_fig5`].
    PaperFig5 {
        /// Users per FBS.
        users_per_fbs: u64,
    },
    /// Seeded uniform deployment in a square (geometric SINRs via the
    /// radio link budget). The placement derives from the pack seed.
    Random {
        /// Number of femtocells.
        fbss: u64,
        /// Users placed inside each femtocell's disk.
        users_per_fbs: u64,
        /// Side of the deployment square in meters.
        side: f64,
        /// Coverage radius of every femtocell in meters.
        coverage: f64,
    },
    /// Fully explicit geometry: MBS position, femtocell disks, user
    /// positions (geometric SINRs via the radio link budget).
    Geometric {
        /// MBS position `[x, y]` in meters.
        mbs: (f64, f64),
        /// The femtocell disks.
        fbss: Vec<GeoFbs>,
        /// User positions `[x, y]` in meters.
        users: Vec<(f64, f64)>,
    },
}

/// One explicit femtocell disk in a [`TopologySpec::Geometric`] pack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoFbs {
    /// Center `[x, y]` in meters.
    pub pos: (f64, f64),
    /// Coverage radius in meters.
    pub radius: f64,
}

/// Per-field overrides of [`SimConfig::default`]; only fields present
/// in the pack are overridden, and only present fields render.
#[derive(Debug, Clone, Default, PartialEq)]
#[allow(missing_docs)]
pub struct ChannelSpec {
    pub num_channels: Option<u64>,
    pub p01: Option<f64>,
    pub p10: Option<f64>,
    pub gamma: Option<f64>,
    pub epsilon: Option<f64>,
    pub delta: Option<f64>,
    pub b0: Option<f64>,
    pub b1: Option<f64>,
    pub deadline: Option<u64>,
    pub gops: Option<u64>,
    pub mean_sinr_mbs: Option<f64>,
    pub mean_sinr_fbs: Option<f64>,
    pub sinr_threshold: Option<f64>,
    pub shadowing_sigma_db: Option<f64>,
    pub first_observation_only: Option<bool>,
    pub prior_mode: Option<PriorMode>,
    pub access_mode: Option<AccessMode>,
    pub sensing_strategy: Option<SensingStrategy>,
    pub scalability: Option<Scalability>,
    pub nakagami_m: Option<f64>,
}

impl ChannelSpec {
    /// The pack's [`SimConfig`]: defaults with this spec's overrides
    /// applied. Sharding policy is *not* part of the pack — it is an
    /// execution choice, and results are bit-identical under every
    /// policy anyway.
    pub fn apply(&self) -> SimConfig {
        let mut cfg = SimConfig::default();
        if let Some(v) = self.num_channels {
            cfg.num_channels = v as usize;
        }
        if let Some(v) = self.p01 {
            cfg.p01 = v;
        }
        if let Some(v) = self.p10 {
            cfg.p10 = v;
        }
        if let Some(v) = self.gamma {
            cfg.gamma = v;
        }
        if let Some(v) = self.epsilon {
            cfg.epsilon = v;
        }
        if let Some(v) = self.delta {
            cfg.delta = v;
        }
        if let Some(v) = self.b0 {
            cfg.b0 = v;
        }
        if let Some(v) = self.b1 {
            cfg.b1 = v;
        }
        if let Some(v) = self.deadline {
            cfg.deadline = v as u32;
        }
        if let Some(v) = self.gops {
            cfg.gops = v as u32;
        }
        if let Some(v) = self.mean_sinr_mbs {
            cfg.mean_sinr_mbs = v;
        }
        if let Some(v) = self.mean_sinr_fbs {
            cfg.mean_sinr_fbs = v;
        }
        if let Some(v) = self.sinr_threshold {
            cfg.sinr_threshold = v;
        }
        if let Some(v) = self.shadowing_sigma_db {
            cfg.shadowing_sigma_db = v;
        }
        if let Some(v) = self.first_observation_only {
            cfg.first_observation_only = v;
        }
        if let Some(v) = self.prior_mode {
            cfg.prior_mode = v;
        }
        if let Some(v) = self.access_mode {
            cfg.access_mode = v;
        }
        if let Some(v) = self.sensing_strategy {
            cfg.sensing_strategy = v;
        }
        if let Some(v) = self.scalability {
            cfg.scalability = v;
        }
        if let Some(v) = self.nakagami_m {
            cfg.nakagami_m = v;
        }
        cfg
    }
}

/// The traffic mix: which sequences stream, and how much serve-side
/// work each session carries.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficSpec {
    /// Video sequences, cycled over users (per FBS for the uniform
    /// topologies, globally for geometric ones).
    pub sequences: Vec<Sequence>,
    /// Required base runs per served session (≥ 1).
    pub base_runs: u64,
    /// Droppable enhancement runs per served session.
    pub enhancement_runs: u64,
}

/// The mobility model: users walk a seeded random path; serving-cell
/// changes become handovers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MobilitySpec {
    /// Walk step per slot in meters.
    pub step_m: f64,
    /// Handover hysteresis in meters: a femto-served user stays on its
    /// cell until it exits the coverage radius *plus* this margin, and
    /// a macro-served user re-enters femto service only once inside
    /// the radius *minus* it — the standard ping-pong suppression.
    pub hysteresis_m: f64,
}

/// The session arrival process driving churn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalSpec {
    /// Memoryless arrivals at a constant rate.
    Poisson {
        /// Mean arrivals per slot.
        rate_per_slot: f64,
    },
    /// A sinusoidal diurnal load curve between `base_rate` and
    /// `peak_rate` with the given period.
    Diurnal {
        /// Off-peak mean arrivals per slot.
        base_rate: f64,
        /// Peak mean arrivals per slot.
        peak_rate: f64,
        /// Full day length in slots.
        period_slots: u64,
    },
    /// Constant base load with one flash-crowd burst.
    FlashCrowd {
        /// Mean arrivals per slot outside the burst.
        base_rate: f64,
        /// Mean arrivals per slot during the burst.
        burst_rate: f64,
        /// Slot the burst starts at.
        burst_start: u64,
        /// Burst length in slots.
        burst_slots: u64,
    },
}

/// Correlated primary-user bursts: windows of elevated licensed-channel
/// utilization. Sessions admitted during a burst carry the boosted
/// utilization in their channel model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PuBurstSpec {
    /// Number of bursts over the churn horizon (placed by the seed).
    pub bursts: u64,
    /// Mean burst duration in slots (geometric).
    pub mean_duration_slots: f64,
    /// Additive utilization boost `Δη` during a burst, clamped so the
    /// boosted utilization stays below 1.
    pub utilization_boost: f64,
}

/// The session-churn process a pack drives through `fcr-serve`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnSpec {
    /// Churn horizon in slots.
    pub slots: u64,
    /// The arrival process.
    pub arrivals: ArrivalSpec,
    /// Mean session holding time in slots (geometric); sessions still
    /// active when it expires are retired.
    pub mean_hold_slots: f64,
    /// The eq.-(12) MBS admission budget.
    pub mbs_budget: f64,
    /// Concurrency watermark.
    pub max_sessions: u64,
    /// Optional correlated primary-user bursts.
    pub pu_bursts: Option<PuBurstSpec>,
}

/// A seeded fault plan (the `fcr-runtime` chaos schedule) to run the
/// pack's workload under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultsSpec {
    /// User submissions the plan covers.
    pub jobs: u64,
    /// Chaos-panic jobs to schedule.
    pub panics: u64,
    /// Execution delays to schedule.
    pub delays: u64,
    /// Exclusive cap for each random delay, in milliseconds.
    pub max_delay_ms: u64,
    /// Forced resizes to schedule.
    pub resizes: u64,
    /// Lower bound of the resize band.
    pub worker_min: u64,
    /// Upper bound of the resize band.
    pub worker_max: u64,
}

/// One parsed scenario pack. See the module docs for the format and
/// `docs/scenario_format.md` for every field.
#[derive(Debug, Clone, PartialEq)]
pub struct Pack {
    /// Pack name (used for golden-trace file names; `[a-z0-9_]+`).
    pub name: String,
    /// Human description.
    pub description: String,
    /// Master seed every derived stream forks from.
    pub seed: u64,
    /// Simulation runs per scheme for the batch path.
    pub runs: u64,
    /// Schemes the batch path scores.
    pub schemes: Vec<Scheme>,
    /// The deployment geometry.
    pub topology: TopologySpec,
    /// Channel/sensing overrides over [`SimConfig::default`].
    pub channel: ChannelSpec,
    /// The traffic mix.
    pub traffic: TrafficSpec,
    /// Optional mobility/handover model.
    pub mobility: Option<MobilitySpec>,
    /// Optional churn process.
    pub churn: Option<ChurnSpec>,
    /// Optional fault plan.
    pub faults: Option<FaultsSpec>,
}

// ---------------------------------------------------------------------
// Token maps (canonical lowercase spellings used in pack files).
// ---------------------------------------------------------------------

fn sequence_token(s: Sequence) -> &'static str {
    match s {
        Sequence::Bus => "bus",
        Sequence::Mobile => "mobile",
        Sequence::Harbor => "harbor",
        Sequence::Foreman => "foreman",
        Sequence::Coastguard => "coastguard",
        Sequence::News => "news",
    }
}

fn sequence_from(tok: &str, path: &str) -> Result<Sequence, PackError> {
    Sequence::ALL
        .iter()
        .copied()
        .find(|s| sequence_token(*s) == tok)
        .ok_or_else(|| {
            PackError::at(
                path,
                format!("unknown sequence {tok:?} (expected one of bus, mobile, harbor, foreman, coastguard, news)"),
            )
        })
}

fn scheme_token(s: Scheme) -> &'static str {
    match s {
        Scheme::Proposed => "proposed",
        Scheme::Heuristic1 => "heuristic1",
        Scheme::Heuristic2 => "heuristic2",
        Scheme::UpperBound => "upper_bound",
    }
}

fn scheme_from(tok: &str, path: &str) -> Result<Scheme, PackError> {
    Scheme::WITH_BOUND
        .iter()
        .copied()
        .find(|s| scheme_token(*s) == tok)
        .ok_or_else(|| {
            PackError::at(
                path,
                format!("unknown scheme {tok:?} (expected one of proposed, heuristic1, heuristic2, upper_bound)"),
            )
        })
}

fn enum_from<T: Copy>(
    tok: &str,
    table: &[(&str, T)],
    what: &str,
    path: &str,
) -> Result<T, PackError> {
    table
        .iter()
        .find(|(name, _)| *name == tok)
        .map(|(_, v)| *v)
        .ok_or_else(|| {
            let names: Vec<&str> = table.iter().map(|(n, _)| *n).collect();
            PackError::at(
                path,
                format!(
                    "unknown {what} {tok:?} (expected one of {})",
                    names.join(", ")
                ),
            )
        })
}

const PRIOR_MODES: &[(&str, PriorMode)] = &[
    ("stationary", PriorMode::Stationary),
    ("belief_tracking", PriorMode::BeliefTracking),
];
const ACCESS_MODES: &[(&str, AccessMode)] = &[
    ("probabilistic", AccessMode::Probabilistic),
    ("threshold", AccessMode::Threshold),
];
const SENSING_STRATEGIES: &[(&str, SensingStrategy)] = &[
    ("round_robin", SensingStrategy::RoundRobin),
    ("uncertainty_first", SensingStrategy::UncertaintyFirst),
];
const SCALABILITIES: &[(&str, Scalability)] =
    &[("mgs", Scalability::Mgs), ("fgs", Scalability::Fgs)];

fn token_of<T: Copy + PartialEq>(v: T, table: &[(&'static str, T)]) -> &'static str {
    table
        .iter()
        .find(|(_, t)| *t == v)
        .map(|(n, _)| *n)
        .expect("every enum variant has a token")
}

// ---------------------------------------------------------------------
// Path-tracked readers over the generic Json tree.
// ---------------------------------------------------------------------

fn as_obj<'a>(v: &'a Json, path: &str) -> Result<&'a [(String, Json)], PackError> {
    v.fields()
        .ok_or_else(|| PackError::at(path, "expected an object"))
}

fn as_arr<'a>(v: &'a Json, path: &str) -> Result<&'a [Json], PackError> {
    v.items()
        .ok_or_else(|| PackError::at(path, "expected an array"))
}

fn as_str<'a>(v: &'a Json, path: &str) -> Result<&'a str, PackError> {
    v.as_str()
        .ok_or_else(|| PackError::at(path, "expected a string"))
}

fn as_f64(v: &Json, path: &str) -> Result<f64, PackError> {
    v.as_f64()
        .ok_or_else(|| PackError::at(path, "expected a number"))
}

fn as_u64(v: &Json, path: &str) -> Result<u64, PackError> {
    v.as_u64()
        .ok_or_else(|| PackError::at(path, "expected a non-negative integer"))
}

fn as_bool(v: &Json, path: &str) -> Result<bool, PackError> {
    v.as_bool()
        .ok_or_else(|| PackError::at(path, "expected true or false"))
}

fn req<'a>(fields: &'a [(String, Json)], key: &str, path: &str) -> Result<&'a Json, PackError> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| PackError::at(join(path, key), "missing required field"))
}

fn opt<'a>(fields: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn reject_unknown(
    fields: &[(String, Json)],
    allowed: &[&str],
    path: &str,
) -> Result<(), PackError> {
    for (k, _) in fields {
        if !allowed.contains(&k.as_str()) {
            return Err(PackError::at(
                join(path, k),
                format!("unknown field (expected one of {})", allowed.join(", ")),
            ));
        }
    }
    Ok(())
}

fn join(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

fn point(v: &Json, path: &str) -> Result<(f64, f64), PackError> {
    let items = as_arr(v, path)?;
    if items.len() != 2 {
        return Err(PackError::at(path, "expected a [x, y] pair"));
    }
    Ok((
        as_f64(&items[0], &format!("{path}[0]"))?,
        as_f64(&items[1], &format!("{path}[1]"))?,
    ))
}

// ---------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------

impl Pack {
    /// Parses and validates a pack document. Every failure names the
    /// offending field path.
    pub fn from_json(text: &str) -> Result<Pack, PackError> {
        let doc = Json::parse(text).map_err(|e| PackError::at("", format!("invalid JSON: {e}")))?;
        let pack = Self::from_value(&doc)?;
        pack.validate()?;
        Ok(pack)
    }

    /// Parses the pack structure without semantic validation (used by
    /// [`Pack::from_json`]; exposed for error-path tests).
    pub fn from_value(doc: &Json) -> Result<Pack, PackError> {
        let fields = as_obj(doc, "")?;
        reject_unknown(
            fields,
            &[
                "schema_version",
                "name",
                "description",
                "seed",
                "runs",
                "schemes",
                "topology",
                "channel",
                "traffic",
                "mobility",
                "churn",
                "faults",
            ],
            "",
        )?;
        let version = as_u64(req(fields, "schema_version", "")?, "schema_version")?;
        if version != u64::from(PACK_SCHEMA_VERSION) {
            return Err(PackError::at(
                "schema_version",
                format!(
                    "unsupported schema version {version} (this build reads {PACK_SCHEMA_VERSION})"
                ),
            ));
        }
        let name = as_str(req(fields, "name", "")?, "name")?.to_string();
        let description = as_str(req(fields, "description", "")?, "description")?.to_string();
        let seed = as_u64(req(fields, "seed", "")?, "seed")?;
        let runs = as_u64(req(fields, "runs", "")?, "runs")?;
        let schemes = as_arr(req(fields, "schemes", "")?, "schemes")?
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let p = format!("schemes[{i}]");
                scheme_from(as_str(v, &p)?, &p)
            })
            .collect::<Result<Vec<_>, _>>()?;
        let topology = parse_topology(req(fields, "topology", "")?)?;
        let channel = parse_channel(req(fields, "channel", "")?)?;
        let traffic = parse_traffic(req(fields, "traffic", "")?)?;
        let mobility = opt(fields, "mobility").map(parse_mobility).transpose()?;
        let churn = opt(fields, "churn").map(parse_churn).transpose()?;
        let faults = opt(fields, "faults").map(parse_faults).transpose()?;
        Ok(Pack {
            name,
            description,
            seed,
            runs,
            schemes,
            topology,
            channel,
            traffic,
            mobility,
            churn,
            faults,
        })
    }
}

fn parse_topology(v: &Json) -> Result<TopologySpec, PackError> {
    let p = "topology";
    let fields = as_obj(v, p)?;
    let kind = as_str(req(fields, "kind", p)?, "topology.kind")?;
    match kind {
        "single_fbs" => {
            reject_unknown(fields, &["kind", "users"], p)?;
            Ok(TopologySpec::SingleFbs {
                users: as_u64(req(fields, "users", p)?, "topology.users")?,
            })
        }
        "paper_fig1" => {
            reject_unknown(fields, &["kind", "users_per_fbs"], p)?;
            Ok(TopologySpec::PaperFig1 {
                users_per_fbs: as_u64(req(fields, "users_per_fbs", p)?, "topology.users_per_fbs")?,
            })
        }
        "paper_fig5" => {
            reject_unknown(fields, &["kind", "users_per_fbs"], p)?;
            Ok(TopologySpec::PaperFig5 {
                users_per_fbs: as_u64(req(fields, "users_per_fbs", p)?, "topology.users_per_fbs")?,
            })
        }
        "random" => {
            reject_unknown(
                fields,
                &["kind", "fbss", "users_per_fbs", "side", "coverage"],
                p,
            )?;
            Ok(TopologySpec::Random {
                fbss: as_u64(req(fields, "fbss", p)?, "topology.fbss")?,
                users_per_fbs: as_u64(req(fields, "users_per_fbs", p)?, "topology.users_per_fbs")?,
                side: as_f64(req(fields, "side", p)?, "topology.side")?,
                coverage: as_f64(req(fields, "coverage", p)?, "topology.coverage")?,
            })
        }
        "geometric" => {
            reject_unknown(fields, &["kind", "mbs", "fbss", "users"], p)?;
            let mbs = point(req(fields, "mbs", p)?, "topology.mbs")?;
            let fbss = as_arr(req(fields, "fbss", p)?, "topology.fbss")?
                .iter()
                .enumerate()
                .map(|(i, f)| {
                    let fp = format!("topology.fbss[{i}]");
                    let ff = as_obj(f, &fp)?;
                    reject_unknown(ff, &["pos", "radius"], &fp)?;
                    Ok(GeoFbs {
                        pos: point(req(ff, "pos", &fp)?, &format!("{fp}.pos"))?,
                        radius: as_f64(req(ff, "radius", &fp)?, &format!("{fp}.radius"))?,
                    })
                })
                .collect::<Result<Vec<_>, PackError>>()?;
            let users = as_arr(req(fields, "users", p)?, "topology.users")?
                .iter()
                .enumerate()
                .map(|(i, u)| point(u, &format!("topology.users[{i}]")))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(TopologySpec::Geometric { mbs, fbss, users })
        }
        other => Err(PackError::at(
            "topology.kind",
            format!("unknown topology kind {other:?} (expected one of single_fbs, paper_fig1, paper_fig5, random, geometric)"),
        )),
    }
}

fn parse_channel(v: &Json) -> Result<ChannelSpec, PackError> {
    let p = "channel";
    let fields = as_obj(v, p)?;
    reject_unknown(
        fields,
        &[
            "num_channels",
            "p01",
            "p10",
            "gamma",
            "epsilon",
            "delta",
            "b0",
            "b1",
            "deadline",
            "gops",
            "mean_sinr_mbs",
            "mean_sinr_fbs",
            "sinr_threshold",
            "shadowing_sigma_db",
            "first_observation_only",
            "prior_mode",
            "access_mode",
            "sensing_strategy",
            "scalability",
            "nakagami_m",
        ],
        p,
    )?;
    let f = |key: &str| -> Result<Option<f64>, PackError> {
        opt(fields, key)
            .map(|v| as_f64(v, &join(p, key)))
            .transpose()
    };
    let u = |key: &str| -> Result<Option<u64>, PackError> {
        opt(fields, key)
            .map(|v| as_u64(v, &join(p, key)))
            .transpose()
    };
    Ok(ChannelSpec {
        num_channels: u("num_channels")?,
        p01: f("p01")?,
        p10: f("p10")?,
        gamma: f("gamma")?,
        epsilon: f("epsilon")?,
        delta: f("delta")?,
        b0: f("b0")?,
        b1: f("b1")?,
        deadline: u("deadline")?,
        gops: u("gops")?,
        mean_sinr_mbs: f("mean_sinr_mbs")?,
        mean_sinr_fbs: f("mean_sinr_fbs")?,
        sinr_threshold: f("sinr_threshold")?,
        shadowing_sigma_db: f("shadowing_sigma_db")?,
        first_observation_only: opt(fields, "first_observation_only")
            .map(|v| as_bool(v, "channel.first_observation_only"))
            .transpose()?,
        prior_mode: opt(fields, "prior_mode")
            .map(|v| {
                enum_from(
                    as_str(v, "channel.prior_mode")?,
                    PRIOR_MODES,
                    "prior mode",
                    "channel.prior_mode",
                )
            })
            .transpose()?,
        access_mode: opt(fields, "access_mode")
            .map(|v| {
                enum_from(
                    as_str(v, "channel.access_mode")?,
                    ACCESS_MODES,
                    "access mode",
                    "channel.access_mode",
                )
            })
            .transpose()?,
        sensing_strategy: opt(fields, "sensing_strategy")
            .map(|v| {
                enum_from(
                    as_str(v, "channel.sensing_strategy")?,
                    SENSING_STRATEGIES,
                    "sensing strategy",
                    "channel.sensing_strategy",
                )
            })
            .transpose()?,
        scalability: opt(fields, "scalability")
            .map(|v| {
                enum_from(
                    as_str(v, "channel.scalability")?,
                    SCALABILITIES,
                    "scalability",
                    "channel.scalability",
                )
            })
            .transpose()?,
        nakagami_m: f("nakagami_m")?,
    })
}

fn parse_traffic(v: &Json) -> Result<TrafficSpec, PackError> {
    let p = "traffic";
    let fields = as_obj(v, p)?;
    reject_unknown(fields, &["sequences", "base_runs", "enhancement_runs"], p)?;
    let sequences = as_arr(req(fields, "sequences", p)?, "traffic.sequences")?
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let sp = format!("traffic.sequences[{i}]");
            sequence_from(as_str(s, &sp)?, &sp)
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(TrafficSpec {
        sequences,
        base_runs: as_u64(req(fields, "base_runs", p)?, "traffic.base_runs")?,
        enhancement_runs: as_u64(
            req(fields, "enhancement_runs", p)?,
            "traffic.enhancement_runs",
        )?,
    })
}

fn parse_mobility(v: &Json) -> Result<MobilitySpec, PackError> {
    let p = "mobility";
    let fields = as_obj(v, p)?;
    reject_unknown(fields, &["step_m", "hysteresis_m"], p)?;
    Ok(MobilitySpec {
        step_m: as_f64(req(fields, "step_m", p)?, "mobility.step_m")?,
        hysteresis_m: as_f64(req(fields, "hysteresis_m", p)?, "mobility.hysteresis_m")?,
    })
}

fn parse_arrivals(v: &Json) -> Result<ArrivalSpec, PackError> {
    let p = "churn.arrivals";
    let fields = as_obj(v, p)?;
    let kind = as_str(req(fields, "kind", p)?, "churn.arrivals.kind")?;
    match kind {
        "poisson" => {
            reject_unknown(fields, &["kind", "rate_per_slot"], p)?;
            Ok(ArrivalSpec::Poisson {
                rate_per_slot: as_f64(
                    req(fields, "rate_per_slot", p)?,
                    "churn.arrivals.rate_per_slot",
                )?,
            })
        }
        "diurnal" => {
            reject_unknown(
                fields,
                &["kind", "base_rate", "peak_rate", "period_slots"],
                p,
            )?;
            Ok(ArrivalSpec::Diurnal {
                base_rate: as_f64(req(fields, "base_rate", p)?, "churn.arrivals.base_rate")?,
                peak_rate: as_f64(req(fields, "peak_rate", p)?, "churn.arrivals.peak_rate")?,
                period_slots: as_u64(
                    req(fields, "period_slots", p)?,
                    "churn.arrivals.period_slots",
                )?,
            })
        }
        "flash_crowd" => {
            reject_unknown(
                fields,
                &[
                    "kind",
                    "base_rate",
                    "burst_rate",
                    "burst_start",
                    "burst_slots",
                ],
                p,
            )?;
            Ok(ArrivalSpec::FlashCrowd {
                base_rate: as_f64(req(fields, "base_rate", p)?, "churn.arrivals.base_rate")?,
                burst_rate: as_f64(req(fields, "burst_rate", p)?, "churn.arrivals.burst_rate")?,
                burst_start: as_u64(req(fields, "burst_start", p)?, "churn.arrivals.burst_start")?,
                burst_slots: as_u64(req(fields, "burst_slots", p)?, "churn.arrivals.burst_slots")?,
            })
        }
        other => Err(PackError::at(
            "churn.arrivals.kind",
            format!(
                "unknown arrival kind {other:?} (expected one of poisson, diurnal, flash_crowd)"
            ),
        )),
    }
}

fn parse_churn(v: &Json) -> Result<ChurnSpec, PackError> {
    let p = "churn";
    let fields = as_obj(v, p)?;
    reject_unknown(
        fields,
        &[
            "slots",
            "arrivals",
            "mean_hold_slots",
            "mbs_budget",
            "max_sessions",
            "pu_bursts",
        ],
        p,
    )?;
    let pu_bursts = opt(fields, "pu_bursts")
        .map(|b| {
            let bp = "churn.pu_bursts";
            let bf = as_obj(b, bp)?;
            reject_unknown(
                bf,
                &["bursts", "mean_duration_slots", "utilization_boost"],
                bp,
            )?;
            Ok::<_, PackError>(PuBurstSpec {
                bursts: as_u64(req(bf, "bursts", bp)?, "churn.pu_bursts.bursts")?,
                mean_duration_slots: as_f64(
                    req(bf, "mean_duration_slots", bp)?,
                    "churn.pu_bursts.mean_duration_slots",
                )?,
                utilization_boost: as_f64(
                    req(bf, "utilization_boost", bp)?,
                    "churn.pu_bursts.utilization_boost",
                )?,
            })
        })
        .transpose()?;
    Ok(ChurnSpec {
        slots: as_u64(req(fields, "slots", p)?, "churn.slots")?,
        arrivals: parse_arrivals(req(fields, "arrivals", p)?)?,
        mean_hold_slots: as_f64(req(fields, "mean_hold_slots", p)?, "churn.mean_hold_slots")?,
        mbs_budget: as_f64(req(fields, "mbs_budget", p)?, "churn.mbs_budget")?,
        max_sessions: as_u64(req(fields, "max_sessions", p)?, "churn.max_sessions")?,
        pu_bursts,
    })
}

fn parse_faults(v: &Json) -> Result<FaultsSpec, PackError> {
    let p = "faults";
    let fields = as_obj(v, p)?;
    reject_unknown(
        fields,
        &[
            "jobs",
            "panics",
            "delays",
            "max_delay_ms",
            "resizes",
            "worker_min",
            "worker_max",
        ],
        p,
    )?;
    let u = |key: &str| as_u64(req(fields, key, p)?, &join(p, key));
    Ok(FaultsSpec {
        jobs: u("jobs")?,
        panics: u("panics")?,
        delays: u("delays")?,
        max_delay_ms: u("max_delay_ms")?,
        resizes: u("resizes")?,
        worker_min: u("worker_min")?,
        worker_max: u("worker_max")?,
    })
}

// ---------------------------------------------------------------------
// Validation.
// ---------------------------------------------------------------------

impl Pack {
    /// Semantic validation beyond structure: counts are positive,
    /// rates are finite and non-negative, and the channel overrides
    /// produce a [`SimConfig`] that passes its own `validate`.
    pub fn validate(&self) -> Result<(), PackError> {
        if self.name.is_empty()
            || !self
                .name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            return Err(PackError::at(
                "name",
                "must be non-empty [a-z0-9_]+ (it names golden-trace files)",
            ));
        }
        if self.seed > JSON_SAFE_MAX {
            return Err(PackError::at(
                "seed",
                "must fit a JSON-safe integer (at most 2^53 - 1) to round-trip exactly",
            ));
        }
        if self.runs == 0 {
            return Err(PackError::at("runs", "must be at least 1"));
        }
        if self.schemes.is_empty() {
            return Err(PackError::at("schemes", "must name at least one scheme"));
        }
        match &self.topology {
            TopologySpec::SingleFbs { users } => {
                if *users == 0 {
                    return Err(PackError::at("topology.users", "must be at least 1"));
                }
            }
            TopologySpec::PaperFig1 { users_per_fbs }
            | TopologySpec::PaperFig5 { users_per_fbs } => {
                if *users_per_fbs == 0 {
                    return Err(PackError::at(
                        "topology.users_per_fbs",
                        "must be at least 1",
                    ));
                }
            }
            TopologySpec::Random {
                fbss,
                users_per_fbs,
                side,
                coverage,
            } => {
                if *fbss == 0 {
                    return Err(PackError::at("topology.fbss", "must be at least 1"));
                }
                if *users_per_fbs == 0 {
                    return Err(PackError::at(
                        "topology.users_per_fbs",
                        "must be at least 1",
                    ));
                }
                if !(side.is_finite() && *side > 0.0) {
                    return Err(PackError::at("topology.side", "must be a positive number"));
                }
                if !(coverage.is_finite() && *coverage > 0.0) {
                    return Err(PackError::at(
                        "topology.coverage",
                        "must be a positive number",
                    ));
                }
            }
            TopologySpec::Geometric { fbss, users, .. } => {
                if fbss.is_empty() {
                    return Err(PackError::at("topology.fbss", "must list at least one FBS"));
                }
                if users.is_empty() {
                    return Err(PackError::at(
                        "topology.users",
                        "must list at least one user",
                    ));
                }
                for (i, f) in fbss.iter().enumerate() {
                    if !(f.radius.is_finite() && f.radius > 0.0) {
                        return Err(PackError::at(
                            format!("topology.fbss[{i}].radius"),
                            "must be a positive number",
                        ));
                    }
                }
            }
        }
        let cfg = self.channel.apply();
        if let Err(problems) = cfg.validate() {
            return Err(PackError::at(
                "channel",
                format!(
                    "overrides produce an invalid SimConfig: {}",
                    problems.join("; ")
                ),
            ));
        }
        if self.traffic.sequences.is_empty() {
            return Err(PackError::at(
                "traffic.sequences",
                "must list at least one sequence",
            ));
        }
        if self.traffic.base_runs == 0 {
            return Err(PackError::at("traffic.base_runs", "must be at least 1"));
        }
        if let Some(m) = &self.mobility {
            if !(m.step_m.is_finite() && m.step_m > 0.0) {
                return Err(PackError::at(
                    "mobility.step_m",
                    "must be a positive number",
                ));
            }
            if !(m.hysteresis_m.is_finite() && m.hysteresis_m >= 0.0) {
                return Err(PackError::at(
                    "mobility.hysteresis_m",
                    "must be a non-negative number",
                ));
            }
        }
        if let Some(c) = &self.churn {
            if c.slots == 0 {
                return Err(PackError::at("churn.slots", "must be at least 1"));
            }
            if !(c.mean_hold_slots.is_finite() && c.mean_hold_slots > 0.0) {
                return Err(PackError::at(
                    "churn.mean_hold_slots",
                    "must be a positive number",
                ));
            }
            if !(c.mbs_budget.is_finite() && c.mbs_budget > 0.0) {
                return Err(PackError::at(
                    "churn.mbs_budget",
                    "must be a positive number",
                ));
            }
            if c.max_sessions == 0 {
                return Err(PackError::at("churn.max_sessions", "must be at least 1"));
            }
            let rate_ok = |r: f64| r.is_finite() && r >= 0.0;
            match c.arrivals {
                ArrivalSpec::Poisson { rate_per_slot } => {
                    if !rate_ok(rate_per_slot) {
                        return Err(PackError::at(
                            "churn.arrivals.rate_per_slot",
                            "must be a non-negative number",
                        ));
                    }
                }
                ArrivalSpec::Diurnal {
                    base_rate,
                    peak_rate,
                    period_slots,
                } => {
                    if !rate_ok(base_rate) {
                        return Err(PackError::at(
                            "churn.arrivals.base_rate",
                            "must be a non-negative number",
                        ));
                    }
                    if !rate_ok(peak_rate) || peak_rate < base_rate {
                        return Err(PackError::at(
                            "churn.arrivals.peak_rate",
                            "must be a number >= base_rate",
                        ));
                    }
                    if period_slots == 0 {
                        return Err(PackError::at(
                            "churn.arrivals.period_slots",
                            "must be at least 1",
                        ));
                    }
                }
                ArrivalSpec::FlashCrowd {
                    base_rate,
                    burst_rate,
                    burst_slots,
                    ..
                } => {
                    if !rate_ok(base_rate) {
                        return Err(PackError::at(
                            "churn.arrivals.base_rate",
                            "must be a non-negative number",
                        ));
                    }
                    if !rate_ok(burst_rate) {
                        return Err(PackError::at(
                            "churn.arrivals.burst_rate",
                            "must be a non-negative number",
                        ));
                    }
                    if burst_slots == 0 {
                        return Err(PackError::at(
                            "churn.arrivals.burst_slots",
                            "must be at least 1",
                        ));
                    }
                }
            }
            if let Some(b) = &c.pu_bursts {
                if !(b.mean_duration_slots.is_finite() && b.mean_duration_slots > 0.0) {
                    return Err(PackError::at(
                        "churn.pu_bursts.mean_duration_slots",
                        "must be a positive number",
                    ));
                }
                if !(b.utilization_boost.is_finite() && (0.0..1.0).contains(&b.utilization_boost)) {
                    return Err(PackError::at(
                        "churn.pu_bursts.utilization_boost",
                        "must be in [0, 1)",
                    ));
                }
            }
        }
        if let Some(f) = &self.faults {
            if f.worker_min == 0 || f.worker_max < f.worker_min {
                return Err(PackError::at(
                    "faults.worker_min",
                    "need 1 <= worker_min <= worker_max",
                ));
            }
            if f.jobs == 0 {
                return Err(PackError::at("faults.jobs", "must be at least 1"));
            }
        }
        Ok(())
    }

    /// The pack's effective [`SimConfig`] (defaults + channel
    /// overrides).
    pub fn sim_config(&self) -> SimConfig {
        self.channel.apply()
    }
}

// ---------------------------------------------------------------------
// Canonical rendering.
// ---------------------------------------------------------------------

/// Shortest round-trip decimal for a pack number (Rust's float
/// `Display`); integral values render without a fractional part, so
/// `5.0` renders as `5` and re-parses identically.
fn num(v: f64) -> String {
    debug_assert!(v.is_finite(), "pack numbers are finite");
    format!("{v}")
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A tiny indenting writer for the canonical pack shape.
struct W {
    out: String,
    indent: usize,
}

impl W {
    fn new() -> Self {
        W {
            out: String::new(),
            indent: 0,
        }
    }

    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    /// Writes `"key": <open>`, runs `body` one level deeper, then the
    /// matching close with an optional trailing comma.
    fn block(
        &mut self,
        head: &str,
        open: char,
        close: char,
        comma: bool,
        body: impl FnOnce(&mut W),
    ) {
        self.line(&format!("{head}{open}"));
        self.indent += 1;
        body(self);
        self.indent -= 1;
        self.line(&format!("{close}{}", if comma { "," } else { "" }));
    }
}

impl Pack {
    /// Renders the pack in canonical form (see module docs). Parsing
    /// the output reproduces `self` exactly, and rendering a parsed
    /// canonical file reproduces its bytes exactly.
    pub fn to_json(&self) -> String {
        let mut w = W::new();
        w.line("{");
        w.indent += 1;
        w.line(&format!("\"schema_version\": {PACK_SCHEMA_VERSION},"));
        w.line(&format!("\"name\": \"{}\",", esc(&self.name)));
        w.line(&format!("\"description\": \"{}\",", esc(&self.description)));
        w.line(&format!("\"seed\": {},", self.seed));
        w.line(&format!("\"runs\": {},", self.runs));
        let schemes: Vec<String> = self
            .schemes
            .iter()
            .map(|s| format!("\"{}\"", scheme_token(*s)))
            .collect();
        w.line(&format!("\"schemes\": [{}],", schemes.join(", ")));
        self.write_topology(&mut w);
        self.write_channel(&mut w);
        self.write_traffic(&mut w);
        if let Some(m) = &self.mobility {
            w.block(
                "\"mobility\": ",
                '{',
                '}',
                self.churn.is_some() || self.faults.is_some(),
                |w| {
                    w.line(&format!("\"step_m\": {},", num(m.step_m)));
                    w.line(&format!("\"hysteresis_m\": {}", num(m.hysteresis_m)));
                },
            );
        }
        if let Some(c) = &self.churn {
            let comma = self.faults.is_some();
            w.block("\"churn\": ", '{', '}', comma, |w| {
                w.line(&format!("\"slots\": {},", c.slots));
                w.block("\"arrivals\": ", '{', '}', true, |w| match c.arrivals {
                    ArrivalSpec::Poisson { rate_per_slot } => {
                        w.line("\"kind\": \"poisson\",");
                        w.line(&format!("\"rate_per_slot\": {}", num(rate_per_slot)));
                    }
                    ArrivalSpec::Diurnal {
                        base_rate,
                        peak_rate,
                        period_slots,
                    } => {
                        w.line("\"kind\": \"diurnal\",");
                        w.line(&format!("\"base_rate\": {},", num(base_rate)));
                        w.line(&format!("\"peak_rate\": {},", num(peak_rate)));
                        w.line(&format!("\"period_slots\": {period_slots}"));
                    }
                    ArrivalSpec::FlashCrowd {
                        base_rate,
                        burst_rate,
                        burst_start,
                        burst_slots,
                    } => {
                        w.line("\"kind\": \"flash_crowd\",");
                        w.line(&format!("\"base_rate\": {},", num(base_rate)));
                        w.line(&format!("\"burst_rate\": {},", num(burst_rate)));
                        w.line(&format!("\"burst_start\": {burst_start},"));
                        w.line(&format!("\"burst_slots\": {burst_slots}"));
                    }
                });
                w.line(&format!("\"mean_hold_slots\": {},", num(c.mean_hold_slots)));
                w.line(&format!("\"mbs_budget\": {},", num(c.mbs_budget)));
                let have_bursts = c.pu_bursts.is_some();
                w.line(&format!(
                    "\"max_sessions\": {}{}",
                    c.max_sessions,
                    if have_bursts { "," } else { "" }
                ));
                if let Some(b) = &c.pu_bursts {
                    w.block("\"pu_bursts\": ", '{', '}', false, |w| {
                        w.line(&format!("\"bursts\": {},", b.bursts));
                        w.line(&format!(
                            "\"mean_duration_slots\": {},",
                            num(b.mean_duration_slots)
                        ));
                        w.line(&format!(
                            "\"utilization_boost\": {}",
                            num(b.utilization_boost)
                        ));
                    });
                }
            });
        }
        if let Some(f) = &self.faults {
            w.block("\"faults\": ", '{', '}', false, |w| {
                w.line(&format!("\"jobs\": {},", f.jobs));
                w.line(&format!("\"panics\": {},", f.panics));
                w.line(&format!("\"delays\": {},", f.delays));
                w.line(&format!("\"max_delay_ms\": {},", f.max_delay_ms));
                w.line(&format!("\"resizes\": {},", f.resizes));
                w.line(&format!("\"worker_min\": {},", f.worker_min));
                w.line(&format!("\"worker_max\": {}", f.worker_max));
            });
        }
        w.indent -= 1;
        w.line("}");
        w.out
    }

    fn write_topology(&self, w: &mut W) {
        w.block("\"topology\": ", '{', '}', true, |w| match &self.topology {
            TopologySpec::SingleFbs { users } => {
                w.line("\"kind\": \"single_fbs\",");
                w.line(&format!("\"users\": {users}"));
            }
            TopologySpec::PaperFig1 { users_per_fbs } => {
                w.line("\"kind\": \"paper_fig1\",");
                w.line(&format!("\"users_per_fbs\": {users_per_fbs}"));
            }
            TopologySpec::PaperFig5 { users_per_fbs } => {
                w.line("\"kind\": \"paper_fig5\",");
                w.line(&format!("\"users_per_fbs\": {users_per_fbs}"));
            }
            TopologySpec::Random {
                fbss,
                users_per_fbs,
                side,
                coverage,
            } => {
                w.line("\"kind\": \"random\",");
                w.line(&format!("\"fbss\": {fbss},"));
                w.line(&format!("\"users_per_fbs\": {users_per_fbs},"));
                w.line(&format!("\"side\": {},", num(*side)));
                w.line(&format!("\"coverage\": {}", num(*coverage)));
            }
            TopologySpec::Geometric { mbs, fbss, users } => {
                w.line("\"kind\": \"geometric\",");
                w.line(&format!("\"mbs\": [{}, {}],", num(mbs.0), num(mbs.1)));
                w.block("\"fbss\": ", '[', ']', true, |w| {
                    for (i, f) in fbss.iter().enumerate() {
                        let comma = if i + 1 < fbss.len() { "," } else { "" };
                        w.line(&format!(
                            "{{\"pos\": [{}, {}], \"radius\": {}}}{comma}",
                            num(f.pos.0),
                            num(f.pos.1),
                            num(f.radius)
                        ));
                    }
                });
                w.block("\"users\": ", '[', ']', false, |w| {
                    for (i, u) in users.iter().enumerate() {
                        let comma = if i + 1 < users.len() { "," } else { "" };
                        w.line(&format!("[{}, {}]{comma}", num(u.0), num(u.1)));
                    }
                });
            }
        });
    }

    fn write_channel(&self, w: &mut W) {
        let c = &self.channel;
        let mut lines: Vec<String> = Vec::new();
        fn push_num(lines: &mut Vec<String>, key: &str, v: Option<f64>) {
            if let Some(v) = v {
                lines.push(format!("\"{key}\": {}", num(v)));
            }
        }
        if let Some(v) = c.num_channels {
            lines.push(format!("\"num_channels\": {v}"));
        }
        push_num(&mut lines, "p01", c.p01);
        push_num(&mut lines, "p10", c.p10);
        push_num(&mut lines, "gamma", c.gamma);
        push_num(&mut lines, "epsilon", c.epsilon);
        push_num(&mut lines, "delta", c.delta);
        push_num(&mut lines, "b0", c.b0);
        push_num(&mut lines, "b1", c.b1);
        if let Some(v) = c.deadline {
            lines.push(format!("\"deadline\": {v}"));
        }
        if let Some(v) = c.gops {
            lines.push(format!("\"gops\": {v}"));
        }
        push_num(&mut lines, "mean_sinr_mbs", c.mean_sinr_mbs);
        push_num(&mut lines, "mean_sinr_fbs", c.mean_sinr_fbs);
        push_num(&mut lines, "sinr_threshold", c.sinr_threshold);
        push_num(&mut lines, "shadowing_sigma_db", c.shadowing_sigma_db);
        if let Some(v) = c.first_observation_only {
            lines.push(format!("\"first_observation_only\": {v}"));
        }
        if let Some(v) = c.prior_mode {
            lines.push(format!("\"prior_mode\": \"{}\"", token_of(v, PRIOR_MODES)));
        }
        if let Some(v) = c.access_mode {
            lines.push(format!(
                "\"access_mode\": \"{}\"",
                token_of(v, ACCESS_MODES)
            ));
        }
        if let Some(v) = c.sensing_strategy {
            lines.push(format!(
                "\"sensing_strategy\": \"{}\"",
                token_of(v, SENSING_STRATEGIES)
            ));
        }
        if let Some(v) = c.scalability {
            lines.push(format!(
                "\"scalability\": \"{}\"",
                token_of(v, SCALABILITIES)
            ));
        }
        if let Some(v) = c.nakagami_m {
            lines.push(format!("\"nakagami_m\": {}", num(v)));
        }
        if lines.is_empty() {
            w.line("\"channel\": {},");
        } else {
            w.block("\"channel\": ", '{', '}', true, |w| {
                let n = lines.len();
                for (i, l) in lines.iter().enumerate() {
                    let comma = if i + 1 < n { "," } else { "" };
                    w.line(&format!("{l}{comma}"));
                }
            });
        }
    }

    fn write_traffic(&self, w: &mut W) {
        let comma = self.mobility.is_some() || self.churn.is_some() || self.faults.is_some();
        let t = &self.traffic;
        w.block("\"traffic\": ", '{', '}', comma, |w| {
            let seqs: Vec<String> = t
                .sequences
                .iter()
                .map(|s| format!("\"{}\"", sequence_token(*s)))
                .collect();
            w.line(&format!("\"sequences\": [{}],", seqs.join(", ")));
            w.line(&format!("\"base_runs\": {},", t.base_runs));
            w.line(&format!("\"enhancement_runs\": {}", t.enhancement_runs));
        });
    }
}

// ---------------------------------------------------------------------
// Seeded generation.
// ---------------------------------------------------------------------

impl Pack {
    /// Generates a random **valid** pack from `seed` — the pack
    /// fuzzing entry point (`fcr-testkit` wraps it in a proptest
    /// strategy, `fcr-experiments scenario --generate` ships it to the
    /// CLI). Dimensions stay smoke-sized so a generated pack always
    /// runs in seconds.
    pub fn generate(seed: u64) -> Pack {
        // Seeds above 2^53 cannot round-trip through JSON numbers;
        // fold them into the safe range so the written pack replays.
        let seed = seed & JSON_SAFE_MAX;
        let seq = SeedSequence::new(seed);
        let mut rng = seq.stream("pack", 0);
        let topology = match rng.random_range(0..5u32) {
            0 => TopologySpec::SingleFbs {
                users: rng.random_range(1..=4u64),
            },
            1 => TopologySpec::PaperFig1 {
                users_per_fbs: rng.random_range(1..=3u64),
            },
            2 => TopologySpec::PaperFig5 {
                users_per_fbs: rng.random_range(1..=3u64),
            },
            3 => TopologySpec::Random {
                fbss: rng.random_range(2..=4u64),
                users_per_fbs: rng.random_range(1..=3u64),
                side: round2(rng.random_range(150.0..400.0)),
                coverage: round2(rng.random_range(20.0..40.0)),
            },
            _ => {
                let n_fbs = rng.random_range(2..=3usize);
                let fbss: Vec<GeoFbs> = (0..n_fbs)
                    .map(|i| GeoFbs {
                        pos: (
                            round2(-60.0 + 60.0 * i as f64 + rng.random_range(-10.0..10.0)),
                            round2(rng.random_range(-20.0..20.0)),
                        ),
                        radius: round2(rng.random_range(22.0..35.0)),
                    })
                    .collect();
                let mut users = Vec::new();
                for f in &fbss {
                    for _ in 0..rng.random_range(1..=2u32) {
                        users.push((
                            round2(f.pos.0 + rng.random_range(-8.0..8.0)),
                            round2(f.pos.1 + rng.random_range(-8.0..8.0)),
                        ));
                    }
                }
                TopologySpec::Geometric {
                    mbs: (0.0, round2(rng.random_range(80.0..150.0))),
                    fbss,
                    users,
                }
            }
        };
        // A few channel overrides, drawn from validity-preserving
        // bands (ε + δ < 1, probabilities off the absorbing corners).
        let mut channel = ChannelSpec::default();
        if rng.random::<f64>() < 0.7 {
            channel.gops = Some(rng.random_range(1..=3u64));
        }
        if rng.random::<f64>() < 0.5 {
            channel.num_channels = Some(rng.random_range(2..=6u64));
        }
        if rng.random::<f64>() < 0.5 {
            channel.deadline = Some(rng.random_range(2..=6u64));
        }
        if rng.random::<f64>() < 0.4 {
            channel.p01 = Some(round2(rng.random_range(0.1..0.8)));
            channel.p10 = Some(round2(rng.random_range(0.1..0.8)));
        }
        if rng.random::<f64>() < 0.4 {
            channel.epsilon = Some(round2(rng.random_range(0.05..0.45)));
            channel.delta = Some(round2(rng.random_range(0.05..0.45)));
        }
        if rng.random::<f64>() < 0.3 {
            channel.prior_mode = Some(if rng.random::<f64>() < 0.5 {
                PriorMode::Stationary
            } else {
                PriorMode::BeliefTracking
            });
        }
        if rng.random::<f64>() < 0.3 {
            channel.nakagami_m = Some(round2(rng.random_range(0.6..3.0)));
        }
        let n_seq = rng.random_range(1..=4usize);
        let start = rng.random_range(0..Sequence::ALL.len());
        let sequences: Vec<Sequence> = (0..n_seq)
            .map(|i| Sequence::ALL[(start + i) % Sequence::ALL.len()])
            .collect();
        let schemes: Vec<Scheme> = match rng.random_range(0..3u32) {
            0 => vec![Scheme::Proposed],
            1 => vec![Scheme::Proposed, Scheme::Heuristic1],
            _ => Scheme::PAPER_TRIO.to_vec(),
        };
        let mobility = (rng.random::<f64>() < 0.6).then(|| MobilitySpec {
            step_m: round2(rng.random_range(2.0..8.0)),
            hysteresis_m: round2(rng.random_range(0.0..5.0)),
        });
        let churn = (rng.random::<f64>() < 0.6).then(|| {
            let arrivals = match rng.random_range(0..3u32) {
                0 => ArrivalSpec::Poisson {
                    rate_per_slot: round2(rng.random_range(0.2..1.0)),
                },
                1 => {
                    let base = round2(rng.random_range(0.1..0.4));
                    ArrivalSpec::Diurnal {
                        base_rate: base,
                        peak_rate: round2(base + rng.random_range(0.3..1.0)),
                        period_slots: rng.random_range(24..=96u64),
                    }
                }
                _ => ArrivalSpec::FlashCrowd {
                    base_rate: round2(rng.random_range(0.1..0.3)),
                    burst_rate: round2(rng.random_range(1.0..3.0)),
                    burst_start: rng.random_range(5..=20u64),
                    burst_slots: rng.random_range(5..=15u64),
                },
            };
            ChurnSpec {
                slots: rng.random_range(20..=50u64),
                arrivals,
                mean_hold_slots: round2(rng.random_range(6.0..20.0)),
                mbs_budget: round2(rng.random_range(2.0..6.0)),
                max_sessions: rng.random_range(8..=32u64),
                pu_bursts: (rng.random::<f64>() < 0.5).then(|| PuBurstSpec {
                    bursts: rng.random_range(1..=3u64),
                    mean_duration_slots: round2(rng.random_range(4.0..12.0)),
                    utilization_boost: round2(rng.random_range(0.05..0.35)),
                }),
            }
        });
        let faults = (rng.random::<f64>() < 0.3).then(|| FaultsSpec {
            jobs: rng.random_range(16..=64u64),
            panics: rng.random_range(0..=3u64),
            delays: rng.random_range(0..=4u64),
            max_delay_ms: rng.random_range(1..=5u64),
            resizes: rng.random_range(0..=2u64),
            worker_min: 1,
            worker_max: rng.random_range(2..=4u64),
        });
        let pack = Pack {
            name: format!("generated_{seed}"),
            description: "randomized pack from Pack::generate (replay with the same seed)"
                .to_string(),
            seed,
            runs: rng.random_range(1..=2u64),
            schemes,
            topology,
            channel,
            traffic: TrafficSpec {
                sequences,
                base_runs: rng.random_range(1..=2u64),
                enhancement_runs: rng.random_range(0..=2u64),
            },
            mobility,
            churn,
            faults,
        };
        debug_assert!(pack.validate().is_ok(), "generated packs are always valid");
        pack
    }
}

/// Rounds to 2 decimals so generated packs stay readable and render
/// identically through any number of parse/serialize round trips.
fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> Pack {
        Pack {
            name: "minimal".to_string(),
            description: "one FBS, defaults".to_string(),
            seed: 7,
            runs: 2,
            schemes: vec![Scheme::Proposed],
            topology: TopologySpec::SingleFbs { users: 3 },
            channel: ChannelSpec::default(),
            traffic: TrafficSpec {
                sequences: vec![Sequence::Bus, Sequence::Mobile, Sequence::Harbor],
                base_runs: 1,
                enhancement_runs: 0,
            },
            mobility: None,
            churn: None,
            faults: None,
        }
    }

    #[test]
    fn minimal_pack_round_trips_exactly() {
        let pack = minimal();
        let text = pack.to_json();
        let back = Pack::from_json(&text).expect("canonical output parses");
        assert_eq!(back, pack);
        assert_eq!(back.to_json(), text, "canonical form is a fixed point");
    }

    #[test]
    fn every_section_round_trips_exactly() {
        let mut pack = minimal();
        pack.channel.gops = Some(3);
        pack.channel.p01 = Some(0.45);
        pack.channel.prior_mode = Some(PriorMode::BeliefTracking);
        pack.channel.scalability = Some(Scalability::Fgs);
        pack.topology = TopologySpec::Geometric {
            mbs: (0.0, 120.0),
            fbss: vec![
                GeoFbs {
                    pos: (-45.0, 0.0),
                    radius: 28.0,
                },
                GeoFbs {
                    pos: (45.0, 0.0),
                    radius: 28.0,
                },
            ],
            users: vec![(-40.0, 2.0), (50.0, -3.0)],
        };
        pack.mobility = Some(MobilitySpec {
            step_m: 4.0,
            hysteresis_m: 3.0,
        });
        pack.churn = Some(ChurnSpec {
            slots: 40,
            arrivals: ArrivalSpec::FlashCrowd {
                base_rate: 0.2,
                burst_rate: 2.0,
                burst_start: 10,
                burst_slots: 8,
            },
            mean_hold_slots: 12.0,
            mbs_budget: 4.0,
            max_sessions: 16,
            pu_bursts: Some(PuBurstSpec {
                bursts: 2,
                mean_duration_slots: 6.0,
                utilization_boost: 0.2,
            }),
        });
        pack.faults = Some(FaultsSpec {
            jobs: 32,
            panics: 2,
            delays: 3,
            max_delay_ms: 4,
            resizes: 1,
            worker_min: 1,
            worker_max: 4,
        });
        let text = pack.to_json();
        let back = Pack::from_json(&text).expect("parses");
        assert_eq!(back, pack);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn unknown_fields_name_their_path() {
        let mut text = minimal().to_json();
        text = text.replace("\"channel\": {},", "\"channel\": {\"p99\": 0.5},");
        let err = Pack::from_json(&text).unwrap_err();
        assert_eq!(err.path, "channel.p99");
        assert!(err.message.contains("unknown field"), "{err}");
    }

    #[test]
    fn semantic_validation_names_the_field() {
        let mut pack = minimal();
        pack.channel.epsilon = Some(1.5); // a probability above 1
        let err = Pack::from_json(&pack.to_json()).unwrap_err();
        assert_eq!(err.path, "channel");
        assert!(err.message.contains("invalid SimConfig"), "{err}");

        let mut pack = minimal();
        pack.traffic.sequences.clear();
        let err = pack.validate().unwrap_err();
        assert_eq!(err.path, "traffic.sequences");
    }

    #[test]
    fn generated_packs_are_valid_and_round_trip() {
        for seed in [0u64, 1, 7, 42, 20110611, u64::MAX] {
            let pack = Pack::generate(seed);
            pack.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let text = pack.to_json();
            let back = Pack::from_json(&text)
                .unwrap_or_else(|e| panic!("seed {seed} reparse: {e}\n{text}"));
            assert_eq!(back, pack, "seed {seed}");
            assert_eq!(back.to_json(), text, "seed {seed}");
            // Same seed, same pack — generation is deterministic.
            assert_eq!(Pack::generate(seed), pack, "seed {seed}");
        }
    }

    #[test]
    fn scheme_and_sequence_tokens_cover_every_variant() {
        for s in Scheme::WITH_BOUND {
            assert_eq!(scheme_from(scheme_token(s), "x").unwrap(), s);
        }
        for s in Sequence::ALL {
            assert_eq!(sequence_from(sequence_token(s), "x").unwrap(), s);
        }
    }
}
