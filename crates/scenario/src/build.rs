//! From pack to runnable objects: geometry, [`Scenario`], batch
//! [`SimSession`], and serve-side [`SessionSpec`]s.
//!
//! The three paper topologies (`single_fbs`, `paper_fig1`,
//! `paper_fig5`) build through [`Scenario::uniform`] — the same
//! constructor the Rust helpers delegate to — so a pack expressing a
//! paper figure is **bit-identical** to the hand-written constructor,
//! a fact the conformance suite asserts on both engines. `random` and
//! `geometric` packs derive per-user SINRs from the radio link budget
//! instead.

use crate::pack::{Pack, TopologySpec};
use fcr_net::interference::InterferenceGraph;
use fcr_net::node::{CrUser, Fbs};
use fcr_net::{Point, Topology};
use fcr_serve::SessionSpec;
use fcr_sim::scenario::RadioParams;
use fcr_sim::{Scenario, SimSession};
use fcr_stats::rng::SeedSequence;
use std::sync::Arc;

/// The interference graphs behind the paper's uniform topologies.
fn paper_graph(spec: &TopologySpec) -> Option<InterferenceGraph> {
    use fcr_net::node::FbsId;
    match spec {
        TopologySpec::SingleFbs { .. } => Some(InterferenceGraph::new(1, &[])),
        TopologySpec::PaperFig1 { .. } => Some(InterferenceGraph::new(4, &[(FbsId(2), FbsId(3))])),
        TopologySpec::PaperFig5 { .. } => Some(InterferenceGraph::new(
            3,
            &[(FbsId(0), FbsId(1)), (FbsId(1), FbsId(2))],
        )),
        _ => None,
    }
}

impl Pack {
    /// The pack's geometric topology: cell positions, coverage disks,
    /// and user start positions. This is what the mobility model walks
    /// on. For the uniform paper kinds it is the matching
    /// `fcr_net::scenarios` geometry; for `random` it derives from the
    /// pack seed (stream `"topology"`).
    pub fn topology(&self) -> Topology {
        match &self.topology {
            TopologySpec::SingleFbs { users } => fcr_net::scenarios::single_fbs(*users as usize),
            TopologySpec::PaperFig1 { users_per_fbs } => {
                fcr_net::scenarios::paper_fig1(*users_per_fbs as usize)
            }
            TopologySpec::PaperFig5 { users_per_fbs } => {
                fcr_net::scenarios::paper_fig5_with_users(*users_per_fbs as usize)
            }
            TopologySpec::Random {
                fbss,
                users_per_fbs,
                side,
                coverage,
            } => {
                let mut rng = SeedSequence::new(self.seed).stream("topology", 0);
                fcr_net::scenarios::random_topology(
                    *fbss as usize,
                    *users_per_fbs as usize,
                    *side,
                    *coverage,
                    &mut rng,
                )
            }
            TopologySpec::Geometric { mbs, fbss, users } => Topology::new(
                Point::new(mbs.0, mbs.1),
                fbss.iter()
                    .map(|f| Fbs::new(Point::new(f.pos.0, f.pos.1), f.radius))
                    .collect(),
                users
                    .iter()
                    .map(|u| CrUser::new(Point::new(u.0, u.1)))
                    .collect(),
            ),
        }
    }

    /// The pack's [`Scenario`]. Paper kinds go through
    /// [`Scenario::uniform`] (bit-identical to the hand-written
    /// constructors); geometric kinds through
    /// [`Scenario::from_topology`] with the default radio link budget.
    pub fn scenario(&self) -> Scenario {
        let cfg = self.sim_config();
        if let Some(graph) = paper_graph(&self.topology) {
            let users_per_fbs = match &self.topology {
                TopologySpec::SingleFbs { users } => *users as usize,
                TopologySpec::PaperFig1 { users_per_fbs }
                | TopologySpec::PaperFig5 { users_per_fbs } => *users_per_fbs as usize,
                _ => unreachable!("paper_graph only matches uniform kinds"),
            };
            Scenario::uniform(graph, users_per_fbs, &self.traffic.sequences, &cfg)
        } else {
            Scenario::from_topology(
                &self.topology(),
                &self.traffic.sequences,
                &RadioParams::default(),
                &cfg,
            )
        }
    }

    /// The pack's batch session, fully configured: scenario, merged
    /// config, pack seed, and run count. Callers pick the scheme (and
    /// optionally a shard policy / trace mode) at `run` time.
    pub fn session(&self) -> SimSession {
        SimSession::new(self.scenario())
            .config(self.sim_config())
            .seed(self.seed)
            .runs(self.runs)
    }

    /// A serve-side session spec for ordinal `n` under this pack: the
    /// shared scenario, the merged config, the pack's traffic shape,
    /// and the seed stream `"session"`/`n` — so admission order never
    /// changes what any individual session computes.
    pub fn session_spec(&self, scenario: &Arc<Scenario>, n: u64) -> SessionSpec {
        SessionSpec::new(Arc::clone(scenario), self.sim_config())
            .seed(SeedSequence::new(self.seed).derive("session", n))
            .base_runs(self.traffic.base_runs)
            .enhancement_runs(self.traffic.enhancement_runs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::{ChannelSpec, TrafficSpec};
    use fcr_sim::config::SimConfig;
    use fcr_sim::Scheme;
    use fcr_video::sequences::Sequence;

    fn base(topology: TopologySpec, sequences: Vec<Sequence>) -> Pack {
        Pack {
            name: "t".into(),
            description: String::new(),
            seed: 11,
            runs: 1,
            schemes: vec![Scheme::Proposed],
            topology,
            channel: ChannelSpec::default(),
            traffic: TrafficSpec {
                sequences,
                base_runs: 1,
                enhancement_runs: 0,
            },
            mobility: None,
            churn: None,
            faults: None,
        }
    }

    #[test]
    fn paper_packs_reproduce_the_rust_constructors_exactly() {
        let cfg = SimConfig::default();
        let trio = Sequence::PAPER_TRIO.to_vec();
        let single = base(TopologySpec::SingleFbs { users: 3 }, trio.clone());
        assert_eq!(single.scenario(), Scenario::single_fbs(&cfg));
        let fig1 = base(TopologySpec::PaperFig1 { users_per_fbs: 3 }, trio.clone());
        assert_eq!(fig1.scenario(), Scenario::fig1(&cfg));
        let fig5 = base(TopologySpec::PaperFig5 { users_per_fbs: 3 }, trio);
        assert_eq!(fig5.scenario(), Scenario::interfering_fig5(&cfg));
    }

    #[test]
    fn random_topology_is_deterministic_in_the_pack_seed() {
        let pack = base(
            TopologySpec::Random {
                fbss: 3,
                users_per_fbs: 2,
                side: 200.0,
                coverage: 30.0,
            },
            vec![Sequence::Bus],
        );
        let a = pack.scenario();
        let b = pack.scenario();
        assert_eq!(a, b, "same pack, same scenario");
        assert_eq!(a.users.len(), 6);
        let mut other = pack.clone();
        other.seed = 12;
        assert_ne!(other.scenario(), a, "different seed, different placement");
    }

    #[test]
    fn geometric_packs_build_explicit_topologies() {
        use crate::pack::GeoFbs;
        let pack = base(
            TopologySpec::Geometric {
                mbs: (0.0, 120.0),
                fbss: vec![
                    GeoFbs {
                        pos: (-45.0, 0.0),
                        radius: 28.0,
                    },
                    GeoFbs {
                        pos: (45.0, 0.0),
                        radius: 28.0,
                    },
                ],
                users: vec![(-40.0, 2.0), (48.0, -3.0), (0.0, 60.0)],
            },
            vec![Sequence::Bus, Sequence::Mobile],
        );
        let topo = pack.topology();
        assert_eq!(topo.num_fbss(), 2);
        assert_eq!(topo.num_users(), 3);
        let scen = pack.scenario();
        assert_eq!(scen.users.len(), 3);
        // Users cycle the traffic mix globally.
        assert_eq!(scen.users[0].sequence, Sequence::Bus);
        assert_eq!(scen.users[1].sequence, Sequence::Mobile);
        assert_eq!(scen.users[2].sequence, Sequence::Bus);
    }

    #[test]
    fn session_specs_derive_per_ordinal_seeds() {
        let pack = base(TopologySpec::SingleFbs { users: 2 }, vec![Sequence::Bus]);
        let scenario = Arc::new(pack.scenario());
        let a = pack.session_spec(&scenario, 0);
        let b = pack.session_spec(&scenario, 1);
        assert_ne!(a.seed, b.seed);
        assert_eq!(a.seed, pack.session_spec(&scenario, 0).seed);
        assert_eq!(a.base_runs, 1);
        assert_eq!(a.enhancement_runs, 0);
    }
}
