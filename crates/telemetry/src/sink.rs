//! The process-wide telemetry sink: per-phase timing aggregation, the
//! solver-convergence channel, and named counters.
//!
//! All hot-path updates are relaxed atomics (timings) or a short
//! mutex-guarded push (convergence records); snapshots can be taken
//! from any thread mid-flight.

use crate::export;
use crate::phase::Phase;
use crate::record::{GreedyRecord, ShardRecord, SolveRecord, SpanRecord};
use fcr_runtime::histogram::AtomicHistogram;
use fcr_runtime::{HistogramSnapshot, ResizeEvent};
use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Cap on stored convergence records (per channel). Beyond it new
/// records are counted as dropped instead of growing memory without
/// bound during large sweeps.
pub const MAX_RECORDS: usize = 65_536;

/// Live per-phase timing statistics.
#[derive(Debug, Default)]
pub(crate) struct PhaseStats {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
    wall: AtomicHistogram,
}

impl PhaseStats {
    fn record(&self, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        self.wall.record(elapsed);
    }

    fn snapshot(&self) -> PhaseSnapshot {
        PhaseSnapshot {
            count: self.count.load(Ordering::Relaxed),
            total_ns: self.total_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
            wall: self.wall.snapshot(),
        }
    }

    /// Snapshot-and-reset: scalar fields are swapped to zero (exact —
    /// a concurrent record lands in one delta or the next), the
    /// histogram is snapshot-then-reset (a record racing the reset may
    /// miss the bucket counts of one delta; the swapped scalars stay
    /// authoritative).
    fn drain(&self) -> PhaseSnapshot {
        let snap = PhaseSnapshot {
            count: self.count.swap(0, Ordering::Relaxed),
            total_ns: self.total_ns.swap(0, Ordering::Relaxed),
            max_ns: self.max_ns.swap(0, Ordering::Relaxed),
            wall: self.wall.snapshot(),
        };
        self.wall.reset();
        snap
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
        self.wall.reset();
    }
}

/// A point-in-time copy of one phase's timing statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSnapshot {
    /// Completed spans of this phase.
    pub count: u64,
    /// Total wall time across spans (ns).
    pub total_ns: u64,
    /// Longest single span (ns).
    pub max_ns: u64,
    /// Wall-time distribution (µs buckets, reused from `fcr-runtime`).
    pub wall: HistogramSnapshot,
}

impl PhaseSnapshot {
    /// Mean span duration in nanoseconds (0 when no spans completed).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// The live-stream half of the sink: a line-oriented writer that gets
/// every retained record as it lands, flushed per line so a tail never
/// sees a torn half-record.
struct StreamWriter(Box<dyn Write + Send>);

impl std::fmt::Debug for StreamWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("StreamWriter(..)")
    }
}

/// The telemetry sink: one lives as the process-wide global (see
/// [`crate::global`]), but sinks are ordinary values and can be built
/// standalone in tests.
#[derive(Debug, Default)]
pub struct TelemetrySink {
    phases: [PhaseStats; 6],
    solves: Mutex<Vec<SolveRecord>>,
    dropped_solves: AtomicU64,
    greedy: Mutex<Vec<GreedyRecord>>,
    dropped_greedy: AtomicU64,
    shards: Mutex<Vec<ShardRecord>>,
    dropped_shards: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
    dropped_spans: AtomicU64,
    resizes: Mutex<Vec<ResizeEvent>>,
    counters: Mutex<BTreeMap<String, u64>>,
    /// Keep-1-in-N sampling divisor for the per-record channels
    /// (0 and 1 both mean "keep everything").
    sample_every: AtomicU64,
    /// Per-channel arrival sequence counters driving the sampler.
    solve_seq: AtomicU64,
    greedy_seq: AtomicU64,
    shard_seq: AtomicU64,
    span_seq: AtomicU64,
    stream: Mutex<Option<StreamWriter>>,
    stream_lines: AtomicU64,
    stream_errors: AtomicU64,
}

impl TelemetrySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets keep-1-in-`every` sampling on the per-record channels
    /// (solves, greedy, shards, span events). `0` and `1` both keep
    /// everything. Sampling is what makes always-on capture affordable:
    /// skipped records cost one atomic increment and are *not* counted
    /// as dropped — only cap overflow is. Aggregate phase timings,
    /// counters, and resize events are never sampled.
    pub fn set_sampling(&self, every: u64) {
        self.sample_every.store(every.max(1), Ordering::Relaxed);
    }

    /// The current sampling divisor (1 = keep everything).
    pub fn sampling(&self) -> u64 {
        self.sample_every.load(Ordering::Relaxed).max(1)
    }

    /// `true` when this arrival is retained under the sampling divisor
    /// (the first arrival on each channel is always retained).
    fn sampled(&self, seq: &AtomicU64) -> bool {
        let every = self.sampling();
        seq.fetch_add(1, Ordering::Relaxed).is_multiple_of(every)
    }

    /// Attaches a live stream: every retained record from here on is
    /// also rendered as its JSONL line and written + flushed
    /// immediately, so `tail -f` on the receiving file never sees a
    /// torn line. Replaces (and flushes out) any previous stream. A
    /// write/flush error detaches the stream and increments the
    /// `stream_errors` diagnostic instead of panicking.
    pub fn attach_stream(&self, writer: Box<dyn Write + Send>) {
        let mut slot = lock(&self.stream);
        if let Some(mut old) = slot.take() {
            let _ = old.0.flush();
        }
        *slot = Some(StreamWriter(writer));
    }

    /// Flushes and drops the attached stream writer, if any.
    pub fn detach_stream(&self) {
        if let Some(mut w) = lock(&self.stream).take() {
            let _ = w.0.flush();
        }
    }

    /// Flushes the attached stream writer, if any. Writes are already
    /// flushed per record; this exists so callers handing the file to a
    /// reader can force the OS-buffer handoff explicitly.
    pub fn flush(&self) {
        if let Some(w) = lock(&self.stream).as_mut() {
            if w.0.flush().is_err() {
                self.stream_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Writes one already-rendered JSONL line to the stream (newline
    /// appended, flushed). Errors detach the writer so a dead pipe
    /// costs one diagnostic increment, not an error storm.
    fn stream_line(&self, line: &str) {
        let mut slot = lock(&self.stream);
        let Some(w) = slot.as_mut() else {
            return;
        };
        let ok = w.0.write_all(line.as_bytes()).is_ok()
            && w.0.write_all(b"\n").is_ok()
            && w.0.flush().is_ok();
        if ok {
            self.stream_lines.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stream_errors.fetch_add(1, Ordering::Relaxed);
            *slot = None;
        }
    }

    /// Records one completed span of `phase`.
    pub fn record_span(&self, phase: Phase, elapsed: Duration) {
        self.phases[phase.index()].record(elapsed);
    }

    /// Appends one span *event* (an individual span occurrence with its
    /// parent edge), sampled and capped like
    /// [`TelemetrySink::record_solve`].
    pub fn record_span_event(&self, record: SpanRecord) {
        if !self.sampled(&self.span_seq) {
            return;
        }
        self.stream_line(&export::span_line(&record));
        let mut spans = lock(&self.spans);
        if spans.len() < MAX_RECORDS {
            spans.push(record);
        } else {
            drop(spans);
            self.dropped_spans.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Appends one dual-solver convergence record (capped at
    /// [`MAX_RECORDS`]; overflow increments the dropped counter). The
    /// record still reaches an attached stream when the in-memory cap
    /// is full — streaming is how capture outlives the cap.
    pub fn record_solve(&self, record: SolveRecord) {
        if !self.sampled(&self.solve_seq) {
            return;
        }
        self.stream_line(&export::solve_line(&record));
        let mut solves = lock(&self.solves);
        if solves.len() < MAX_RECORDS {
            solves.push(record);
        } else {
            drop(solves);
            self.dropped_solves.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Appends one greedy-allocation record (eq. (23) bookkeeping),
    /// sampled and capped like [`TelemetrySink::record_solve`].
    pub fn record_greedy(&self, record: GreedyRecord) {
        if !self.sampled(&self.greedy_seq) {
            return;
        }
        self.stream_line(&export::greedy_line(&record));
        let mut greedy = lock(&self.greedy);
        if greedy.len() < MAX_RECORDS {
            greedy.push(record);
        } else {
            drop(greedy);
            self.dropped_greedy.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Appends one executed-shard record (an intra-run slot window run
    /// as a pool job), sampled and capped like
    /// [`TelemetrySink::record_solve`].
    pub fn record_shard(&self, record: ShardRecord) {
        if !self.sampled(&self.shard_seq) {
            return;
        }
        self.stream_line(&export::shard_line(&record));
        let mut shards = lock(&self.shards);
        if shards.len() < MAX_RECORDS {
            shards.push(record);
        } else {
            drop(shards);
            self.dropped_shards.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Appends one elastic-pool resize event (resizes are rare — a few
    /// per batch at most — so they are stored uncapped and never
    /// sampled).
    pub fn record_resize(&self, event: ResizeEvent) {
        self.stream_line(&export::resize_line(&event));
        lock(&self.resizes).push(event);
    }

    /// Adds `n` to the named counter (registered on first use).
    pub fn incr(&self, name: &str, n: u64) {
        let mut counters = lock(&self.counters);
        *counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// A point-in-time copy of everything the sink has aggregated.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            phases: Phase::ALL
                .iter()
                .map(|p| (*p, self.phases[p.index()].snapshot()))
                .collect(),
            solves: lock(&self.solves).clone(),
            dropped_solves: self.dropped_solves.load(Ordering::Relaxed),
            greedy: lock(&self.greedy).clone(),
            dropped_greedy: self.dropped_greedy.load(Ordering::Relaxed),
            shards: lock(&self.shards).clone(),
            dropped_shards: self.dropped_shards.load(Ordering::Relaxed),
            spans: lock(&self.spans).clone(),
            dropped_spans: self.dropped_spans.load(Ordering::Relaxed),
            resizes: lock(&self.resizes).clone(),
            counters: lock(&self.counters)
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            stream_lines: self.stream_lines.load(Ordering::Relaxed),
            stream_errors: self.stream_errors.load(Ordering::Relaxed),
        }
    }

    /// Takes everything aggregated so far *and resets the sink* in one
    /// step — the snapshot-and-reset primitive a long-running service
    /// uses to publish periodic deltas with bounded memory. Vectors are
    /// moved out (not cloned) and dropped/stream counters are swapped
    /// to zero, so no record is counted twice across consecutive
    /// drains; records arriving concurrently land in either this delta
    /// or the next, never in both. The sampling divisor and any
    /// attached stream survive a drain.
    pub fn drain(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            phases: Phase::ALL
                .iter()
                .map(|p| (*p, self.phases[p.index()].drain()))
                .collect(),
            solves: std::mem::take(&mut *lock(&self.solves)),
            dropped_solves: self.dropped_solves.swap(0, Ordering::Relaxed),
            greedy: std::mem::take(&mut *lock(&self.greedy)),
            dropped_greedy: self.dropped_greedy.swap(0, Ordering::Relaxed),
            shards: std::mem::take(&mut *lock(&self.shards)),
            dropped_shards: self.dropped_shards.swap(0, Ordering::Relaxed),
            spans: std::mem::take(&mut *lock(&self.spans)),
            dropped_spans: self.dropped_spans.swap(0, Ordering::Relaxed),
            resizes: std::mem::take(&mut *lock(&self.resizes)),
            counters: std::mem::take(&mut *lock(&self.counters))
                .into_iter()
                .collect(),
            stream_lines: self.stream_lines.swap(0, Ordering::Relaxed),
            stream_errors: self.stream_errors.swap(0, Ordering::Relaxed),
        }
    }

    /// Clears every aggregate back to empty (used between experiment
    /// sections and in tests). The sampling divisor and attached stream
    /// are configuration, not data, and survive; the sampling sequence
    /// counters rewind so a fresh capture samples deterministically.
    pub fn reset(&self) {
        for p in &self.phases {
            p.reset();
        }
        lock(&self.solves).clear();
        self.dropped_solves.store(0, Ordering::Relaxed);
        lock(&self.greedy).clear();
        self.dropped_greedy.store(0, Ordering::Relaxed);
        lock(&self.shards).clear();
        self.dropped_shards.store(0, Ordering::Relaxed);
        lock(&self.spans).clear();
        self.dropped_spans.store(0, Ordering::Relaxed);
        lock(&self.resizes).clear();
        lock(&self.counters).clear();
        self.solve_seq.store(0, Ordering::Relaxed);
        self.greedy_seq.store(0, Ordering::Relaxed);
        self.shard_seq.store(0, Ordering::Relaxed);
        self.span_seq.store(0, Ordering::Relaxed);
        self.stream_lines.store(0, Ordering::Relaxed);
        self.stream_errors.store(0, Ordering::Relaxed);
    }
}

/// Locks a sink mutex, surviving poisoning (a panicked recorder must
/// not take telemetry down with it — the data is diagnostic).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A point-in-time copy of a [`TelemetrySink`].
///
/// Not `PartialEq`: [`ResizeEvent`] carries an `f64` utilization
/// measurement and deliberately opts out of float equality; tests
/// compare the fields of interest directly.
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    /// Per-phase timing statistics, in pipeline order.
    pub phases: Vec<(Phase, PhaseSnapshot)>,
    /// Dual-solver convergence records, in completion order.
    pub solves: Vec<SolveRecord>,
    /// Solve records dropped past [`MAX_RECORDS`].
    pub dropped_solves: u64,
    /// Greedy-allocation records, in completion order.
    pub greedy: Vec<GreedyRecord>,
    /// Greedy records dropped past [`MAX_RECORDS`].
    pub dropped_greedy: u64,
    /// Executed-shard records, in completion order.
    pub shards: Vec<ShardRecord>,
    /// Shard records dropped past [`MAX_RECORDS`].
    pub dropped_shards: u64,
    /// Span events (opt-in, see [`crate::set_span_events`]), in
    /// completion order.
    pub spans: Vec<SpanRecord>,
    /// Span events dropped past [`MAX_RECORDS`].
    pub dropped_spans: u64,
    /// Elastic-pool resize events, in decision order.
    pub resizes: Vec<ResizeEvent>,
    /// Named counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// JSONL lines successfully written to an attached live stream.
    pub stream_lines: u64,
    /// Live-stream write/flush failures (a failure detaches the
    /// stream).
    pub stream_errors: u64,
}

impl TelemetrySnapshot {
    /// The timing snapshot of one phase.
    pub fn phase(&self, phase: Phase) -> &PhaseSnapshot {
        &self.phases[phase.index()].1
    }

    /// Value of a named counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Fraction of solves that converged before the iteration cap
    /// (`None` when no solves were recorded).
    pub fn convergence_rate(&self) -> Option<f64> {
        if self.solves.is_empty() {
            return None;
        }
        let converged = self.solves.iter().filter(|s| s.converged).count();
        Some(converged as f64 / self.solves.len() as f64)
    }

    /// Mean dual-solver iterations per solve (`None` when empty).
    pub fn mean_iterations(&self) -> Option<f64> {
        if self.solves.is_empty() {
            return None;
        }
        let total: usize = self.solves.iter().map(|s| s.iterations).sum();
        Some(total as f64 / self.solves.len() as f64)
    }

    /// Total records of **any** kind dropped past [`MAX_RECORDS`]
    /// (solves + greedy + shards + span events). Non-zero means the capture window
    /// outgrew the cap and the per-record channels are truncated; the
    /// aggregate phase/counter statistics remain complete. Surfaced in
    /// the JSONL `meta` line and in `telemetry_table`, so capped
    /// captures are never silent.
    pub fn records_dropped(&self) -> u64 {
        self.dropped_solves + self.dropped_greedy + self.dropped_shards + self.dropped_spans
    }

    /// Mean wall time per executed shard in nanoseconds (`None` when no
    /// shards were recorded).
    pub fn mean_shard_wall_ns(&self) -> Option<f64> {
        if self.shards.is_empty() {
            return None;
        }
        let total: u64 = self.shards.iter().map(|s| s.wall_ns).sum();
        Some(total as f64 / self.shards.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_aggregate_per_phase() {
        let sink = TelemetrySink::new();
        sink.record_span(Phase::Sensing, Duration::from_micros(10));
        sink.record_span(Phase::Sensing, Duration::from_micros(30));
        sink.record_span(Phase::Solver, Duration::from_micros(5));
        let snap = sink.snapshot();
        let sensing = snap.phase(Phase::Sensing);
        assert_eq!(sensing.count, 2);
        assert_eq!(sensing.total_ns, 40_000);
        assert_eq!(sensing.max_ns, 30_000);
        assert!((sensing.mean_ns() - 20_000.0).abs() < 1e-9);
        assert_eq!(sensing.wall.count, 2);
        assert_eq!(snap.phase(Phase::Solver).count, 1);
        assert_eq!(snap.phase(Phase::Fusion).count, 0);
        assert_eq!(snap.phase(Phase::Fusion).mean_ns(), 0.0);
    }

    #[test]
    fn solve_and_greedy_records_accumulate_and_reset() {
        let sink = TelemetrySink::new();
        sink.record_solve(SolveRecord {
            iterations: 120,
            converged: true,
            residual: 1e-15,
            lambda: vec![0.1, 0.2],
        });
        sink.record_solve(SolveRecord {
            iterations: 5_000,
            converged: false,
            residual: 1e-3,
            lambda: vec![0.3, 0.4],
        });
        sink.record_greedy(GreedyRecord {
            steps: 4,
            gain: 2.0,
            upper_bound_gain: 3.5,
            gap_terms: vec![1.0, 0.5],
        });
        sink.incr("greedy.inner_solves", 7);
        sink.incr("greedy.inner_solves", 3);
        let snap = sink.snapshot();
        assert_eq!(snap.solves.len(), 2);
        assert_eq!(snap.greedy.len(), 1);
        assert_eq!(snap.convergence_rate(), Some(0.5));
        assert_eq!(snap.mean_iterations(), Some(2_560.0));
        assert_eq!(snap.counter("greedy.inner_solves"), Some(10));
        assert_eq!(snap.counter("missing"), None);
        sink.reset();
        let empty = snap_is_empty(&sink.snapshot());
        assert!(empty);
    }

    fn snap_is_empty(s: &TelemetrySnapshot) -> bool {
        s.solves.is_empty()
            && s.greedy.is_empty()
            && s.shards.is_empty()
            && s.spans.is_empty()
            && s.resizes.is_empty()
            && s.counters.is_empty()
            && s.records_dropped() == 0
            && s.phases.iter().all(|(_, p)| p.count == 0)
            && s.convergence_rate().is_none()
            && s.mean_iterations().is_none()
            && s.mean_shard_wall_ns().is_none()
    }

    #[test]
    fn shard_and_resize_records_accumulate_and_reset() {
        let sink = TelemetrySink::new();
        sink.record_shard(ShardRecord {
            run: 0,
            window: 0,
            gop_start: 0,
            gops: 5,
            wall_ns: 1_000,
        });
        sink.record_shard(ShardRecord {
            run: 0,
            window: 1,
            gop_start: 5,
            gops: 5,
            wall_ns: 3_000,
        });
        sink.record_resize(ResizeEvent {
            from: 2,
            to: 4,
            queue_depth: 9,
            utilization: 0.9,
            trigger: fcr_runtime::ResizeTrigger::Manual,
        });
        let snap = sink.snapshot();
        assert_eq!(snap.shards.len(), 2);
        assert_eq!(snap.mean_shard_wall_ns(), Some(2_000.0));
        assert_eq!(snap.resizes.len(), 1);
        // Field-wise comparison: ResizeEvent has no PartialEq (f64).
        assert_eq!(snap.resizes[0].from, 2);
        assert_eq!(snap.resizes[0].to, 4);
        assert_eq!(snap.resizes[0].queue_depth, 9);
        assert_eq!(snap.resizes[0].trigger, fcr_runtime::ResizeTrigger::Manual);
        sink.reset();
        assert!(snap_is_empty(&sink.snapshot()));
    }

    /// A `Write` handing bytes to a shared buffer, so tests can watch
    /// what the live stream emitted while the sink still owns the
    /// writer.
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// A writer that always fails, to exercise stream-error handling.
    struct BrokenPipe;

    impl Write for BrokenPipe {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("broken"))
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Err(std::io::Error::other("broken"))
        }
    }

    fn shard(window: u64) -> ShardRecord {
        ShardRecord {
            run: 0,
            window,
            gop_start: 0,
            gops: 1,
            wall_ns: 10,
        }
    }

    #[test]
    fn sampling_keeps_one_in_n_without_counting_drops() {
        let sink = TelemetrySink::new();
        sink.set_sampling(4);
        assert_eq!(sink.sampling(), 4);
        for w in 0..10 {
            sink.record_shard(shard(w));
        }
        let snap = sink.snapshot();
        // Arrivals 0, 4, 8 are retained; the skipped ones are neither
        // stored nor counted as dropped.
        assert_eq!(
            snap.shards.iter().map(|s| s.window).collect::<Vec<_>>(),
            vec![0, 4, 8]
        );
        assert_eq!(snap.records_dropped(), 0);
        // 0 resets to keep-everything.
        sink.set_sampling(0);
        assert_eq!(sink.sampling(), 1);
    }

    #[test]
    fn span_events_accumulate_cap_and_reset() {
        let sink = TelemetrySink::new();
        for i in 0..MAX_RECORDS as u64 + 2 {
            sink.record_span_event(SpanRecord {
                id: i + 1,
                parent: None,
                phase: Phase::Sensing,
                wall_ns: 5,
            });
        }
        let snap = sink.snapshot();
        assert_eq!(snap.spans.len(), MAX_RECORDS);
        assert_eq!(snap.dropped_spans, 2);
        assert_eq!(snap.records_dropped(), 2);
        sink.reset();
        assert!(snap_is_empty(&sink.snapshot()));
    }

    #[test]
    fn attached_stream_gets_each_record_as_a_complete_line() {
        let sink = TelemetrySink::new();
        let buf = SharedBuf::default();
        sink.attach_stream(Box::new(buf.clone()));
        sink.record_shard(shard(3));
        sink.record_solve(SolveRecord {
            iterations: 7,
            converged: true,
            residual: 0.0,
            lambda: vec![0.5],
        });
        sink.record_resize(ResizeEvent {
            from: 1,
            to: 2,
            queue_depth: 0,
            utilization: 0.1,
            trigger: fcr_runtime::ResizeTrigger::Loop,
        });
        // Every line is already complete and flushed: no torn tails.
        let out = buf.contents();
        assert!(out.ends_with('\n'), "unterminated stream tail: {out:?}");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"type\":\"shard\""));
        assert!(lines[1].contains("\"type\":\"solve\""));
        assert!(lines[2].contains("\"type\":\"resize\""));
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert_eq!(sink.snapshot().stream_lines, 3);
        sink.detach_stream();
        sink.record_shard(shard(4));
        assert_eq!(buf.contents().lines().count(), 3, "detached stream grew");
    }

    #[test]
    fn stream_errors_detach_loudly_instead_of_storming() {
        let sink = TelemetrySink::new();
        sink.attach_stream(Box::new(BrokenPipe));
        sink.record_shard(shard(0));
        sink.record_shard(shard(1));
        let snap = sink.snapshot();
        // First write fails and detaches; the second is a plain store.
        assert_eq!(snap.stream_errors, 1);
        assert_eq!(snap.stream_lines, 0);
        assert_eq!(snap.shards.len(), 2, "records still stored on error");
        sink.flush(); // no-op once detached
        assert_eq!(sink.snapshot().stream_errors, 1);
    }

    #[test]
    fn drain_moves_the_delta_out_exactly_once() {
        let sink = TelemetrySink::new();
        sink.record_span(Phase::Solver, Duration::from_micros(4));
        sink.record_shard(shard(0));
        sink.incr("serve.slots", 2);
        let first = sink.drain();
        assert_eq!(first.phase(Phase::Solver).count, 1);
        assert_eq!(first.shards.len(), 1);
        assert_eq!(first.counter("serve.slots"), Some(2));
        // The sink is now empty; a second drain sees only new data.
        sink.incr("serve.slots", 5);
        let second = sink.drain();
        assert_eq!(second.phase(Phase::Solver).count, 0);
        assert!(second.shards.is_empty());
        assert_eq!(second.counter("serve.slots"), Some(5));
        assert!(snap_is_empty(&sink.snapshot()));
    }

    #[test]
    fn record_cap_counts_drops() {
        let sink = TelemetrySink::new();
        for _ in 0..MAX_RECORDS + 3 {
            sink.record_solve(SolveRecord {
                iterations: 1,
                converged: true,
                residual: 0.0,
                lambda: Vec::new(),
            });
        }
        let snap = sink.snapshot();
        assert_eq!(snap.solves.len(), MAX_RECORDS);
        assert_eq!(snap.dropped_solves, 3);
        assert_eq!(snap.records_dropped(), 3);
    }
}
