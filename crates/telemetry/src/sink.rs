//! The process-wide telemetry sink: per-phase timing aggregation, the
//! solver-convergence channel, and named counters.
//!
//! All hot-path updates are relaxed atomics (timings) or a short
//! mutex-guarded push (convergence records); snapshots can be taken
//! from any thread mid-flight.

use crate::phase::Phase;
use crate::record::{GreedyRecord, ShardRecord, SolveRecord};
use fcr_runtime::histogram::AtomicHistogram;
use fcr_runtime::{HistogramSnapshot, ResizeEvent};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Cap on stored convergence records (per channel). Beyond it new
/// records are counted as dropped instead of growing memory without
/// bound during large sweeps.
pub const MAX_RECORDS: usize = 65_536;

/// Live per-phase timing statistics.
#[derive(Debug, Default)]
pub(crate) struct PhaseStats {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
    wall: AtomicHistogram,
}

impl PhaseStats {
    fn record(&self, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        self.wall.record(elapsed);
    }

    fn snapshot(&self) -> PhaseSnapshot {
        PhaseSnapshot {
            count: self.count.load(Ordering::Relaxed),
            total_ns: self.total_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
            wall: self.wall.snapshot(),
        }
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
        self.wall.reset();
    }
}

/// A point-in-time copy of one phase's timing statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSnapshot {
    /// Completed spans of this phase.
    pub count: u64,
    /// Total wall time across spans (ns).
    pub total_ns: u64,
    /// Longest single span (ns).
    pub max_ns: u64,
    /// Wall-time distribution (µs buckets, reused from `fcr-runtime`).
    pub wall: HistogramSnapshot,
}

impl PhaseSnapshot {
    /// Mean span duration in nanoseconds (0 when no spans completed).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// The telemetry sink: one lives as the process-wide global (see
/// [`crate::global`]), but sinks are ordinary values and can be built
/// standalone in tests.
#[derive(Debug, Default)]
pub struct TelemetrySink {
    phases: [PhaseStats; 6],
    solves: Mutex<Vec<SolveRecord>>,
    dropped_solves: AtomicU64,
    greedy: Mutex<Vec<GreedyRecord>>,
    dropped_greedy: AtomicU64,
    shards: Mutex<Vec<ShardRecord>>,
    dropped_shards: AtomicU64,
    resizes: Mutex<Vec<ResizeEvent>>,
    counters: Mutex<BTreeMap<String, u64>>,
}

impl TelemetrySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed span of `phase`.
    pub fn record_span(&self, phase: Phase, elapsed: Duration) {
        self.phases[phase.index()].record(elapsed);
    }

    /// Appends one dual-solver convergence record (capped at
    /// [`MAX_RECORDS`]; overflow increments the dropped counter).
    pub fn record_solve(&self, record: SolveRecord) {
        let mut solves = lock(&self.solves);
        if solves.len() < MAX_RECORDS {
            solves.push(record);
        } else {
            drop(solves);
            self.dropped_solves.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Appends one greedy-allocation record (eq. (23) bookkeeping),
    /// capped like [`TelemetrySink::record_solve`].
    pub fn record_greedy(&self, record: GreedyRecord) {
        let mut greedy = lock(&self.greedy);
        if greedy.len() < MAX_RECORDS {
            greedy.push(record);
        } else {
            drop(greedy);
            self.dropped_greedy.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Appends one executed-shard record (an intra-run slot window run
    /// as a pool job), capped like [`TelemetrySink::record_solve`].
    pub fn record_shard(&self, record: ShardRecord) {
        let mut shards = lock(&self.shards);
        if shards.len() < MAX_RECORDS {
            shards.push(record);
        } else {
            drop(shards);
            self.dropped_shards.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Appends one elastic-pool resize event (resizes are rare — a few
    /// per batch at most — so they are stored uncapped).
    pub fn record_resize(&self, event: ResizeEvent) {
        lock(&self.resizes).push(event);
    }

    /// Adds `n` to the named counter (registered on first use).
    pub fn incr(&self, name: &str, n: u64) {
        let mut counters = lock(&self.counters);
        *counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// A point-in-time copy of everything the sink has aggregated.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            phases: Phase::ALL
                .iter()
                .map(|p| (*p, self.phases[p.index()].snapshot()))
                .collect(),
            solves: lock(&self.solves).clone(),
            dropped_solves: self.dropped_solves.load(Ordering::Relaxed),
            greedy: lock(&self.greedy).clone(),
            dropped_greedy: self.dropped_greedy.load(Ordering::Relaxed),
            shards: lock(&self.shards).clone(),
            dropped_shards: self.dropped_shards.load(Ordering::Relaxed),
            resizes: lock(&self.resizes).clone(),
            counters: lock(&self.counters)
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
        }
    }

    /// Clears every aggregate back to empty (used between experiment
    /// sections and in tests).
    pub fn reset(&self) {
        for p in &self.phases {
            p.reset();
        }
        lock(&self.solves).clear();
        self.dropped_solves.store(0, Ordering::Relaxed);
        lock(&self.greedy).clear();
        self.dropped_greedy.store(0, Ordering::Relaxed);
        lock(&self.shards).clear();
        self.dropped_shards.store(0, Ordering::Relaxed);
        lock(&self.resizes).clear();
        lock(&self.counters).clear();
    }
}

/// Locks a sink mutex, surviving poisoning (a panicked recorder must
/// not take telemetry down with it — the data is diagnostic).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A point-in-time copy of a [`TelemetrySink`].
///
/// Not `PartialEq`: [`ResizeEvent`] carries an `f64` utilization
/// measurement and deliberately opts out of float equality; tests
/// compare the fields of interest directly.
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    /// Per-phase timing statistics, in pipeline order.
    pub phases: Vec<(Phase, PhaseSnapshot)>,
    /// Dual-solver convergence records, in completion order.
    pub solves: Vec<SolveRecord>,
    /// Solve records dropped past [`MAX_RECORDS`].
    pub dropped_solves: u64,
    /// Greedy-allocation records, in completion order.
    pub greedy: Vec<GreedyRecord>,
    /// Greedy records dropped past [`MAX_RECORDS`].
    pub dropped_greedy: u64,
    /// Executed-shard records, in completion order.
    pub shards: Vec<ShardRecord>,
    /// Shard records dropped past [`MAX_RECORDS`].
    pub dropped_shards: u64,
    /// Elastic-pool resize events, in decision order.
    pub resizes: Vec<ResizeEvent>,
    /// Named counters, sorted by name.
    pub counters: Vec<(String, u64)>,
}

impl TelemetrySnapshot {
    /// The timing snapshot of one phase.
    pub fn phase(&self, phase: Phase) -> &PhaseSnapshot {
        &self.phases[phase.index()].1
    }

    /// Value of a named counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Fraction of solves that converged before the iteration cap
    /// (`None` when no solves were recorded).
    pub fn convergence_rate(&self) -> Option<f64> {
        if self.solves.is_empty() {
            return None;
        }
        let converged = self.solves.iter().filter(|s| s.converged).count();
        Some(converged as f64 / self.solves.len() as f64)
    }

    /// Mean dual-solver iterations per solve (`None` when empty).
    pub fn mean_iterations(&self) -> Option<f64> {
        if self.solves.is_empty() {
            return None;
        }
        let total: usize = self.solves.iter().map(|s| s.iterations).sum();
        Some(total as f64 / self.solves.len() as f64)
    }

    /// Total records of **any** kind dropped past [`MAX_RECORDS`]
    /// (solves + greedy + shards). Non-zero means the capture window
    /// outgrew the cap and the per-record channels are truncated; the
    /// aggregate phase/counter statistics remain complete. Surfaced in
    /// the JSONL `meta` line and in `telemetry_table`, so capped
    /// captures are never silent.
    pub fn records_dropped(&self) -> u64 {
        self.dropped_solves + self.dropped_greedy + self.dropped_shards
    }

    /// Mean wall time per executed shard in nanoseconds (`None` when no
    /// shards were recorded).
    pub fn mean_shard_wall_ns(&self) -> Option<f64> {
        if self.shards.is_empty() {
            return None;
        }
        let total: u64 = self.shards.iter().map(|s| s.wall_ns).sum();
        Some(total as f64 / self.shards.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_aggregate_per_phase() {
        let sink = TelemetrySink::new();
        sink.record_span(Phase::Sensing, Duration::from_micros(10));
        sink.record_span(Phase::Sensing, Duration::from_micros(30));
        sink.record_span(Phase::Solver, Duration::from_micros(5));
        let snap = sink.snapshot();
        let sensing = snap.phase(Phase::Sensing);
        assert_eq!(sensing.count, 2);
        assert_eq!(sensing.total_ns, 40_000);
        assert_eq!(sensing.max_ns, 30_000);
        assert!((sensing.mean_ns() - 20_000.0).abs() < 1e-9);
        assert_eq!(sensing.wall.count, 2);
        assert_eq!(snap.phase(Phase::Solver).count, 1);
        assert_eq!(snap.phase(Phase::Fusion).count, 0);
        assert_eq!(snap.phase(Phase::Fusion).mean_ns(), 0.0);
    }

    #[test]
    fn solve_and_greedy_records_accumulate_and_reset() {
        let sink = TelemetrySink::new();
        sink.record_solve(SolveRecord {
            iterations: 120,
            converged: true,
            residual: 1e-15,
            lambda: vec![0.1, 0.2],
        });
        sink.record_solve(SolveRecord {
            iterations: 5_000,
            converged: false,
            residual: 1e-3,
            lambda: vec![0.3, 0.4],
        });
        sink.record_greedy(GreedyRecord {
            steps: 4,
            gain: 2.0,
            upper_bound_gain: 3.5,
            gap_terms: vec![1.0, 0.5],
        });
        sink.incr("greedy.inner_solves", 7);
        sink.incr("greedy.inner_solves", 3);
        let snap = sink.snapshot();
        assert_eq!(snap.solves.len(), 2);
        assert_eq!(snap.greedy.len(), 1);
        assert_eq!(snap.convergence_rate(), Some(0.5));
        assert_eq!(snap.mean_iterations(), Some(2_560.0));
        assert_eq!(snap.counter("greedy.inner_solves"), Some(10));
        assert_eq!(snap.counter("missing"), None);
        sink.reset();
        let empty = snap_is_empty(&sink.snapshot());
        assert!(empty);
    }

    fn snap_is_empty(s: &TelemetrySnapshot) -> bool {
        s.solves.is_empty()
            && s.greedy.is_empty()
            && s.shards.is_empty()
            && s.resizes.is_empty()
            && s.counters.is_empty()
            && s.phases.iter().all(|(_, p)| p.count == 0)
            && s.convergence_rate().is_none()
            && s.mean_iterations().is_none()
            && s.mean_shard_wall_ns().is_none()
    }

    #[test]
    fn shard_and_resize_records_accumulate_and_reset() {
        let sink = TelemetrySink::new();
        sink.record_shard(ShardRecord {
            run: 0,
            window: 0,
            gop_start: 0,
            gops: 5,
            wall_ns: 1_000,
        });
        sink.record_shard(ShardRecord {
            run: 0,
            window: 1,
            gop_start: 5,
            gops: 5,
            wall_ns: 3_000,
        });
        sink.record_resize(ResizeEvent {
            from: 2,
            to: 4,
            queue_depth: 9,
            utilization: 0.9,
            trigger: fcr_runtime::ResizeTrigger::Manual,
        });
        let snap = sink.snapshot();
        assert_eq!(snap.shards.len(), 2);
        assert_eq!(snap.mean_shard_wall_ns(), Some(2_000.0));
        assert_eq!(snap.resizes.len(), 1);
        // Field-wise comparison: ResizeEvent has no PartialEq (f64).
        assert_eq!(snap.resizes[0].from, 2);
        assert_eq!(snap.resizes[0].to, 4);
        assert_eq!(snap.resizes[0].queue_depth, 9);
        assert_eq!(snap.resizes[0].trigger, fcr_runtime::ResizeTrigger::Manual);
        sink.reset();
        assert!(snap_is_empty(&sink.snapshot()));
    }

    #[test]
    fn record_cap_counts_drops() {
        let sink = TelemetrySink::new();
        for _ in 0..MAX_RECORDS + 3 {
            sink.record_solve(SolveRecord {
                iterations: 1,
                converged: true,
                residual: 0.0,
                lambda: Vec::new(),
            });
        }
        let snap = sink.snapshot();
        assert_eq!(snap.solves.len(), MAX_RECORDS);
        assert_eq!(snap.dropped_solves, 3);
        assert_eq!(snap.records_dropped(), 3);
    }
}
