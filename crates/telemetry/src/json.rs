//! A minimal, std-only JSON reader shared across the workspace.
//!
//! The container is offline (no serde), so every subsystem that reads
//! JSON back — the `fcr-bench check` gate parsing `BENCH_<area>.json`
//! and `bench/budgets.json`, and `fcr-scenario` parsing scenario
//! packs — uses this hand-rolled recursive-descent parser. It accepts
//! exactly standard JSON — objects, arrays, strings with escapes,
//! numbers, `true`/`false`/`null` — and keeps object keys in document
//! order (the workspace's renderers are order-preserving too, which
//! keeps artifact diffs stable).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (integers above 2^53 lose precision — the
    /// workspace's counters stay far below that).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses `text` as one JSON document (trailing whitespace
    /// allowed, trailing garbage is an error).
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error, with its byte
    /// offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` (numbers only).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `u64` (non-negative integral numbers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as `bool` (booleans only).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str` (strings only).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array's items (arrays only).
    pub fn items(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's fields in document order (objects only).
    pub fn fields(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!(
                "unexpected {:?} at byte {}",
                char::from(c),
                self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let end = self.pos + 4;
                            let hex = self
                                .bytes
                                .get(self.pos..end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            // Surrogates are not paired up — the files
                            // this parser reads never contain them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos = end;
                        }
                        other => {
                            return Err(format!("bad escape {:?}", char::from(other)));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let ch = s.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shapes_the_workspace_files_use() {
        let doc = Json::parse(
            r#"{"a": 1, "b": -2.5, "c": [true, false, null], "d": {"x": "y\n\"z\""}, "e": 1e3}"#,
        )
        .expect("parse");
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("b").and_then(Json::as_f64), Some(-2.5));
        assert_eq!(doc.get("e").and_then(Json::as_f64), Some(1000.0));
        assert_eq!(
            doc.get("c").and_then(Json::items),
            Some(&[Json::Bool(true), Json::Bool(false), Json::Null][..])
        );
        assert_eq!(
            doc.get("d").and_then(|d| d.get("x")).and_then(Json::as_str),
            Some("y\n\"z\"")
        );
        assert_eq!(
            doc.get("c").unwrap().items().unwrap()[0].as_bool(),
            Some(true)
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\":1} trailing",
            "\"unterminated",
            "nul",
            "{\"a\" 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
