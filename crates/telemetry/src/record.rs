//! Convergence-telemetry record types.
//!
//! These are plain data carriers: `fcr-core` fills them in at the end
//! of each dual-decomposition solve (Tables I/II) and each greedy
//! channel allocation (Table III), and the sink stores them for export
//! and reporting. Keeping them dependency-free here lets `fcr-core`
//! emit telemetry without this crate knowing any solver types.

/// One dual-decomposition solve (Tables I/II): how hard the subgradient
/// loop worked and where the prices ended up.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveRecord {
    /// Subgradient iterations executed.
    pub iterations: usize,
    /// `true` if the step-11 criterion fired before the iteration cap.
    pub converged: bool,
    /// Final step-11 residual `Σ_i (Δλ_i)²`.
    pub residual: f64,
    /// Final dual prices `[λ_0, λ_1, …, λ_N]`.
    pub lambda: Vec<f64>,
}

/// One executed intra-run shard: a GOP-aligned slot window of one
/// simulation run scheduled as an independent job on the worker pool.
/// Recorded by `fcr-sim`'s session layer so shard granularity and
/// balance are observable in exports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardRecord {
    /// Run index within the session.
    pub run: u64,
    /// Window index within the run (0-based, in GOP order).
    pub window: u64,
    /// First GOP (inclusive) the shard covered.
    pub gop_start: u64,
    /// Number of GOPs in the shard.
    pub gops: u64,
    /// Wall time the shard took on its worker (ns).
    pub wall_ns: u64,
}

/// One completed span occurrence with its parent/child edge — the
/// per-event counterpart of the aggregated per-phase timings.
///
/// Only recorded when span events are switched on
/// ([`crate::set_span_events`]); the id is unique per process and the
/// parent id (if any) is the span that was open on the same thread
/// when this one was entered, so an export reconstructs the phase
/// tree: sensing → fusion → access nested under a solver span, etc.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanRecord {
    /// Process-unique span id (allocation order, starts at 1).
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// The pipeline phase the span measured.
    pub phase: crate::Phase,
    /// Wall time of the span (ns).
    pub wall_ns: u64,
}

/// One greedy channel allocation (Table III) with the eq.-(23)
/// bookkeeping, so the per-run optimality-gap bound is observable.
#[derive(Debug, Clone, PartialEq)]
pub struct GreedyRecord {
    /// Committed steps `L`.
    pub steps: usize,
    /// The greedy gain `Σ_l Δ_l = Q(π_L) − Q(∅)`.
    pub gain: f64,
    /// The eq.-(23) upper bound on the optimal gain
    /// `Σ_l (1 + D(l))·Δ_l`.
    pub upper_bound_gain: f64,
    /// Per-step gap terms `D(l)·Δ_l` — the slack eq. (23) adds on top
    /// of the gain, step by step.
    pub gap_terms: Vec<f64>,
}

impl GreedyRecord {
    /// The bound's total slack `Σ_l D(l)·Δ_l = UB₍₂₃₎ − gain`.
    pub fn gap(&self) -> f64 {
        self.gap_terms.iter().sum()
    }

    /// The guaranteed optimality ratio `gain / UB₍₂₃₎` (1.0 when both
    /// are zero — an empty allocation is trivially optimal).
    pub fn optimality_ratio(&self) -> f64 {
        if self.upper_bound_gain <= 0.0 {
            1.0
        } else {
            self.gain / self.upper_bound_gain
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_record_derives_gap_and_ratio() {
        let r = GreedyRecord {
            steps: 3,
            gain: 2.0,
            upper_bound_gain: 3.0,
            gap_terms: vec![0.5, 0.25, 0.25],
        };
        assert!((r.gap() - 1.0).abs() < 1e-12);
        assert!((r.optimality_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_allocation_is_trivially_optimal() {
        let r = GreedyRecord {
            steps: 0,
            gain: 0.0,
            upper_bound_gain: 0.0,
            gap_terms: Vec::new(),
        };
        assert_eq!(r.gap(), 0.0);
        assert_eq!(r.optimality_ratio(), 1.0);
    }
}
