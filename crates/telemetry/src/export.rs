//! JSONL export of telemetry snapshots.
//!
//! One self-describing JSON object per line (`"type"` discriminates),
//! hand-rolled on `std` only — the container is offline, so no serde.
//! Line types:
//!
//! | `type` | one line per | fields |
//! |---|---|---|
//! | `meta` | export | `dropped_solves`, `dropped_greedy`, `dropped_shards`, `dropped_spans`, `records_dropped` |
//! | `phase` | pipeline phase | `phase`, `count`, `total_ns`, `mean_ns`, `max_ns`, `buckets_us` |
//! | `solve` | dual solve | `iterations`, `converged`, `residual`, `lambda` |
//! | `greedy` | greedy allocation | `steps`, `gain`, `upper_bound_gain`, `gap`, `optimality_ratio`, `gap_terms` |
//! | `counter` | named counter | `name`, `value` |
//! | `shard` | executed intra-run shard | `run`, `window`, `gop_start`, `gops`, `wall_ns` |
//! | `span` | span event (opt-in) | `id`, `parent` (`null` for roots), `phase`, `wall_ns` |
//! | `resize` | elastic-pool resize | `from`, `to`, `queue_depth`, `utilization`, `trigger` (`manual`/`loop`) |
//! | `worker` | pool worker | `index`, `busy_ns`, `lifetime_ns`, `jobs`, `steals`, `utilization` |
//! | `pool` | runtime snapshot | `workers`, `jobs_submitted`, `jobs_completed`, `jobs_failed`, `jobs_stolen` |
//!
//! The per-record renderers below are shared between the batch
//! [`to_jsonl`] export and the sink's live stream writer
//! ([`crate::TelemetrySink::attach_stream`]), so a tailed stream and a
//! final export never disagree on the line format.

use crate::record::{GreedyRecord, ShardRecord, SolveRecord, SpanRecord};
use crate::sink::TelemetrySnapshot;
use fcr_runtime::{MetricsSnapshot, ResizeEvent};
use std::fmt::Write as _;

/// The JSONL line (no trailing newline) for one dual-solve record.
pub(crate) fn solve_line(s: &SolveRecord) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"type\":\"solve\",\"iterations\":{},\"converged\":{},\"residual\":{},\"lambda\":[",
        s.iterations,
        s.converged,
        num(s.residual)
    );
    push_f64_array(&mut out, &s.lambda);
    out.push_str("]}");
    out
}

/// The JSONL line (no trailing newline) for one greedy-allocation
/// record.
pub(crate) fn greedy_line(g: &GreedyRecord) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"type\":\"greedy\",\"steps\":{},\"gain\":{},\"upper_bound_gain\":{},\"gap\":{},\"optimality_ratio\":{},\"gap_terms\":[",
        g.steps,
        num(g.gain),
        num(g.upper_bound_gain),
        num(g.gap()),
        num(g.optimality_ratio()),
    );
    push_f64_array(&mut out, &g.gap_terms);
    out.push_str("]}");
    out
}

/// The JSONL line (no trailing newline) for one executed-shard record.
pub(crate) fn shard_line(s: &ShardRecord) -> String {
    format!(
        "{{\"type\":\"shard\",\"run\":{},\"window\":{},\"gop_start\":{},\"gops\":{},\"wall_ns\":{}}}",
        s.run, s.window, s.gop_start, s.gops, s.wall_ns,
    )
}

/// The JSONL line (no trailing newline) for one span event.
pub(crate) fn span_line(s: &SpanRecord) -> String {
    let mut out = format!("{{\"type\":\"span\",\"id\":{},\"parent\":", s.id);
    match s.parent {
        Some(p) => {
            let _ = write!(out, "{p}");
        }
        None => out.push_str("null"),
    }
    let _ = write!(
        out,
        ",\"phase\":\"{}\",\"wall_ns\":{}}}",
        s.phase.name(),
        s.wall_ns
    );
    out
}

/// The JSONL line (no trailing newline) for one pool-resize event.
pub(crate) fn resize_line(r: &ResizeEvent) -> String {
    format!(
        "{{\"type\":\"resize\",\"from\":{},\"to\":{},\"queue_depth\":{},\"utilization\":{},\"trigger\":\"{}\"}}",
        r.from,
        r.to,
        r.queue_depth,
        num(r.utilization),
        r.trigger.name(),
    )
}

/// Renders `snapshot` as JSONL; when `runtime` is given, per-worker
/// utilization and a pool summary line are appended.
pub fn to_jsonl(snapshot: &TelemetrySnapshot, runtime: Option<&MetricsSnapshot>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"type\":\"meta\",\"dropped_solves\":{},\"dropped_greedy\":{},\"dropped_shards\":{},\"dropped_spans\":{},\"records_dropped\":{}}}",
        snapshot.dropped_solves,
        snapshot.dropped_greedy,
        snapshot.dropped_shards,
        snapshot.dropped_spans,
        snapshot.records_dropped()
    );
    for (phase, p) in &snapshot.phases {
        let _ = write!(
            out,
            "{{\"type\":\"phase\",\"phase\":\"{}\",\"count\":{},\"total_ns\":{},\"mean_ns\":{},\"max_ns\":{},\"buckets_us\":[",
            phase.name(),
            p.count,
            p.total_ns,
            num(p.mean_ns()),
            p.max_ns,
        );
        let mut first = true;
        for (upper, count) in p.wall.occupied_buckets() {
            if !first {
                out.push(',');
            }
            first = false;
            // The unbounded last bucket serializes its µs upper bound
            // as null.
            if upper == u64::MAX {
                let _ = write!(out, "[null,{count}]");
            } else {
                let _ = write!(out, "[{upper},{count}]");
            }
        }
        out.push_str("]}\n");
    }
    for s in &snapshot.solves {
        out.push_str(&solve_line(s));
        out.push('\n');
    }
    for g in &snapshot.greedy {
        out.push_str(&greedy_line(g));
        out.push('\n');
    }
    for s in &snapshot.shards {
        out.push_str(&shard_line(s));
        out.push('\n');
    }
    for s in &snapshot.spans {
        out.push_str(&span_line(s));
        out.push('\n');
    }
    for r in &snapshot.resizes {
        out.push_str(&resize_line(r));
        out.push('\n');
    }
    for (name, value) in &snapshot.counters {
        let _ = write!(out, "{{\"type\":\"counter\",\"name\":");
        push_json_string(&mut out, name);
        let _ = writeln!(out, ",\"value\":{value}}}");
    }
    if let Some(rt) = runtime {
        for w in &rt.per_worker {
            let _ = writeln!(
                out,
                "{{\"type\":\"worker\",\"index\":{},\"busy_ns\":{},\"lifetime_ns\":{},\"jobs\":{},\"steals\":{},\"utilization\":{}}}",
                w.index,
                w.busy_ns,
                w.lifetime_ns,
                w.jobs_executed,
                w.steals,
                num(w.utilization()),
            );
        }
        let _ = writeln!(
            out,
            "{{\"type\":\"pool\",\"workers\":{},\"jobs_submitted\":{},\"jobs_completed\":{},\"jobs_failed\":{},\"jobs_stolen\":{}}}",
            rt.workers, rt.jobs_submitted, rt.jobs_completed, rt.jobs_failed, rt.jobs_stolen,
        );
    }
    out
}

/// Renders `snapshot` in the Prometheus text exposition format
/// (version 0.0.4): `# TYPE` headers, one sample per line, labels in
/// `{name="value"}` form. The same numbers as [`to_jsonl`], shaped for
/// a scraper instead of a log tail:
///
/// - per-phase span timing as a `summary` — `quantile="0.5"` /
///   `quantile="0.99"` samples (interpolated percentiles from the
///   wall-time histograms, in microseconds) plus `_sum`/`_count`;
/// - named domain counters under one metric with a `name` label;
/// - when `runtime` is given, pool job counters, the job wall-time
///   summary, and per-worker utilization gauges.
///
/// Non-finite values and empty-histogram quantiles are omitted (the
/// exposition format has no `null`).
pub fn to_prometheus(snapshot: &TelemetrySnapshot, runtime: Option<&MetricsSnapshot>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# TYPE fcr_telemetry_records_dropped_total counter\nfcr_telemetry_records_dropped_total {}",
        snapshot.records_dropped()
    );

    out.push_str("# TYPE fcr_phase_spans_total counter\n");
    for (phase, p) in &snapshot.phases {
        let _ = writeln!(
            out,
            "fcr_phase_spans_total{{phase=\"{}\"}} {}",
            phase.name(),
            p.count
        );
    }
    out.push_str("# TYPE fcr_phase_wall_us summary\n");
    for (phase, p) in &snapshot.phases {
        let label = format!("phase=\"{}\"", phase.name());
        prom_summary(&mut out, "fcr_phase_wall_us", &label, &p.wall);
    }

    if !snapshot.counters.is_empty() {
        out.push_str("# TYPE fcr_domain_counter_total counter\n");
        for (name, value) in &snapshot.counters {
            let _ = writeln!(
                out,
                "fcr_domain_counter_total{{name=\"{}\"}} {value}",
                prom_label_escape(name)
            );
        }
    }

    let _ = writeln!(
        out,
        "# TYPE fcr_pool_resizes_total counter\nfcr_pool_resizes_total {}",
        snapshot.resizes.len()
    );

    if let Some(rt) = runtime {
        let _ = writeln!(
            out,
            "# TYPE fcr_pool_workers gauge\nfcr_pool_workers {}",
            rt.workers
        );
        for (name, value) in [
            ("submitted", rt.jobs_submitted),
            ("completed", rt.jobs_completed),
            ("failed", rt.jobs_failed),
            ("stolen", rt.jobs_stolen),
            ("rejected", rt.jobs_rejected),
        ] {
            let _ = writeln!(
                out,
                "# TYPE fcr_pool_jobs_{name}_total counter\nfcr_pool_jobs_{name}_total {value}"
            );
        }
        let _ = writeln!(
            out,
            "# TYPE fcr_pool_queue_depth gauge\nfcr_pool_queue_depth {}",
            rt.queue_depth
        );
        let _ = writeln!(
            out,
            "# TYPE fcr_pool_jobs_in_flight gauge\nfcr_pool_jobs_in_flight {}",
            rt.jobs_in_flight
        );
        out.push_str("# TYPE fcr_job_wall_us summary\n");
        prom_summary(&mut out, "fcr_job_wall_us", "", &rt.job_wall_time);
        out.push_str("# TYPE fcr_worker_utilization gauge\n");
        for w in &rt.per_worker {
            if w.utilization().is_finite() {
                let _ = writeln!(
                    out,
                    "fcr_worker_utilization{{worker=\"{}\"}} {}",
                    w.index,
                    w.utilization()
                );
            }
        }
        out.push_str("# TYPE fcr_worker_jobs_total counter\n");
        for w in &rt.per_worker {
            let _ = writeln!(
                out,
                "fcr_worker_jobs_total{{worker=\"{}\"}} {}",
                w.index, w.jobs_executed
            );
        }
    }
    out
}

/// Appends the samples of one Prometheus `summary` metric: p50/p99
/// quantiles (interpolated, µs) when the histogram is non-empty, then
/// the mandatory `_sum`/`_count` pair. `labels` is either empty or a
/// ready `k="v"` list without braces.
pub(crate) fn prom_summary(
    out: &mut String,
    metric: &str,
    labels: &str,
    hist: &fcr_runtime::HistogramSnapshot,
) {
    for (q, qs) in [(0.50, "0.5"), (0.99, "0.99")] {
        if let Some(v) = hist.percentile_micros(q) {
            if labels.is_empty() {
                let _ = writeln!(out, "{metric}{{quantile=\"{qs}\"}} {v}");
            } else {
                let _ = writeln!(out, "{metric}{{{labels},quantile=\"{qs}\"}} {v}");
            }
        }
    }
    let braces = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    let _ = writeln!(out, "{metric}_sum{braces} {}", hist.sum_micros);
    let _ = writeln!(out, "{metric}_count{braces} {}", hist.count);
}

/// Escapes a Prometheus label value: backslash, double quote, and
/// newline must be escaped per the exposition format.
pub(crate) fn prom_label_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// A JSON number for `v`: plain decimal for finite values, `null`
/// otherwise (JSON has no NaN/∞).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Crate-shared JSON number rendering (see [`num`]); the bench
/// envelope uses the same finite-or-`null` convention.
pub(crate) fn render_f64(v: f64) -> String {
    num(v)
}

fn push_f64_array(out: &mut String, values: &[f64]) {
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&num(*v));
    }
}

/// Appends `s` as a JSON string literal with the mandatory escapes.
pub(crate) fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{GreedyRecord, SolveRecord};
    use crate::sink::TelemetrySink;
    use crate::Phase;
    use std::time::Duration;

    fn populated_snapshot() -> TelemetrySnapshot {
        let sink = TelemetrySink::new();
        for phase in Phase::ALL {
            sink.record_span(phase, Duration::from_micros(3));
        }
        sink.record_solve(SolveRecord {
            iterations: 42,
            converged: true,
            residual: 1e-15,
            lambda: vec![0.0, 0.25],
        });
        sink.record_greedy(GreedyRecord {
            steps: 2,
            gain: 1.5,
            upper_bound_gain: 2.0,
            gap_terms: vec![0.5],
        });
        sink.incr("greedy.inner_solves", 9);
        sink.record_shard(crate::ShardRecord {
            run: 1,
            window: 2,
            gop_start: 10,
            gops: 5,
            wall_ns: 1_234,
        });
        sink.record_resize(crate::ResizeEvent {
            from: 1,
            to: 2,
            queue_depth: 7,
            utilization: 0.5,
            trigger: crate::ResizeTrigger::Loop,
        });
        sink.snapshot()
    }

    #[test]
    fn jsonl_contains_every_phase_and_record_type() {
        let out = to_jsonl(&populated_snapshot(), None);
        for phase in Phase::ALL {
            assert!(
                out.contains(&format!("\"phase\":\"{}\"", phase.name())),
                "{} missing:\n{out}",
                phase.name()
            );
        }
        assert!(out.contains("\"type\":\"meta\""));
        assert!(out.contains("\"type\":\"solve\""));
        assert!(out.contains("\"iterations\":42"));
        assert!(out.contains("\"type\":\"greedy\""));
        assert!(out.contains("\"optimality_ratio\":0.75"));
        assert!(out.contains("\"type\":\"counter\""));
        assert!(out.contains("\"greedy.inner_solves\""));
        assert!(out.contains(
            "{\"type\":\"shard\",\"run\":1,\"window\":2,\"gop_start\":10,\"gops\":5,\"wall_ns\":1234}"
        ));
        assert!(out.contains(
            "{\"type\":\"resize\",\"from\":1,\"to\":2,\"queue_depth\":7,\"utilization\":0.5,\"trigger\":\"loop\"}"
        ));
        // No worker lines without a runtime snapshot.
        assert!(!out.contains("\"type\":\"worker\""));
    }

    #[test]
    fn every_line_is_balanced_json_object() {
        // Cheap structural check without a JSON parser: every line is a
        // single object with balanced braces/brackets and no raw
        // control characters.
        let out = to_jsonl(&populated_snapshot(), None);
        assert!(out.lines().count() >= 9, "meta + 6 phases + records");
        for line in out.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            let depth_ok = line
                .chars()
                .scan((0i32, 0i32), |(braces, brackets), c| {
                    match c {
                        '{' => *braces += 1,
                        '}' => *braces -= 1,
                        '[' => *brackets += 1,
                        ']' => *brackets -= 1,
                        _ => {}
                    }
                    Some((*braces, *brackets))
                })
                .last();
            assert_eq!(depth_ok, Some((0, 0)), "unbalanced: {line}");
        }
    }

    #[test]
    fn runtime_snapshot_adds_worker_and_pool_lines() {
        let rt = fcr_runtime::Runtime::with_config(fcr_runtime::RuntimeConfig {
            workers: 2,
            queue_capacity: 4,
            ..fcr_runtime::RuntimeConfig::default()
        });
        let outcomes = rt.run_batch((0u64..8).map(|i| move || i));
        assert!(outcomes.iter().all(Result::is_ok));
        let out = to_jsonl(&TelemetrySink::new().snapshot(), Some(&rt.snapshot()));
        assert_eq!(out.matches("\"type\":\"worker\"").count(), 2);
        assert!(out.contains("\"type\":\"pool\""));
        assert!(out.contains("\"utilization\":"));
    }

    #[test]
    fn overflowing_the_record_cap_is_loud_in_the_meta_line() {
        // Push past MAX_RECORDS on every channel and verify the drops
        // surface — individually and as the records_dropped total — in
        // the JSONL meta line instead of vanishing.
        let sink = TelemetrySink::new();
        for _ in 0..crate::MAX_RECORDS + 2 {
            sink.record_solve(SolveRecord {
                iterations: 1,
                converged: true,
                residual: 0.0,
                lambda: Vec::new(),
            });
        }
        for _ in 0..crate::MAX_RECORDS + 1 {
            sink.record_greedy(GreedyRecord {
                steps: 0,
                gain: 0.0,
                upper_bound_gain: 0.0,
                gap_terms: Vec::new(),
            });
        }
        for _ in 0..crate::MAX_RECORDS + 4 {
            sink.record_shard(crate::ShardRecord {
                run: 0,
                window: 0,
                gop_start: 0,
                gops: 1,
                wall_ns: 1,
            });
        }
        let snap = sink.snapshot();
        assert_eq!(snap.records_dropped(), 7);
        let out = to_jsonl(&snap, None);
        let meta = out.lines().next().unwrap();
        assert_eq!(
            meta,
            "{\"type\":\"meta\",\"dropped_solves\":2,\"dropped_greedy\":1,\
             \"dropped_shards\":4,\"dropped_spans\":0,\"records_dropped\":7}"
        );
    }

    #[test]
    fn span_lines_render_parent_edges() {
        let root = crate::SpanRecord {
            id: 1,
            parent: None,
            phase: Phase::Solver,
            wall_ns: 500,
        };
        let child = crate::SpanRecord {
            id: 2,
            parent: Some(1),
            phase: Phase::GreedyAlloc,
            wall_ns: 120,
        };
        assert_eq!(
            span_line(&root),
            "{\"type\":\"span\",\"id\":1,\"parent\":null,\"phase\":\"solver\",\"wall_ns\":500}"
        );
        assert_eq!(
            span_line(&child),
            "{\"type\":\"span\",\"id\":2,\"parent\":1,\"phase\":\"greedy_alloc\",\"wall_ns\":120}"
        );
        let sink = TelemetrySink::new();
        sink.record_span_event(root);
        sink.record_span_event(child);
        let out = to_jsonl(&sink.snapshot(), None);
        assert!(out.contains("\"type\":\"span\""), "{out}");
        assert!(out.contains("\"parent\":null"), "{out}");
        assert!(out.contains("\"parent\":1"), "{out}");
    }

    #[test]
    fn prometheus_body_is_parseable_exposition_text() {
        let rt = fcr_runtime::Runtime::with_config(fcr_runtime::RuntimeConfig {
            workers: 2,
            queue_capacity: 4,
            ..fcr_runtime::RuntimeConfig::default()
        });
        let outcomes = rt.run_batch((0u64..8).map(|i| move || i));
        assert!(outcomes.iter().all(Result::is_ok));
        let out = to_prometheus(&populated_snapshot(), Some(&rt.snapshot()));

        // Every non-comment line is `name{labels} value` with a finite
        // number; every metric has a TYPE header.
        let mut samples = 0;
        for line in out.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# TYPE fcr_"), "{line}");
                continue;
            }
            samples += 1;
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(name.starts_with("fcr_"), "{line}");
            let v: f64 = value
                .parse()
                .unwrap_or_else(|_| panic!("bad value: {line}"));
            assert!(v.is_finite(), "{line}");
            if let Some(open) = name.find('{') {
                assert!(name.ends_with('}'), "{line}");
                let labels = &name[open + 1..name.len() - 1];
                for pair in labels.split(',') {
                    let (k, v) = pair.split_once('=').expect("k=v");
                    assert!(
                        !k.is_empty() && v.starts_with('"') && v.ends_with('"'),
                        "{line}"
                    );
                }
            }
        }
        assert!(samples > 20, "{out}");

        // The numbers match the JSONL export's sources.
        for phase in Phase::ALL {
            assert!(
                out.contains(&format!(
                    "fcr_phase_spans_total{{phase=\"{}\"}} 1",
                    phase.name()
                )),
                "{out}"
            );
        }
        assert!(out.contains("fcr_domain_counter_total{name=\"greedy.inner_solves\"} 9"));
        assert!(out.contains("fcr_pool_resizes_total 1"));
        assert!(out.contains("fcr_pool_jobs_completed_total 8"));
        assert!(out.contains("fcr_job_wall_us{quantile=\"0.5\"}"));
        assert!(out.contains("fcr_job_wall_us_count 8"));
        assert_eq!(out.matches("fcr_worker_jobs_total{worker=").count(), 2);
    }

    #[test]
    fn prometheus_quantiles_match_the_interpolated_percentiles() {
        let sink = TelemetrySink::new();
        for us in [10u64, 20, 30, 40, 5000] {
            sink.record_span(Phase::Solver, Duration::from_micros(us));
        }
        let snap = sink.snapshot();
        let wall = &snap.phase(Phase::Solver).wall;
        let p50 = wall.percentile_micros(0.50).unwrap();
        let p99 = wall.percentile_micros(0.99).unwrap();
        let out = to_prometheus(&snap, None);
        assert!(
            out.contains(&format!(
                "fcr_phase_wall_us{{phase=\"solver\",quantile=\"0.5\"}} {p50}"
            )),
            "{out}"
        );
        assert!(
            out.contains(&format!(
                "fcr_phase_wall_us{{phase=\"solver\",quantile=\"0.99\"}} {p99}"
            )),
            "{out}"
        );
        // Empty phases emit no quantile samples but keep _sum/_count.
        assert!(
            !out.contains("fcr_phase_wall_us{phase=\"sensing\",quantile"),
            "{out}"
        );
        assert!(
            out.contains("fcr_phase_wall_us_count{phase=\"sensing\"} 0"),
            "{out}"
        );
    }

    #[test]
    fn prometheus_label_values_are_escaped() {
        assert_eq!(prom_label_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(prom_label_escape("x\ny"), "x\\ny");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(0.5), "0.5");
        let mut s = String::new();
        push_json_string(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
