//! The machine-readable benchmark envelope: one shared schema for
//! every `BENCH_<area>.json` artifact the workspace emits.
//!
//! PR 6's `serve` binary wrote an ad-hoc JSON blob; this module is the
//! generalization the ROADMAP's standing-benchmark item calls for — a
//! single envelope (schema version, area, workload parameters, seed,
//! wall seconds, metrics) that the `fcr-bench` runner, the `serve`
//! daemon, and the CI regression gate all speak. The perf trajectory
//! stays comparable across PRs because the shape is versioned here,
//! in one place.
//!
//! ```text
//! {
//!   "schema_version": 1,
//!   "area": "serve",
//!   "seed": 24077,
//!   "wall_seconds": 30.012,
//!   "workload": { "target_sessions": 10000, "slot_ms": 100 },
//!   "metrics": { "sessions_per_sec": 91.7, "step_p99_us": 41000, ... }
//! }
//! ```
//!
//! `workload` describes what was run (scale knobs, so two artifacts
//! are only compared like for like); `metrics` is the flat name →
//! number map the `fcr-bench check` budget gate diffs against
//! `bench/budgets.json`.

use crate::export::{push_json_string, render_f64};
use std::fmt::Write as _;

/// Version of the `BENCH_<area>.json` envelope shape. Bump when a
/// field is renamed, removed, or changes meaning; adding new metric
/// keys is backward compatible and does not bump it.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// One value in the envelope's `workload` or `metrics` maps.
#[derive(Debug, Clone, PartialEq)]
pub enum BenchValue {
    /// An exact integer (counts, microseconds, bytes).
    U64(u64),
    /// A measured rate or ratio; non-finite values render as `null`.
    F64(f64),
    /// A flag.
    Bool(bool),
    /// A label (scheme name, scale name, …).
    Str(String),
    /// Explicitly absent (e.g. a percentile of an empty histogram).
    Null,
}

impl BenchValue {
    fn render(&self, out: &mut String) {
        match self {
            BenchValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            BenchValue::F64(v) => out.push_str(&render_f64(*v)),
            BenchValue::Bool(v) => {
                let _ = write!(out, "{v}");
            }
            BenchValue::Str(s) => push_json_string(out, s),
            BenchValue::Null => out.push_str("null"),
        }
    }
}

impl From<u64> for BenchValue {
    fn from(v: u64) -> Self {
        BenchValue::U64(v)
    }
}

impl From<usize> for BenchValue {
    fn from(v: usize) -> Self {
        BenchValue::U64(v as u64)
    }
}

impl From<u32> for BenchValue {
    fn from(v: u32) -> Self {
        BenchValue::U64(u64::from(v))
    }
}

impl From<f64> for BenchValue {
    fn from(v: f64) -> Self {
        BenchValue::F64(v)
    }
}

impl From<bool> for BenchValue {
    fn from(v: bool) -> Self {
        BenchValue::Bool(v)
    }
}

impl From<&str> for BenchValue {
    fn from(v: &str) -> Self {
        BenchValue::Str(v.to_string())
    }
}

impl<T: Into<BenchValue>> From<Option<T>> for BenchValue {
    fn from(v: Option<T>) -> Self {
        v.map_or(BenchValue::Null, Into::into)
    }
}

/// One `BENCH_<area>.json` artifact under construction: the common
/// envelope plus the area's workload parameters and measured metrics.
/// Built with the fluent setters, rendered with
/// [`BenchEnvelope::to_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEnvelope {
    /// Envelope shape version ([`BENCH_SCHEMA_VERSION`] unless parsed
    /// from an older artifact).
    pub schema_version: u32,
    /// The benchmark area (`solver`, `runtime`, `serve`, …).
    pub area: String,
    /// Master seed the workload derived its randomness from.
    pub seed: u64,
    /// Measured wall-clock duration of the run in seconds.
    pub wall_seconds: f64,
    /// Scale knobs describing *what* ran, in insertion order.
    pub workload: Vec<(String, BenchValue)>,
    /// Measured metric name → value map, in insertion order. These are
    /// the keys `bench/budgets.json` budgets refer to.
    pub metrics: Vec<(String, BenchValue)>,
}

impl BenchEnvelope {
    /// A fresh envelope for `area` at the current schema version.
    pub fn new(area: &str, seed: u64) -> Self {
        BenchEnvelope {
            schema_version: BENCH_SCHEMA_VERSION,
            area: area.to_string(),
            seed,
            wall_seconds: 0.0,
            workload: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Sets the measured wall-clock seconds.
    pub fn wall_seconds(mut self, seconds: f64) -> Self {
        self.wall_seconds = seconds;
        self
    }

    /// Appends one workload parameter.
    pub fn workload(mut self, name: &str, value: impl Into<BenchValue>) -> Self {
        self.workload.push((name.to_string(), value.into()));
        self
    }

    /// Appends one measured metric.
    pub fn metric(mut self, name: &str, value: impl Into<BenchValue>) -> Self {
        self.metrics.push((name.to_string(), value.into()));
        self
    }

    /// The metric's value as `f64`, if present and comparable (`U64`
    /// is widened; `Bool` maps to 1/0 so invariant flags like
    /// `accounting_holds` can be budget-gated) — what the budget gate
    /// compares against.
    pub fn metric_value(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| match v {
                BenchValue::U64(v) => Some(*v as f64),
                BenchValue::F64(v) => Some(*v),
                BenchValue::Bool(v) => Some(if *v { 1.0 } else { 0.0 }),
                _ => None,
            })
    }

    /// The canonical artifact file name: `BENCH_<area>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.area)
    }

    /// Renders the artifact: a small pretty-printed JSON object (2-space
    /// indent, trailing newline) so committed artifacts diff cleanly.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {},", self.schema_version);
        out.push_str("  \"area\": ");
        push_json_string(&mut out, &self.area);
        out.push_str(",\n");
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(
            out,
            "  \"wall_seconds\": {},",
            render_f64(self.wall_seconds)
        );
        render_map(&mut out, "workload", &self.workload);
        out.push_str(",\n");
        render_map(&mut out, "metrics", &self.metrics);
        out.push_str("\n}\n");
        out
    }
}

fn render_map(out: &mut String, name: &str, entries: &[(String, BenchValue)]) {
    let _ = write!(out, "  \"{name}\": {{");
    for (i, (k, v)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        push_json_string(out, k);
        out.push_str(": ");
        v.render(out);
    }
    if entries.is_empty() {
        out.push('}');
    } else {
        out.push_str("\n  }");
    }
}

/// Peak resident set size (`VmHWM`) of this process in kB from
/// `/proc`, or 0 where unavailable (non-Linux hosts). Process-wide
/// high-water mark: in a multi-area `fcr-bench run` it is attributed
/// to every area run so far, which is the conservative reading.
pub fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                l.split_whitespace()
                    .nth(1)
                    .and_then(|v| v.parse::<u64>().ok())
            })
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchEnvelope {
        BenchEnvelope::new("solver", 7)
            .wall_seconds(1.25)
            .workload("runs", 10u64)
            .workload("scale", "smoke")
            .metric("slots_per_sec", 1234.5)
            .metric("p99_us", 890u64)
            .metric("p50_us", Option::<u64>::None)
            .metric("degraded", false)
    }

    #[test]
    fn envelope_renders_the_shared_shape() {
        let json = sample().to_json();
        assert!(json.starts_with("{\n  \"schema_version\": 1,\n"), "{json}");
        assert!(json.contains("\"area\": \"solver\""), "{json}");
        assert!(json.contains("\"seed\": 7"), "{json}");
        assert!(json.contains("\"wall_seconds\": 1.25"), "{json}");
        assert!(json.contains("\"runs\": 10"), "{json}");
        assert!(json.contains("\"scale\": \"smoke\""), "{json}");
        assert!(json.contains("\"slots_per_sec\": 1234.5"), "{json}");
        assert!(json.contains("\"p50_us\": null"), "{json}");
        assert!(json.contains("\"degraded\": false"), "{json}");
        assert!(json.ends_with("}\n"), "{json}");
        // Balanced braces — a cheap structural check.
        let depth: i64 = json
            .chars()
            .map(|c| match c {
                '{' => 1,
                '}' => -1,
                _ => 0,
            })
            .sum();
        assert_eq!(depth, 0, "{json}");
    }

    #[test]
    fn metric_value_widens_integers_and_skips_non_numbers() {
        let e = sample();
        assert_eq!(e.metric_value("slots_per_sec"), Some(1234.5));
        assert_eq!(e.metric_value("p99_us"), Some(890.0));
        assert_eq!(e.metric_value("p50_us"), None);
        assert_eq!(e.metric_value("degraded"), Some(0.0));
        assert_eq!(e.metric_value("missing"), None);
    }

    #[test]
    fn file_name_follows_the_convention() {
        assert_eq!(sample().file_name(), "BENCH_solver.json");
        assert_eq!(
            BenchEnvelope::new("serve", 0).file_name(),
            "BENCH_serve.json"
        );
    }

    #[test]
    fn empty_maps_render_as_empty_objects() {
        let json = BenchEnvelope::new("x", 0).to_json();
        assert!(json.contains("\"workload\": {}"), "{json}");
        assert!(json.contains("\"metrics\": {}"), "{json}");
    }

    #[test]
    fn peak_rss_reports_something_on_linux() {
        // On the Linux CI/container this is the live VmHWM; elsewhere 0.
        let _ = peak_rss_kb();
    }
}
