//! The named pipeline phases of the per-slot algorithm.

use std::fmt;

/// A named phase of the per-slot pipeline (Section III/IV of the
/// paper): sensing → fusion → access → solver → greedy channel
/// allocation → video credit.
///
/// Phases double as the span taxonomy: every [`crate::Span`] is tagged
/// with exactly one phase, and the per-phase aggregator keys its timing
/// statistics by this enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Spectrum sensing: collecting (ε, δ)-noisy channel observations.
    Sensing,
    /// Bayesian fusion of observations into availability posteriors
    /// (eqs. (2)–(4)).
    Fusion,
    /// Collision-bounded opportunistic access (eq. (7)) building the
    /// available set `A(t)`.
    Access,
    /// The time-share solve: water-filling / dual decomposition
    /// (Tables I/II) and the heuristics.
    Solver,
    /// Greedy channel allocation across interfering FBSs (Table III).
    GreedyAlloc,
    /// Transmission realization and PSNR crediting of delivered video.
    VideoCredit,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 6] = [
        Phase::Sensing,
        Phase::Fusion,
        Phase::Access,
        Phase::Solver,
        Phase::GreedyAlloc,
        Phase::VideoCredit,
    ];

    /// The stable snake_case name used in JSONL output and tables.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Sensing => "sensing",
            Phase::Fusion => "fusion",
            Phase::Access => "access",
            Phase::Solver => "solver",
            Phase::GreedyAlloc => "greedy_alloc",
            Phase::VideoCredit => "video_credit",
        }
    }

    /// Index into [`Phase::ALL`] (the aggregator's slot for this
    /// phase).
    pub(crate) fn index(self) -> usize {
        match self {
            Phase::Sensing => 0,
            Phase::Fusion => 1,
            Phase::Access => 2,
            Phase::Solver => 3,
            Phase::GreedyAlloc => 4,
            Phase::VideoCredit => 5,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_indices_match_all_order() {
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec![
                "sensing",
                "fusion",
                "access",
                "solver",
                "greedy_alloc",
                "video_credit"
            ]
        );
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert_eq!(format!("{p}"), p.name());
        }
    }
}
