//! The RAII span guard and its thread-local nesting tracker.

use crate::phase::Phase;
use crate::record::SpanRecord;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

thread_local! {
    /// Current span nesting depth on this thread (the thread-local
    /// "subscriber" half of the design: depth is tracked locally, the
    /// timings land in the process-wide sink).
    static DEPTH: Cell<usize> = const { Cell::new(0) };

    /// Ids of the open event-recording spans on this thread, innermost
    /// last. Only maintained while span events are enabled; the top of
    /// the stack is the parent of the next span entered here.
    static ID_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Process-wide span-id allocator (ids start at 1; 0 marks "no event
/// recorded" inside the guard).
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// An RAII timing span over one pipeline phase.
///
/// `Span::enter(phase)` starts the clock; dropping the guard records
/// the elapsed wall time into the process-wide sink under `phase`.
/// Spans nest freely ([`current_depth`] observes the nesting); a child
/// span's time is *also* contained in its parent's, exactly like any
/// tracing system's inclusive timings.
///
/// When span events are additionally enabled
/// ([`crate::set_span_events`]), dropping the guard also emits a
/// [`SpanRecord`] carrying a process-unique id and the id of the
/// enclosing span on the same thread, so exports can reconstruct the
/// parent/child phase tree. A span must be dropped on the thread that
/// entered it for the edge to be attributed correctly.
///
/// When telemetry is disabled (the default) `enter` is one relaxed
/// atomic load and no clock is read — near-zero overhead on hot paths.
///
/// # Examples
///
/// ```
/// use fcr_telemetry::{Phase, Span};
///
/// // Disabled by default: this records nothing and costs one load.
/// {
///     let _span = Span::enter(Phase::Sensing);
///     // ... phase work ...
/// }
/// assert_eq!(fcr_telemetry::current_depth(), 0);
/// ```
#[derive(Debug)]
#[must_use = "a span only measures while the guard is live"]
pub struct Span {
    phase: Phase,
    /// `None` when telemetry was disabled at entry: the drop is free.
    start: Option<Instant>,
    /// Non-zero iff span events were enabled at entry.
    id: u64,
    /// Id of the enclosing event-recording span at entry, if any.
    parent: Option<u64>,
}

impl Span {
    /// Opens a span over `phase`. Near-free when telemetry is
    /// disabled.
    #[inline]
    pub fn enter(phase: Phase) -> Span {
        if !crate::is_enabled() {
            return Span {
                phase,
                start: None,
                id: 0,
                parent: None,
            };
        }
        DEPTH.with(|d| d.set(d.get() + 1));
        let (id, parent) = if crate::span_events_enabled() {
            let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
            let parent = ID_STACK.with(|s| {
                let mut s = s.borrow_mut();
                let parent = s.last().copied();
                s.push(id);
                parent
            });
            (id, parent)
        } else {
            (0, None)
        };
        Span {
            phase,
            start: Some(Instant::now()),
            id,
            parent,
        }
    }

    /// The phase this span measures.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// `true` when this span is actually recording (telemetry was
    /// enabled at entry).
    pub fn is_recording(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let elapsed = start.elapsed();
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            crate::global().record_span(self.phase, elapsed);
            if self.id != 0 {
                ID_STACK.with(|s| {
                    let mut s = s.borrow_mut();
                    // RAII guarantees LIFO on one thread; defend anyway
                    // against a guard moved across threads.
                    if s.last() == Some(&self.id) {
                        s.pop();
                    } else {
                        s.retain(|&x| x != self.id);
                    }
                });
                crate::global().record_span_event(SpanRecord {
                    id: self.id,
                    parent: self.parent,
                    phase: self.phase,
                    wall_ns: u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
                });
            }
        }
    }
}

/// The current span nesting depth on this thread (0 outside any
/// recording span). Disabled spans do not contribute.
pub fn current_depth() -> usize {
    DEPTH.with(Cell::get)
}
