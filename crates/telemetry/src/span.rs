//! The RAII span guard and its thread-local nesting tracker.

use crate::phase::Phase;
use std::cell::Cell;
use std::time::Instant;

thread_local! {
    /// Current span nesting depth on this thread (the thread-local
    /// "subscriber" half of the design: depth is tracked locally, the
    /// timings land in the process-wide sink).
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// An RAII timing span over one pipeline phase.
///
/// `Span::enter(phase)` starts the clock; dropping the guard records
/// the elapsed wall time into the process-wide sink under `phase`.
/// Spans nest freely ([`current_depth`] observes the nesting); a child
/// span's time is *also* contained in its parent's, exactly like any
/// tracing system's inclusive timings.
///
/// When telemetry is disabled (the default) `enter` is one relaxed
/// atomic load and no clock is read — near-zero overhead on hot paths.
///
/// # Examples
///
/// ```
/// use fcr_telemetry::{Phase, Span};
///
/// // Disabled by default: this records nothing and costs one load.
/// {
///     let _span = Span::enter(Phase::Sensing);
///     // ... phase work ...
/// }
/// assert_eq!(fcr_telemetry::current_depth(), 0);
/// ```
#[derive(Debug)]
#[must_use = "a span only measures while the guard is live"]
pub struct Span {
    phase: Phase,
    /// `None` when telemetry was disabled at entry: the drop is free.
    start: Option<Instant>,
}

impl Span {
    /// Opens a span over `phase`. Near-free when telemetry is
    /// disabled.
    #[inline]
    pub fn enter(phase: Phase) -> Span {
        if !crate::is_enabled() {
            return Span { phase, start: None };
        }
        DEPTH.with(|d| d.set(d.get() + 1));
        Span {
            phase,
            start: Some(Instant::now()),
        }
    }

    /// The phase this span measures.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// `true` when this span is actually recording (telemetry was
    /// enabled at entry).
    pub fn is_recording(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let elapsed = start.elapsed();
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            crate::global().record_span(self.phase, elapsed);
        }
    }
}

/// The current span nesting depth on this thread (0 outside any
/// recording span). Disabled spans do not contribute.
pub fn current_depth() -> usize {
    DEPTH.with(Cell::get)
}
