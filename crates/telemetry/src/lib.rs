//! `fcr-telemetry` — structured span tracing, solver-convergence
//! telemetry, and export for the FCR pipeline.
//!
//! The crate is the observability layer of the reproduction: it gives
//! every pipeline phase (sensing → fusion → access → solver → greedy
//! allocation → video credit) an RAII timing span, captures the
//! convergence behaviour of the dual-decomposition solver (Tables I/II
//! of the paper) and the eq.-(23) optimality-gap bookkeeping of the
//! greedy channel allocator (Table III), and renders everything as
//! JSONL or human-readable tables.
//!
//! # Design
//!
//! - **Off by default, near-zero overhead.** Telemetry is gated by one
//!   process-wide `AtomicBool`; a disabled [`Span::enter`] is a single
//!   relaxed load and no clock read. Hot paths stay hot.
//! - **Thread-local subscriber, process-wide sink.** Span nesting depth
//!   is tracked per thread ([`current_depth`]); completed spans and
//!   records land in the shared [`TelemetrySink`] behind relaxed
//!   atomics and short mutexes, so the pooled runner can record from
//!   every worker concurrently.
//! - **Determinism-neutral.** Nothing here touches an RNG; enabling
//!   telemetry changes only wall-clock observations, never simulation
//!   results.
//! - **`std` only.** The container is offline: JSONL is hand-rolled,
//!   histograms are reused from `fcr-runtime`.
//!
//! # Quick start
//!
//! ```
//! use fcr_telemetry::{Phase, Span};
//!
//! fcr_telemetry::enable();
//! {
//!     let _span = Span::enter(Phase::Solver);
//!     // ... run the solver ...
//! }
//! fcr_telemetry::record_solve(fcr_telemetry::SolveRecord {
//!     iterations: 87,
//!     converged: true,
//!     residual: 3.2e-13,
//!     lambda: vec![0.0, 0.41],
//! });
//! let snapshot = fcr_telemetry::global().snapshot();
//! assert_eq!(snapshot.phase(Phase::Solver).count, 1);
//! assert_eq!(snapshot.solves.len(), 1);
//! let jsonl = fcr_telemetry::to_jsonl(&snapshot, None);
//! assert!(jsonl.contains("\"type\":\"solve\""));
//! fcr_telemetry::reset();
//! fcr_telemetry::disable();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod export;
mod phase;
mod record;
mod sink;
mod span;

pub use export::to_jsonl;
pub use fcr_runtime::{ResizeEvent, ResizeTrigger};
pub use phase::Phase;
pub use record::{GreedyRecord, ShardRecord, SolveRecord};
pub use sink::{PhaseSnapshot, TelemetrySink, TelemetrySnapshot, MAX_RECORDS};
pub use span::{current_depth, Span};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// The process-wide enable flag. Relaxed is sufficient: the flag only
/// gates *whether* observations are made, and the sink's own atomics
/// order the data.
static ENABLED: AtomicBool = AtomicBool::new(false);

static GLOBAL: OnceLock<TelemetrySink> = OnceLock::new();

/// Turns telemetry collection on process-wide.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns telemetry collection off process-wide. Already-collected data
/// stays in the sink until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// `true` when telemetry is collecting. This is the one relaxed load a
/// disabled [`Span::enter`] costs.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-wide sink (created lazily on first use).
pub fn global() -> &'static TelemetrySink {
    GLOBAL.get_or_init(TelemetrySink::new)
}

/// Clears the process-wide sink back to empty (enable state is
/// unchanged).
pub fn reset() {
    global().reset();
}

/// Records one dual-decomposition solve into the global sink; no-op
/// when telemetry is disabled.
pub fn record_solve(record: SolveRecord) {
    if is_enabled() {
        global().record_solve(record);
    }
}

/// Records one greedy-allocation run into the global sink; no-op when
/// telemetry is disabled.
pub fn record_greedy(record: GreedyRecord) {
    if is_enabled() {
        global().record_greedy(record);
    }
}

/// Records one executed intra-run shard into the global sink; no-op
/// when telemetry is disabled.
pub fn record_shard(record: ShardRecord) {
    if is_enabled() {
        global().record_shard(record);
    }
}

/// Records one elastic-pool resize event into the global sink; no-op
/// when telemetry is disabled.
pub fn record_resize(event: ResizeEvent) {
    if is_enabled() {
        global().record_resize(event);
    }
}

/// Adds `n` to the named global counter; no-op when telemetry is
/// disabled.
pub fn incr(name: &str, n: u64) {
    if is_enabled() {
        global().incr(name, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;
    use std::time::Duration;

    /// Serializes tests that flip the process-wide enable flag.
    static GUARD: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        GUARD
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = serial();
        disable();
        reset();
        {
            let span = Span::enter(Phase::Sensing);
            assert!(!span.is_recording());
            assert_eq!(current_depth(), 0);
        }
        record_solve(SolveRecord {
            iterations: 1,
            converged: true,
            residual: 0.0,
            lambda: Vec::new(),
        });
        incr("x", 1);
        let snap = global().snapshot();
        assert_eq!(snap.phase(Phase::Sensing).count, 0);
        assert!(snap.solves.is_empty());
        assert_eq!(snap.counter("x"), None);
    }

    #[test]
    fn enabled_spans_nest_and_aggregate() {
        let _g = serial();
        enable();
        reset();
        {
            let outer = Span::enter(Phase::Solver);
            assert!(outer.is_recording());
            assert_eq!(outer.phase(), Phase::Solver);
            assert_eq!(current_depth(), 1);
            {
                let _inner = Span::enter(Phase::GreedyAlloc);
                assert_eq!(current_depth(), 2);
                std::thread::sleep(Duration::from_micros(50));
            }
            assert_eq!(current_depth(), 1);
        }
        assert_eq!(current_depth(), 0);
        let snap = global().snapshot();
        assert_eq!(snap.phase(Phase::Solver).count, 1);
        assert_eq!(snap.phase(Phase::GreedyAlloc).count, 1);
        // Inclusive timing: the parent contains the child.
        assert!(
            snap.phase(Phase::Solver).total_ns >= snap.phase(Phase::GreedyAlloc).total_ns,
            "parent {} < child {}",
            snap.phase(Phase::Solver).total_ns,
            snap.phase(Phase::GreedyAlloc).total_ns
        );
        reset();
        disable();
    }

    #[test]
    fn concurrent_spans_from_many_threads_all_land() {
        let _g = serial();
        enable();
        reset();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..25 {
                        let _span = Span::enter(Phase::Fusion);
                    }
                    global().incr("threads.done", 1);
                });
            }
        });
        let snap = global().snapshot();
        assert_eq!(snap.phase(Phase::Fusion).count, 100);
        assert_eq!(snap.counter("threads.done"), Some(4));
        reset();
        disable();
    }
}
