//! `fcr-telemetry` — structured span tracing, solver-convergence
//! telemetry, and export for the FCR pipeline.
//!
//! The crate is the observability layer of the reproduction: it gives
//! every pipeline phase (sensing → fusion → access → solver → greedy
//! allocation → video credit) an RAII timing span, captures the
//! convergence behaviour of the dual-decomposition solver (Tables I/II
//! of the paper) and the eq.-(23) optimality-gap bookkeeping of the
//! greedy channel allocator (Table III), and renders everything as
//! JSONL or human-readable tables.
//!
//! # Design
//!
//! - **Off by default, near-zero overhead.** Telemetry is gated by one
//!   process-wide `AtomicBool`; a disabled [`Span::enter`] is a single
//!   relaxed load and no clock read. Hot paths stay hot.
//! - **Thread-local subscriber, process-wide sink.** Span nesting depth
//!   is tracked per thread ([`current_depth`]); completed spans and
//!   records land in the shared [`TelemetrySink`] behind relaxed
//!   atomics and short mutexes, so the pooled runner can record from
//!   every worker concurrently.
//! - **Determinism-neutral.** Nothing here touches an RNG; enabling
//!   telemetry changes only wall-clock observations, never simulation
//!   results.
//! - **`std` only.** The container is offline: JSONL is hand-rolled,
//!   histograms are reused from `fcr-runtime`.
//!
//! # Quick start
//!
//! ```
//! use fcr_telemetry::{Phase, Span};
//!
//! fcr_telemetry::enable();
//! {
//!     let _span = Span::enter(Phase::Solver);
//!     // ... run the solver ...
//! }
//! fcr_telemetry::record_solve(fcr_telemetry::SolveRecord {
//!     iterations: 87,
//!     converged: true,
//!     residual: 3.2e-13,
//!     lambda: vec![0.0, 0.41],
//! });
//! let snapshot = fcr_telemetry::global().snapshot();
//! assert_eq!(snapshot.phase(Phase::Solver).count, 1);
//! assert_eq!(snapshot.solves.len(), 1);
//! let jsonl = fcr_telemetry::to_jsonl(&snapshot, None);
//! assert!(jsonl.contains("\"type\":\"solve\""));
//! fcr_telemetry::reset();
//! fcr_telemetry::disable();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod bench;
mod export;
pub mod json;
mod phase;
mod record;
mod sink;
mod span;

pub use bench::{peak_rss_kb, BenchEnvelope, BenchValue, BENCH_SCHEMA_VERSION};
pub use export::{to_jsonl, to_prometheus};
pub use fcr_runtime::{ResizeEvent, ResizeTrigger};
pub use phase::Phase;
pub use record::{GreedyRecord, ShardRecord, SolveRecord, SpanRecord};
pub use sink::{PhaseSnapshot, TelemetrySink, TelemetrySnapshot, MAX_RECORDS};
pub use span::{current_depth, Span};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// The process-wide enable flag. Relaxed is sufficient: the flag only
/// gates *whether* observations are made, and the sink's own atomics
/// order the data.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Opt-in flag for per-event span records with parent/child edges
/// (beyond the always-on per-phase aggregates). Separate from
/// [`ENABLED`] because event capture allocates a record per span and
/// is priced for sampled always-on use, not hot batch loops.
static SPAN_EVENTS: AtomicBool = AtomicBool::new(false);

static GLOBAL: OnceLock<TelemetrySink> = OnceLock::new();

/// Turns telemetry collection on process-wide.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns telemetry collection off process-wide. Already-collected data
/// stays in the sink until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// `true` when telemetry is collecting. This is the one relaxed load a
/// disabled [`Span::enter`] costs.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-wide sink (created lazily on first use).
pub fn global() -> &'static TelemetrySink {
    GLOBAL.get_or_init(TelemetrySink::new)
}

/// Clears the process-wide sink back to empty (enable state is
/// unchanged).
pub fn reset() {
    global().reset();
}

/// Turns per-event span records (with parent/child edges) on or off
/// process-wide. Requires [`enable`] as well: span events are a
/// refinement of span timing, not a replacement.
pub fn set_span_events(on: bool) {
    SPAN_EVENTS.store(on, Ordering::Relaxed);
}

/// `true` when individual span events (with parent edges) are being
/// captured.
#[inline]
pub fn span_events_enabled() -> bool {
    SPAN_EVENTS.load(Ordering::Relaxed)
}

/// Sets keep-1-in-`every` sampling on the global sink's per-record
/// channels (see [`TelemetrySink::set_sampling`]).
pub fn set_sampling(every: u64) {
    global().set_sampling(every);
}

/// Attaches a live JSONL stream to the global sink: every retained
/// record is rendered and flushed per line (see
/// [`TelemetrySink::attach_stream`]).
pub fn attach_stream(writer: Box<dyn std::io::Write + Send>) {
    global().attach_stream(writer);
}

/// Creates (truncating) `path` and attaches it as the global live
/// JSONL stream — the one-call setup for `tail -f`-able telemetry.
pub fn attach_stream_path(path: &std::path::Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    global().attach_stream(Box::new(file));
    Ok(())
}

/// Flushes the global sink's attached stream, if any (writes are
/// already flushed per record; this forces the handoff explicitly).
pub fn flush() {
    global().flush();
}

/// Flushes and drops the global sink's attached stream, if any.
pub fn detach_stream() {
    global().detach_stream();
}

/// Takes everything the global sink aggregated so far and resets it in
/// one step (see [`TelemetrySink::drain`]) — the periodic-delta
/// primitive for long-running services.
pub fn drain() -> TelemetrySnapshot {
    global().drain()
}

/// Records one dual-decomposition solve into the global sink; no-op
/// when telemetry is disabled.
pub fn record_solve(record: SolveRecord) {
    if is_enabled() {
        global().record_solve(record);
    }
}

/// Records one greedy-allocation run into the global sink; no-op when
/// telemetry is disabled.
pub fn record_greedy(record: GreedyRecord) {
    if is_enabled() {
        global().record_greedy(record);
    }
}

/// Records one executed intra-run shard into the global sink; no-op
/// when telemetry is disabled.
pub fn record_shard(record: ShardRecord) {
    if is_enabled() {
        global().record_shard(record);
    }
}

/// Records one elastic-pool resize event into the global sink; no-op
/// when telemetry is disabled.
pub fn record_resize(event: ResizeEvent) {
    if is_enabled() {
        global().record_resize(event);
    }
}

/// Adds `n` to the named global counter; no-op when telemetry is
/// disabled.
pub fn incr(name: &str, n: u64) {
    if is_enabled() {
        global().incr(name, n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;
    use std::time::Duration;

    /// Serializes tests that flip the process-wide enable flag.
    static GUARD: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        GUARD
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = serial();
        disable();
        reset();
        {
            let span = Span::enter(Phase::Sensing);
            assert!(!span.is_recording());
            assert_eq!(current_depth(), 0);
        }
        record_solve(SolveRecord {
            iterations: 1,
            converged: true,
            residual: 0.0,
            lambda: Vec::new(),
        });
        incr("x", 1);
        let snap = global().snapshot();
        assert_eq!(snap.phase(Phase::Sensing).count, 0);
        assert!(snap.solves.is_empty());
        assert_eq!(snap.counter("x"), None);
    }

    #[test]
    fn enabled_spans_nest_and_aggregate() {
        let _g = serial();
        enable();
        reset();
        {
            let outer = Span::enter(Phase::Solver);
            assert!(outer.is_recording());
            assert_eq!(outer.phase(), Phase::Solver);
            assert_eq!(current_depth(), 1);
            {
                let _inner = Span::enter(Phase::GreedyAlloc);
                assert_eq!(current_depth(), 2);
                std::thread::sleep(Duration::from_micros(50));
            }
            assert_eq!(current_depth(), 1);
        }
        assert_eq!(current_depth(), 0);
        let snap = global().snapshot();
        assert_eq!(snap.phase(Phase::Solver).count, 1);
        assert_eq!(snap.phase(Phase::GreedyAlloc).count, 1);
        // Inclusive timing: the parent contains the child.
        assert!(
            snap.phase(Phase::Solver).total_ns >= snap.phase(Phase::GreedyAlloc).total_ns,
            "parent {} < child {}",
            snap.phase(Phase::Solver).total_ns,
            snap.phase(Phase::GreedyAlloc).total_ns
        );
        reset();
        disable();
    }

    #[test]
    fn span_events_capture_parent_child_edges() {
        let _g = serial();
        enable();
        set_span_events(true);
        reset();
        {
            let _outer = Span::enter(Phase::Solver);
            {
                let _inner = Span::enter(Phase::GreedyAlloc);
            }
            let _sibling = Span::enter(Phase::GreedyAlloc);
        }
        set_span_events(false);
        // Events flag off: this span times but emits no event record.
        {
            let _untracked = Span::enter(Phase::Sensing);
        }
        let snap = global().snapshot();
        assert_eq!(snap.spans.len(), 3, "{:?}", snap.spans);
        assert_eq!(snap.phase(Phase::Sensing).count, 1);
        // Drop order: inner, sibling, outer.
        let (inner, sibling, outer) = (&snap.spans[0], &snap.spans[1], &snap.spans[2]);
        assert_eq!(inner.phase, Phase::GreedyAlloc);
        assert_eq!(sibling.phase, Phase::GreedyAlloc);
        assert_eq!(outer.phase, Phase::Solver);
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(sibling.parent, Some(outer.id));
        assert_ne!(inner.id, sibling.id);
        reset();
        disable();
    }

    #[test]
    fn concurrent_spans_from_many_threads_all_land() {
        let _g = serial();
        enable();
        reset();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..25 {
                        let _span = Span::enter(Phase::Fusion);
                    }
                    global().incr("threads.done", 1);
                });
            }
        });
        let snap = global().snapshot();
        assert_eq!(snap.phase(Phase::Fusion).count, 100);
        assert_eq!(snap.counter("threads.done"), Some(4));
        reset();
        disable();
    }
}
