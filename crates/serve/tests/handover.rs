//! Handover edges: the ledger swap must be atomic and exact, the
//! serving-side state machine must reject impossible transitions, an
//! over-budget macro fallback must leave everything untouched, and the
//! extended accounting identity must hold across every transition.

use fcr_runtime::{Runtime, RuntimeConfig};
use fcr_serve::{
    AdmitOutcome, HandoverKind, HandoverOutcome, HandoverReject, ServeConfig, Service, SessionId,
    SessionSpec,
};
use fcr_sim::config::SimConfig;
use fcr_sim::Scenario;
use std::sync::Arc;

fn tiny_cfg() -> SimConfig {
    SimConfig {
        gops: 1,
        deadline: 2,
        num_channels: 2,
        ..SimConfig::default()
    }
}

fn spec(scenario: &Arc<Scenario>, cfg: SimConfig, seed: u64) -> SessionSpec {
    SessionSpec::new(Arc::clone(scenario), cfg).seed(seed)
}

fn service_with_budget(budget: f64) -> Service {
    let runtime = Arc::new(Runtime::with_config(RuntimeConfig {
        workers: 1,
        ..RuntimeConfig::default()
    }));
    Service::new(
        ServeConfig {
            mbs_budget: budget,
            ..ServeConfig::default()
        },
        runtime,
    )
}

#[test]
fn fbs_to_mbs_swaps_the_claim_exactly_and_back() {
    let cfg = tiny_cfg();
    let scenario = Arc::new(Scenario::single_fbs(&cfg));
    let demand = Service::estimate_demand(&spec(&scenario, cfg, 1));
    let service = service_with_budget(demand * 10.0);
    let id = service.admit(spec(&scenario, cfg, 1)).expect_admitted();
    let femto_claim = service.session_demand(id).expect("active");
    assert_eq!(service.session_on_mbs(id), Some(false));

    // Macro fallback at 3x the femto claim: the ledger must move by
    // exactly the difference and the serving side must flip.
    let macro_demand = demand * 3.0;
    let outcome = service.handover(id, macro_demand, HandoverKind::FbsToMbs);
    let HandoverOutcome::Completed {
        old_demand,
        new_demand,
    } = outcome
    else {
        panic!("macro fallback within budget must complete: {outcome:?}");
    };
    assert_eq!(old_demand, femto_claim, "old claim echoes the admission");
    assert_eq!(service.session_on_mbs(id), Some(true));
    assert_eq!(service.session_demand(id), Some(new_demand));
    assert_eq!(service.snapshot().mbs_in_use, new_demand);
    assert_eq!(service.snapshot().handovers_fbs_mbs, 1);
    assert_eq!(service.snapshot().active_on_mbs, 1);

    // Walking back into femto coverage frees the macro claim again —
    // the round trip restores the original ledger value exactly.
    service
        .handover(id, femto_claim, HandoverKind::MbsToFbs)
        .completed()
        .then_some(())
        .expect("return handover fits by construction");
    assert_eq!(service.session_on_mbs(id), Some(false));
    assert_eq!(service.session_demand(id), Some(femto_claim));
    assert_eq!(service.snapshot().mbs_in_use, femto_claim);
    assert_eq!(service.snapshot().active_on_mbs, 0);

    service.retire(id);
    service.quiesce(10_000);
    assert_eq!(service.snapshot().mbs_in_use, 0.0, "ledger drains to zero");
}

#[test]
fn over_budget_macro_fallback_rejects_and_changes_nothing() {
    let cfg = tiny_cfg();
    let scenario = Arc::new(Scenario::single_fbs(&cfg));
    let demand = Service::estimate_demand(&spec(&scenario, cfg, 1));
    // Room for the session but not for a 5x macro fallback.
    let service = service_with_budget(demand * 2.0);
    let id = service.admit(spec(&scenario, cfg, 1)).expect_admitted();
    let before = service.snapshot();

    let outcome = service.handover(id, demand * 5.0, HandoverKind::FbsToMbs);
    match outcome {
        HandoverOutcome::Rejected(HandoverReject::OverBudget {
            demand: d,
            available,
        }) => {
            assert!(
                d > available + demand,
                "must not fit even recycling the old claim"
            );
        }
        other => panic!("expected over-budget rejection, got {other:?}"),
    }
    let after = service.snapshot();
    assert_eq!(after.mbs_in_use, before.mbs_in_use, "ledger untouched");
    assert_eq!(
        service.session_on_mbs(id),
        Some(false),
        "still femto-served"
    );
    assert_eq!(after.handovers_rejected, 1);
    assert_eq!(after.handovers_fbs_mbs, 0);
    service.retire(id);
    service.quiesce(10_000);
}

#[test]
fn a_demand_decrease_always_fits_even_at_full_budget() {
    let cfg = tiny_cfg();
    let scenario = Arc::new(Scenario::single_fbs(&cfg));
    let demand = Service::estimate_demand(&spec(&scenario, cfg, 1));
    // Budget exactly one session: the ledger is full after admission.
    let service = service_with_budget(demand);
    let id = service.admit(spec(&scenario, cfg, 1)).expect_admitted();
    // An FBS→FBS move to a *better* cell shrinks the claim; the swap
    // recycles the old claim so this must succeed with zero headroom.
    let outcome = service.handover(id, demand * 0.5, HandoverKind::FbsToFbs);
    assert!(
        outcome.completed(),
        "decrease rejected at full budget: {outcome:?}"
    );
    assert_eq!(service.snapshot().handovers_fbs_fbs, 1);
    // And the freed half-claim is immediately admissible capacity.
    let second = service.admit(spec(&scenario, cfg, 2));
    assert!(
        matches!(second, AdmitOutcome::Rejected(_)),
        "a full-demand session still must not fit half a budget"
    );
    service.retire(id);
    service.quiesce(10_000);
}

#[test]
fn wrong_serving_side_is_rejected_without_state_change() {
    let cfg = tiny_cfg();
    let scenario = Arc::new(Scenario::single_fbs(&cfg));
    let demand = Service::estimate_demand(&spec(&scenario, cfg, 1));
    let service = service_with_budget(demand * 10.0);
    let id = service.admit(spec(&scenario, cfg, 1)).expect_admitted();

    // Femto-served: a "return from macro" handover is impossible.
    match service.handover(id, demand, HandoverKind::MbsToFbs) {
        HandoverOutcome::Rejected(HandoverReject::WrongCell { on_mbs: false }) => {}
        other => panic!("expected WrongCell, got {other:?}"),
    }
    // Macro-served: femto-side kinds are impossible.
    assert!(service
        .handover(id, demand * 2.0, HandoverKind::FbsToMbs)
        .completed());
    for kind in [HandoverKind::FbsToFbs, HandoverKind::FbsToMbs] {
        match service.handover(id, demand, kind) {
            HandoverOutcome::Rejected(HandoverReject::WrongCell { on_mbs: true }) => {}
            other => panic!("expected WrongCell for {kind:?}, got {other:?}"),
        }
    }
    assert_eq!(service.snapshot().handovers_rejected, 3);
    service.retire(id);
    service.quiesce(10_000);
}

#[test]
fn handover_on_inactive_sessions_is_not_active() {
    let cfg = tiny_cfg();
    let scenario = Arc::new(Scenario::single_fbs(&cfg));
    let demand = Service::estimate_demand(&spec(&scenario, cfg, 1));
    let service = service_with_budget(demand * 10.0);
    assert_eq!(
        service.handover(SessionId(999), demand, HandoverKind::FbsToFbs),
        HandoverOutcome::NotActive
    );
    let id = service.admit(spec(&scenario, cfg, 1)).expect_admitted();
    service.retire(id);
    assert_eq!(
        service.handover(id, demand, HandoverKind::FbsToFbs),
        HandoverOutcome::NotActive,
        "retired sessions cannot hand over"
    );
    service.quiesce(10_000);
}

#[test]
fn handed_over_sessions_complete_with_batch_identical_outputs() {
    // A handover moves the budget claim, never the simulation: the
    // session's outputs must stay bit-identical to the batch path.
    let cfg = tiny_cfg();
    let scenario = Arc::new(Scenario::single_fbs(&cfg));
    let demand = Service::estimate_demand(&spec(&scenario, cfg, 1));
    let service = service_with_budget(demand * 10.0);
    let id = service.admit(spec(&scenario, cfg, 7)).expect_admitted();
    assert!(service
        .handover(id, demand * 2.0, HandoverKind::FbsToMbs)
        .completed());
    service.quiesce(10_000);
    let completed = service.take_completed();
    assert_eq!(completed.len(), 1);
    let served = completed[0].outputs[0].as_ref().expect("base run output");

    let batch = fcr_sim::SimSession::new(Scenario::single_fbs(&cfg))
        .config(cfg)
        .seed(7)
        .runs(1)
        .run(fcr_sim::Scheme::Proposed);
    assert_eq!(
        served.result.per_user_psnr,
        batch.results()[0].per_user_psnr,
        "handover must not perturb simulation output"
    );
}
