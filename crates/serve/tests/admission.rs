//! Admission-control edges: the eq.-(12) MBS budget must admit
//! exactly at the boundary, reject ε over it, free capacity on
//! retirement and completion, and enforce the concurrency watermark —
//! with every rejection explicit and typed.

use fcr_runtime::{Runtime, RuntimeConfig};
use fcr_serve::{AdmitOutcome, RejectReason, ServeConfig, Service, SessionSpec, ADMIT_EPS};
use fcr_sim::config::SimConfig;
use fcr_sim::Scenario;
use std::sync::Arc;

fn tiny_cfg() -> SimConfig {
    SimConfig {
        gops: 1,
        deadline: 2,
        num_channels: 2,
        ..SimConfig::default()
    }
}

fn spec(scenario: &Arc<Scenario>, cfg: SimConfig, seed: u64) -> SessionSpec {
    SessionSpec::new(Arc::clone(scenario), cfg).seed(seed)
}

fn service_with_budget(budget: f64) -> Service {
    let runtime = Arc::new(Runtime::with_config(RuntimeConfig {
        workers: 1,
        ..RuntimeConfig::default()
    }));
    Service::new(
        ServeConfig {
            mbs_budget: budget,
            ..ServeConfig::default()
        },
        runtime,
    )
}

#[test]
fn budget_admits_exactly_k_sessions_and_rejects_the_k_plus_first() {
    let cfg = tiny_cfg();
    let scenario = Arc::new(Scenario::single_fbs(&cfg));
    let demand = Service::estimate_demand(&spec(&scenario, cfg, 1));
    assert!(demand > 0.0, "a session must cost MBS budget");

    // Identical specs cost identical demand, so k * demand admits
    // exactly k — the boundary admission is the k-th.
    let k = 3;
    let service = service_with_budget(demand * k as f64);
    for i in 0..k {
        match service.admit(spec(&scenario, cfg, 1)) {
            AdmitOutcome::Admitted(_) => {}
            AdmitOutcome::Rejected(reason) => panic!("session {i} rejected: {reason}"),
        }
    }
    match service.admit(spec(&scenario, cfg, 1)) {
        AdmitOutcome::Admitted(_) => panic!("k+1-th session must be over budget"),
        AdmitOutcome::Rejected(RejectReason::OverBudget {
            demand: d,
            available,
        }) => {
            assert!(
                d > available,
                "rejection must report demand {d} > available {available}"
            );
        }
        AdmitOutcome::Rejected(other) => panic!("wrong rejection: {other}"),
    }
    let snap = service.snapshot();
    assert_eq!(snap.admitted, k);
    assert_eq!(snap.rejected_budget, 1);
    assert_eq!(snap.rejected_capacity, 0);
    assert!((snap.mbs_in_use - demand * k as f64).abs() < 1e-9);
}

#[test]
fn epsilon_over_the_budget_is_rejected() {
    let cfg = tiny_cfg();
    let scenario = Arc::new(Scenario::single_fbs(&cfg));
    let demand = Service::estimate_demand(&spec(&scenario, cfg, 1));

    // A budget of exactly one demand admits the boundary session...
    let service = service_with_budget(demand);
    assert!(matches!(
        service.admit(spec(&scenario, cfg, 1)),
        AdmitOutcome::Admitted(_)
    ));

    // ...but a budget even 1e-6 short of it rejects (well outside the
    // ADMIT_EPS float tolerance).
    let shy = service_with_budget(demand - 1e-6);
    const { assert!(1e-6 > ADMIT_EPS, "test epsilon must exceed the tolerance") };
    match shy.admit(spec(&scenario, cfg, 1)) {
        AdmitOutcome::Rejected(RejectReason::OverBudget { .. }) => {}
        other => panic!("ε-over admission must reject, got {other:?}"),
    }
}

#[test]
fn retirement_frees_budget_for_readmission() {
    let cfg = tiny_cfg();
    let scenario = Arc::new(Scenario::single_fbs(&cfg));
    let demand = Service::estimate_demand(&spec(&scenario, cfg, 1));
    let service = service_with_budget(demand); // room for exactly one

    let first = match service.admit(spec(&scenario, cfg, 1)) {
        AdmitOutcome::Admitted(id) => id,
        AdmitOutcome::Rejected(reason) => panic!("first admission rejected: {reason}"),
    };
    assert!(matches!(
        service.admit(spec(&scenario, cfg, 2)),
        AdmitOutcome::Rejected(RejectReason::OverBudget { .. })
    ));

    // Retiring the incumbent frees its share immediately.
    assert!(service.retire(first));
    assert!(matches!(
        service.admit(spec(&scenario, cfg, 2)),
        AdmitOutcome::Admitted(_)
    ));

    // ...and natural completion frees it too.
    service.quiesce(10_000);
    assert_eq!(service.snapshot().mbs_in_use, 0.0);
    assert!(matches!(
        service.admit(spec(&scenario, cfg, 3)),
        AdmitOutcome::Admitted(_)
    ));
    service.quiesce(10_000);
    let snap = service.snapshot();
    assert!(snap.accounting_holds(), "{snap:?}");
    assert_eq!(snap.admitted, 3);
    assert_eq!(snap.completed, 2);
    assert_eq!(snap.retired, 1);
}

#[test]
fn boundary_admission_survives_many_admit_retire_cycles() {
    let cfg = tiny_cfg();
    let scenario = Arc::new(Scenario::single_fbs(&cfg));
    let demand = Service::estimate_demand(&spec(&scenario, cfg, 1));

    // Budget for exactly two sessions; one stays pinned active so the
    // ledger never drains to zero (the idle snap can't mask drift).
    let service = service_with_budget(demand * 2.0);
    let pinned = match service.admit(spec(&scenario, cfg, 1)) {
        AdmitOutcome::Admitted(id) => id,
        AdmitOutcome::Rejected(reason) => panic!("pinned session rejected: {reason}"),
    };
    let in_use_after_pin = service.snapshot().mbs_in_use;

    // Churn the second, boundary-exact slot. Before the fixed-point
    // ledger, each free re-added float dust to `mbs_in_use`; after
    // enough cycles the drift crossed ADMIT_EPS and the boundary
    // session flipped to Rejected.
    for cycle in 0..200 {
        let churned = match service.admit(spec(&scenario, cfg, 2)) {
            AdmitOutcome::Admitted(id) => id,
            AdmitOutcome::Rejected(reason) => {
                panic!("boundary session rejected on cycle {cycle}: {reason}")
            }
        };
        assert!(service.retire(churned));
        let in_use = service.snapshot().mbs_in_use;
        assert!(
            in_use == in_use_after_pin,
            "ledger drifted by cycle {cycle}: {in_use} != {in_use_after_pin}"
        );
    }

    assert!(service.retire(pinned));
    assert_eq!(service.snapshot().mbs_in_use, 0.0);
}

#[test]
fn the_concurrency_watermark_rejects_independently_of_budget() {
    let cfg = tiny_cfg();
    let scenario = Arc::new(Scenario::single_fbs(&cfg));
    let runtime = Arc::new(Runtime::with_config(RuntimeConfig {
        workers: 1,
        ..RuntimeConfig::default()
    }));
    let service = Service::new(
        ServeConfig {
            mbs_budget: 1e12,
            max_sessions: 2,
            ..ServeConfig::default()
        },
        runtime,
    );
    for seed in [1, 2] {
        assert!(matches!(
            service.admit(spec(&scenario, cfg, seed)),
            AdmitOutcome::Admitted(_)
        ));
    }
    match service.admit(spec(&scenario, cfg, 3)) {
        AdmitOutcome::Rejected(RejectReason::AtCapacity { active, max }) => {
            assert_eq!((active, max), (2, 2));
        }
        other => panic!("watermark must reject, got {other:?}"),
    }
    assert_eq!(service.snapshot().rejected_capacity, 1);
}
